//! Cross-crate integration tests: the full pipeline (synthetic data →
//! windows → training → evaluation) behaves sensibly for Conformer and
//! for representative baselines.

use lttf::conformer::{ConformerConfig, FlowMode};
use lttf::data::synth::{Dataset, SynthSpec};
use lttf::data::{Split, WindowDataset};
use lttf::eval::{evaluate, train, Metrics, ModelKind, TrainOptions, TrainedModel};
use lttf::tensor::Tensor;

fn splits(
    series: &lttf::data::TimeSeries,
    lx: usize,
    ly: usize,
) -> (WindowDataset, WindowDataset, WindowDataset) {
    let mk = |split| WindowDataset::new(series, split, (0.7, 0.1), lx, ly, lx / 2);
    (mk(Split::Train), mk(Split::Val), mk(Split::Test))
}

fn quick_opts(seed: u64) -> TrainOptions {
    TrainOptions {
        epochs: 2,
        batch_size: 16,
        lr: 2e-3,
        patience: 0,
        lr_decay: 0.7,
        max_batches: 15,
        clip: 5.0,
        seed,
        val_max_windows: usize::MAX,
        ..Default::default()
    }
}

/// MSE of predicting "the last observed value persists" — the naive
/// baseline any trained model must beat on a learnable dataset.
fn persistence_mse(test: &WindowDataset) -> f32 {
    let mut parts = Vec::new();
    for idx in test.sequential_batches(32) {
        let b = test.batch(&idx);
        let last = b.x.narrow(1, test.lx() - 1, 1); // [n, 1, d]
        let persist = last.broadcast_to(&[b.y.shape()[0], test.ly(), b.y.shape()[2]]);
        parts.push((Metrics::of(&persist, &b.y), b.y.numel()));
    }
    Metrics::weighted_mean(&parts).mse
}

#[test]
fn conformer_beats_persistence_on_periodic_data() {
    let series = Dataset::Ettm1.generate(SynthSpec {
        len: 900,
        dims: Some(4),
        seed: 10,
    });
    let (train_set, val, test) = splits(&series, 48, 24);
    let mut cfg = ConformerConfig::new(4, 48, 24);
    cfg.d_model = 16;
    cfg.n_heads = 4;
    cfg.multiscale_strides = vec![1, 24];
    let mut model = TrainedModel::from_conformer(&cfg, 1);
    let opts = TrainOptions {
        epochs: 5,
        max_batches: 40,
        ..quick_opts(1)
    };
    train(&mut model, &train_set, Some(&val), &opts);
    let m = evaluate(&model, &test, 32);
    let naive = persistence_mse(&test);
    assert!(
        m.mse < naive,
        "Conformer MSE {} did not beat persistence {naive}",
        m.mse
    );
}

#[test]
fn training_improves_every_model_family() {
    let series = Dataset::Etth1.generate(SynthSpec {
        len: 700,
        dims: Some(3),
        seed: 20,
    });
    let (train_set, val, test) = splits(&series, 32, 12);
    for kind in [
        ModelKind::Conformer,
        ModelKind::Informer,
        ModelKind::Gru,
        ModelKind::NBeats,
    ] {
        let mut model = TrainedModel::build(kind, 3, 32, 12, 8, 2, 2);
        let before = evaluate(&model, &test, 32);
        train(&mut model, &train_set, Some(&val), &quick_opts(2));
        let after = evaluate(&model, &test, 32);
        assert!(
            after.mse < before.mse,
            "{kind:?}: training hurt ({} → {})",
            before.mse,
            after.mse
        );
    }
}

#[test]
fn flow_ablation_changes_results() {
    let series = Dataset::Wind.generate(SynthSpec {
        len: 600,
        dims: Some(3),
        seed: 30,
    });
    let (train_set, val, test) = splits(&series, 32, 12);
    let mut results = Vec::new();
    for mode in [FlowMode::Full, FlowMode::None] {
        let mut cfg = ConformerConfig::new(3, 32, 12);
        cfg.d_model = 8;
        cfg.n_heads = 2;
        cfg.flow_mode = mode;
        cfg.multiscale_strides = vec![1, 8];
        let mut model = TrainedModel::from_conformer(&cfg, 3);
        train(&mut model, &train_set, Some(&val), &quick_opts(3));
        results.push(evaluate(&model, &test, 32).mse);
    }
    assert_ne!(results[0], results[1], "flow mode had no effect at all");
}

#[test]
fn univariate_pipeline_works() {
    let series = Dataset::Exchange
        .generate(SynthSpec {
            len: 600,
            dims: Some(8),
            seed: 40,
        })
        .to_univariate();
    assert_eq!(series.dims(), 1);
    let (train_set, val, test) = splits(&series, 32, 12);
    let mut model = TrainedModel::build(ModelKind::Ts2Vec, 1, 32, 12, 8, 2, 4);
    train(&mut model, &train_set, Some(&val), &quick_opts(4));
    let m = evaluate(&model, &test, 32);
    assert!(m.mse.is_finite() && m.mse > 0.0);
}

#[test]
fn predictions_have_no_nans_after_training() {
    let series = Dataset::AirDelay.generate(SynthSpec {
        len: 600,
        dims: Some(4),
        seed: 50,
    });
    let (train_set, val, test) = splits(&series, 32, 12);
    for kind in ModelKind::TABLE2 {
        let mut model = TrainedModel::build(kind, 4, 32, 12, 8, 2, 5);
        train(&mut model, &train_set, Some(&val), &quick_opts(5));
        let b = test.batch(&[0, 1]);
        let p = model.predict_batch(&b);
        assert!(!p.has_non_finite(), "{kind:?} produced NaN/inf");
    }
}

#[test]
fn scaled_metrics_are_scale_invariant() {
    // Multiplying the raw series by a constant must not change scaled-space
    // metrics (the scaler absorbs it).
    let base = Dataset::Etth1.generate(SynthSpec {
        len: 600,
        dims: Some(2),
        seed: 60,
    });
    let mut scaled = base.clone();
    scaled.values = scaled.values.mul_scalar(100.0);

    let run = |series: &lttf::data::TimeSeries| {
        let (train_set, val, test) = splits(series, 32, 12);
        let mut model = TrainedModel::build(ModelKind::Gru, 2, 32, 12, 8, 2, 6);
        train(&mut model, &train_set, Some(&val), &quick_opts(6));
        evaluate(&model, &test, 32).mse
    };
    let a = run(&base);
    let b = run(&scaled);
    assert!(
        (a - b).abs() < 0.05 * a.max(b),
        "scaled-space MSE changed with raw units: {a} vs {b}"
    );
}

#[test]
fn uncertainty_bands_cover_reasonably_on_gaussian_noise() {
    // On a pure-noise target, a 90% interval from the flow should cover a
    // nontrivial fraction of the truth after training (calibration is not
    // exact — this guards against degenerate zero-width bands).
    let series = Dataset::Wind.generate(SynthSpec {
        len: 600,
        dims: Some(2),
        seed: 70,
    });
    let (train_set, val, test) = splits(&series, 32, 12);
    let mut cfg = ConformerConfig::new(2, 32, 12);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.multiscale_strides = vec![1, 8];
    let mut model = TrainedModel::from_conformer(&cfg, 7);
    train(&mut model, &train_set, Some(&val), &quick_opts(7));
    let lttf::eval::ModelImpl::Conformer(conformer) = model.inner() else {
        unreachable!()
    };
    let b = test.batch(&[0]);
    let (_, lo, hi) = conformer.predict_with_uncertainty(
        model.params(),
        &b.x,
        &b.x_mark,
        &b.dec,
        &b.dec_mark,
        40,
        0.9,
        99,
    );
    let width = hi.sub(&lo).mean();
    assert!(width > 1e-4, "degenerate zero-width interval");
    assert!(!lo.has_non_finite() && !hi.has_non_finite());
}

#[test]
fn csv_round_trip_through_training() {
    // Export a synthetic series to CSV, re-import, and verify the window
    // pipeline produces identical batches.
    let series = Dataset::Weather.generate(SynthSpec {
        len: 300,
        dims: Some(3),
        seed: 80,
    });
    let path = std::env::temp_dir().join("lttf_e2e_weather.csv");
    lttf::data::write_csv(&series, &path).unwrap();
    let restored = lttf::data::read_csv(&path, &series.names[series.target], series.freq).unwrap();
    let a = WindowDataset::new(&series, Split::Train, (0.7, 0.1), 24, 8, 12).batch(&[0]);
    let b = WindowDataset::new(&restored, Split::Train, (0.7, 0.1), 24, 8, 12).batch(&[0]);
    a.x.assert_close(&b.x, 1e-4);
    a.y.assert_close(&b.y, 1e-4);
    let _ = std::fs::remove_file(path);
}

#[test]
fn longer_horizons_are_harder() {
    // Error should grow with the prediction length (the paper's qualitative
    // expectation across every table).
    let series = Dataset::Ettm1.generate(SynthSpec {
        len: 900,
        dims: Some(3),
        seed: 90,
    });
    let mut errs = Vec::new();
    for ly in [8usize, 48] {
        let (train_set, val, test) = splits(&series, 48, ly);
        let mut model = TrainedModel::build(ModelKind::Conformer, 3, 48, ly, 8, 2, 8);
        train(&mut model, &train_set, Some(&val), &quick_opts(8));
        errs.push(evaluate(&model, &test, 32).mse);
    }
    assert!(
        errs[1] > errs[0] * 0.8,
        "48-step horizon implausibly easier than 8-step: {errs:?}"
    );
}

#[test]
fn tensor_pipeline_sanity() {
    // A tiny end-to-end numeric check across crates: FFT-based
    // autocorrelation of a generated periodic series detects its period.
    let series = Dataset::Ecl.generate(SynthSpec {
        len: 24 * 30,
        dims: Some(2),
        seed: 100,
    });
    let target: Vec<f32> = series.target_series().into_vec();
    let periods = lttf::fft::top_k_periods(&target, 5);
    assert!(
        periods
            .iter()
            .any(|&p| (22..=26).contains(&p) || (166..=170).contains(&p)),
        "no daily/weekly period found in ECL: {periods:?}"
    );
    let _ = Tensor::zeros(&[1]);
}
