//! End-to-end tests of the serving subsystem: a real TCP server on an
//! ephemeral port, concurrent clients, bit-for-bit agreement with the
//! direct forward pass, deadline-based rejection, replicated dispatch,
//! hot reload under live traffic, and admission-control load shedding.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use lttf::conformer::ConformerConfig;
use lttf::data::StandardScaler;
use lttf::eval::TrainedModel;
use lttf::obs::JsonObj;
use lttf::serve::{
    protocol, serve, AdaptConfig, AdmissionConfig, BatchConfig, DriftConfig, LoadedModel, Policy,
    Registry, ServeConfig, SessionConfig,
};
use lttf::tensor::{Rng, Tensor};

fn test_model() -> LoadedModel {
    let cfg = ConformerConfig::tiny(3, 12, 6);
    let model = TrainedModel::from_conformer(&cfg, 42);
    let fit_on = Tensor::randn(&[128, 3], &mut Rng::seed(1))
        .mul_scalar(4.0)
        .add_scalar(-2.0);
    let scaler = StandardScaler::fit(&fit_on);
    LoadedModel::from_parts(model, cfg, scaler, "OT".to_string(), 2)
}

fn raw_window(model: &LoadedModel, seed: u64) -> Vec<f32> {
    Tensor::randn(&[model.window_len()], &mut Rng::seed(seed))
        .mul_scalar(3.0)
        .data()
        .to_vec()
}

fn request_line(id: u64, values: &[f32], deadline_ms: Option<u64>) -> String {
    let mut obj = JsonObj::new()
        .int("id", id)
        .nums("values", values.iter().copied())
        .int("t0", 1_700_000_000)
        .int("dt", 3600);
    if let Some(ms) = deadline_ms {
        obj = obj.int("deadline_ms", ms);
    }
    obj.finish()
}

/// Open a connection, send one line, read one line back.
fn ask(addr: SocketAddr, line: &str) -> (u64, Result<Vec<f32>, String>) {
    let (id, _, res) = ask_meta(addr, line);
    (id, res)
}

/// Like [`ask`], but also return the reply's generation stamp.
fn ask_meta(addr: SocketAddr, line: &str) -> (u64, Option<u64>, Result<Vec<f32>, String>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    let meta = protocol::parse_response_meta(resp.trim_end()).expect("well-formed response");
    (meta.id, meta.generation, meta.result)
}

#[test]
fn concurrent_clients_match_direct_forward_bit_for_bit() {
    let reference = test_model();
    let handle = serve(
        Registry::single("m", test_model()),
        "127.0.0.1:0",
        ServeConfig {
            batch: BatchConfig {
                max_batch: 4,
                max_wait_ms: 10,
                queue_cap: 64,
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = handle.addr();

    // Eight clients with distinct windows, concurrently, several rounds
    // each — enough overlap that the batcher actually forms multi-row
    // batches.
    let reference = Arc::new(reference);
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                for round in 0..3u64 {
                    let seed = 100 + c * 10 + round;
                    let raw = raw_window(&reference, seed);
                    let (id, res) = ask(addr, &request_line(seed, &raw, None));
                    assert_eq!(id, seed);
                    let got = res.expect("server answered with an error");
                    let want = reference
                        .forecast_one(&raw, 1_700_000_000, 3600)
                        .expect("direct forward");
                    // Bit-for-bit: same floats regardless of how the
                    // batcher grouped this request with others.
                    assert_eq!(got, want, "client {c} round {round} diverged");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    let summaries = handle.shutdown();
    assert_eq!(summaries.len(), 1);
    assert_eq!(summaries[0].1.count, 24, "all requests must be served");
    assert!(summaries[0].1.p99_ns >= summaries[0].1.p50_ns);
}

#[test]
fn replicated_dispatch_matches_single_engine_over_tcp() {
    // The same windows, forecast through 1-, 2-, and 4-replica servers
    // under both policies, must come back bit-identical to the direct
    // forward pass: replication must never change what is computed.
    let reference = test_model();
    let windows: Vec<Vec<f32>> = (0..6).map(|s| raw_window(&reference, 300 + s)).collect();
    let direct: Vec<Vec<f32>> = windows
        .iter()
        .map(|w| reference.forecast_one(w, 1_700_000_000, 3600).unwrap())
        .collect();

    for replicas in [1usize, 2, 4] {
        for policy in [Policy::RoundRobin, Policy::LeastQueueDepth] {
            let handle = serve(
                Registry::single("m", test_model()),
                "127.0.0.1:0",
                ServeConfig {
                    batch: BatchConfig {
                        max_batch: 4,
                        max_wait_ms: 2,
                        queue_cap: 64,
                    },
                    replicas,
                    policy,
                    seed: 11,
                    ..ServeConfig::default()
                },
            )
            .expect("bind");
            for (i, w) in windows.iter().enumerate() {
                let (id, res) = ask(handle.addr(), &request_line(i as u64, w, None));
                assert_eq!(id, i as u64);
                assert_eq!(
                    res.expect("served"),
                    direct[i],
                    "replicas={replicas} policy={policy:?} window {i} diverged"
                );
            }
            handle.shutdown();
        }
    }
}

#[test]
fn hot_reload_under_concurrent_traffic_drops_nothing() {
    // Live traffic across an atomic generation swap: every request must
    // be answered successfully (no drops, no errors), every reply must
    // carry exactly one generation from {1, 2}, and each connection must
    // see a non-decreasing generation sequence (the swap is atomic — no
    // going back, no mixing).
    let dir = std::env::temp_dir().join(format!(
        "lttf-reload-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("ckpt");
    let base = base.to_str().unwrap().to_string();

    let model = test_model();
    model.save(&base).expect("write checkpoint");
    let handle = serve(
        Registry::single("m", model),
        "127.0.0.1:0",
        ServeConfig {
            batch: BatchConfig {
                max_batch: 4,
                max_wait_ms: 2,
                queue_cap: 128,
            },
            replicas: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    const CLIENTS: u64 = 4;
    const ROUNDS: u64 = 25;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let reference = test_model();
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut gens = Vec::new();
                for round in 0..ROUNDS {
                    let raw = raw_window(&reference, 500 + c * 100 + round);
                    writeln!(writer, "{}", request_line(c * 1000 + round, &raw, None)).unwrap();
                    let mut resp = String::new();
                    reader.read_line(&mut resp).unwrap();
                    let meta =
                        protocol::parse_response_meta(resp.trim_end()).expect("parseable reply");
                    assert_eq!(meta.id, c * 1000 + round);
                    // Zero failed requests across the swap — the whole
                    // point of drain-after-swap plus front-end retry.
                    meta.result
                        .unwrap_or_else(|e| panic!("client {c} round {round} failed: {e}"));
                    gens.push(meta.generation.expect("every forecast is gen-stamped"));
                }
                gens
            })
        })
        .collect();

    // Fire the reload mid-traffic.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let reload = protocol::format_reload(9000, Some("m"), &base);
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{reload}").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    let (id, info) = protocol::parse_reload_response(resp.trim_end()).expect("reload reply");
    assert_eq!(id, 9000);
    let info = info.expect("reload succeeds");
    assert_eq!(info.generation, 2);
    assert_eq!(info.replicas, 2);

    let mut seen = std::collections::BTreeSet::new();
    for client in clients {
        let gens = client.join().expect("client thread");
        assert_eq!(gens.len(), ROUNDS as usize);
        // Per-connection generations never step backwards across the swap.
        for pair in gens.windows(2) {
            assert!(pair[0] <= pair[1], "generation went backwards: {gens:?}");
        }
        seen.extend(gens);
    }
    assert!(
        seen.iter().all(|g| *g == 1 || *g == 2),
        "unexpected generations: {seen:?}"
    );
    // The reload raced real traffic, so gen 2 must have served requests.
    assert!(seen.contains(&2), "post-swap traffic never reached gen 2");

    // After the dust settles the new generation owns the route.
    let reference = test_model();
    let raw = raw_window(&reference, 999);
    let (_, generation, res) = ask_meta(addr, &request_line(42, &raw, None));
    assert_eq!(generation, Some(2));
    // Same checkpoint bits on both generations ⇒ same forecast.
    assert_eq!(
        res.unwrap(),
        reference.forecast_one(&raw, 1_700_000_000, 3600).unwrap()
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_shedding_refuses_with_retry_hint_over_tcp() {
    // shed_depth 0: the watermark is always hit, so every forecast is
    // refused before touching the model — deterministic load shedding.
    let handle = serve(
        Registry::single("m", test_model()),
        "127.0.0.1:0",
        ServeConfig {
            admission: AdmissionConfig {
                shed_depth: Some(0),
                shed_retry_ms: 25,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let raw = raw_window(&test_model(), 17);

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{}", request_line(5, &raw, None)).unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    let meta = protocol::parse_response_meta(resp.trim_end()).expect("reply parses");
    assert_eq!(meta.id, 5);
    let err = meta.result.expect_err("shed, not served");
    assert!(err.contains("overloaded"), "unexpected error: {err}");
    assert_eq!(
        meta.retry_after_ms,
        Some(25),
        "shed refusals must carry the backoff hint"
    );

    handle.shutdown();
}

#[test]
fn past_deadline_request_is_rejected_not_served() {
    let handle = serve(
        Registry::single("m", test_model()),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("bind");
    let raw = raw_window(&test_model(), 7);
    // deadline_ms = 0: already expired when the batcher dequeues it.
    let (id, res) = ask(handle.addr(), &request_line(9, &raw, Some(0)));
    assert_eq!(id, 9);
    let err = res.expect_err("an expired request must not be served");
    assert!(err.contains("deadline"), "unexpected error: {err}");

    // The server stays healthy for later requests on the same port.
    let (_, res) = ask(handle.addr(), &request_line(10, &raw, None));
    res.expect("follow-up request served");

    let summaries = handle.shutdown();
    // Only the served request counts toward latency.
    assert_eq!(summaries[0].1.count, 1);
}

#[test]
fn malformed_and_oversized_requests_get_error_responses() {
    let handle = serve(
        Registry::single("m", test_model()),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("bind");
    let addr = handle.addr();

    let (_, res) = ask(addr, "this is not json");
    assert!(res.unwrap_err().contains("bad request"));

    // Wrong window length: rejected with the expected size in the message.
    let (_, res) = ask(addr, &request_line(1, &[1.0, 2.0], None));
    assert!(res.unwrap_err().contains("expected 36 values"));

    // Unknown model name.
    let line = JsonObj::new()
        .int("id", 2)
        .str("model", "missing")
        .nums("values", raw_window(&test_model(), 1).iter().copied())
        .int("t0", 0)
        .finish();
    let (_, res) = ask(addr, &line);
    assert!(res.unwrap_err().contains("unknown model"));

    handle.shutdown();
}

#[test]
fn metrics_endpoint_and_traced_request_over_tcp() {
    let model = test_model();
    let raw = raw_window(&model, 31);
    let handle = serve(
        Registry::single("m", model),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("bind");
    let addr = handle.addr();

    // Serve one forecast with event tracing on: the request must appear
    // in the export as a connected async slice.
    lttf::obs::trace::set_enabled(true);
    let (_, res) = ask(addr, &request_line(1, &raw, None));
    res.expect("forecast while traced");
    lttf::obs::trace::set_enabled(false);
    let export = lttf::obs::trace::export_chrome();
    let summary = lttf::obs::trace::validate_chrome(&export.json).expect("trace validates");
    assert!(summary.async_slices >= 1, "{}", export.json);
    assert!(export.json.contains("\"name\":\"serve.req\""), "{}", export.json);

    // The metrics command answers with a Prometheus-style exposition
    // that already counts the request above.
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{{\"id\":2,\"cmd\":\"metrics\"}}").unwrap();
    writer.flush().unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    let (id, text) = protocol::parse_metrics_response(resp.trim_end()).expect("metrics response");
    assert_eq!(id, 2);
    let text = text.expect("metrics ok");
    assert!(text.contains("lttf_up 1\n"), "{text}");
    assert!(
        text.contains("lttf_serve_requests_served_total{model=\"m\"} 1\n"),
        "{text}"
    );
    assert!(
        text.contains("lttf_serve_latency_seconds{model=\"m\",gen=\"1\",quantile=\"0.99\"}"),
        "{text}"
    );
    assert!(
        text.contains("lttf_serve_latency_hist_seconds_bucket{model=\"m\",le=\"+Inf\"} 1\n"),
        "{text}"
    );
    assert!(text.contains("lttf_health_diverged"), "{text}");
    // The live exposition must satisfy the same strict validator CI runs
    // (`metrics_check`): histogram families complete and ordered, no
    // duplicate series, parseable sample lines throughout.
    lttf::obs::metrics::validate(&text).expect("exposition validates");

    handle.shutdown();
}

/// Ask the `stats` command on a fresh connection.
fn ask_stats(addr: SocketAddr, id: u64) -> protocol::StatsReport {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{}", protocol::format_stats_request(id, None)).unwrap();
    writer.flush().unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    let (got, report) = protocol::parse_stats_response(resp.trim_end()).expect("stats parses");
    assert_eq!(got, id);
    report.expect("stats ok")
}

/// Fetch the metrics exposition on a fresh connection.
fn ask_metrics(addr: SocketAddr, id: u64) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{{\"id\":{id},\"cmd\":\"metrics\"}}").unwrap();
    writer.flush().unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    let (_, text) = protocol::parse_metrics_response(resp.trim_end()).expect("metrics parses");
    text.expect("metrics ok")
}

#[test]
fn drift_monitor_alerts_on_shifted_traffic_only() {
    use lttf::obs::{FeatureStats, ReferenceProfile};
    use lttf::serve::DriftConfig;

    // Reference matching raw_window's distribution: randn * 3 per
    // feature — mean 0, std 3, symmetric quantiles.
    let profile = ReferenceProfile {
        features: vec![
            FeatureStats { mean: 0.0, std: 3.0, q10: -3.84, q50: 0.0, q90: 3.84 };
            3
        ],
        count: 1000,
    };
    let model = test_model().with_profile(profile);
    let handle = serve(
        Registry::single("m", model),
        "127.0.0.1:0",
        ServeConfig {
            // Each request contributes lx = 12 time steps per feature;
            // two requests are already scoreable.
            drift: DriftConfig { min_count: 24, ..DriftConfig::default() },
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let reference = test_model();

    // Phase 1: in-distribution traffic must NOT trip the alert.
    for i in 0..4u64 {
        let raw = raw_window(&reference, 700 + i);
        let (_, res) = ask(addr, &request_line(i, &raw, None));
        res.expect("served");
    }
    let stats = ask_stats(addr, 50);
    assert!(stats.drift_available, "profile-armed model must report available");
    assert!(!stats.drift_alert, "in-distribution traffic alerted: {stats:?}");
    assert_eq!(stats.drift_scores.len(), 3);
    assert!(
        stats.drift_scores.iter().all(|&s| s < 1.0),
        "scores must stay below threshold: {stats:?}"
    );
    let text = ask_metrics(addr, 51);
    assert!(text.contains("lttf_drift_available{model=\"m\"} 1\n"), "{text}");
    assert!(text.contains("lttf_drift_alert{model=\"m\"} 0\n"), "{text}");

    // Phase 2: shift every value by +5 training stds — the alert must
    // fire within the same evaluation window.
    for i in 0..8u64 {
        let mut raw = raw_window(&reference, 800 + i);
        for v in &mut raw {
            *v += 15.0;
        }
        let (_, res) = ask(addr, &request_line(100 + i, &raw, None));
        res.expect("shifted traffic is still served");
    }
    let stats = ask_stats(addr, 60);
    assert!(stats.drift_alert, "5-sigma shift must alert: {stats:?}");
    assert!(
        stats.drift_scores.iter().any(|&s| s >= 1.0),
        "at least one feature must cross the threshold: {stats:?}"
    );
    let text = ask_metrics(addr, 61);
    assert!(text.contains("lttf_drift_alert{model=\"m\"} 1\n"), "{text}");
    assert!(text.contains("lttf_drift_score{model=\"m\",feature=\"0\"}"), "{text}");
    lttf::obs::metrics::validate(&text).expect("exposition validates with drift series");

    handle.shutdown();
}

#[test]
fn stats_command_reports_windowed_latency_and_flows() {
    let handle = serve(
        Registry::single("m", test_model()),
        "127.0.0.1:0",
        ServeConfig {
            admission: AdmissionConfig {
                shed_depth: Some(0), // refuse everything: exercise the shed flow
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let raw = raw_window(&test_model(), 23);
    let (_, res) = ask(handle.addr(), &request_line(1, &raw, None));
    res.expect_err("shed_depth 0 refuses forecasts");
    let stats = ask_stats(handle.addr(), 2);
    assert_eq!(stats.model, "m");
    assert_eq!(stats.served_total, 0, "shed traffic never reaches a replica");
    assert!(
        stats.shed_per_sec > 0.0,
        "windowed shed rate must see the refusal: {stats:?}"
    );
    assert_eq!(stats.rejected_per_sec, 0.0);
    handle.shutdown();

    // A permissive server serves, and the windowed latency view fills in.
    let handle = serve(
        Registry::single("m", test_model()),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("bind");
    for i in 0..3u64 {
        let (_, res) = ask(handle.addr(), &request_line(i, &raw, None));
        res.expect("served");
    }
    let stats = ask_stats(handle.addr(), 9);
    assert_eq!(stats.served_total, 3);
    assert_eq!(stats.window_count, 3, "all three land in the trailing window");
    assert!(stats.p50_ms > 0.0 && stats.p50_ms <= stats.p99_ms, "{stats:?}");
    assert!(
        stats.queue_p50_ms <= stats.p50_ms,
        "queue wait is a component of total latency: {stats:?}"
    );
    assert!(stats.service_p50_ms > 0.0, "{stats:?}");
    assert_eq!(stats.shed_per_sec, 0.0);
    handle.shutdown();
}

#[test]
fn profileless_checkpoint_serves_with_drift_unavailable() {
    // Checkpoints from before the drift profile existed must keep
    // serving; the monitor reports unavailable instead of guessing.
    let dir = std::env::temp_dir().join(format!(
        "lttf-noprofile-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("ckpt");
    let base = base.to_str().unwrap().to_string();

    let model = test_model(); // from_parts: no profile attached
    model.save(&base).expect("write checkpoint");
    let loaded = LoadedModel::load(&base).expect("load plain checkpoint");
    assert!(loaded.profile().is_none(), "no profile must round-trip as None");

    let handle = serve(
        Registry::single("m", loaded),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("bind");
    let reference = test_model();
    let raw = raw_window(&reference, 19);
    let (_, res) = ask(handle.addr(), &request_line(1, &raw, None));
    assert_eq!(
        res.expect("profile-less checkpoints must keep serving"),
        reference.forecast_one(&raw, 1_700_000_000, 3600).unwrap()
    );
    let stats = ask_stats(handle.addr(), 2);
    assert!(!stats.drift_available);
    assert!(!stats.drift_alert);
    assert!(stats.drift_scores.is_empty());
    let text = ask_metrics(handle.addr(), 3);
    assert!(text.contains("lttf_drift_available{model=\"m\"} 0\n"), "{text}");
    lttf::obs::metrics::validate(&text).expect("exposition validates without a profile");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Streaming sessions and online adaptation
// ---------------------------------------------------------------------------

/// A persistent connection speaking the session protocol.
struct SessionClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl SessionClient {
    fn connect(addr: SocketAddr) -> SessionClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        SessionClient {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn ask(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").unwrap();
        let mut resp = String::new();
        self.reader.read_line(&mut resp).unwrap();
        resp.trim_end().to_string()
    }

    fn open(&mut self, id: u64) -> (u64, usize) {
        let resp = self.ask(&protocol::format_open(id, None, 1_700_000_000, 3600));
        let (got, res) = protocol::parse_open_response(&resp).expect("open parses");
        assert_eq!(got, id);
        res.expect("open refused")
    }

    fn push(&mut self, id: u64, session: u64, row: &[f32]) -> Result<protocol::PushReply, String> {
        let resp = self.ask(&protocol::format_push(id, session, row));
        let (got, res) = protocol::parse_push_response(&resp).expect("push parses");
        assert_eq!(got, id);
        res
    }

    fn close(&mut self, id: u64, session: u64) -> (u64, u64) {
        let resp = self.ask(&protocol::format_close(id, session));
        let (got, res) = protocol::parse_close_response(&resp).expect("close parses");
        assert_eq!(got, id);
        res.expect("close refused")
    }
}

/// `n` rows of 3 features drawn from the test model's raw distribution.
fn session_rows(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let t = Tensor::randn(&[n, 3], &mut Rng::seed(seed)).mul_scalar(3.0);
    (0..n)
        .map(|r| (0..3).map(|c| t.at(&[r, c])).collect())
        .collect()
}

/// Poll `cond` until it holds or `budget_ms` elapses.
fn wait_for(mut cond: impl FnMut() -> bool, budget_ms: u64, what: &str) {
    let t0 = std::time::Instant::now();
    while !cond() {
        assert!(
            t0.elapsed().as_millis() < budget_ms as u128,
            "timed out waiting for {what}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// The drift reference matching `session_rows` (randn * 3 per feature).
fn matched_profile() -> lttf::obs::ReferenceProfile {
    lttf::obs::ReferenceProfile {
        features: vec![
            lttf::obs::FeatureStats {
                mean: 0.0,
                std: 3.0,
                q10: -3.84,
                q50: 0.0,
                q90: 3.84
            };
            3
        ],
        count: 1000,
    }
}

#[test]
fn session_push_forecasts_match_one_shot_bit_for_bit() {
    // With adaptation off, a session push that completes the window must
    // answer with exactly the floats a one-shot forecast of the same
    // window would produce — streaming is a protocol change, not a
    // numerics change.
    let reference = test_model();
    let handle = serve(
        Registry::single("m", test_model()),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("bind");
    let mut client = SessionClient::connect(handle.addr());
    let (session, window_rows) = client.open(1);
    assert_eq!(window_rows, 12, "tiny(3, 12, 6) keeps a 12-row window");

    let rows = session_rows(20, 4242);
    for (t, row) in rows.iter().enumerate() {
        let reply = client.push(10 + t as u64, session, row).expect("push served");
        let pushed = t + 1;
        if pushed < window_rows {
            match reply {
                protocol::PushReply::Pending(p) => assert_eq!(p, window_rows - pushed),
                other => panic!("expected pending at row {t}, got {other:?}"),
            }
        } else {
            let protocol::PushReply::Forecast {
                generation,
                adapted,
                forecast,
            } = reply
            else {
                panic!("expected a forecast at row {t}");
            };
            assert_eq!(generation, 1);
            assert!(!adapted, "adaptation is off");
            let window: Vec<f32> = rows[pushed - window_rows..pushed].concat();
            let slice_t0 = 1_700_000_000 + 3600 * (pushed - window_rows) as i64;
            let want = reference
                .forecast_one(&window, slice_t0, 3600)
                .expect("direct forward");
            assert_eq!(forecast, want, "row {t} diverged from the one-shot path");
        }
    }
    let (pushed, forecasts) = client.close(99, session);
    assert_eq!(pushed, 20);
    assert_eq!(forecasts, 9, "every push from row 12 on forecasts");
    handle.shutdown();
}

#[test]
fn allocation_accounting_sees_session_buffers_grow_and_shrink() {
    // End-to-end check of the instrumented allocator against real
    // workload memory: session ring buffers are the dominant per-client
    // state in the server, so buffering rows into many sessions must
    // grow the process's live-byte count by at least the buffered
    // payload, and the TTL sweep must hand most of it back. Counters are
    // process-global, so every comparison leaves headroom for the other
    // tests running in this binary.
    if lttf::obs::alloc::snapshot().allocs == 0 {
        // Telemetry compiled out: no #[global_allocator] is installed
        // and every counter reads zero — nothing to measure.
        return;
    }
    // lx=2048 windows of 8 features: each session buffers up to 64 KiB
    // of f32 rows, far above cross-test allocator noise.
    let cfg = ConformerConfig::tiny(8, 2048, 8);
    let model = TrainedModel::from_conformer(&cfg, 9);
    let fit_on = Tensor::randn(&[64, 8], &mut Rng::seed(10)).mul_scalar(2.0);
    let scaler = StandardScaler::fit(&fit_on);
    let loaded = LoadedModel::from_parts(model, cfg, scaler, "OT".to_string(), 1);
    let handle = serve(
        Registry::single("m", loaded),
        "127.0.0.1:0",
        ServeConfig {
            session: SessionConfig {
                max_sessions: 64,
                ttl_ms: 1_200,
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = SessionClient::connect(handle.addr());

    // 2040 rows per session stays one row short of the 2048-row window,
    // so nothing ever reaches the forward pass — this test is about the
    // buffers, not the model.
    const SESSIONS: usize = 32;
    const ROWS: usize = 2_040;
    const PER_SESSION_FLOOR: u64 = (ROWS * 8 * 4) as u64; // f32 payload actually buffered
    let payload: Vec<f32> = Tensor::randn(&[ROWS * 8], &mut Rng::seed(11))
        .data()
        .to_vec();
    let live0 = lttf::obs::alloc::live_bytes();
    let mut last = live0;
    let mut handles = Vec::new();
    for batch in 0..4u64 {
        for i in 0..(SESSIONS as u64 / 4) {
            let id = batch * 100 + i + 1;
            let (session, _) = client.open(id);
            handles.push(session);
            let reply = client.push(1_000 + id, session, &payload).expect("push buffered");
            assert!(
                matches!(reply, protocol::PushReply::Pending(_)),
                "short-of-window push must not forecast"
            );
        }
        // Live bytes must climb batch over batch while the buffers pile
        // up — half the payload floor leaves room for concurrent churn.
        let now = lttf::obs::alloc::live_bytes();
        assert!(
            now >= last + (SESSIONS as u64 / 4) * PER_SESSION_FLOOR / 2,
            "live bytes did not grow with session buffers: batch {batch}, {last} -> {now}"
        );
        last = now;
    }
    let grown = lttf::obs::alloc::live_bytes();
    assert!(
        grown >= live0 + SESSIONS as u64 * PER_SESSION_FLOOR / 2,
        "session buffers invisible to the allocator: {live0} -> {grown}"
    );

    // Let every session idle past the TTL, then force a sweep with a
    // table operation: a push against a known-but-idle id runs the sweep
    // before the lookup, so the reply itself proves the eviction.
    std::thread::sleep(std::time::Duration::from_millis(1_600));
    let err = client
        .push(9_999, handles[0], &payload[..8])
        .expect_err("an idle session past its TTL must be gone");
    assert!(err.contains("unknown session"), "unexpected error: {err}");
    let stats = ask_stats(handle.addr(), 10_000);
    assert_eq!(stats.sessions_open, 0, "sweep left sessions behind");
    assert!(stats.session_evictions >= SESSIONS as u64, "{stats:?}");
    let after = lttf::obs::alloc::live_bytes();
    assert!(
        after <= grown.saturating_sub(SESSIONS as u64 * PER_SESSION_FLOOR / 2),
        "TTL sweep reclaimed too little: {grown} -> {after}"
    );
    handle.shutdown();
}

#[test]
fn session_ttl_evicts_idle_sessions_over_tcp() {
    let handle = serve(
        Registry::single("m", test_model()),
        "127.0.0.1:0",
        ServeConfig {
            session: SessionConfig {
                max_sessions: 4,
                ttl_ms: 60,
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = SessionClient::connect(handle.addr());
    let (session, _) = client.open(1);
    client
        .push(2, session, &[1.0, 2.0, 3.0])
        .expect("fresh session accepts pushes");
    std::thread::sleep(std::time::Duration::from_millis(150));
    let err = client
        .push(3, session, &[1.0, 2.0, 3.0])
        .expect_err("an idle session past its TTL must be gone");
    assert!(err.contains("unknown session"), "unexpected error: {err}");
    let stats = ask_stats(handle.addr(), 4);
    assert_eq!(stats.sessions_open, 0);
    assert!(stats.session_evictions >= 1, "{stats:?}");
    assert_eq!(stats.adapt_state, "off");
    handle.shutdown();
}

#[test]
fn sessions_survive_hot_reload() {
    // A session binds a model *name*, not a generation: reloading the
    // checkpoint mid-session must not invalidate the session, and the
    // next push is served by the new generation.
    let dir = std::env::temp_dir().join(format!(
        "lttf-session-reload-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("ckpt");
    let base = base.to_str().unwrap().to_string();
    let model = test_model();
    model.save(&base).expect("write checkpoint");

    let handle = serve(
        Registry::single("m", model),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("bind");
    let addr = handle.addr();
    let mut client = SessionClient::connect(addr);
    let (session, window_rows) = client.open(1);

    let rows = session_rows(13, 555);
    for (t, row) in rows[..12].iter().enumerate() {
        let reply = client.push(10 + t as u64, session, row).expect("push served");
        if t + 1 == window_rows {
            let protocol::PushReply::Forecast { generation, .. } = reply else {
                panic!("full window must forecast");
            };
            assert_eq!(generation, 1);
        }
    }

    // Reload the same checkpoint: generation 2, same parameter bits.
    let reload = SessionClient::connect(addr).ask(&protocol::format_reload(9000, Some("m"), &base));
    let (_, info) = protocol::parse_reload_response(&reload).expect("reload reply");
    assert_eq!(info.expect("reload succeeds").generation, 2);
    let reply = client.push(100, session, &rows[12]).expect("push after reload");
    let protocol::PushReply::Forecast {
        generation,
        adapted,
        forecast,
    } = reply
    else {
        panic!("the session must keep forecasting across the reload");
    };
    assert_eq!(generation, 2, "the push after the swap lands on the new generation");
    assert!(!adapted, "a checkpoint reload is not an adapter publish");
    let window: Vec<f32> = rows[13 - window_rows..13].concat();
    let slice_t0 = 1_700_000_000 + 3600 * (13 - window_rows) as i64;
    let reference = test_model();
    assert_eq!(
        forecast,
        reference.forecast_one(&window, slice_t0, 3600).unwrap(),
        "same checkpoint bits on both generations must agree"
    );
    let (pushed, forecasts) = client.close(200, session);
    assert_eq!((pushed, forecasts), (13, 2));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_nan_adapt_round_rolls_back_and_leaves_forecasts_bit_identical() {
    // Fault injection: every adapter round ends with a NaN written into
    // the tuned copy. The health gate must catch it, count a rollback,
    // publish nothing — and the live model must keep forecasting the
    // exact same floats as an untouched reference model.
    let handle = serve(
        Registry::single("m", test_model().with_profile(matched_profile())),
        "127.0.0.1:0",
        ServeConfig {
            drift: DriftConfig {
                min_count: 8,
                ..DriftConfig::default()
            },
            adapt: AdaptConfig {
                enabled: true,
                inject_nan: true,
                interval_ms: 10,
                min_examples: 2,
                steps: 1,
                batch: 2,
                ..AdaptConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let reference = test_model();
    let mut client = SessionClient::connect(addr);
    let (session, _) = client.open(1);

    // 5σ-shifted traffic: trips the drift monitor and feeds the adapter
    // real out-of-distribution examples (keep = lx + ly = 18 rows).
    let rows: Vec<Vec<f32>> = session_rows(30, 77)
        .into_iter()
        .map(|r| r.into_iter().map(|v| v + 15.0).collect())
        .collect();
    for (t, row) in rows.iter().enumerate() {
        client.push(10 + t as u64, session, row).expect("push served");
    }
    wait_for(
        || ask_stats(addr, 500).adapt_rollbacks >= 1,
        10_000,
        "a watchdog rollback",
    );
    let stats = ask_stats(addr, 501);
    assert_eq!(
        stats.adapt_publishes, 0,
        "a poisoned round must never publish: {stats:?}"
    );

    let reply = client.push(900, session, &rows[0]).expect("post-rollback push");
    let protocol::PushReply::Forecast {
        generation,
        adapted,
        forecast,
    } = reply
    else {
        panic!("post-rollback push must still forecast");
    };
    assert_eq!(generation, 1, "no adapted generation may exist after rollback");
    assert!(!adapted);
    // 31 rows pushed in total; the window is the trailing 12.
    let mut all = rows.clone();
    all.push(rows[0].clone());
    let window: Vec<f32> = all[all.len() - 12..].concat();
    let slice_t0 = 1_700_000_000 + 3600 * (all.len() - 12) as i64;
    assert_eq!(
        forecast,
        reference.forecast_one(&window, slice_t0, 3600).unwrap(),
        "serving params must be bit-identical to the pre-adapt snapshot"
    );
    handle.shutdown();
}

#[test]
fn drift_triggered_adaptation_publishes_on_shift_and_stays_quiet_in_distribution() {
    let handle = serve(
        Registry::single("m", test_model().with_profile(matched_profile())),
        "127.0.0.1:0",
        ServeConfig {
            drift: DriftConfig {
                min_count: 8,
                ..DriftConfig::default()
            },
            adapt: AdaptConfig {
                enabled: true,
                interval_ms: 10,
                min_examples: 2,
                steps: 2,
                batch: 2,
                ..AdaptConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let mut client = SessionClient::connect(addr);
    let (session, _) = client.open(1);

    // Phase 1: in-distribution traffic. Examples accumulate, but the
    // drift monitor never alerts, so the adapter must not fire.
    for (t, row) in session_rows(24, 88).iter().enumerate() {
        client.push(10 + t as u64, session, row).expect("push served");
    }
    std::thread::sleep(std::time::Duration::from_millis(200));
    let stats = ask_stats(addr, 300);
    assert!(stats.adapt_enabled);
    assert_eq!(
        stats.adapt_publishes, 0,
        "in-distribution traffic must not trigger adaptation: {stats:?}"
    );
    assert_eq!(stats.adapt_rollbacks, 0, "{stats:?}");

    // Phase 2: shift every value by +5 training stds. The monitor
    // alerts, the adapter fine-tunes and publishes, and push replies
    // start carrying the adapted generation.
    let shifted: Vec<Vec<f32>> = session_rows(16, 89)
        .into_iter()
        .map(|r| r.into_iter().map(|v| v + 15.0).collect())
        .collect();
    for (t, row) in shifted.iter().enumerate() {
        client.push(100 + t as u64, session, row).expect("push served");
    }
    wait_for(
        || ask_stats(addr, 400).adapt_publishes >= 1,
        15_000,
        "a drift-triggered publish",
    );

    let mut saw_adapted = false;
    for i in 0..200u64 {
        let reply = client
            .push(1000 + i, session, &shifted[i as usize % shifted.len()])
            .expect("push served");
        if let protocol::PushReply::Forecast {
            generation, adapted, ..
        } = reply
        {
            if adapted && generation >= 2 {
                saw_adapted = true;
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(saw_adapted, "push replies never reached an adapted generation");
    handle.shutdown();
}
