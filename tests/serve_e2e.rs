//! End-to-end tests of the serving subsystem: a real TCP server on an
//! ephemeral port, concurrent clients, bit-for-bit agreement with the
//! direct forward pass, and deadline-based rejection.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use lttf::conformer::ConformerConfig;
use lttf::data::StandardScaler;
use lttf::eval::TrainedModel;
use lttf::obs::JsonObj;
use lttf::serve::{protocol, serve, BatchConfig, LoadedModel, Registry};
use lttf::tensor::{Rng, Tensor};

fn test_model() -> LoadedModel {
    let cfg = ConformerConfig::tiny(3, 12, 6);
    let model = TrainedModel::from_conformer(&cfg, 42);
    let fit_on = Tensor::randn(&[128, 3], &mut Rng::seed(1))
        .mul_scalar(4.0)
        .add_scalar(-2.0);
    let scaler = StandardScaler::fit(&fit_on);
    LoadedModel::from_parts(model, cfg, scaler, "OT".to_string(), 2)
}

fn raw_window(model: &LoadedModel, seed: u64) -> Vec<f32> {
    Tensor::randn(&[model.window_len()], &mut Rng::seed(seed))
        .mul_scalar(3.0)
        .data()
        .to_vec()
}

fn request_line(id: u64, values: &[f32], deadline_ms: Option<u64>) -> String {
    let mut obj = JsonObj::new()
        .int("id", id)
        .nums("values", values.iter().copied())
        .int("t0", 1_700_000_000)
        .int("dt", 3600);
    if let Some(ms) = deadline_ms {
        obj = obj.int("deadline_ms", ms);
    }
    obj.finish()
}

/// Open a connection, send one line, read one line back.
fn ask(addr: SocketAddr, line: &str) -> (u64, Result<Vec<f32>, String>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    protocol::parse_response(resp.trim_end()).expect("well-formed response")
}

#[test]
fn concurrent_clients_match_direct_forward_bit_for_bit() {
    let reference = test_model();
    let handle = serve(
        Registry::single("m", test_model()),
        "127.0.0.1:0",
        BatchConfig {
            max_batch: 4,
            max_wait_ms: 10,
            queue_cap: 64,
        },
    )
    .expect("bind ephemeral port");
    let addr = handle.addr();

    // Eight clients with distinct windows, concurrently, several rounds
    // each — enough overlap that the batcher actually forms multi-row
    // batches.
    let reference = Arc::new(reference);
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                for round in 0..3u64 {
                    let seed = 100 + c * 10 + round;
                    let raw = raw_window(&reference, seed);
                    let (id, res) = ask(addr, &request_line(seed, &raw, None));
                    assert_eq!(id, seed);
                    let got = res.expect("server answered with an error");
                    let want = reference
                        .forecast_one(&raw, 1_700_000_000, 3600)
                        .expect("direct forward");
                    // Bit-for-bit: same floats regardless of how the
                    // batcher grouped this request with others.
                    assert_eq!(got, want, "client {c} round {round} diverged");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    let summaries = handle.shutdown();
    assert_eq!(summaries.len(), 1);
    assert_eq!(summaries[0].1.count, 24, "all requests must be served");
    assert!(summaries[0].1.p99_ns >= summaries[0].1.p50_ns);
}

#[test]
fn past_deadline_request_is_rejected_not_served() {
    let handle = serve(
        Registry::single("m", test_model()),
        "127.0.0.1:0",
        BatchConfig::default(),
    )
    .expect("bind");
    let raw = raw_window(&test_model(), 7);
    // deadline_ms = 0: already expired when the batcher dequeues it.
    let (id, res) = ask(handle.addr(), &request_line(9, &raw, Some(0)));
    assert_eq!(id, 9);
    let err = res.expect_err("an expired request must not be served");
    assert!(err.contains("deadline"), "unexpected error: {err}");

    // The server stays healthy for later requests on the same port.
    let (_, res) = ask(handle.addr(), &request_line(10, &raw, None));
    res.expect("follow-up request served");

    let summaries = handle.shutdown();
    // Only the served request counts toward latency.
    assert_eq!(summaries[0].1.count, 1);
}

#[test]
fn malformed_and_oversized_requests_get_error_responses() {
    let handle = serve(
        Registry::single("m", test_model()),
        "127.0.0.1:0",
        BatchConfig::default(),
    )
    .expect("bind");
    let addr = handle.addr();

    let (_, res) = ask(addr, "this is not json");
    assert!(res.unwrap_err().contains("bad request"));

    // Wrong window length: rejected with the expected size in the message.
    let (_, res) = ask(addr, &request_line(1, &[1.0, 2.0], None));
    assert!(res.unwrap_err().contains("expected 36 values"));

    // Unknown model name.
    let line = JsonObj::new()
        .int("id", 2)
        .str("model", "missing")
        .nums("values", raw_window(&test_model(), 1).iter().copied())
        .int("t0", 0)
        .finish();
    let (_, res) = ask(addr, &line);
    assert!(res.unwrap_err().contains("unknown model"));

    handle.shutdown();
}

#[test]
fn metrics_endpoint_and_traced_request_over_tcp() {
    let model = test_model();
    let raw = raw_window(&model, 31);
    let handle = serve(
        Registry::single("m", model),
        "127.0.0.1:0",
        BatchConfig::default(),
    )
    .expect("bind");
    let addr = handle.addr();

    // Serve one forecast with event tracing on: the request must appear
    // in the export as a connected async slice.
    lttf::obs::trace::set_enabled(true);
    let (_, res) = ask(addr, &request_line(1, &raw, None));
    res.expect("forecast while traced");
    lttf::obs::trace::set_enabled(false);
    let export = lttf::obs::trace::export_chrome();
    let summary = lttf::obs::trace::validate_chrome(&export.json).expect("trace validates");
    assert!(summary.async_slices >= 1, "{}", export.json);
    assert!(export.json.contains("\"name\":\"serve.req\""), "{}", export.json);

    // The metrics command answers with a Prometheus-style exposition
    // that already counts the request above.
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{{\"id\":2,\"cmd\":\"metrics\"}}").unwrap();
    writer.flush().unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    let (id, text) = protocol::parse_metrics_response(resp.trim_end()).expect("metrics response");
    assert_eq!(id, 2);
    let text = text.expect("metrics ok");
    assert!(text.contains("lttf_up 1\n"), "{text}");
    assert!(
        text.contains("lttf_serve_requests_served_total{model=\"m\"} 1\n"),
        "{text}"
    );
    assert!(
        text.contains("lttf_serve_latency_seconds{model=\"m\",quantile=\"0.99\"}"),
        "{text}"
    );
    assert!(text.contains("lttf_health_diverged"), "{text}");

    handle.shutdown();
}
