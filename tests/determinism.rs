//! Thread-count determinism suite: every parallel kernel must produce
//! bit-identical bytes whether it runs on 1, 4, 8, or the default number
//! of threads.
//!
//! This is the load-bearing guarantee of `lttf-parallel`'s static-chunking
//! design — reproducibility of training runs cannot depend on the machine's
//! core count. Each case sweeps `set_threads_override` and compares raw
//! f32 bit patterns, not approximate values.
//!
//! Since the SIMD microkernels landed, the contract is per kernel *backend*
//! (DESIGN.md §8): scalar and AVX2+FMA may differ in the last ulp, but each
//! backend alone must stay bit-identical across every thread count. The
//! `*_on_both_simd_backends` cases pin each backend in turn via
//! `set_simd_override` and re-run the thread sweep, and the lane-parallel
//! binary ops (`add`/`sub`/`mul`/`div`) are additionally asserted
//! bit-identical *across* backends.

use lttf::nn::attention::{window_global_backward, window_global_forward};
use lttf::tensor::simd::set_simd_override;
use lttf::tensor::{Rng, Tensor};
use lttf_parallel::set_threads_override;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The override is process-global, so cases that sweep it must not
/// interleave with each other.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Thread counts swept by every case: serial, oversubscribed, and default.
const SWEEP: [Option<usize>; 3] = [Some(4), Some(8), None];

/// Run `f` at 1 thread, then at each sweep point, asserting the output
/// bytes never change.
fn assert_bit_identical(label: &str, f: impl Fn() -> Vec<Tensor>) {
    set_threads_override(Some(1));
    let reference = f();
    for &threads in &SWEEP {
        set_threads_override(threads);
        let got = f();
        set_threads_override(None);
        assert_eq!(reference.len(), got.len());
        for (ti, (a, b)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(a.shape(), b.shape(), "{label}: shape drift at output {ti}");
            for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{label}: bit mismatch at output {ti}, element {i} \
                     ({x} vs {y}) with threads={threads:?}"
                );
            }
        }
    }
}

#[test]
fn matmul_2d_is_thread_count_invariant() {
    let _g = exclusive();
    let mut rng = Rng::seed(101);
    let a = Tensor::randn(&[128, 128], &mut rng);
    let b = Tensor::randn(&[128, 128], &mut rng);
    assert_bit_identical("matmul_2d", || vec![a.matmul(&b)]);
}

#[test]
fn batched_matmul_is_thread_count_invariant() {
    let _g = exclusive();
    let mut rng = Rng::seed(102);
    let a = Tensor::randn(&[16, 48, 32], &mut rng);
    let b = Tensor::randn(&[16, 32, 48], &mut rng);
    let shared = Tensor::randn(&[32, 48], &mut rng);
    assert_bit_identical("matmul_3d", || vec![a.matmul(&b), a.matmul(&shared)]);
}

#[test]
fn conv1d_is_thread_count_invariant() {
    let _g = exclusive();
    let mut rng = Rng::seed(103);
    let x = Tensor::randn(&[8, 16, 96], &mut rng);
    let w = Tensor::randn(&[16, 16, 3], &mut rng);
    let bias = Tensor::randn(&[16], &mut rng);
    assert_bit_identical("conv1d", || vec![x.conv1d(&w, Some(&bias), 1, 1)]);
    let go = Tensor::randn(&[8, 16, 96], &mut rng);
    assert_bit_identical("conv1d_backward_input", || {
        vec![Tensor::conv1d_backward_input(&go, &w, &[8, 16, 96], 1, 1)]
    });
}

#[test]
fn window_attention_is_thread_count_invariant() {
    let _g = exclusive();
    let mut rng = Rng::seed(104);
    let q = Tensor::randn(&[8, 64, 16], &mut rng);
    let k = Tensor::randn(&[8, 64, 16], &mut rng);
    let v = Tensor::randn(&[8, 64, 16], &mut rng);
    assert_bit_identical("window_forward", || {
        vec![window_global_forward(&q, &k, &v, 8, 2)]
    });
    let gout = Tensor::randn(&[8, 64, 16], &mut rng);
    assert_bit_identical("window_backward", || {
        window_global_backward(&q, &k, &v, &gout, 8, 2)
    });
}

#[test]
fn reductions_and_maps_are_thread_count_invariant() {
    let _g = exclusive();
    let mut rng = Rng::seed(105);
    let big = Tensor::randn(&[300_000], &mut rng);
    let other = Tensor::randn(&[300_000], &mut rng);
    assert_bit_identical("sum_dot_map_zip", || {
        vec![
            Tensor::from_vec(vec![big.sum()], &[1]),
            Tensor::from_vec(vec![big.dot(&other)], &[1]),
            big.exp(),
            big.mul(&other),
        ]
    });
    let wide = Tensor::randn(&[64, 128, 32], &mut rng);
    assert_bit_identical("axis_reductions_moving_avg", || {
        vec![
            wide.sum_axis(1),
            wide.mean_axis_keepdim(2),
            wide.moving_avg(1, 13),
        ]
    });
}

/// Every dispatched kernel, swept across thread counts with each SIMD
/// backend pinned in turn. Shapes deliberately hit the gemm edge cases
/// (m % MR != 0, k > KC forces the packed-panel path).
#[test]
fn kernels_are_thread_count_invariant_on_both_simd_backends() {
    let _g = exclusive();
    let mut rng = Rng::seed(106);
    let a = Tensor::randn(&[66, 300], &mut rng);
    let b = Tensor::randn(&[300, 48], &mut rng);
    let x = Tensor::randn(&[4, 8, 96], &mut rng);
    let w = Tensor::randn(&[8, 8, 3], &mut rng);
    let go = Tensor::randn(&[4, 8, 96], &mut rng);
    let big = Tensor::randn(&[200_000], &mut rng);
    let other = Tensor::randn(&[200_000], &mut rng);
    let gx = Tensor::randn(&[2, 12, 6], &mut rng);
    let w_ih = Tensor::randn(&[6, 24], &mut rng);
    let w_hh = Tensor::randn(&[8, 24], &mut rng);
    let b_ih = Tensor::randn(&[24], &mut rng);
    let b_hh = Tensor::randn(&[24], &mut rng);
    for backend in [Some(false), Some(true)] {
        set_simd_override(backend);
        assert_bit_identical(&format!("all_kernels simd={backend:?}"), || {
            let (gru_out, stash) =
                lttf::tensor::gru_layer_forward(&gx, &w_ih, &w_hh, &b_ih, &b_hh, true);
            let gg = lttf::tensor::gru_layer_backward(
                &gru_out,
                &gx,
                &w_ih,
                &w_hh,
                &gru_out,
                stash.as_ref().unwrap(),
            );
            vec![
                a.matmul(&b),
                x.conv1d(&w, None, 1, 1),
                Tensor::conv1d_backward_input(&go, &w, &[4, 8, 96], 1, 1),
                Tensor::conv1d_backward_weight(&go, &x, &[8, 8, 3], 1, 1),
                Tensor::from_vec(vec![big.sum()], &[1]),
                Tensor::from_vec(vec![big.dot(&other)], &[1]),
                big.exp(),
                big.mul(&other),
                gru_out,
                gg.dx,
                gg.dw_hh,
            ]
        });
    }
    set_simd_override(None);
}

/// The lane-parallel binary ops are the one family whose bytes must agree
/// *across* backends too — the SIMD path only widens the stride and never
/// reassociates (DESIGN.md §8).
#[test]
fn lane_parallel_binary_ops_agree_across_simd_backends() {
    let _g = exclusive();
    let mut rng = Rng::seed(107);
    let a = Tensor::randn(&[150_003], &mut rng);
    let b = Tensor::randn(&[150_003], &mut rng).add_scalar(3.0);
    let run = || vec![a.add(&b), a.sub(&b), a.mul(&b), a.div(&b)];
    set_simd_override(Some(false));
    let scalar = run();
    set_simd_override(Some(true));
    let simd = run();
    set_simd_override(None);
    for (ti, (s, v)) in scalar.iter().zip(&simd).enumerate() {
        for (i, (&x, &y)) in s.data().iter().zip(v.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "binary op {ti}: backend divergence at element {i} ({x} vs {y})"
            );
        }
    }
}
