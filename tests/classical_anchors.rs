//! Integration tests for the classical baselines through the full window
//! pipeline, and the sanity relationship between anchors and deep models.

use lttf::baselines::{Drift, HoltWinters, Persistence, SeasonalNaive};
use lttf::data::synth::{Dataset, SynthSpec};
use lttf::data::{Split, WindowDataset};
use lttf::eval::Metrics;
use lttf::tensor::Tensor;

fn eval_fn(test: &WindowDataset, f: impl Fn(&Tensor) -> Tensor) -> Metrics {
    let mut parts = Vec::new();
    for idx in test.sequential_batches(32) {
        let b = test.batch(&idx);
        let pred = f(&b.x);
        parts.push((Metrics::of(&pred, &b.y), pred.numel()));
    }
    Metrics::weighted_mean(&parts)
}

#[test]
fn seasonal_naive_beats_persistence_on_periodic_data() {
    // Hourly ECL with a strong daily cycle: repeating yesterday beats
    // repeating the last hour for a 24-step horizon.
    let series = Dataset::Ecl.generate(SynthSpec {
        len: 1_000,
        dims: Some(3),
        seed: 31,
    });
    let test = WindowDataset::new(&series, Split::Test, (0.7, 0.1), 96, 24, 0);
    let pers = eval_fn(&test, |x| Persistence.predict(x, 24));
    let snaive = eval_fn(&test, |x| SeasonalNaive::new(24).predict(x, 24));
    assert!(
        snaive.mse < pers.mse,
        "seasonal naive {} should beat persistence {}",
        snaive.mse,
        pers.mse
    );
}

#[test]
fn persistence_beats_seasonal_naive_on_random_walk() {
    // Exchange is a random walk: the last value is the best predictor and
    // fake seasonality must not help.
    let series = Dataset::Exchange.generate(SynthSpec {
        len: 1_000,
        dims: Some(4),
        seed: 32,
    });
    let test = WindowDataset::new(&series, Split::Test, (0.7, 0.1), 96, 24, 0);
    let pers = eval_fn(&test, |x| Persistence.predict(x, 24));
    let snaive = eval_fn(&test, |x| SeasonalNaive::new(24).predict(x, 24));
    assert!(
        pers.mse < snaive.mse,
        "persistence {} should beat seasonal naive {} on a random walk",
        pers.mse,
        snaive.mse
    );
}

#[test]
fn holt_winters_competitive_on_smooth_seasonal_data() {
    let series = Dataset::Weather.generate(SynthSpec {
        len: 1_200,
        dims: Some(3),
        seed: 33,
    });
    // 10-minute data: daily period = 144; use a window of 2 days.
    let test = WindowDataset::new(&series, Split::Test, (0.7, 0.1), 288, 36, 0);
    let hw = eval_fn(&test, |x| {
        HoltWinters::default_with_period(144).predict(x, 36)
    });
    let drift = eval_fn(&test, |x| Drift.predict(x, 36));
    assert!(hw.mse.is_finite() && drift.mse.is_finite());
    // HW must not be catastrophically worse than drift on smooth data.
    assert!(
        hw.mse < drift.mse * 3.0,
        "HW {} vs drift {}",
        hw.mse,
        drift.mse
    );
}

#[test]
fn anchors_produce_finite_predictions_on_every_dataset() {
    for ds in Dataset::ALL {
        let series = ds.generate(SynthSpec {
            len: 600,
            dims: Some(3),
            seed: 34,
        });
        let test = WindowDataset::new(&series, Split::Test, (0.7, 0.1), 64, 16, 0);
        let b = test.batch(&[0]);
        for pred in [
            Persistence.predict(&b.x, 16),
            Drift.predict(&b.x, 16),
            SeasonalNaive::new(8).predict(&b.x, 16),
            HoltWinters::default_with_period(8).predict(&b.x, 16),
        ] {
            assert_eq!(pred.shape(), &[1, 16, 3], "{ds:?}");
            assert!(!pred.has_non_finite(), "{ds:?}");
        }
    }
}
