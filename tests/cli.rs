//! End-to-end tests of the `lttf` CLI: generate → train → forecast.

use std::process::Command;

fn workdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("lttf_cli_test");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

#[test]
fn generate_train_forecast_pipeline() {
    let dir = workdir();
    let csv = dir.join("ett.csv");
    let model = dir.join("model");

    // generate
    let out = Command::new(env!("CARGO_BIN_EXE_lttf"))
        .args([
            "generate",
            "--dataset",
            "etth1",
            "--len",
            "600",
            "--seed",
            "3",
            "--out",
        ])
        .arg(&csv)
        .output()
        .expect("generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(csv.exists());

    // train (1 epoch to stay fast)
    let out = Command::new(env!("CARGO_BIN_EXE_lttf"))
        .args(["train", "--data"])
        .arg(&csv)
        .args([
            "--target",
            "OT",
            "--lx",
            "32",
            "--ly",
            "8",
            "--epochs",
            "1",
            "--d-model",
            "8",
            "--out",
        ])
        .arg(&model)
        .output()
        .expect("train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("test: MSE"), "{stdout}");
    assert!(model.with_extension("params").exists());
    assert!(model.with_extension("config").exists());

    // forecast
    let out = Command::new(env!("CARGO_BIN_EXE_lttf"))
        .args(["forecast", "--data"])
        .arg(&csv)
        .args(["--model"])
        .arg(&model)
        .args(["--samples", "10"])
        .output()
        .expect("forecast");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("step,point,lo,hi"), "{stdout}");
    // 8 forecast rows follow the header
    let rows = stdout
        .lines()
        .filter(|l| l.starts_with(char::is_numeric))
        .count();
    assert_eq!(rows, 8, "{stdout}");
    // bands are ordered on every row
    for line in stdout
        .lines()
        .skip_while(|l| !l.starts_with("step"))
        .skip(1)
    {
        let f: Vec<f32> = line
            .split(',')
            .skip(1)
            .filter_map(|v| v.parse().ok())
            .collect();
        if f.len() == 3 {
            assert!(f[1] <= f[2], "lo > hi in {line}");
        }
    }

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn profile_smoke_prints_span_table_and_run_log() {
    let dir = workdir().join("profile");
    // Tiny dimensions keep this seconds-scale in debug builds; the kernels
    // still clear the instrumentation work thresholds, so the table rows
    // required of `lttf profile` are all present.
    let out = Command::new(env!("CARGO_BIN_EXE_lttf"))
        .args([
            "profile", "--smoke", "--lx", "24", "--ly", "8", "--d-model", "8", "--epochs", "1",
            "--batch", "8", "--len", "400", "--name", "cli_test", "--out-dir",
        ])
        .arg(&dir)
        .env("LTTF_QUIET", "1")
        .output()
        .expect("profile");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for row in [
        "matmul",
        "conv1d",
        "window_attn_fwd",
        "window_attn_bwd",
        "backward",
        "pool utilization",
        "loss curve",
    ] {
        assert!(stdout.contains(row), "missing '{row}' in:\n{stdout}");
    }
    let log = dir.join("cli_test.jsonl");
    assert!(log.exists(), "run log not written");
    // Every line of the run log is a flat JSON object with an "event" key.
    let text = std::fs::read_to_string(&log).unwrap();
    assert!(text.lines().count() >= 3, "{text}");
    for line in text.lines() {
        assert!(
            line.starts_with("{\"event\":\""),
            "unexpected run-log line: {line}"
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn trace_wrapper_writes_valid_chrome_json() {
    let dir = workdir().join("trace");
    let trace_path = dir.join("trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_lttf"))
        .arg("trace")
        .arg("--trace-out")
        .arg(&trace_path)
        .args([
            "profile", "--smoke", "--lx", "24", "--ly", "8", "--d-model", "8", "--epochs", "1",
            "--batch", "8", "--len", "400", "--name", "cli_trace", "--out-dir",
        ])
        .arg(&dir)
        .env("LTTF_QUIET", "1")
        .output()
        .expect("trace profile");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace: "), "no trace summary line in:\n{stdout}");
    let json = std::fs::read_to_string(&trace_path).expect("trace file written");
    let summary = lttf::obs::trace::validate_chrome(&json).expect("valid Chrome trace");
    assert!(summary.events > 0, "empty trace");
    assert!(summary.slices > 0, "no completed B/E slices");
    assert!(json.contains("\"thread_name\""), "missing thread metadata");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn unknown_subcommand_fails() {
    let out = Command::new(env!("CARGO_BIN_EXE_lttf"))
        .arg("frobnicate")
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn missing_required_flag_fails() {
    let out = Command::new(env!("CARGO_BIN_EXE_lttf"))
        .args(["generate", "--dataset", "wind"]) // no --out
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}
