//! Determinism guarantees: a fixed seed reproduces entire experiments
//! bit-for-bit (DESIGN.md decision #6), across data generation, training,
//! and evaluation.

use lttf::data::synth::{Dataset, SynthSpec};
use lttf::data::{Split, WindowDataset};
use lttf::eval::{evaluate, train, ModelKind, TrainOptions, TrainedModel};

fn run_once(seed: u64) -> (f32, f32, Vec<f32>) {
    let series = Dataset::Wind.generate(SynthSpec {
        len: 500,
        dims: Some(2),
        seed,
    });
    let mk = |split| WindowDataset::new(&series, split, (0.7, 0.1), 24, 8, 12);
    let (train_set, val, test) = (mk(Split::Train), mk(Split::Val), mk(Split::Test));
    let mut model = TrainedModel::build(ModelKind::Conformer, 2, 24, 8, 8, 2, seed);
    let report = train(
        &mut model,
        &train_set,
        Some(&val),
        &TrainOptions {
            epochs: 2,
            batch_size: 8,
            lr: 1e-3,
            patience: 0,
            lr_decay: 0.5,
            max_batches: 10,
            clip: 5.0,
            seed,
            val_max_windows: usize::MAX,
            ..Default::default()
        },
    );
    let m = evaluate(&model, &test, 16);
    (m.mse, m.mae, report.train_losses)
}

#[test]
fn identical_seeds_reproduce_bitwise() {
    let a = run_once(77);
    let b = run_once(77);
    assert_eq!(a.0.to_bits(), b.0.to_bits(), "MSE diverged");
    assert_eq!(a.1.to_bits(), b.1.to_bits(), "MAE diverged");
    assert_eq!(a.2.len(), b.2.len());
    for (x, y) in a.2.iter().zip(&b.2) {
        assert_eq!(x.to_bits(), y.to_bits(), "training trajectory diverged");
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run_once(1);
    let b = run_once(2);
    assert_ne!(a.0.to_bits(), b.0.to_bits(), "seeds had no effect");
}

#[test]
fn dropout_seeding_is_isolated_from_data_order() {
    // Two models trained with the same seed but different dropout rates
    // see the same batches: the first epoch's first batch loss before any
    // update must differ only through dropout.
    let series = Dataset::Etth1.generate(SynthSpec {
        len: 400,
        dims: Some(2),
        seed: 9,
    });
    let train_set = WindowDataset::new(&series, Split::Train, (0.7, 0.1), 16, 4, 8);
    let batch = train_set.batch(&[0, 1]);
    let model = TrainedModel::build(ModelKind::Conformer, 2, 16, 4, 8, 2, 9);
    use lttf::autograd::Graph;
    use lttf::nn::Fwd;
    let g1 = Graph::new();
    let cx1 = Fwd::new(&g1, model.params(), true, 5);
    let l1 = model.batch_loss(&cx1, &batch).value().item();
    let g2 = Graph::new();
    let cx2 = Fwd::new(&g2, model.params(), true, 5);
    let l2 = model.batch_loss(&cx2, &batch).value().item();
    assert_eq!(l1.to_bits(), l2.to_bits(), "same pass seed must reproduce");
}
