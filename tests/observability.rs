//! Telemetry integration suite: span counts for a known kernel workload,
//! run-log round trips through the JSONL validator, per-op backward spans,
//! and the pool's serial-fallback counters.
//!
//! The span registry is process-global, so every case takes the same
//! exclusive lock and starts from `obs::reset()`.

use lttf::data::synth::{Dataset, SynthSpec};
use lttf::data::{Split, WindowDataset};
use lttf::eval::{train_logged, HealthConfig, ModelKind, StopReason, TrainOptions, TrainedModel};
use lttf::nn::attention::window_global_forward;
use lttf::obs;
use lttf::tensor::{Rng, Tensor};
use lttf_parallel::set_threads_override;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The registry and the thread override are process-global, so cases must
/// not interleave.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn span_calls(snap: &[obs::SpanSnapshot], name: &str) -> u64 {
    snap.iter()
        .find(|s| s.name == name)
        .map_or(0, |s| s.calls)
}

#[test]
fn span_counts_match_known_workload() {
    let _g = exclusive();
    obs::reset();
    let mut rng = Rng::seed(11);

    // All shapes exceed the instrumentation work thresholds
    // (tensor::OBS_MIN_WORK etc.), so every call records exactly one span.
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    for _ in 0..5 {
        std::hint::black_box(a.matmul(&b));
    }
    let x = Tensor::randn(&[4, 8, 96], &mut rng);
    let w = Tensor::randn(&[8, 8, 3], &mut rng);
    for _ in 0..3 {
        std::hint::black_box(x.conv1d(&w, None, 1, 1));
    }
    let wide = Tensor::randn(&[8, 128, 32], &mut rng);
    for _ in 0..2 {
        std::hint::black_box(wide.moving_avg(1, 7));
    }
    let q = Tensor::randn(&[8, 64, 16], &mut rng);
    std::hint::black_box(window_global_forward(&q, &q, &q, 4, 2));

    let snap = obs::snapshot();
    assert_eq!(span_calls(&snap, "matmul"), 5, "snapshot: {snap:?}");
    assert_eq!(span_calls(&snap, "conv1d"), 3);
    assert_eq!(span_calls(&snap, "moving_avg"), 2);
    assert_eq!(span_calls(&snap, "window_attn_fwd"), 1);
    // Timing and byte totals are live for all of them.
    for name in ["matmul", "conv1d", "moving_avg", "window_attn_fwd"] {
        let s = snap.iter().find(|s| s.name == name).unwrap();
        assert!(s.total_ns > 0, "{name} recorded no time");
        assert!(s.bytes > 0, "{name} recorded no bytes");
        assert!(s.min_ns <= s.max_ns);
    }
}

#[test]
fn backward_pass_records_per_op_spans() {
    let _g = exclusive();
    obs::reset();
    let mut rng = Rng::seed(12);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);

    let g = lttf::autograd::Graph::new();
    let va = g.leaf(a);
    let vb = g.leaf(b);
    let loss = va.matmul(vb).sum_all();
    let _grads = g.backward(loss);

    let snap = obs::snapshot();
    assert_eq!(span_calls(&snap, "backward"), 1);
    assert_eq!(obs::calls("bwd", "matmul"), 1);
    assert_eq!(obs::calls("bwd", "sum_all"), 1);
    // The per-op spans nest inside "backward", so its self time is less
    // than its total time.
    let bwd = snap.iter().find(|s| s.name == "backward").unwrap();
    assert!(bwd.self_ns <= bwd.total_ns);
}

#[test]
fn run_log_round_trips_through_validator() {
    let _g = exclusive();
    obs::reset();
    let series = Dataset::Ettm1.generate(SynthSpec {
        len: 600,
        dims: Some(2),
        seed: 5,
    });
    let mk = |split| WindowDataset::new(&series, split, (0.7, 0.15), 24, 8, 12);
    let (train_set, val_set) = (mk(Split::Train), mk(Split::Val));
    let mut model = TrainedModel::build(ModelKind::Gru, 2, 24, 8, 8, 2, 1);

    let dir = std::env::temp_dir().join("lttf_obs_test");
    let path = dir.join("tiny_gru.jsonl");
    let mut log = obs::RunLog::create(&path).expect("create run log");
    let opts = TrainOptions {
        epochs: 2,
        batch_size: 16,
        lr: 1e-3,
        patience: 0,
        lr_decay: 0.8,
        max_batches: 4,
        clip: 5.0,
        seed: 2,
        val_max_windows: usize::MAX,
        ..Default::default()
    };
    let report = train_logged(&mut model, &train_set, Some(&val_set), &opts, Some(&mut log));
    drop(log);

    let summary = obs::runlog::validate_file(&path).expect("run log must validate");
    assert_eq!(summary.name, "tiny_gru");
    assert_eq!(summary.epochs, report.train_losses.len());
    assert_eq!(summary.stop_reason, report.stop_reason.label());
    assert!(summary.spans > 0, "final span snapshot missing");

    // Epoch indices are 0-based and monotone; re-check directly so the
    // test does not rely only on the validator's own logic.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut next_epoch = 0i64;
    for line in text.lines() {
        let fields = obs::jsonl::parse_object(line).expect("every line parses");
        let event = obs::jsonl::field(&fields, "event").unwrap().as_str().unwrap();
        if event == "epoch" {
            let e = obs::jsonl::field(&fields, "epoch").unwrap().as_num().unwrap();
            assert_eq!(e as i64, next_epoch, "epoch indices must be monotone");
            next_epoch += 1;
        }
    }
    assert_eq!(next_epoch as usize, report.train_losses.len());
    assert_eq!(report.stop_reason, StopReason::MaxEpochs);
    std::fs::remove_file(&path).ok();
}

#[test]
fn watchdog_catches_injected_nan_and_names_a_layer() {
    let _g = exclusive();
    obs::reset();
    lttf::obs::health::set_global(None);
    let mut series = Dataset::Ettm1.generate(SynthSpec {
        len: 400,
        dims: Some(2),
        seed: 9,
    });
    // Inject a NaN into the raw series: the scaler, forward pass, loss,
    // and every gradient all get poisoned — the watchdog must still name
    // a concrete layer, not just "loss".
    series.values.data_mut()[37] = f32::NAN;
    let mk = |split| WindowDataset::new(&series, split, (0.7, 0.15), 24, 8, 12);
    let (train_set, val_set) = (mk(Split::Train), mk(Split::Val));
    let mut model = TrainedModel::build(ModelKind::Gru, 2, 24, 8, 8, 2, 1);

    let dir = std::env::temp_dir().join("lttf_obs_test");
    let path = dir.join("nan_watchdog.jsonl");
    let mut log = obs::RunLog::create(&path).expect("create run log");
    let opts = TrainOptions {
        epochs: 3,
        batch_size: 16,
        lr: 1e-3,
        patience: 0,
        lr_decay: 0.8,
        max_batches: 4,
        clip: 5.0,
        seed: 2,
        val_max_windows: usize::MAX,
        health: HealthConfig::every(1),
    };
    let report = train_logged(&mut model, &train_set, Some(&val_set), &opts, Some(&mut log));
    drop(log);

    assert_eq!(report.stop_reason, StopReason::Diverged);
    assert_eq!(report.stop_reason.label(), "diverged");
    assert_eq!(report.stopped_at, 1, "watchdog must halt in the first epoch");
    let d = report.divergence.expect("divergence detail");
    assert!(d.contains("NaN"), "{d}");
    assert!(!d.starts_with("loss"), "must name a parameter, not the loss: {d}");
    assert!(lttf::obs::health::is_diverged());
    let detail = lttf::obs::health::global().expect("global watchdog state");
    assert!(!detail.layer.is_empty());

    // The per-layer health records and the diverged stop reason both
    // survive the strict run-log validator.
    let summary = obs::runlog::validate_file(&path).expect("run log validates");
    assert_eq!(summary.stop_reason, "diverged");
    assert!(summary.health > 0, "expected health records, got none");
    lttf::obs::health::set_global(None);
    std::fs::remove_file(&path).ok();
}

#[test]
fn warn_only_watchdog_keeps_training() {
    let _g = exclusive();
    obs::reset();
    lttf::obs::health::set_global(None);
    let mut series = Dataset::Ettm1.generate(SynthSpec {
        len: 400,
        dims: Some(2),
        seed: 9,
    });
    series.values.data_mut()[37] = f32::NAN;
    let mk = |split| WindowDataset::new(&series, split, (0.7, 0.15), 24, 8, 12);
    let train_set = mk(Split::Train);
    let mut model = TrainedModel::build(ModelKind::Gru, 2, 24, 8, 8, 2, 1);
    let opts = TrainOptions {
        epochs: 2,
        batch_size: 16,
        lr: 1e-3,
        patience: 0,
        lr_decay: 0.8,
        max_batches: 3,
        clip: 5.0,
        seed: 2,
        val_max_windows: usize::MAX,
        health: HealthConfig {
            halt: false,
            ..HealthConfig::every(1)
        },
    };
    let report = train_logged(&mut model, &train_set, None, &opts, None);
    // Divergence is reported but training runs the full budget.
    assert!(report.divergence.is_some());
    assert_eq!(report.stop_reason, StopReason::MaxEpochs);
    assert_eq!(report.stopped_at, 2);
    lttf::obs::health::set_global(None);
}

#[test]
fn trace_records_kernel_spans_as_chrome_json() {
    let _g = exclusive();
    obs::reset();
    lttf::obs::trace::clear();
    lttf::obs::trace::set_enabled(true);
    let mut rng = Rng::seed(14);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    for _ in 0..3 {
        std::hint::black_box(a.matmul(&b));
    }
    lttf::obs::trace::set_enabled(false);

    let export = lttf::obs::trace::export_chrome();
    let summary = lttf::obs::trace::validate_chrome(&export.json).expect("trace validates");
    assert!(summary.slices >= 3, "expected matmul slices: {}", export.json);
    assert!(export.json.contains("\"name\":\"matmul\""), "{}", export.json);
    assert!(export.json.contains("\"thread_name\""), "{}", export.json);
    lttf::obs::trace::clear();
}

#[test]
fn pool_counts_serial_fallbacks() {
    let _g = exclusive();
    obs::reset();
    set_threads_override(Some(4));

    // A parallel region inside a parallel region: the inner regions run
    // on pool workers and must fall back to serial (counted as nested).
    let mut outer = vec![0.0f32; 4 * 256];
    lttf_parallel::par_chunks_mut(&mut outer, 256, |_, chunk| {
        let mut inner = vec![0.0f32; 4 * 64];
        lttf_parallel::par_chunks_mut(&mut inner, 64, |_, c2| {
            for v in c2.iter_mut() {
                *v = 1.0;
            }
        });
        chunk[0] = inner.iter().sum();
    });
    set_threads_override(None);

    let nested = obs::calls("", "pool.serial_nested");
    let contended = obs::calls("", "pool.serial_contended");
    // At least one inner region ran on a worker (nested) or hit the
    // dispatch lock while the outer region held it (contended); either
    // way the fallback is counted, never silent.
    assert!(
        nested + contended > 0,
        "nested parallel regions were not counted (nested={nested}, contended={contended})"
    );
    // The outer region itself went parallel.
    assert!(obs::calls("", "pool.regions") >= 1);
    assert!(obs::calls("", "pool.tasks") >= 4);
}

#[test]
fn telemetry_preserves_thread_count_determinism() {
    let _g = exclusive();
    obs::reset();
    let mut rng = Rng::seed(13);
    let a = Tensor::randn(&[96, 96], &mut rng);
    let b = Tensor::randn(&[96, 96], &mut rng);
    set_threads_override(Some(1));
    let reference = a.matmul(&b);
    for threads in [2, 4, 8] {
        set_threads_override(Some(threads));
        let got = a.matmul(&b);
        for (x, y) in reference.data().iter().zip(got.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
        }
    }
    set_threads_override(None);
    // Spans recorded while sweeping: 1 reference + 3 sweep calls.
    assert_eq!(obs::calls("", "matmul"), 4);
}
