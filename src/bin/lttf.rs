//! `lttf` — command-line forecasting with the Conformer reproduction.
//!
//! Subcommands:
//!
//! * `generate` — write one of the seven synthetic datasets to CSV,
//! * `train` — train Conformer on a CSV, report test metrics, and save a
//!   checkpoint (+ sidecar config),
//! * `forecast` — load a checkpoint and forecast the steps after the end
//!   of a CSV, with normalizing-flow uncertainty bands.
//!
//! ```sh
//! lttf generate --dataset wind --len 2000 --out wind.csv
//! lttf train --data wind.csv --target Wind_Power --lx 96 --ly 48 \
//!            --epochs 3 --out wind_model
//! lttf forecast --data wind.csv --model wind_model --samples 50
//! lttf trace profile --smoke   # Chrome trace of the inner command
//! ```

use lttf::conformer::{Conformer, ConformerConfig};
use lttf::data::synth::{Dataset, SynthSpec};
use lttf::data::{read_csv, write_csv, Freq, Split, TimeSeries, WindowDataset, MARK_DIM};
use lttf::eval::{evaluate, train_logged, HealthConfig, TrainOptions, TrainedModel};
use lttf::nn::{load_params, save_params_with_meta, Fwd, ParamSet};
use lttf::obs::RunLog;
use lttf::tensor::{Rng, Tensor};
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  lttf generate --dataset <ecl|weather|exchange|etth1|ettm1|wind|airdelay> \
         [--len N] [--dims N] [--seed N] --out FILE.csv\n  \
         lttf train --data FILE.csv --target COL [--lx N] [--ly N] [--d-model N] \
         [--epochs N] [--seed N] [--log NAME] [--health-every N] [--health-acts] \
         [--health-warn-only] [--health-max-grad-norm X] --out MODEL\n  \
         lttf forecast --data FILE.csv --model MODEL [--samples N] [--coverage P]\n  \
         lttf profile [--smoke] [--mode train|fwd] [--epochs N] [--lx N] [--ly N] \
         [--d-model N] [--batch N] [--len N] [--dims N] [--seed N] [--threads N] \
         [--name NAME] [--out-dir DIR] [--flame FILE.txt]\n  \
         lttf serve --model MODEL [--port N] [--max-batch N] [--max-wait-ms N] \
         [--queue-cap N] [--replicas N] [--policy rr|lqd] [--threads-per-replica N] \
         [--seed N] [--rate RPS] [--burst N] [--shed-depth N] \
         [--drift-threshold X] [--drift-min-count N] \
         [--sessions N] [--session-ttl-ms N] [--adapt] [--adapt-lr X] [--adapt-steps N] \
         [--adapt-batch N] [--adapt-buffer N] [--adapt-min-examples N] \
         [--adapt-interval-ms N]\n  \
         lttf watch [--port N] [--host H] [--interval-ms N] [--iters N] [--model NAME] \
         [--scrape-out FILE.prom] [--no-clear]\n  \
         lttf bench-serve [--mode closed|open|scaling|stream|memory|all] [--threads N] [--requests N] \
         [--max-batch N] [--max-wait-ms N] [--lx N] [--d-model N] [--clients N] \
         [--rate RPS] [--duration-ms N] [--pattern uniform|bursty|diurnal] \
         [--service-floor-ms X] [--replicas N] [--seed N] [--out-dir DIR] \
         [--stream-len N] [--stream-shift X] [--stream-lx N] [--stream-ly N]\n  \
         lttf trace [--trace-out FILE.json] <subcommand …>   \
         (record a Chrome trace of any subcommand; open in chrome://tracing)\n  \
         lttf flame [--flame-out FILE.txt] <subcommand …>   \
         (sample span stacks at LTTF_PROFILE_HZ, default 99 Hz; writes \
         collapsed stacks for flamegraph.pl/inferno)"
    );
    exit(2);
}

/// `--key value` pairs, plus valueless boolean flags (`--smoke`): a flag
/// followed by another `--flag` or by nothing parses as `"true"`.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument '{}'", args[i]);
            usage();
        };
        if i + 1 >= args.len() || args[i + 1].starts_with("--") {
            map.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            map.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        }
    }
    map
}

fn flag_set(flags: &HashMap<String, String>, key: &str) -> bool {
    flags.get(key).is_some_and(|v| v != "false" && v != "0")
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for --{key}: '{v}'");
                exit(2);
            })
        })
        .unwrap_or(default)
}

fn require<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or_else(|| {
        eprintln!("missing required flag --{key}");
        usage();
    })
}

/// Training health-monitor flags shared by `train` and `profile`:
/// `--health-every N` turns the monitor on (scan cadence in batches),
/// `--health-acts` adds activation scans, `--health-warn-only` keeps
/// training through a divergence, `--health-max-grad-norm X` sets the
/// exploding-gradient threshold.
fn health_flags(flags: &HashMap<String, String>) -> HealthConfig {
    HealthConfig {
        cadence: get(flags, "health-every", 0usize),
        activations: flag_set(flags, "health-acts"),
        max_grad_norm: get(flags, "health-max-grad-norm", 1e4f64),
        halt: !flag_set(flags, "health-warn-only"),
    }
}

/// Byte counts with a binary-unit suffix for the watch dashboard
/// (mirrors the profile report's formatting; `-` when nothing measured,
/// e.g. the instrumented allocator is compiled out).
fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    if b == 0 {
        return "-".to_string();
    }
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}B")
    } else {
        format!("{v:.1}{}", UNITS[u])
    }
}

fn dataset_by_name(name: &str) -> Dataset {
    match name.to_ascii_lowercase().as_str() {
        "ecl" => Dataset::Ecl,
        "weather" => Dataset::Weather,
        "exchange" => Dataset::Exchange,
        "etth1" => Dataset::Etth1,
        "ettm1" => Dataset::Ettm1,
        "wind" => Dataset::Wind,
        "airdelay" => Dataset::AirDelay,
        other => {
            eprintln!("unknown dataset '{other}'");
            exit(2);
        }
    }
}

fn cmd_generate(flags: HashMap<String, String>) {
    let ds = dataset_by_name(require(&flags, "dataset"));
    let len = get(&flags, "len", 2_000usize);
    let dims = flags.get("dims").map(|v| get(&flags, "dims", v.len()));
    let seed = get(&flags, "seed", 42u64);
    let out = require(&flags, "out");
    let series = ds.generate(SynthSpec { len, dims, seed });
    write_csv(&series, out).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!(
        "wrote {} ({} steps x {} vars, target '{}')",
        out,
        series.len(),
        series.dims(),
        series.names[series.target]
    );
}

fn cmd_train(flags: HashMap<String, String>) {
    let data = require(&flags, "data");
    let target = require(&flags, "target");
    let lx = get(&flags, "lx", 96usize);
    let ly = get(&flags, "ly", 48usize);
    let d_model = get(&flags, "d-model", 16usize);
    let epochs = get(&flags, "epochs", 3usize);
    let seed = get(&flags, "seed", 1u64);
    let out = require(&flags, "out");

    let series = read_csv(data, target, Freq::Irregular).unwrap_or_else(|e| {
        eprintln!("cannot read {data}: {e}");
        exit(1);
    });
    println!(
        "loaded {}: {} steps x {} vars",
        data,
        series.len(),
        series.dims()
    );
    let mk = |split| WindowDataset::new(&series, split, (0.7, 0.1), lx, ly, lx / 2);
    let (train_set, val_set, test_set) = (mk(Split::Train), mk(Split::Val), mk(Split::Test));

    let mut cfg = ConformerConfig::new(series.dims(), lx, ly);
    cfg.d_model = d_model;
    cfg.n_heads = if d_model.is_multiple_of(4) { 4 } else { 2 };
    cfg.multiscale_strides = vec![1, (lx / 4).max(2)];
    let mut model = TrainedModel::from_conformer(&cfg, seed);
    println!(
        "training Conformer ({} params, {epochs} epochs)…",
        model.num_parameters()
    );
    // Optional structured run log: `--log NAME` writes
    // results/runs/NAME.jsonl (see lttf_obs::runlog for the schema).
    let mut run_log = flags.get("log").map(|name| {
        RunLog::create(format!("results/runs/{name}.jsonl")).unwrap_or_else(|e| {
            eprintln!("cannot create run log: {e}");
            exit(1);
        })
    });
    let report = train_logged(
        &mut model,
        &train_set,
        Some(&val_set),
        &TrainOptions {
            epochs,
            batch_size: 16,
            lr: 1e-3,
            patience: 2,
            lr_decay: 0.7,
            max_batches: 60,
            clip: 5.0,
            seed,
            val_max_windows: usize::MAX,
            health: health_flags(&flags),
        },
        run_log.as_mut(),
    );
    if let Some(d) = &report.divergence {
        eprintln!("health watchdog: {d}");
    }
    for (e, l) in report.train_losses.iter().enumerate() {
        println!("  epoch {e}: train loss {l:.4}");
    }
    println!(
        "stopped after {} epoch(s): {}",
        report.stopped_at, report.stop_reason
    );
    if let Some(log) = &run_log {
        println!("run log: {}", log.path().display());
    }
    println!("test: {}", evaluate(&model, &test_set, 16));

    // Checkpoint metadata carries the train-split scaler statistics so
    // `lttf serve` can round-trip raw inputs without the training CSV,
    // plus a per-feature reference profile of the same raw train rows so
    // the server's drift monitor has a baseline to compare traffic to.
    let mut meta = lttf::serve::scaler_meta(train_set.scaler(), target, train_set.target());
    let n_train = (series.len() as f32 * 0.7) as usize;
    let train_view = series.values.narrow(0, 0, n_train.max(2));
    let profile = lttf::eval::fit_reference_profile(&train_view);
    println!(
        "drift reference: {} features over {} train steps",
        profile.features.len(),
        profile.count
    );
    meta.extend(profile.to_meta());
    save_params_with_meta(model.params(), &meta, format!("{out}.params")).unwrap_or_else(|e| {
        eprintln!("cannot save checkpoint: {e}");
        exit(1);
    });
    cfg.save_sidecar(target, &format!("{out}.config"))
        .unwrap_or_else(|e| {
            eprintln!("cannot save config: {e}");
            exit(1);
        });
    println!("saved {out}.params / {out}.config");
}

/// Assemble the single forecast window at the end of the series.
fn final_window(
    series: &TimeSeries,
    cfg: &ConformerConfig,
) -> (Tensor, Tensor, Tensor, Tensor, lttf::data::StandardScaler) {
    let scaler = lttf::data::StandardScaler::fit(&series.values);
    let scaled = scaler.transform(&series.values);
    let n = series.len();
    let (lx, ly, label) = (cfg.lx, cfg.ly, cfg.label_len);
    assert!(n >= lx, "series shorter than the input window");
    let x = scaled.narrow(0, n - lx, lx).reshape(&[1, lx, cfg.c_in]);
    let marks = series.marks();
    let xm = marks.narrow(0, n - lx, lx).reshape(&[1, lx, MARK_DIM]);
    let dec_known = scaled.narrow(0, n - label, label);
    let dec = Tensor::concat(&[&dec_known, &Tensor::zeros(&[ly, cfg.c_in])], 0).reshape(&[
        1,
        label + ly,
        cfg.c_in,
    ]);
    // future marks: extrapolate timestamps at the median recent gap
    let gap = if n >= 2 {
        (series.timestamps[n - 1] - series.timestamps[n - 1 - (n - 1).min(20)])
            / (n - 1).min(20) as i64
    } else {
        3600
    };
    let mut mark_rows = Vec::new();
    for t in n - label..n {
        mark_rows.extend_from_slice(&lttf::data::time_features(series.timestamps[t]));
    }
    for i in 1..=ly {
        let ts = series.timestamps[n - 1] + gap.max(1) * i as i64;
        mark_rows.extend_from_slice(&lttf::data::time_features(ts));
    }
    let dm = Tensor::from_vec(mark_rows, &[1, label + ly, MARK_DIM]);
    (x, xm, dec, dm, scaler)
}

fn cmd_forecast(flags: HashMap<String, String>) {
    let data = require(&flags, "data");
    let model_base = require(&flags, "model");
    let samples = get(&flags, "samples", 50usize);
    let cov = get(&flags, "coverage", 0.9f32);

    let (cfg, target) =
        ConformerConfig::load_sidecar(&format!("{model_base}.config")).unwrap_or_else(|e| {
            eprintln!("cannot read {model_base}.config: {e}");
            exit(1);
        });
    let series = read_csv(data, &target, Freq::Irregular).unwrap_or_else(|e| {
        eprintln!("cannot read {data}: {e}");
        exit(1);
    });
    assert_eq!(
        series.dims(),
        cfg.c_in,
        "CSV has {} vars but the model expects {}",
        series.dims(),
        cfg.c_in
    );
    let mut ps = ParamSet::new();
    let model = Conformer::new(&mut ps, &cfg, &mut Rng::seed(0));
    load_params(&mut ps, format!("{model_base}.params")).unwrap_or_else(|e| {
        eprintln!("cannot load checkpoint: {e}");
        exit(1);
    });

    let (x, xm, dec, dm, scaler) = final_window(&series, &cfg);
    let (point, lo, hi) = model.predict_with_uncertainty(&ps, &x, &xm, &dec, &dm, samples, cov, 7);
    let t_col = series.target;
    let inv = |t: &Tensor| scaler.inverse_transform(t);
    let (p, l, h) = (inv(&point), inv(&lo), inv(&hi));
    println!(
        "forecast of '{}' for the next {} steps ({}% interval, {} samples):",
        target,
        cfg.ly,
        (cov * 100.0) as u32,
        samples
    );
    println!("step,point,lo,hi");
    for t in 0..cfg.ly {
        println!(
            "{t},{:.4},{:.4},{:.4}",
            p.at(&[0, t, t_col]),
            l.at(&[0, t, t_col]),
            h.at(&[0, t, t_col])
        );
    }
}

/// `lttf profile`: run a short synthetic Conformer workload with the span
/// registry reset at the start, then print the self-time table, pool
/// utilization, and a loss summary, and write a JSONL run log under
/// `results/runs/`. `--smoke` selects a seconds-scale configuration used
/// by CI; `--mode fwd` profiles forward+backward passes without training.
fn cmd_profile(flags: HashMap<String, String>) {
    let smoke = flag_set(&flags, "smoke");
    let mode = flags.get("mode").map(String::as_str).unwrap_or("train");
    let lx = get(&flags, "lx", 96usize);
    let ly = get(&flags, "ly", 24usize);
    let d_model = get(&flags, "d-model", 32usize);
    let batch = get(&flags, "batch", 32usize);
    let epochs = get(&flags, "epochs", if smoke { 2 } else { 3 });
    let len = get(&flags, "len", if smoke { 1_200 } else { 2_400 });
    let dims = get(&flags, "dims", 4usize);
    let seed = get(&flags, "seed", 7u64);
    // Default to at least two workers so the pool's parallel path (and
    // its utilization gauges) are exercised even on one-core machines —
    // results are bit-identical at any thread count.
    let threads = get(&flags, "threads", lttf::parallel::num_threads().max(2));
    let default_name = if smoke { "profile_smoke" } else { "profile" };
    let name = flags
        .get("name")
        .map(String::as_str)
        .unwrap_or(default_name)
        .to_string();
    let out_dir = flags
        .get("out-dir")
        .map(String::as_str)
        .unwrap_or("results/runs");
    lttf::parallel::set_threads_override(Some(threads.max(1)));

    let series = Dataset::Ettm1.generate(SynthSpec {
        len,
        dims: Some(dims),
        seed,
    });
    let mk = |split| WindowDataset::new(&series, split, (0.7, 0.15), lx, ly, lx / 2);
    let (train_set, val_set) = (mk(Split::Train), mk(Split::Val));
    let mut cfg = ConformerConfig::new(dims, lx, ly);
    cfg.d_model = d_model;
    cfg.n_heads = if d_model.is_multiple_of(4) { 4 } else { 2 };
    cfg.multiscale_strides = vec![1, (lx / 4).max(2)];
    let mut model = TrainedModel::from_conformer(&cfg, seed);
    println!(
        "profiling Conformer ({} params) on synthetic ettm1: mode {mode}, \
         lx {lx}, ly {ly}, d_model {d_model}, batch {batch}, {} threads, \
         kernels {}",
        model.num_parameters(),
        lttf::parallel::num_threads(),
        lttf::tensor::simd::backend_name(),
    );

    // Profile only what runs below, not process warm-up.
    lttf::obs::reset();
    // `--flame OUT` also runs the continuous stack sampler over the
    // workload and writes collapsed stacks (flamegraph.pl input).
    let flame_out = flags.get("flame").cloned();
    if flame_out.is_some() {
        let hz = lttf::obs::env::profile_hz().unwrap_or(99) as u64;
        if let Err(e) = lttf::obs::sampler::start(hz) {
            eprintln!("warning: flame sampling unavailable: {e}");
        }
    }
    let mut log = RunLog::create(format!("{out_dir}/{name}.jsonl")).unwrap_or_else(|e| {
        eprintln!("cannot create run log: {e}");
        exit(1);
    });
    let opts = TrainOptions {
        epochs,
        batch_size: batch,
        lr: 1e-3,
        patience: 2,
        lr_decay: 0.7,
        max_batches: if smoke { 12 } else { 0 },
        clip: 5.0,
        seed,
        val_max_windows: if smoke { 64 } else { usize::MAX },
        health: health_flags(&flags),
    };
    match mode {
        "train" => {
            let report = train_logged(&mut model, &train_set, Some(&val_set), &opts, Some(&mut log));
            println!();
            println!(
                "loss curve: {} epoch(s), train {:.4} -> {:.4}, best val {}, stop: {}",
                report.stopped_at,
                report.train_losses.first().copied().unwrap_or(f32::NAN),
                report.train_losses.last().copied().unwrap_or(f32::NAN),
                report
                    .val_losses
                    .iter()
                    .copied()
                    .fold(f32::INFINITY, f32::min),
                report.stop_reason,
            );
        }
        "fwd" => {
            // Forward+backward passes over fixed batches, no optimizer.
            let reps = epochs.max(1) * if smoke { 4 } else { 8 };
            let idx: Vec<usize> = (0..train_set.len().min(batch)).collect();
            let fwd_batch = train_set.batch(&idx);
            log.start(&name, "Conformer", lttf::parallel::num_threads(), 0, batch, 0.0)
                .unwrap_or_else(|e| eprintln!("warning: run log write failed: {e}"));
            let t0 = std::time::Instant::now();
            let mut last_loss = f32::NAN;
            for rep in 0..reps {
                let g = lttf::autograd::Graph::new();
                let cx = Fwd::new(&g, model.params(), true, seed.wrapping_add(rep as u64));
                let loss = model.batch_loss(&cx, &fwd_batch);
                last_loss = loss.value().item();
                let _ = g.backward(loss);
            }
            log.end("max_epochs", 0, None, t0.elapsed().as_secs_f64())
                .and_then(|_| log.spans())
                .unwrap_or_else(|e| eprintln!("warning: run log write failed: {e}"));
            println!();
            println!("{reps} forward+backward passes, final loss {last_loss:.4}");
        }
        other => {
            eprintln!("unknown profile mode '{other}' (expected train|fwd)");
            exit(2);
        }
    }

    println!();
    print!("{}", lttf::obs::report::render(&lttf::obs::snapshot()));
    println!();
    println!("run log: {}", log.path().display());
    if let Some(path) = flame_out {
        write_flame(&path);
    }
}

/// Stop the stack sampler, validate its collapsed output against the
/// strict in-repo parser, and write it to `path`. Shared by
/// `lttf profile --flame` and the `lttf flame` wrapper.
fn write_flame(path: &str) {
    let report = lttf::obs::sampler::stop();
    let summary = lttf::obs::sampler::validate_collapsed(&report.collapsed).unwrap_or_else(|e| {
        eprintln!("internal error: collapsed stacks failed validation: {e}");
        exit(1);
    });
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).ok();
        }
    }
    if let Err(e) = std::fs::write(path, &report.collapsed) {
        eprintln!("cannot write flame output to {path}: {e}");
        exit(1);
    }
    println!(
        "flame: {} weighted samples over {} stacks ({} roots) -> {path} \
         (collapsed format; feed to inferno/flamegraph.pl)",
        summary.samples, summary.stacks, summary.roots
    );
}

/// `lttf serve`: load a checkpoint and answer forecast requests over TCP
/// (newline-delimited JSON, see `lttf_serve::protocol`). Runs until stdin
/// reaches EOF or a line saying `quit`, then drains in-flight work and
/// prints the latency summary.
fn cmd_serve(flags: HashMap<String, String>) {
    let model_base = require(&flags, "model");
    let port = get(&flags, "port", 7878u16);
    let policy: lttf::serve::Policy = flags
        .get("policy")
        .map(String::as_str)
        .unwrap_or("rr")
        .parse()
        .unwrap_or_else(|e: String| {
            eprintln!("{e}");
            exit(2);
        });
    let threads_per_replica = get(&flags, "threads-per-replica", 0usize);
    let rate = get(&flags, "rate", 0.0f64);
    let shed_depth = get(&flags, "shed-depth", 0usize);
    let serve_cfg = lttf::serve::ServeConfig {
        batch: lttf::serve::BatchConfig {
            max_batch: get(&flags, "max-batch", 8usize),
            max_wait_ms: get(&flags, "max-wait-ms", 5u64),
            queue_cap: get(&flags, "queue-cap", 128usize),
        },
        replicas: get(&flags, "replicas", 1usize),
        policy,
        threads_per_replica: (threads_per_replica > 0).then_some(threads_per_replica),
        seed: get(&flags, "seed", 0u64),
        admission: lttf::serve::AdmissionConfig {
            rate: (rate > 0.0).then_some(rate),
            burst: get(&flags, "burst", 16.0f64),
            shed_depth: (shed_depth > 0).then_some(shed_depth),
            ..lttf::serve::AdmissionConfig::default()
        },
        drift: lttf::serve::DriftConfig {
            threshold: get(&flags, "drift-threshold", 1.0f64),
            min_count: get(&flags, "drift-min-count", 64u64),
            ..lttf::serve::DriftConfig::default()
        },
        session: lttf::serve::SessionConfig {
            max_sessions: get(&flags, "sessions", 256usize),
            ttl_ms: get(&flags, "session-ttl-ms", 600_000u64),
        },
        adapt: lttf::serve::AdaptConfig {
            enabled: flag_set(&flags, "adapt"),
            lr: get(&flags, "adapt-lr", 1e-3f32),
            steps: get(&flags, "adapt-steps", 4usize),
            batch: get(&flags, "adapt-batch", 8usize),
            buffer: get(&flags, "adapt-buffer", 64usize),
            min_examples: get(&flags, "adapt-min-examples", 8usize),
            interval_ms: get(&flags, "adapt-interval-ms", 500u64),
            ..lttf::serve::AdaptConfig::default()
        },
    };
    let model = lttf::serve::LoadedModel::load(model_base).unwrap_or_else(|e| {
        eprintln!("cannot load {model_base}: {e}");
        exit(1);
    });
    let name = std::path::Path::new(model_base)
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("default")
        .to_string();
    println!(
        "serving '{}' (target '{}', lx {}, ly {}) as model '{name}'; drift monitor {}",
        model_base,
        model.target(),
        model.cfg().lx,
        model.cfg().ly,
        if model.profile().is_some() {
            "armed (checkpoint carries a reference profile)"
        } else {
            "unavailable (no reference profile in checkpoint — retrain to enable)"
        },
    );
    let registry = lttf::serve::Registry::single(&name, model);
    let handle = lttf::serve::serve(registry, &format!("127.0.0.1:{port}"), serve_cfg)
        .unwrap_or_else(|e| {
            eprintln!("cannot bind port {port}: {e}");
            exit(1);
        });
    println!(
        "listening on {} ({} replica(s), {:?} dispatch, max_batch {}, max_wait {} ms, \
         queue {}/replica); hot reload with {{\"cmd\":\"reload\",\"path\":…}}; \
         send requests with e.g. `nc 127.0.0.1 {port}`; \
         type 'quit' or close stdin to stop",
        handle.addr(),
        serve_cfg.replicas,
        serve_cfg.policy,
        serve_cfg.batch.max_batch,
        serve_cfg.batch.max_wait_ms,
        serve_cfg.batch.queue_cap,
    );
    println!(
        "sessions: up to {} (ttl {} s) via {{\"cmd\":\"open\"}}/{{\"cmd\":\"push\"}}/{{\"cmd\":\"close\"}}; \
         online adaptation {}",
        serve_cfg.session.max_sessions,
        serve_cfg.session.ttl_ms / 1000,
        if serve_cfg.adapt.enabled {
            format!(
                "ON (lr {:.0e}, {} steps, drift-triggered every {} ms)",
                serve_cfg.adapt.lr, serve_cfg.adapt.steps, serve_cfg.adapt.interval_ms
            )
        } else {
            "off (enable with --adapt)".to_string()
        },
    );
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    println!("shutting down (draining in-flight requests)…");
    for (name, summary) in handle.shutdown() {
        println!("{name}: {}", summary.render());
    }
}

/// One request/response round trip on the watch connection. Exits the
/// process on IO failure — a dashboard with a dead server has nothing
/// left to do.
fn watch_roundtrip(
    writer: &mut std::net::TcpStream,
    reader: &mut std::io::BufReader<std::net::TcpStream>,
    line: &str,
) -> String {
    use std::io::{BufRead, Write};
    writeln!(writer, "{line}").and_then(|_| writer.flush()).unwrap_or_else(|e| {
        eprintln!("send failed: {e}");
        exit(1);
    });
    let mut resp = String::new();
    match reader.read_line(&mut resp) {
        Ok(0) => {
            eprintln!("server closed the connection");
            exit(1);
        }
        Ok(_) => resp.trim_end().to_string(),
        Err(e) => {
            eprintln!("recv failed: {e}");
            exit(1);
        }
    }
}

/// `lttf watch`: a live terminal dashboard over a running `lttf serve`.
/// Polls the `stats` wire command every `--interval-ms` and renders
/// trailing-window latency, per-request cost, memory, flow rates, and
/// the drift verdict; with `--scrape-out FILE` it also fetches the
/// Prometheus exposition each tick and **appends** it as one
/// period-stamped JSONL snapshot line (`{"t_ms":…,"iter":…,"metrics":…}`),
/// so a watch run preserves its whole scrape history instead of keeping
/// only the last tick (CI validates the file with `metrics_check`,
/// which checks every snapshot). `--iters N` stops after N ticks
/// (0 = forever).
fn cmd_watch(flags: HashMap<String, String>) {
    let host = flags.get("host").map(String::as_str).unwrap_or("127.0.0.1");
    let port = get(&flags, "port", 7878u16);
    let interval_ms = get(&flags, "interval-ms", 1000u64);
    let iters = get(&flags, "iters", 0u64);
    let model = flags.get("model").cloned();
    let scrape_out = flags.get("scrape-out").cloned();
    let clear = !flag_set(&flags, "no-clear");

    let addr = format!("{host}:{port}");
    let stream = std::net::TcpStream::connect(&addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        exit(1);
    });
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().unwrap_or_else(|e| {
        eprintln!("cannot clone stream: {e}");
        exit(1);
    });
    let mut reader = std::io::BufReader::new(stream);

    // A fresh watch run starts a fresh scrape history; each tick appends
    // one snapshot line below.
    if let Some(path) = &scrape_out {
        std::fs::write(path, b"").unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            exit(1);
        });
    }
    let epoch = std::time::Instant::now();
    let mut tick = 0u64;
    loop {
        tick += 1;
        let req = lttf::serve::protocol::format_stats_request(tick, model.as_deref());
        let resp = watch_roundtrip(&mut writer, &mut reader, &req);
        let report = match lttf::serve::protocol::parse_stats_response(&resp) {
            Ok((_, Ok(r))) => r,
            Ok((_, Err(e))) => {
                eprintln!("stats error: {e}");
                exit(1);
            }
            Err(e) => {
                eprintln!("bad stats response: {e}");
                exit(1);
            }
        };
        if clear {
            // ANSI clear + home; suppressible for logs and dumb terminals.
            print!("\x1b[2J\x1b[H");
        }
        println!("lttf watch — '{}' @ {addr} (tick {tick})", report.model);
        println!(
            "  gen {} | {} replica(s) | queue {} | served {} lifetime, {} in last {:.0}s",
            report.generation,
            report.replicas,
            report.queue_depth,
            report.served_total,
            report.window_count,
            report.window_ms as f64 / 1e3,
        );
        println!(
            "  latency   p50 {:.2} ms   p95 {:.2} ms   p99 {:.2} ms (window)",
            report.p50_ms, report.p95_ms, report.p99_ms
        );
        println!(
            "  phases    queue-wait p50 {:.2} ms | service p50 {:.2} ms",
            report.queue_p50_ms, report.service_p50_ms
        );
        println!(
            "  cost      cpu p50 {:.2} ms p95 {:.2} ms | alloc p50 {} p95 {} per request",
            report.cpu_p50_ms,
            report.cpu_p95_ms,
            fmt_bytes(report.alloc_p50_bytes as u64),
            fmt_bytes(report.alloc_p95_bytes as u64),
        );
        println!(
            "  memory    {} live | {} peak",
            fmt_bytes(report.mem_live_bytes),
            fmt_bytes(report.mem_peak_bytes),
        );
        println!(
            "  flows     shed {:.2}/s   rejected {:.2}/s   resubmitted {:.2}/s",
            report.shed_per_sec, report.rejected_per_sec, report.resubmitted_per_sec
        );
        if report.drift_available {
            let scores = report
                .drift_scores
                .iter()
                .map(|s| format!("{s:.2}"))
                .collect::<Vec<_>>()
                .join(" ");
            println!(
                "  drift     {} | scores [{scores}] pred {:.2} thr {:.1} (n={})",
                if report.drift_alert { "ALERT" } else { "ok" },
                report.drift_prediction_score,
                report.drift_threshold,
                report.drift_window_count,
            );
        } else {
            println!("  drift     unavailable (checkpoint has no reference profile)");
        }
        println!(
            "  sessions  {} open | {} opened | {} evicted",
            report.sessions_open, report.sessions_opened, report.session_evictions
        );
        if report.adapt_enabled {
            println!(
                "  adapt     {} | steps {} | published {} | rolled back {} | \
                 overhead {:.0} ms cpu, {} alloc",
                report.adapt_state,
                report.adapt_steps,
                report.adapt_publishes,
                report.adapt_rollbacks,
                report.adapt_cpu_ms,
                fmt_bytes(report.adapt_alloc_bytes),
            );
        } else {
            println!("  adapt     off (serve with --adapt to enable)");
        }
        if let Some(path) = &scrape_out {
            let req = lttf::obs::JsonObj::new()
                .int("id", tick)
                .str("cmd", "metrics")
                .finish();
            let resp = watch_roundtrip(&mut writer, &mut reader, &req);
            match lttf::serve::protocol::parse_metrics_response(&resp) {
                Ok((_, Ok(text))) => {
                    let line = lttf::obs::JsonObj::new()
                        .int("t_ms", epoch.elapsed().as_millis() as u64)
                        .int("iter", tick)
                        .str("metrics", &text)
                        .finish();
                    use std::io::Write as _;
                    std::fs::OpenOptions::new()
                        .append(true)
                        .open(path)
                        .and_then(|mut f| writeln!(f, "{line}"))
                        .unwrap_or_else(|e| {
                            eprintln!("cannot append to {path}: {e}");
                            exit(1);
                        });
                    println!(
                        "  scrape    appended snapshot {tick} to {path} ({} bytes)",
                        text.len()
                    );
                }
                Ok((_, Err(e))) | Err(e) => {
                    eprintln!("metrics error: {e}");
                    exit(1);
                }
            }
        }
        if iters > 0 && tick >= iters {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

/// One closed-loop client run against a freshly started server: `threads`
/// clients each send `per_thread` requests back-to-back over their own
/// connection. Returns (elapsed, client-observed latencies).
fn bench_serve_run(
    addr: std::net::SocketAddr,
    threads: usize,
    per_thread: usize,
    window: &[f32],
) -> (std::time::Duration, lttf::serve::LatencyStats) {
    use std::io::{BufRead, BufReader, Write};
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let window = window.to_vec();
            std::thread::spawn(move || {
                let stream = std::net::TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut lat = Vec::with_capacity(per_thread);
                let mut resp = String::new();
                for i in 0..per_thread {
                    let line = lttf::obs::JsonObj::new()
                        .int("id", (t * per_thread + i) as u64)
                        .nums("values", window.iter().copied())
                        .int("t0", 1_700_000_000)
                        .int("dt", 3600)
                        .finish();
                    let sent = std::time::Instant::now();
                    writeln!(writer, "{line}").expect("send");
                    resp.clear();
                    reader.read_line(&mut resp).expect("recv");
                    lat.push(sent.elapsed().as_nanos() as u64);
                    let (_, result) =
                        lttf::serve::protocol::parse_response(resp.trim_end()).expect("parse");
                    result.expect("request failed");
                }
                lat
            })
        })
        .collect();
    let mut stats = lttf::serve::LatencyStats::new();
    for h in handles {
        for ns in h.join().expect("client thread") {
            stats.record(ns);
        }
    }
    (t0.elapsed(), stats)
}

/// Arrival-rate envelope for the open-loop generator: a multiplier on
/// the base rate as a function of time into the run.
#[derive(Clone, Copy, PartialEq)]
enum Pattern {
    /// Constant rate.
    Uniform,
    /// 400 ms square wave: 1.75x for 200 ms, then 0.25x — a burst train.
    Bursty,
    /// One sinusoidal "day" over the run: 1 + 0.75 sin(2πt/T).
    Diurnal,
}

impl Pattern {
    fn parse(s: &str) -> Pattern {
        match s {
            "uniform" => Pattern::Uniform,
            "bursty" => Pattern::Bursty,
            "diurnal" => Pattern::Diurnal,
            other => {
                eprintln!("unknown pattern '{other}' (expected uniform|bursty|diurnal)");
                exit(2);
            }
        }
    }

    fn name(self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::Bursty => "bursty",
            Pattern::Diurnal => "diurnal",
        }
    }

    /// Rate multiplier at `t` seconds into a `duration`-second run.
    fn envelope(self, t: f64, duration: f64) -> f64 {
        match self {
            Pattern::Uniform => 1.0,
            Pattern::Bursty => {
                if (t / 0.4).fract() < 0.5 {
                    1.75
                } else {
                    0.25
                }
            }
            Pattern::Diurnal => {
                1.0 + 0.75 * (2.0 * std::f64::consts::PI * t / duration.max(1e-9)).sin()
            }
        }
    }

    /// Upper bound of [`Pattern::envelope`], for Poisson thinning.
    fn peak(self) -> f64 {
        match self {
            Pattern::Uniform => 1.0,
            Pattern::Bursty | Pattern::Diurnal => 1.75,
        }
    }
}

/// One client's deterministic arrival schedule (seconds from run start):
/// a Poisson process at `rate` req/s shaped by `pattern` via thinning.
/// The same seed always yields the same offered traffic.
fn arrival_schedule(seed: u64, rate: f64, pattern: Pattern, duration: f64) -> Vec<f64> {
    let mut rng = Rng::seed(seed);
    let lam_max = (rate * pattern.peak()).max(1e-9);
    let mut t = 0.0f64;
    let mut out = Vec::new();
    loop {
        t += rng.exponential(lam_max as f32) as f64;
        if t >= duration {
            return out;
        }
        let keep = pattern.envelope(t, duration) * rate / lam_max;
        if (rng.uniform(0.0, 1.0) as f64) < keep {
            out.push(t);
        }
    }
}

/// Aggregated outcome of one open-loop run.
struct OpenLoopOutcome {
    sent: u64,
    completed: u64,
    shed: u64,
    failed: u64,
    stats: lttf::serve::LatencyStats,
    elapsed: std::time::Duration,
    first_error: Option<String>,
}

/// Open-loop load generation: `clients` independent connections, each
/// firing requests on a precomputed seeded schedule totalling `rate`
/// req/s across the fleet, shaped by `pattern`. Arrivals are paced by the
/// schedule, not by responses (a lagging client sends its overdue
/// requests back-to-back), so offered load keeps pressing a saturated
/// server — exactly what distinguishes open- from closed-loop load.
///
/// Refusals carrying a `retry_after_ms` hint (admission control, full
/// queues) count as `shed`, separately from hard failures.
fn open_loop_run(
    addr: std::net::SocketAddr,
    clients: usize,
    rate: f64,
    pattern: Pattern,
    duration: f64,
    seed: u64,
    window: &[f32],
) -> OpenLoopOutcome {
    use std::io::{BufRead, BufReader, Write};
    let per_client = rate / clients.max(1) as f64;
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let sched = arrival_schedule(
                seed.wrapping_mul(0x9e37_79b9).wrapping_add(c as u64),
                per_client,
                pattern,
                duration,
            );
            let window = window.to_vec();
            std::thread::spawn(move || {
                let mut out = OpenLoopOutcome {
                    sent: 0,
                    completed: 0,
                    shed: 0,
                    failed: 0,
                    stats: lttf::serve::LatencyStats::new(),
                    elapsed: std::time::Duration::ZERO,
                    first_error: None,
                };
                let Ok(stream) = std::net::TcpStream::connect(addr) else {
                    out.failed = sched.len() as u64;
                    out.first_error = Some("connect failed".to_string());
                    return out;
                };
                let _ = stream.set_nodelay(true);
                // Replies always come (the server answers every request,
                // shed or served); the timeout only guards a dead server.
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let start = std::time::Instant::now();
                let mut resp = String::new();
                for (k, &at) in sched.iter().enumerate() {
                    // Pace by the schedule; if the previous reply arrived
                    // late, fire immediately (the backlog is part of the
                    // offered load, not forgiven).
                    let due = std::time::Duration::from_secs_f64(at);
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let line = lttf::obs::JsonObj::new()
                        .int("id", ((c as u64) << 32) | k as u64)
                        .nums("values", window.iter().copied())
                        .int("t0", 1_700_000_000)
                        .int("dt", 3600)
                        .finish();
                    let sent_at = std::time::Instant::now();
                    if writeln!(writer, "{line}").is_err() {
                        out.failed += 1;
                        continue;
                    }
                    out.sent += 1;
                    resp.clear();
                    if reader.read_line(&mut resp).is_err() || resp.is_empty() {
                        out.failed += 1;
                        if out.first_error.is_none() {
                            out.first_error = Some("no reply".to_string());
                        }
                        continue;
                    }
                    match lttf::serve::protocol::parse_response_meta(resp.trim_end()) {
                        Ok(meta) => match meta.result {
                            Ok(_) => {
                                out.completed += 1;
                                out.stats.record(sent_at.elapsed().as_nanos() as u64);
                            }
                            Err(_) if meta.retry_after_ms.is_some() => out.shed += 1,
                            Err(e) => {
                                out.failed += 1;
                                if out.first_error.is_none() {
                                    out.first_error = Some(e);
                                }
                            }
                        },
                        Err(e) => {
                            out.failed += 1;
                            if out.first_error.is_none() {
                                out.first_error = Some(e);
                            }
                        }
                    }
                }
                out.elapsed = start.elapsed();
                out
            })
        })
        .collect();
    let mut total = OpenLoopOutcome {
        sent: 0,
        completed: 0,
        shed: 0,
        failed: 0,
        stats: lttf::serve::LatencyStats::new(),
        elapsed: std::time::Duration::ZERO,
        first_error: None,
    };
    for h in handles {
        let c = h.join().expect("client thread");
        total.sent += c.sent;
        total.completed += c.completed;
        total.shed += c.shed;
        total.failed += c.failed;
        total.stats.merge(&c.stats);
        if total.first_error.is_none() {
            total.first_error = c.first_error;
        }
    }
    total.elapsed = t0.elapsed();
    total
}

/// The host's physical parallelism, recorded alongside scaling numbers so
/// a reader can judge them in context.
fn host_cores() -> u64 {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as u64
}

/// Outcome of streaming one regime-shift series through a session.
struct StreamOutcome {
    pushes: u64,
    forecasts: u64,
    failed: u64,
    adapted_forecasts: u64,
    publishes: u64,
    rollbacks: u64,
    pre: lttf::eval::ErrorAccum,
    post: lttf::eval::ErrorAccum,
    first_error: Option<String>,
}

/// Stream `series` row-by-row through a session on the server at `addr`
/// and score every returned forecast against the known future.
///
/// Forecasts whose horizon lies entirely before `shift_at` score into
/// `pre`; forecasts starting at or after `shift_at` score into `post`
/// (straddling horizons are skipped so the two numbers are clean).
/// `pace` is slept after every post-shift push so a background adapter
/// has wall-clock time to observe drift and publish while the tail of
/// the stream is still arriving.
#[allow(clippy::too_many_arguments)]
fn stream_series(
    addr: std::net::SocketAddr,
    series: &Tensor,
    ly: usize,
    shift_at: usize,
    target_col: usize,
    t0: i64,
    dt: i64,
    pace: std::time::Duration,
) -> StreamOutcome {
    use lttf::serve::protocol as proto;
    use std::io::{BufRead, BufReader, Write};
    let (len, dims) = (series.shape()[0], series.shape()[1]);
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    let mut ask = |writer: &mut std::net::TcpStream, line: String| -> String {
        writeln!(writer, "{line}").expect("send");
        resp.clear();
        reader.read_line(&mut resp).expect("recv");
        resp.trim_end().to_string()
    };

    let mut out = StreamOutcome {
        pushes: 0,
        forecasts: 0,
        failed: 0,
        adapted_forecasts: 0,
        publishes: 0,
        rollbacks: 0,
        pre: lttf::eval::ErrorAccum::new(),
        post: lttf::eval::ErrorAccum::new(),
        first_error: None,
    };

    let open = ask(&mut writer, proto::format_open(0, None, t0, dt));
    let (_, opened) = proto::parse_open_response(&open).expect("open parse");
    let (session, _window_rows) = opened.expect("open refused");

    let fail = |out: &mut StreamOutcome, e: String| {
        out.failed += 1;
        if out.first_error.is_none() {
            out.first_error = Some(e);
        }
    };
    for t in 0..len {
        let row: Vec<f32> = (0..dims).map(|d| series.at(&[t, d])).collect();
        let reply = ask(&mut writer, proto::format_push(1 + t as u64, session, &row));
        out.pushes += 1;
        match proto::parse_push_response(&reply) {
            Ok((_, Ok(proto::PushReply::Pending(_)))) => {}
            Ok((_, Ok(proto::PushReply::Forecast {
                adapted, forecast, ..
            }))) => {
                out.forecasts += 1;
                if adapted {
                    out.adapted_forecasts += 1;
                }
                // The window ends at row t, so the forecast covers rows
                // t+1 .. t+1+ly. Score it if the future is in the series.
                let start = t + 1;
                if start + ly <= len {
                    let truth = lttf::eval::horizon_truth(series, start, ly, target_col);
                    if start >= shift_at {
                        out.post.observe(&forecast, &truth);
                    } else if start + ly <= shift_at {
                        out.pre.observe(&forecast, &truth);
                    }
                }
            }
            Ok((_, Err(e))) => fail(&mut out, e),
            Err(e) => fail(&mut out, e),
        }
        if t >= shift_at && !pace.is_zero() {
            std::thread::sleep(pace);
        }
    }

    let stats = ask(&mut writer, proto::format_stats_request(u64::MAX - 1, None));
    if let Ok((_, Ok(report))) = proto::parse_stats_response(&stats) {
        out.publishes = report.adapt_publishes;
        out.rollbacks = report.adapt_rollbacks;
    }
    let closed = ask(&mut writer, proto::format_close(u64::MAX, session));
    let _ = proto::parse_close_response(&closed).expect("close parse");
    out
}

/// `lttf bench-serve`: serving-tier benchmarks, three modes.
///
/// * `--mode closed` — the original closed-loop batching comparison
///   (`max_batch` 1 vs N, client threads in lock-step).
/// * `--mode open` — one open-loop run against a replicated server with
///   seeded bursty/diurnal/uniform arrivals; prints and records offered
///   vs completed throughput and the shed count.
/// * `--mode scaling` — the replica-scaling curve: the same open-loop
///   traffic against 1, 2, and 4 replicas.
/// * `--mode stream` — the regime-shift streaming comparison: train a
///   small Conformer on the pre-shift half of a synthetic series with an
///   abrupt 5σ level shift, stream the whole series through a session
///   (`open`/`push`/`close`) against a frozen server and against one
///   with drift-triggered online adaptation, and record pre/post-shift
///   MSE for both (`stream_frozen` / `stream_adapted` rows).
/// * `--mode all` (default) — `closed` + `scaling` + `stream`, the
///   committed `results/BENCH_serve.json` set.
///
/// Scaling runs give the model a **service-time floor**
/// (`--service-floor-ms`): each batch forward takes at least that long,
/// sleeping out the remainder. This calibrates the bench to a realistic
/// model service time and — crucially on small CI hosts — isolates the
/// serving tier being measured (dispatch, queues, batching) from raw
/// model compute, which would otherwise serialize every replica onto
/// however few cores the host has. The floor and the host's core count
/// are recorded in every affected entry.
fn cmd_bench_serve(flags: HashMap<String, String>) {
    use lttf::obs::JsonObj;
    let mode = flags.get("mode").map(String::as_str).unwrap_or("all");
    let threads = get(&flags, "threads", 8usize);
    let requests = get(&flags, "requests", 40usize); // per thread
    let max_batch = get(&flags, "max-batch", 8usize);
    let max_wait_ms = get(&flags, "max-wait-ms", 2u64);
    let lx = get(&flags, "lx", 48usize);
    let d_model = get(&flags, "d-model", 16usize);
    let clients = get(&flags, "clients", 160usize);
    let rate = get(&flags, "rate", 900.0f64);
    let duration = get(&flags, "duration-ms", 4000u64) as f64 / 1e3;
    let pattern = Pattern::parse(flags.get("pattern").map(String::as_str).unwrap_or("bursty"));
    let service_floor_ms = get(&flags, "service-floor-ms", 40.0f64);
    let open_replicas = get(&flags, "replicas", 2usize);
    let seed = get(&flags, "seed", 42u64);
    let out_dir = flags
        .get("out-dir")
        .map(String::as_str)
        .unwrap_or("results");

    // Closed-loop model: dims=3, lx 48 — heavy enough that batching shows.
    let mut cfg = ConformerConfig::new(3, lx, lx / 2);
    cfg.d_model = d_model;
    cfg.n_heads = if d_model.is_multiple_of(4) { 4 } else { 2 };
    cfg.multiscale_strides = vec![1, (lx / 4).max(2)];
    let window_len = cfg.lx * cfg.c_in;
    let make_model = || {
        let model = TrainedModel::from_conformer(&cfg, 7);
        let fit_on = Tensor::randn(&[256, cfg.c_in], &mut Rng::seed(5))
            .mul_scalar(2.0)
            .add_scalar(1.0);
        let scaler = lttf::data::StandardScaler::fit(&fit_on);
        lttf::serve::LoadedModel::from_parts(model, cfg.clone(), scaler, "y".to_string(), 0)
    };
    let window = Tensor::randn(&[window_len], &mut Rng::seed(6)).data().to_vec();

    // Open-loop model: the smallest architecture in the repo plus the
    // service-time floor, so the serving tier — not the forward pass — is
    // what the replica curve measures.
    let open_cfg = ConformerConfig::tiny(2, 8, 4);
    let open_window_len = open_cfg.lx * open_cfg.c_in;
    let make_open_model = || {
        let model = TrainedModel::from_conformer(&open_cfg, 3);
        let fit_on = Tensor::randn(&[64, open_cfg.c_in], &mut Rng::seed(9))
            .mul_scalar(3.0)
            .add_scalar(5.0);
        let scaler = lttf::data::StandardScaler::fit(&fit_on);
        let mut m = lttf::serve::LoadedModel::from_parts(
            model,
            open_cfg.clone(),
            scaler,
            "OT".to_string(),
            1,
        );
        m.set_service_floor_ms(service_floor_ms);
        m
    };
    let open_window = Tensor::randn(&[open_window_len], &mut Rng::seed(8)).data().to_vec();
    let open_serve_cfg = |replicas: usize| lttf::serve::ServeConfig {
        batch: lttf::serve::BatchConfig {
            max_batch: 8,
            max_wait_ms: 5,
            queue_cap: 16,
        },
        replicas,
        policy: lttf::serve::Policy::RoundRobin,
        threads_per_replica: Some(1),
        seed,
        ..lttf::serve::ServeConfig::default()
    };

    let mut lines = Vec::new();

    let open_entry = |label: &str,
                      replicas: usize,
                      out: &OpenLoopOutcome,
                      summary: &lttf::serve::LatencySummary| {
        let offered = out.sent as f64 / out.elapsed.as_secs_f64();
        let rps = out.completed as f64 / out.elapsed.as_secs_f64();
        JsonObj::new()
            .str("suite", "serve")
            .str("bench", label)
            .int("clients", clients as u64)
            .int("replicas", replicas as u64)
            .str("pattern", pattern.name())
            .num("service_floor_ms", service_floor_ms)
            .int("host_cores", host_cores())
            .num("offered_rps", offered)
            .num("rps", rps)
            .int("sent", out.sent)
            .int("completed", out.completed)
            .int("shed", out.shed)
            .int("failed", out.failed)
            .int("min_ns", summary.min_ns)
            .int("mean_ns", summary.mean_ns)
            .int("median_ns", summary.p50_ns)
            .int("p95_ns", summary.p95_ns)
            .int("p99_ns", summary.p99_ns)
            .int("max_ns", summary.max_ns)
            .finish()
    };

    let run_open = |replicas: usize, lines: &mut Vec<String>| -> f64 {
        let registry = lttf::serve::Registry::single("bench", make_open_model());
        let handle = lttf::serve::serve(registry, "127.0.0.1:0", open_serve_cfg(replicas))
            .unwrap_or_else(|e| {
                eprintln!("cannot start server: {e}");
                exit(1);
            });
        let mut out = open_loop_run(
            handle.addr(),
            clients,
            rate,
            pattern,
            duration,
            seed,
            &open_window,
        );
        handle.shutdown();
        let summary = out.stats.summary();
        let offered = out.sent as f64 / out.elapsed.as_secs_f64();
        let rps = out.completed as f64 / out.elapsed.as_secs_f64();
        println!(
            "open/{} replicas {replicas}: offered {offered:.0} rps, completed {rps:.0} rps, \
             shed {}, failed {}, {}",
            pattern.name(),
            out.shed,
            out.failed,
            summary.render()
        );
        if out.failed > 0 {
            if let Some(e) = &out.first_error {
                eprintln!("warning: {} hard failures (first: {e})", out.failed);
            }
        }
        lines.push(open_entry(
            &format!("open_loop_{}/replicas_{replicas}", pattern.name()),
            replicas,
            &out,
            &summary,
        ));
        rps
    };

    if mode == "closed" || mode == "all" {
        // Single-client row first: one connection issuing requests
        // back-to-back, so every request is a batch=1 forward pass with no
        // queueing — the committed p50/p95 here tracks the kernel-level
        // single-request latency across PRs (the SIMD work moves this row).
        {
            let n = threads * requests; // same total as one matrix cell
            println!("bench-serve closed loop, single client: {n} sequential batch=1 requests");
            let registry = lttf::serve::Registry::single("bench", make_model());
            let handle = lttf::serve::serve(
                registry,
                "127.0.0.1:0",
                lttf::serve::ServeConfig {
                    batch: lttf::serve::BatchConfig {
                        max_batch: 1,
                        max_wait_ms,
                        queue_cap: 32,
                    },
                    ..lttf::serve::ServeConfig::default()
                },
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot start server: {e}");
                exit(1);
            });
            let (elapsed, mut stats) = bench_serve_run(handle.addr(), 1, n, &window);
            handle.shutdown();
            let throughput = n as f64 / elapsed.as_secs_f64();
            let summary = stats.summary();
            println!("single client: {throughput:.1} req/s, {}", summary.render());
            lines.push(
                JsonObj::new()
                    .str("suite", "serve")
                    .str("bench", "closed_loop_single_client/max_batch_1")
                    .int("threads", 1)
                    .int("requests", n as u64)
                    .int("max_batch", 1)
                    .num("rps", throughput)
                    .int("min_ns", summary.min_ns)
                    .int("mean_ns", summary.mean_ns)
                    .int("median_ns", summary.p50_ns)
                    .int("p95_ns", summary.p95_ns)
                    .int("p99_ns", summary.p99_ns)
                    .int("max_ns", summary.max_ns)
                    .finish(),
            );
        }

        println!(
            "bench-serve closed loop: {threads} client threads x {requests} requests, lx {lx}, \
             d_model {d_model}, max_batch 1 vs {max_batch}"
        );
        let mut rps = Vec::new();
        for batch in [1usize, max_batch] {
            let registry = lttf::serve::Registry::single("bench", make_model());
            let handle = lttf::serve::serve(
                registry,
                "127.0.0.1:0",
                lttf::serve::ServeConfig {
                    batch: lttf::serve::BatchConfig {
                        max_batch: batch,
                        max_wait_ms,
                        queue_cap: (threads * 4).max(32),
                    },
                    ..lttf::serve::ServeConfig::default()
                },
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot start server: {e}");
                exit(1);
            });
            let (elapsed, mut stats) = bench_serve_run(handle.addr(), threads, requests, &window);
            handle.shutdown();
            let total = threads * requests;
            let throughput = total as f64 / elapsed.as_secs_f64();
            let summary = stats.summary();
            println!(
                "max_batch {batch}: {throughput:.1} req/s, {}",
                summary.render()
            );
            rps.push(throughput);
            lines.push(
                JsonObj::new()
                    .str("suite", "serve")
                    .str("bench", &format!("closed_loop/max_batch_{batch}"))
                    .int("threads", threads as u64)
                    .int("requests", total as u64)
                    .int("max_batch", batch as u64)
                    .num("rps", throughput)
                    .int("min_ns", summary.min_ns)
                    .int("mean_ns", summary.mean_ns)
                    .int("median_ns", summary.p50_ns)
                    .int("p95_ns", summary.p95_ns)
                    .int("p99_ns", summary.p99_ns)
                    .int("max_ns", summary.max_ns)
                    .finish(),
            );
        }
        let speedup = rps[1] / rps[0].max(1e-9);
        println!("batching speedup: {speedup:.2}x over max_batch=1");
        lines.push(
            JsonObj::new()
                .str("suite", "serve")
                .str("bench", "batching_speedup")
                .int("threads", threads as u64)
                .int("max_batch", max_batch as u64)
                .num("speedup", speedup)
                .int("min_ns", 0)
                .int("mean_ns", 0)
                .int("median_ns", 0)
                .finish(),
        );
    }

    if mode == "open" {
        println!(
            "bench-serve open loop: {clients} clients, {rate:.0} rps offered, {} arrivals, \
             {open_replicas} replica(s), floor {service_floor_ms} ms",
            pattern.name()
        );
        run_open(open_replicas, &mut lines);
    }

    if mode == "scaling" || mode == "all" {
        println!(
            "bench-serve replica scaling: {clients} clients, {rate:.0} rps offered, {} arrivals, \
             floor {service_floor_ms} ms, replicas 1/2/4",
            pattern.name()
        );
        let mut by_replicas = Vec::new();
        for replicas in [1usize, 2, 4] {
            by_replicas.push((replicas, run_open(replicas, &mut lines)));
        }
        let r1 = by_replicas[0].1.max(1e-9);
        let speedup = by_replicas.last().unwrap().1 / r1;
        println!("replica speedup: {speedup:.2}x at 4 replicas over 1");
        lines.push(
            JsonObj::new()
                .str("suite", "serve")
                .str("bench", "replica_speedup")
                .int("clients", clients as u64)
                .str("pattern", pattern.name())
                .num("service_floor_ms", service_floor_ms)
                .int("host_cores", host_cores())
                .num("speedup", speedup)
                .int("min_ns", 0)
                .int("mean_ns", 0)
                .int("median_ns", 0)
                .finish(),
        );
    }

    if mode == "stream" || mode == "all" {
        let stream_len = get(&flags, "stream-len", 640usize);
        let stream_shift = get(&flags, "stream-shift", 5.0f32);
        let stream_lx = get(&flags, "stream-lx", 24usize);
        let stream_ly = get(&flags, "stream-ly", 8usize);
        let shift_at = stream_len / 2;
        let spec = lttf::eval::RegimeSpec {
            len: stream_len,
            dims: 2,
            shift_at,
            shift: stream_shift,
            seed,
        };
        let series = lttf::eval::generate_regime(&spec);
        let (t0, dt) = (1_700_000_000i64, 3600i64);

        // Train a small Conformer on the pre-shift half only, so the
        // post-shift regime is genuinely out of distribution for it.
        let pre = series.narrow(0, 0, shift_at);
        let ts = lttf::data::TimeSeries::new(
            pre.clone(),
            (0..shift_at).map(|i| t0 + dt * i as i64).collect(),
            vec!["x".to_string(), "y".to_string()],
            1,
            lttf::data::Freq::Irregular,
        );
        let mut scfg = ConformerConfig::new(2, stream_lx, stream_ly);
        scfg.d_model = 8;
        scfg.n_heads = 2;
        scfg.multiscale_strides = vec![1, (stream_lx / 4).max(2)];
        let train_set = WindowDataset::new(
            &ts,
            Split::Train,
            (0.9, 0.05),
            stream_lx,
            stream_ly,
            stream_lx / 2,
        );
        let mut trained = TrainedModel::from_conformer(&scfg, seed);
        println!(
            "bench-serve stream: training on {} pre-shift rows ({} params)…",
            shift_at,
            trained.num_parameters()
        );
        lttf::eval::train(
            &mut trained,
            &train_set,
            None,
            &TrainOptions {
                epochs: 3,
                batch_size: 8,
                lr: 1e-3,
                patience: 2,
                lr_decay: 0.7,
                max_batches: 60,
                clip: 5.0,
                seed,
                val_max_windows: usize::MAX,
                health: health_flags(&flags),
            },
        );
        let snapshot = trained.params().snapshot();
        let scaler = train_set.scaler().clone();
        let profile = lttf::eval::fit_reference_profile(&pre);

        // Frozen vs adapting: same checkpoint, same traffic, same seed —
        // the only difference is the background adapter.
        let make_stream_model = || {
            let mut m = TrainedModel::from_conformer(&scfg, seed);
            m.params_mut().restore(&snapshot);
            lttf::serve::LoadedModel::from_parts(m, scfg.clone(), scaler.clone(), "y".into(), 1)
                .with_profile(profile.clone())
        };
        let stream_serve_cfg = |adapt_on: bool| lttf::serve::ServeConfig {
            batch: lttf::serve::BatchConfig {
                max_batch: 4,
                max_wait_ms: 2,
                queue_cap: 64,
            },
            replicas: 1,
            seed,
            drift: lttf::serve::DriftConfig {
                window_ms: 60_000,
                threshold: 1.0,
                min_count: 32,
            },
            adapt: lttf::serve::AdaptConfig {
                enabled: adapt_on,
                lr: 2e-2,
                steps: 10,
                batch: 8,
                buffer: 64,
                min_examples: 8,
                interval_ms: 50,
                ..lttf::serve::AdaptConfig::default()
            },
            ..lttf::serve::ServeConfig::default()
        };
        let run_stream = |label: &str, adapt_on: bool, lines: &mut Vec<String>| -> f64 {
            let registry = lttf::serve::Registry::single("bench", make_stream_model());
            let handle = lttf::serve::serve(registry, "127.0.0.1:0", stream_serve_cfg(adapt_on))
                .unwrap_or_else(|e| {
                    eprintln!("cannot start server: {e}");
                    exit(1);
                });
            let out = stream_series(
                handle.addr(),
                &series,
                stream_ly,
                shift_at,
                1,
                t0,
                dt,
                std::time::Duration::from_millis(4),
            );
            handle.shutdown();
            println!(
                "{label}: {} pushes, {} forecasts ({} adapted), {} published, \
                 {} rolled back, failed {}, pre-shift mse {:.4}, post-shift mse {:.4}",
                out.pushes,
                out.forecasts,
                out.adapted_forecasts,
                out.publishes,
                out.rollbacks,
                out.failed,
                out.pre.mse(),
                out.post.mse()
            );
            if out.failed > 0 {
                if let Some(e) = &out.first_error {
                    eprintln!("warning: {} stream failures (first: {e})", out.failed);
                }
            }
            lines.push(
                JsonObj::new()
                    .str("suite", "serve")
                    .str("bench", label)
                    .int("rows", stream_len as u64)
                    .int("shift_at", shift_at as u64)
                    .num("shift", stream_shift as f64)
                    .int("lx", stream_lx as u64)
                    .int("ly", stream_ly as u64)
                    .int("pushes", out.pushes)
                    .int("forecasts", out.forecasts)
                    .int("adapted_forecasts", out.adapted_forecasts)
                    .int("publishes", out.publishes)
                    .int("rollbacks", out.rollbacks)
                    .int("failed", out.failed)
                    .num("pre_shift_mse", out.pre.mse())
                    .num("post_shift_mse", out.post.mse())
                    .int("min_ns", 0)
                    .int("mean_ns", 0)
                    .int("median_ns", 0)
                    .finish(),
            );
            out.post.mse()
        };
        let frozen = run_stream("stream_frozen", false, &mut lines);
        let adapted = run_stream("stream_adapted", true, &mut lines);
        println!(
            "post-shift mse: frozen {frozen:.4} vs adapted {adapted:.4} \
             ({:.2}x)",
            frozen / adapted.max(1e-9)
        );
    }

    let mut mem_lines = Vec::new();
    if mode == "memory" || mode == "all" {
        // Peak-memory and allocation-rate bench: one closed-loop burst
        // against a batching server, bracketed by allocator snapshots so
        // the per-request allocation rate and process peak are attributed
        // to serving work. The committed results/BENCH_memory.json row is
        // the baseline bench_check.sh compares fresh runs against (fails
        // on >1.25x growth in peak bytes or allocs per request).
        let n = threads * requests;
        println!(
            "bench-serve memory: {threads} client threads x {requests} requests, \
             lx {lx}, d_model {d_model}, max_batch {max_batch}"
        );
        let registry = lttf::serve::Registry::single("bench", make_model());
        let handle = lttf::serve::serve(
            registry,
            "127.0.0.1:0",
            lttf::serve::ServeConfig {
                batch: lttf::serve::BatchConfig {
                    max_batch,
                    max_wait_ms,
                    queue_cap: (threads * 4).max(32),
                },
                ..lttf::serve::ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot start server: {e}");
            exit(1);
        });
        // Warm-up burst: one-time lazy allocations (pool threads, pack
        // buffers, connection scratch) must not count against the
        // steady-state per-request rate.
        let _ = bench_serve_run(handle.addr(), 1, 8.min(n), &window);
        lttf::obs::alloc::reset_peak();
        let allocs_before = lttf::obs::alloc::allocs_total();
        let bytes_before = lttf::obs::alloc::alloc_bytes_total();
        let (elapsed, mut stats) = bench_serve_run(handle.addr(), threads, requests, &window);
        let peak_bytes = lttf::obs::alloc::peak_bytes();
        let live_bytes = lttf::obs::alloc::live_bytes();
        let allocs = lttf::obs::alloc::allocs_total().saturating_sub(allocs_before);
        let alloc_bytes = lttf::obs::alloc::alloc_bytes_total().saturating_sub(bytes_before);
        handle.shutdown();
        let allocs_per_request = allocs / n as u64;
        let alloc_bytes_per_request = alloc_bytes / n as u64;
        let throughput = n as f64 / elapsed.as_secs_f64();
        let summary = stats.summary();
        println!(
            "memory: peak {} | live {} | {allocs_per_request} allocs/req, {} per request",
            fmt_bytes(peak_bytes),
            fmt_bytes(live_bytes),
            fmt_bytes(alloc_bytes_per_request)
        );
        if peak_bytes == 0 {
            println!("  (allocator accounting compiled out — build with the telemetry feature)");
        }
        mem_lines.push(
            JsonObj::new()
                .str("suite", "serve")
                .str("bench", "memory/closed_loop")
                .int("threads", threads as u64)
                .int("requests", n as u64)
                .int("max_batch", max_batch as u64)
                .int("peak_bytes", peak_bytes)
                .int("live_bytes", live_bytes)
                .int("allocs_per_request", allocs_per_request)
                .int("alloc_bytes_per_request", alloc_bytes_per_request)
                .num("rps", throughput)
                .int("min_ns", summary.min_ns)
                .int("mean_ns", summary.mean_ns)
                .int("median_ns", summary.p50_ns)
                .finish(),
        );
    }

    if !matches!(mode, "closed" | "open" | "scaling" | "stream" | "memory" | "all") {
        eprintln!("unknown mode '{mode}' (expected closed|open|scaling|stream|memory|all)");
        exit(2);
    }
    let write = |path: &str, lines: &[String]| {
        let io = || -> std::io::Result<()> {
            std::fs::create_dir_all(out_dir)?;
            let mut sink = lttf::obs::JsonlSink::create(path)?;
            for line in lines {
                sink.write_line(line)?;
            }
            sink.flush()
        };
        io().unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        println!("wrote {path}");
    };
    if !lines.is_empty() {
        write(&format!("{out_dir}/BENCH_serve.json"), &lines);
    }
    if !mem_lines.is_empty() {
        write(&format!("{out_dir}/BENCH_memory.json"), &mem_lines);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // `lttf trace [--trace-out FILE] <cmd> …` wraps any subcommand with
    // event recording and writes a Chrome trace_event JSON document when
    // the inner command returns (open it in chrome://tracing or
    // https://ui.perfetto.dev). The export is validated before writing.
    let mut trace_out: Option<String> = None;
    if args.first().map(String::as_str) == Some("trace") {
        args.remove(0);
        let mut out = "results/trace.json".to_string();
        if args.first().map(String::as_str) == Some("--trace-out") {
            args.remove(0);
            if args.is_empty() || args[0].starts_with("--") {
                eprintln!("--trace-out needs a file path");
                usage();
            }
            out = args.remove(0);
        }
        if args.is_empty() {
            eprintln!("lttf trace needs a subcommand to run");
            usage();
        }
        lttf::obs::trace::set_enabled(true);
        trace_out = Some(out);
    }

    // `lttf flame [--flame-out FILE] <cmd> …` wraps any subcommand with
    // the continuous stack sampler (LTTF_PROFILE_HZ, default 99 Hz) and
    // writes collapsed stacks when the inner command returns — the input
    // format of inferno / flamegraph.pl. Validated before writing.
    let mut flame_out: Option<String> = None;
    if args.first().map(String::as_str) == Some("flame") {
        args.remove(0);
        let mut out = "results/flame.txt".to_string();
        if args.first().map(String::as_str) == Some("--flame-out") {
            args.remove(0);
            if args.is_empty() || args[0].starts_with("--") {
                eprintln!("--flame-out needs a file path");
                usage();
            }
            out = args.remove(0);
        }
        if args.is_empty() {
            eprintln!("lttf flame needs a subcommand to run");
            usage();
        }
        let hz = lttf::obs::env::profile_hz().unwrap_or(99) as u64;
        if let Err(e) = lttf::obs::sampler::start(hz) {
            eprintln!("warning: flame sampling unavailable: {e}");
        }
        flame_out = Some(out);
    }

    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "generate" => cmd_generate(flags),
        "train" => cmd_train(flags),
        "forecast" => cmd_forecast(flags),
        "profile" => cmd_profile(flags),
        "serve" => cmd_serve(flags),
        "watch" => cmd_watch(flags),
        "bench-serve" => cmd_bench_serve(flags),
        _ => usage(),
    }

    if let Some(path) = flame_out {
        write_flame(&path);
    }

    if let Some(path) = trace_out {
        lttf::obs::trace::set_enabled(false);
        let export = lttf::obs::trace::export_chrome();
        if let Err(e) = lttf::obs::trace::validate_chrome(&export.json) {
            eprintln!("internal error: trace failed validation: {e}");
            exit(1);
        }
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        if let Err(e) = std::fs::write(&path, &export.json) {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }
        print!(
            "trace: {path} ({} events on {} threads",
            export.events, export.threads
        );
        if export.dropped > 0 {
            print!(", {} dropped to ring wrap — raise LTTF_TRACE_BUF", export.dropped);
        }
        println!("); open in chrome://tracing");
    }
}
