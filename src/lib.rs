//! # lttf
//!
//! Umbrella crate for the Rust reproduction of *Towards Long-Term
//! Time-Series Forecasting: Feature, Pattern, and Distribution*
//! (Conformer, ICDE 2023). Re-exports the whole workspace so examples and
//! downstream users need a single dependency:
//!
//! * [`tensor`] — N-D `f32` arrays, broadcasting, matmul, conv1d, pooling
//! * [`fft`] — FFT and autocorrelation
//! * [`autograd`] — tape-based reverse-mode differentiation
//! * [`nn`] — layers, six attention mechanisms, optimizers, losses
//! * [`data`] — series containers, scalers, windows, synthetic datasets
//! * [`conformer`] — the paper's model (SIRN + sliding-window attention +
//!   normalizing flow)
//! * [`baselines`] — GRU, LSTNet, N-BEATS, Informer, Autoformer,
//!   Reformer, Longformer, LogTrans, TS2Vec
//! * [`eval`] — metrics, trainer, experiment utilities
//! * [`obs`] — zero-dependency telemetry: spans, counters, JSONL run logs
//! * [`parallel`] — the fork-join thread pool behind the kernels
//! * [`serve`] — batched inference serving over TCP (`lttf serve`)
//!
//! See `examples/quickstart.rs` for an end-to-end training run.

pub use lttf_autograd as autograd;
pub use lttf_baselines as baselines;
pub use lttf_conformer as conformer;
pub use lttf_data as data;
pub use lttf_eval as eval;
pub use lttf_fft as fft;
pub use lttf_nn as nn;
pub use lttf_obs as obs;
pub use lttf_parallel as parallel;
pub use lttf_serve as serve;
pub use lttf_tensor as tensor;

/// Crate version, for binaries that report it.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

// Install the instrumented allocator for every binary and test that
// links this umbrella crate. Exactly one `#[global_allocator]` may exist
// per program, so the leaf crate owns the installation (see
// `lttf_obs::alloc`); with `--no-default-features` nothing is installed
// and the plain system allocator remains.
#[cfg(feature = "telemetry")]
#[global_allocator]
static GLOBAL_ALLOC: lttf_obs::alloc::CountingAlloc = lttf_obs::alloc::CountingAlloc;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_compile() {
        let t = crate::tensor::Tensor::ones(&[2]);
        assert_eq!(t.sum(), 2.0);
        assert!(!crate::VERSION.is_empty());
    }
}
