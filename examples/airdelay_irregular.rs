//! Forecasting on irregular time series — the AirDelay scenario
//! (Section V-A1): flight arrival delays whose timestamps are not evenly
//! spaced, where calendar time features carry the structure. Compares
//! Conformer against a GRU, mirroring the paper's finding that the gap
//! narrows on less-structured data.
//!
//! ```sh
//! cargo run --release --example airdelay_irregular
//! ```

use lttf::conformer::ConformerConfig;
use lttf::data::synth::{Dataset, SynthSpec};
use lttf::data::{Split, WindowDataset};
use lttf::eval::{evaluate, train, ModelKind, TrainOptions, TrainedModel};

fn main() {
    let series = Dataset::AirDelay.generate(SynthSpec {
        len: 1_500,
        dims: Some(6),
        seed: 5,
    });
    // Show the irregular sampling.
    let gaps: Vec<i64> = series
        .timestamps
        .windows(2)
        .take(6)
        .map(|w| w[1] - w[0])
        .collect();
    println!("first inter-arrival gaps (seconds): {gaps:?}");
    println!(
        "target: {} (heavy-tailed delay minutes), {} flights",
        series.names[series.target],
        series.len()
    );

    let (lx, ly) = (48, 24);
    let mk = |split| WindowDataset::new(&series, split, (0.7, 0.1), lx, ly, lx / 2);
    let (train_set, val_set, test_set) = (mk(Split::Train), mk(Split::Val), mk(Split::Test));
    let opts = TrainOptions {
        epochs: 3,
        batch_size: 16,
        lr: 1e-3,
        patience: 2,
        lr_decay: 0.7,
        max_batches: 30,
        clip: 5.0,
        seed: 7,
        val_max_windows: usize::MAX,
        ..Default::default()
    };

    // Conformer — its mark embedding sees the varying timestamps.
    let mut cfg = ConformerConfig::new(series.dims(), lx, ly);
    cfg.d_model = 16;
    cfg.n_heads = 4;
    cfg.multiscale_strides = vec![1, 8];
    let mut conformer = TrainedModel::from_conformer(&cfg, 1);
    println!("\ntraining Conformer…");
    train(&mut conformer, &train_set, Some(&val_set), &opts);
    let m_conf = evaluate(&conformer, &test_set, 16);

    // GRU baseline.
    let mut gru = TrainedModel::build(ModelKind::Gru, series.dims(), lx, ly, 16, 4, 1);
    println!("training GRU…");
    train(&mut gru, &train_set, Some(&val_set), &opts);
    let m_gru = evaluate(&gru, &test_set, 16);

    println!("\nirregular-interval forecasting (scaled space):");
    println!("  Conformer  {m_conf}");
    println!("  GRU        {m_gru}");
    if m_conf.mse < m_gru.mse {
        println!(
            "Conformer leads by {:.1}% MSE — note the margin is smaller than on \
             periodic datasets, matching the paper's AirDelay observation.",
            100.0 * (m_gru.mse - m_conf.mse) / m_gru.mse
        );
    } else {
        println!("GRU edged out Conformer on this run — on less-structured data the paper also reports narrow margins.");
    }
}
