//! Quickstart: train a small Conformer on the synthetic ETTh1 dataset and
//! forecast 24 steps ahead.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lttf::conformer::ConformerConfig;
use lttf::data::synth::{Dataset, SynthSpec};
use lttf::data::{Split, WindowDataset};
use lttf::eval::{evaluate, train, TrainOptions, TrainedModel};

fn main() {
    // 1. Data: a synthetic stand-in for ETTh1 (hourly transformer
    //    temperature driven by load covariates). Swap in `read_csv` to use
    //    the real dataset.
    let series = Dataset::Etth1.generate(SynthSpec {
        len: 1_200,
        dims: Some(7),
        seed: 7,
    });
    println!(
        "dataset: {} steps x {} vars, target '{}'",
        series.len(),
        series.dims(),
        series.names[series.target]
    );

    // 2. Rolling windows: input 48 steps, predict 24, standard splits.
    let (lx, ly) = (48, 24);
    let mk = |split| WindowDataset::new(&series, split, (0.7, 0.1), lx, ly, lx / 2);
    let (train_set, val_set, test_set) = (mk(Split::Train), mk(Split::Val), mk(Split::Test));
    println!(
        "windows: {} train / {} val / {} test",
        train_set.len(),
        val_set.len(),
        test_set.len()
    );

    // 3. Model: the paper's defaults at laptop width.
    let mut cfg = ConformerConfig::new(series.dims(), lx, ly);
    cfg.d_model = 16;
    cfg.n_heads = 4;
    cfg.multiscale_strides = vec![1, 24]; // {hour, day} resolutions
    let mut model = TrainedModel::from_conformer(&cfg, 1);
    println!("conformer: {} parameters", model.num_parameters());

    // 4. Train with Adam + early stopping (Section V-A3 protocol).
    let opts = TrainOptions {
        epochs: 3,
        batch_size: 16,
        lr: 1e-3,
        patience: 2,
        lr_decay: 0.7,
        max_batches: 30,
        clip: 5.0,
        seed: 1,
        val_max_windows: usize::MAX,
        ..Default::default()
    };
    let report = train(&mut model, &train_set, Some(&val_set), &opts);
    for (e, l) in report.train_losses.iter().enumerate() {
        println!("epoch {e}: train loss {l:.4}");
    }

    // 5. Evaluate on the held-out region (scaled space, like the paper).
    let metrics = evaluate(&model, &test_set, 16);
    println!("test: {metrics}");

    // 6. Forecast one window and show the first predicted steps of the
    //    target variable in original units.
    let batch = test_set.batch(&[0]);
    let pred = model.predict_batch(&batch);
    let scaler = test_set.scaler();
    let pred_raw = scaler.inverse_transform(&pred);
    let truth_raw = scaler.inverse_transform(&batch.y);
    println!("\nforecast vs truth (target, first 8 steps):");
    let t_col = series.target;
    for t in 0..8 {
        println!(
            "  t+{t:<2} predicted {:>8.3}  actual {:>8.3}",
            pred_raw.at(&[0, t, t_col]),
            truth_raw.at(&[0, t, t_col])
        );
    }
}
