//! Classical statistical baselines vs deep forecasters on periodic data —
//! the sanity anchor every deep model should clear, plus a look at DeepAR,
//! the classic probabilistic deep baseline from the paper's related work.
//!
//! ```sh
//! cargo run --release --example classical_vs_deep
//! ```

use lttf::baselines::{BaselineConfig, DeepAr, Drift, HoltWinters, Persistence, SeasonalNaive};
use lttf::conformer::ConformerConfig;
use lttf::data::synth::{Dataset, SynthSpec};
use lttf::data::{Split, WindowDataset};
use lttf::eval::{evaluate, train, Metrics, TrainOptions, TrainedModel};
use lttf::nn::ParamSet;
use lttf::tensor::Rng;

fn main() {
    // Strongly periodic hourly data (daily cycle = period 24).
    let series = Dataset::Ecl.generate(SynthSpec {
        len: 1_200,
        dims: Some(4),
        seed: 21,
    });
    let (lx, ly) = (96, 24);
    let mk = |split| WindowDataset::new(&series, split, (0.7, 0.1), lx, ly, lx / 2);
    let (train_set, val_set, test_set) = (mk(Split::Train), mk(Split::Val), mk(Split::Test));

    // --- classical anchors: no training, evaluated over the same windows.
    let eval_classical = |name: &str, f: &dyn Fn(&lttf::tensor::Tensor) -> lttf::tensor::Tensor| {
        let mut parts = Vec::new();
        for idx in test_set.sequential_batches(32) {
            let b = test_set.batch(&idx);
            let pred = f(&b.x);
            parts.push((Metrics::of(&pred, &b.y), pred.numel()));
        }
        let m = Metrics::weighted_mean(&parts);
        println!("  {name:<16} {m}");
        m
    };
    println!("classical anchors (scaled space):");
    eval_classical("persistence", &|x| Persistence.predict(x, ly));
    eval_classical("drift", &|x| Drift.predict(x, ly));
    let snaive = eval_classical("seasonal-naive", &{
        let m = SeasonalNaive::new(24);
        move |x| m.predict(x, ly)
    });
    eval_classical("holt-winters", &{
        let m = HoltWinters::default_with_period(24);
        move |x| m.predict(x, ly)
    });

    // --- DeepAR (probabilistic GRU, NLL-trained).
    let opts = TrainOptions {
        epochs: 2,
        batch_size: 16,
        lr: 2e-3,
        patience: 0,
        lr_decay: 0.7,
        max_batches: 25,
        clip: 5.0,
        seed: 2,
        val_max_windows: 64,
        ..Default::default()
    };
    println!("\ntraining DeepAR…");
    let mut ps = ParamSet::new();
    let mut bcfg = BaselineConfig::new(series.dims(), lx, ly);
    bcfg.hidden = 16;
    let deepar = DeepAr::new(&mut ps, &bcfg, &mut Rng::seed(3));
    {
        use lttf::autograd::Graph;
        use lttf::nn::{Adam, Fwd, Optimizer};
        let mut opt = Adam::new(opts.lr);
        let mut rng = Rng::seed(opts.seed);
        for epoch in 0..opts.epochs {
            let mut batches = train_set.shuffled_batches(opts.batch_size, &mut rng);
            batches.truncate(opts.max_batches);
            for (i, idx) in batches.iter().enumerate() {
                let b = train_set.batch(idx);
                let g = Graph::new();
                let cx = Fwd::new(&g, &ps, true, (epoch * 1000 + i) as u64);
                let loss = deepar.loss(&cx, g.leaf(b.x.clone()), &b.y);
                let grads = g.backward(loss);
                let collected = cx.collect_grads(&grads);
                ps.zero_grad();
                ps.apply_grads(collected);
                opt.step(&mut ps);
            }
        }
    }
    let mut parts = Vec::new();
    for idx in test_set.sequential_batches(32) {
        let b = test_set.batch(&idx);
        let pred = deepar.predict(&ps, &b.x);
        parts.push((Metrics::of(&pred, &b.y), pred.numel()));
    }
    println!("  DeepAR           {}", Metrics::weighted_mean(&parts));

    // --- Conformer.
    println!("\ntraining Conformer…");
    let mut cfg = ConformerConfig::new(series.dims(), lx, ly);
    cfg.d_model = 16;
    cfg.n_heads = 4;
    cfg.multiscale_strides = vec![1, 24];
    let mut conformer = TrainedModel::from_conformer(&cfg, 4);
    train(&mut conformer, &train_set, Some(&val_set), &opts);
    let conf = evaluate(&conformer, &test_set, 32);
    println!("  Conformer        {conf}");

    println!(
        "\nConformer vs the best classical anchor (seasonal-naive): {:+.1}% MSE",
        100.0 * (conf.mse - snaive.mse) / snaive.mse
    );
}
