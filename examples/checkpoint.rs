//! Saving and restoring a trained model: train briefly, checkpoint the
//! parameters, reload into a freshly built model, and verify the two
//! predict identically.
//!
//! ```sh
//! cargo run --release --example checkpoint
//! ```

use lttf::conformer::ConformerConfig;
use lttf::data::synth::{Dataset, SynthSpec};
use lttf::data::{Split, WindowDataset};
use lttf::eval::{train, TrainOptions, TrainedModel};
use lttf::nn::{load_params, save_params};

fn main() {
    let series = Dataset::Exchange.generate(SynthSpec {
        len: 800,
        dims: Some(8),
        seed: 2,
    });
    let (lx, ly) = (48, 24);
    let mk = |split| WindowDataset::new(&series, split, (0.7, 0.1), lx, ly, lx / 2);
    let (train_set, val_set, test_set) = (mk(Split::Train), mk(Split::Val), mk(Split::Test));

    let mut cfg = ConformerConfig::new(series.dims(), lx, ly);
    cfg.d_model = 16;
    cfg.n_heads = 4;
    let mut model = TrainedModel::from_conformer(&cfg, 9);
    println!("training…");
    train(
        &mut model,
        &train_set,
        Some(&val_set),
        &TrainOptions {
            epochs: 2,
            batch_size: 16,
            lr: 1e-3,
            patience: 0,
            lr_decay: 0.7,
            max_batches: 20,
            clip: 5.0,
            seed: 9,
            val_max_windows: usize::MAX,
            ..Default::default()
        },
    );

    let path = std::env::temp_dir().join("conformer_exchange.lttf");
    save_params(model.params(), &path).expect("save checkpoint");
    println!(
        "saved {} parameters to {}",
        model.num_parameters(),
        path.display()
    );

    // A fresh model with a different seed has different weights…
    let mut restored = TrainedModel::from_conformer(&cfg, 12345);
    let batch = test_set.batch(&[0]);
    let before = restored.predict_batch(&batch);
    // …until the checkpoint is loaded.
    load_params(restored.params_mut(), &path).expect("load checkpoint");
    let after = restored.predict_batch(&batch);
    let original = model.predict_batch(&batch);

    let drift = after.max_abs_diff(&original);
    println!("prediction difference after restore: {drift:e} (expect 0)");
    assert_eq!(drift, 0.0, "restored model diverges from the original");
    assert!(
        before.max_abs_diff(&original) > 0.0,
        "fresh model should differ before loading"
    );
    println!("checkpoint round-trip verified.");
    let _ = std::fs::remove_file(path);
}
