//! Wind-power supply planning with uncertainty — the motivating
//! application from the paper's abstract. Trains Conformer on the
//! synthetic wind-farm dataset and produces forecasts with normalizing-
//! flow prediction intervals, then turns the lower band into a
//! conservative supply commitment.
//!
//! ```sh
//! cargo run --release --example wind_power
//! ```

use lttf::conformer::ConformerConfig;
use lttf::data::synth::{Dataset, SynthSpec};
use lttf::data::{Split, WindowDataset};
use lttf::eval::{coverage, train, ModelImpl, TrainOptions, TrainedModel};

fn main() {
    // 15-minute wind power with ramps and capacity saturation.
    let series = Dataset::Wind.generate(SynthSpec {
        len: 1_500,
        dims: Some(7),
        seed: 11,
    });
    let (lx, ly) = (96, 48); // look back one day, plan half a day ahead
    let mk = |split| WindowDataset::new(&series, split, (0.7, 0.1), lx, ly, lx / 2);
    let (train_set, val_set, test_set) = (mk(Split::Train), mk(Split::Val), mk(Split::Test));

    let mut cfg = ConformerConfig::new(series.dims(), lx, ly);
    cfg.d_model = 16;
    cfg.n_heads = 4;
    cfg.multiscale_strides = vec![1, 96]; // {15 min, 1 day}
    let mut model = TrainedModel::from_conformer(&cfg, 3);
    println!(
        "training Conformer ({} params) on wind power…",
        model.num_parameters()
    );
    train(
        &mut model,
        &train_set,
        Some(&val_set),
        &TrainOptions {
            epochs: 3,
            batch_size: 16,
            lr: 1e-3,
            patience: 2,
            lr_decay: 0.7,
            max_batches: 30,
            clip: 5.0,
            seed: 3,
            val_max_windows: usize::MAX,
            ..Default::default()
        },
    );

    // Forecast with 90% prediction intervals from the flow.
    let ModelImpl::Conformer(conformer) = model.inner() else {
        unreachable!()
    };
    let batch = test_set.batch(&[test_set.len() / 2]);
    let (point, lo, hi) = conformer.predict_with_uncertainty(
        model.params(),
        &batch.x,
        &batch.x_mark,
        &batch.dec,
        &batch.dec_mark,
        50,
        0.9,
        42,
    );
    let cov = coverage(&lo, &hi, &batch.y);
    println!("interval coverage on this window: {:.1}%", cov * 100.0);

    // Back to megawatt-ish units; commit to the lower band (risk-averse).
    let scaler = test_set.scaler();
    let to_power = |t: &lttf::tensor::Tensor| {
        scaler
            .inverse_transform(t)
            .select(2, &[0]) // Wind_Power is column 0
            .map(|v| v.max(0.0))
    };
    let (p, l, h, truth) = (
        to_power(&point),
        to_power(&lo),
        to_power(&hi),
        to_power(&batch.y),
    );
    println!("\nsupply plan (first 12 quarter-hours):");
    println!("  step  commit(lo)   point      hi       actual");
    for t in 0..12 {
        println!(
            "  {t:>4}  {:>9.2}  {:>8.2}  {:>8.2}  {:>9.2}",
            l.at(&[0, t, 0]),
            p.at(&[0, t, 0]),
            h.at(&[0, t, 0]),
            truth.at(&[0, t, 0])
        );
    }
    let committed: f32 = (0..ly).map(|t| l.at(&[0, t, 0])).sum();
    let actual: f32 = (0..ly).map(|t| truth.at(&[0, t, 0])).sum();
    println!(
        "\ncommitted energy {committed:.1} vs actually available {actual:.1} \
         (shortfall risk is carried by the band, not the point estimate)"
    );
}
