//! Production-style usage: walk-forward backtesting with periodic
//! refits, then forecast-residual anomaly detection — the downstream
//! tasks the paper's introduction motivates (planning and outlier
//! detection).
//!
//! ```sh
//! cargo run --release --example backtest_anomaly
//! ```

use lttf::data::synth::{Dataset, SynthSpec};
use lttf::data::{Split, WindowDataset};
use lttf::eval::{
    backtest, detect_anomalies, train, BacktestConfig, ModelKind, TrainOptions, TrainedModel,
};

fn main() {
    // --- walk-forward backtest on ETTm1 ---
    let series = Dataset::Ettm1.generate(SynthSpec {
        len: 1_200,
        dims: Some(4),
        seed: 15,
    });
    let opts = TrainOptions {
        epochs: 2,
        batch_size: 16,
        lr: 2e-3,
        patience: 0,
        lr_decay: 0.7,
        max_batches: 20,
        clip: 5.0,
        seed: 5,
        val_max_windows: 48,
        ..Default::default()
    };
    let cfg = BacktestConfig {
        lx: 48,
        ly: 16,
        folds: 4,
        initial_train: 0.5,
        d_model: 16,
        n_heads: 4,
        train: opts.clone(),
        eval_max_windows: 64,
    };
    println!("walk-forward backtest: Conformer, 4 folds, refit per fold…");
    let report = backtest(ModelKind::Conformer, &series, &cfg);
    for (i, m) in report.fold_metrics.iter().enumerate() {
        println!("  fold {i}: {m}");
    }
    println!("  overall: {}", report.overall);
    println!(
        "  error stable across folds (≤3x of fold 0): {}",
        report.is_stable(3.0)
    );

    // --- anomaly detection on a contaminated series ---
    println!("\nanomaly detection on wind power with injected faults…");
    let mut wind = Dataset::Wind.generate(SynthSpec {
        len: 1_000,
        dims: Some(3),
        seed: 16,
    });
    // Inject two sensor faults into the held-out region.
    let faults = [880usize, 930];
    for &row in &faults {
        let v = wind.values.at(&[row, 0]);
        wind.values.set(&[row, 0], v + 120.0);
    }
    let mk = |split| WindowDataset::new(&wind, split, (0.7, 0.1), 48, 16, 24);
    let (train_set, val, test) = (mk(Split::Train), mk(Split::Val), mk(Split::Test));
    let mut model = TrainedModel::build(ModelKind::Conformer, 3, 48, 16, 16, 4, 6);
    train(&mut model, &train_set, Some(&val), &opts);
    let anomalies = detect_anomalies(&model, &test, 16, 4.0);
    println!(
        "  examined {} points, flagged {} above 4 robust sigmas",
        anomalies.points,
        anomalies.anomalies.len()
    );
    for a in anomalies.anomalies.iter().take(5) {
        println!(
            "  window {:>3} step {:>2} var {}: residual {:+.2} ({:.1}σ)",
            a.window, a.step, a.variable, a.residual, a.score
        );
    }
    let hit = anomalies
        .anomalies
        .iter()
        .take(20)
        .any(|a| a.variable == 0 && a.score > 4.0);
    println!(
        "  injected faults detected among top hits: {}",
        if hit {
            "yes"
        } else {
            "no (try a larger model)"
        }
    );
}
