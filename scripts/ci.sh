#!/usr/bin/env bash
# Tier-1 verification, fully offline: build, test, and bench-compile with
# no registry access. Run from the repository root:
#
#   scripts/ci.sh
#
# The workspace has zero external dependencies (see DESIGN.md "Zero
# external dependencies"), so a cold cargo home with no network must
# pass. `--locked` additionally pins the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --locked --no-default-features  (telemetry compiled out)"
cargo build --release --offline --locked --no-default-features

# Prove the compile-out is real: the stripped binary must report zeroed
# allocator counters (no #[global_allocator] installed) and refuse to
# start the sampling profiler rather than silently measuring nothing.
echo "==> compile-out proof  (stripped binary: allocator reads 0, sampler unavailable)"
STRIPPED_OUT=$(mktemp -d)
target/release/lttf bench-serve --mode memory --threads 2 --requests 2 \
    --out-dir "$STRIPPED_OUT" | tee /tmp/lttf_stripped_mem.out
grep -q "allocator accounting compiled out" /tmp/lttf_stripped_mem.out \
    || { echo "FAIL: no-default-features build still counts allocations" >&2; exit 1; }
LTTF_PROFILE_HZ=97 target/release/lttf flame --flame-out "$STRIPPED_OUT/flame.txt" \
    bench-serve --mode memory --threads 1 --requests 1 --out-dir "$STRIPPED_OUT" \
    2>&1 | tee /tmp/lttf_stripped_flame.out >/dev/null || true
grep -q "flame sampling unavailable" /tmp/lttf_stripped_flame.out \
    || { echo "FAIL: no-default-features build did not report the sampler as compiled out" >&2; exit 1; }
rm -rf "$STRIPPED_OUT"

echo "==> cargo build --release --offline --locked"
cargo build --release --offline --locked

echo "==> cargo test -q --offline  (LTTF_THREADS=1 LTTF_SIMD=0, serial + scalar kernels)"
LTTF_QUIET=1 LTTF_THREADS=1 LTTF_SIMD=0 cargo test -q --offline

echo "==> cargo test -q --offline  (LTTF_THREADS=4 LTTF_SIMD=1, pooled + SIMD dispatch)"
LTTF_QUIET=1 LTTF_THREADS=4 LTTF_SIMD=1 cargo test -q --offline

echo "==> determinism + serve e2e under the full LTTF_SIMD x LTTF_THREADS matrix"
# The scalar fallback must never rot, and neither backend may depend on
# the thread count (DESIGN.md §8) — sweep both suites over all four cells.
for simd in 0 1; do
    for threads in 1 4; do
        echo "    LTTF_SIMD=$simd LTTF_THREADS=$threads"
        LTTF_QUIET=1 LTTF_SIMD=$simd LTTF_THREADS=$threads \
            cargo test -q --offline --test determinism --test serve_e2e
    done
done

echo "==> cargo doc --no-deps --offline  (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

echo "==> cargo bench --no-run --offline  (compile-only check of crates/bench)"
cargo bench --no-run --offline

echo "==> lttf profile --smoke  (telemetry end-to-end: span table + JSONL run log)"
LTTF_QUIET=1 target/release/lttf profile --smoke --name ci_smoke | tee /tmp/lttf_profile_smoke.out
for row in matmul conv1d window_attn backward "pool utilization"; do
    grep -q "$row" /tmp/lttf_profile_smoke.out \
        || { echo "FAIL: profile output missing '$row'" >&2; exit 1; }
done
# Allocation attribution: the span table must carry the alloc columns and
# at least one hot span must have charged a non-trivial byte volume.
grep -q "alloc_bytes" /tmp/lttf_profile_smoke.out \
    || { echo "FAIL: profile table is missing the alloc_bytes column" >&2; exit 1; }
grep -Eq "matmul .*[0-9.]+[KMG]iB" /tmp/lttf_profile_smoke.out \
    || { echo "FAIL: matmul span shows no attributed allocations" >&2; exit 1; }

echo "==> lttf trace  (Chrome trace export: record, parse, assert events nest)"
LTTF_QUIET=1 target/release/lttf trace --trace-out /tmp/lttf_trace_smoke.json \
    profile --smoke --name ci_trace_smoke | tee /tmp/lttf_trace_smoke.out
grep -q "^trace: /tmp/lttf_trace_smoke.json" /tmp/lttf_trace_smoke.out \
    || { echo "FAIL: lttf trace printed no trace summary" >&2; exit 1; }
# jsonl_check --trace re-validates from disk: strict per-line JSON, B/E
# nesting per thread, async b/e pairing by id.
cargo run -q --release --offline -p lttf-obs --bin jsonl_check -- --trace /tmp/lttf_trace_smoke.json

echo "==> lttf flame  (continuous sampling profiler: collapsed-stack export + validator)"
# High sampling rate so even the short smoke workload lands plenty of
# samples; the exported collapsed text must satisfy the strict in-repo
# parser (positive counts, no duplicate stacks, trailing newline).
LTTF_QUIET=1 LTTF_PROFILE_HZ=997 target/release/lttf flame \
    --flame-out /tmp/lttf_flame_smoke.txt profile --smoke --name ci_flame_smoke \
    | tee /tmp/lttf_flame_smoke.out
grep -Eq "^flame: [1-9][0-9]* weighted samples" /tmp/lttf_flame_smoke.out \
    || { echo "FAIL: lttf flame captured no samples" >&2; exit 1; }
cargo run -q --release --offline -p lttf-obs --bin jsonl_check -- --flame /tmp/lttf_flame_smoke.txt

echo "==> jsonl_check  (validate every run log under results/runs/ and committed bench files)"
for f in results/runs/*.jsonl; do
    [[ -f "$f" ]] && cargo run -q --release --offline -p lttf-obs --bin jsonl_check -- "$f"
done
for f in results/BENCH_*.json; do
    [[ -f "$f" ]] && cargo run -q --release --offline -p lttf-obs --bin jsonl_check -- "$f"
done

echo "==> live serve scrape  (train tiny checkpoint, serve it, drive traffic, validate exposition)"
SCRATCH=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$SCRATCH"
}
trap cleanup EXIT

LTTF_QUIET=1 target/release/lttf generate --dataset ettm1 --len 400 --seed 7 \
    --out "$SCRATCH/ettm1.csv" >/dev/null
LTTF_QUIET=1 LTTF_THREADS=2 target/release/lttf train --data "$SCRATCH/ettm1.csv" --target OT \
    --lx 16 --ly 8 --d-model 8 --epochs 1 --out "$SCRATCH/ckpt" | tee "$SCRATCH/train.out" >/dev/null
grep -q "drift reference:" "$SCRATCH/train.out" \
    || { echo "FAIL: lttf train did not fit a drift reference profile" >&2; exit 1; }

# The server exits on stdin EOF, so park a fifo on its stdin and keep the
# write end open for the duration of the scrape.
PORT=17878
mkfifo "$SCRATCH/ctl"
LTTF_QUIET=1 target/release/lttf serve --model "$SCRATCH/ckpt" --port $PORT \
    < "$SCRATCH/ctl" > "$SCRATCH/serve.out" 2>&1 &
SERVE_PID=$!
exec 9> "$SCRATCH/ctl"
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then break; fi
    kill -0 "$SERVE_PID" 2>/dev/null \
        || { echo "FAIL: lttf serve exited early:" >&2; cat "$SCRATCH/serve.out" >&2; exit 1; }
    sleep 0.1
done
grep -q "drift monitor armed" "$SCRATCH/serve.out" \
    || { echo "FAIL: server did not arm the drift monitor from the checkpoint" >&2; exit 1; }

# Drive real traffic so the trailing-window series are populated. Each
# request's raw window is a different lx=16 row slice from the TRAIN
# region of the CSV (first 70% of 400 rows), so the aggregate traffic
# matches the drift reference and the monitor must stay quiet.
exec 8<>"/dev/tcp/127.0.0.1/$PORT"
for i in $(seq 1 8); do
    awk -F, -v id="$i" -v r0="$((2 + (i - 1) * 33))" 'NR > 1 { rows[NR] = $0 } END {
        printf "{\"id\":%d,\"t0\":1700000000,\"dt\":3600,\"values\":[", id
        sep = ""
        for (r = r0; r < r0 + 16; r++) {
            m = split(rows[r], f, ",")
            for (j = 2; j <= m; j++) { printf "%s%s", sep, f[j]; sep = "," }
        }
        print "]}"
    }' "$SCRATCH/ettm1.csv" >&8
    IFS= read -r resp <&8
    case "$resp" in
        *'"error"'*) echo "FAIL: forecast request $i refused: $resp" >&2; exit 1 ;;
    esac
done
exec 8>&-

# Two watch ticks render the dashboard and append one period-stamped
# scrape snapshot each — the file must accumulate history, not hold only
# the last exposition (that was the old overwrite bug).
LTTF_QUIET=1 target/release/lttf watch --port $PORT --iters 2 --interval-ms 300 --no-clear \
    --scrape-out "$SCRATCH/metrics.jsonl" | tee "$SCRATCH/watch.out"
grep -q "drift     ok" "$SCRATCH/watch.out" \
    || { echo "FAIL: watch dashboard did not report a quiet drift monitor" >&2; exit 1; }
grep -q "sessions  " "$SCRATCH/watch.out" \
    || { echo "FAIL: watch dashboard did not render the sessions line" >&2; exit 1; }
grep -q "adapt     off" "$SCRATCH/watch.out" \
    || { echo "FAIL: watch dashboard did not report the adapter as off" >&2; exit 1; }
grep -q "memory    " "$SCRATCH/watch.out" \
    || { echo "FAIL: watch dashboard did not render the memory line" >&2; exit 1; }
grep -q "cost      " "$SCRATCH/watch.out" \
    || { echo "FAIL: watch dashboard did not render the per-request cost line" >&2; exit 1; }

# Strict exposition check: every snapshot in the scrape history must be a
# fully valid exposition (parseable throughout, histogram families
# complete and ordered); the --require series — trailing-window quantiles,
# per-request cost, and process memory — are asserted on the latest one.
cargo run -q --release --offline -p lttf-obs --bin metrics_check -- "$SCRATCH/metrics.jsonl" \
    | tee "$SCRATCH/metrics_check.out"
grep -q "2 metrics snapshots" "$SCRATCH/metrics_check.out" \
    || { echo "FAIL: scrape file did not accumulate one snapshot per watch tick" >&2; exit 1; }
cargo run -q --release --offline -p lttf-obs --bin metrics_check -- "$SCRATCH/metrics.jsonl" \
    --require 'lttf_serve_latency_seconds{model="ckpt",gen="1",quantile="0.5"}' \
    --require 'lttf_serve_latency_seconds{model="ckpt",gen="1",quantile="0.99"}' \
    --require 'lttf_serve_queue_wait_seconds{model="ckpt",gen="1",quantile="0.5"}' \
    --require 'lttf_serve_service_time_seconds{model="ckpt",gen="1",quantile="0.5"}' \
    --require 'lttf_serve_latency_hist_seconds_bucket{model="ckpt",le="+Inf"}' \
    --require 'lttf_serve_replica_served_total{model="ckpt",replica="0"}' \
    --require 'lttf_drift_available{model="ckpt"} 1' \
    --require 'lttf_drift_alert{model="ckpt"} 0' \
    --require 'lttf_serve_shed_per_second' \
    --require 'lttf_sessions_open 0' \
    --require 'lttf_sessions_opened_total 0' \
    --require 'lttf_adapt_enabled 0' \
    --require 'lttf_adapt_rollbacks_total 0' \
    --require 'lttf_trace_dropped_total' \
    --require 'lttf_request_cpu_ns{model="ckpt",gen="1",quantile="0.5"}' \
    --require 'lttf_request_alloc_bytes{model="ckpt",gen="1",quantile="0.5"}' \
    --require 'lttf_mem_live_bytes' \
    --require 'lttf_mem_peak_bytes'

echo quit >&9
exec 9>&-
wait "$SERVE_PID"
SERVE_PID=""

echo "==> session smoke  (open/push/close over TCP at LTTF_THREADS=1 and 4)"
# A full streaming session against the same checkpoint: open, 17 pushes
# of real CSV rows (the window is lx=16, so pushes 16 and 17 must answer
# with forecasts), then close and check the summary counters — once
# serial, once pooled.
for threads in 1 4; do
    SPORT=$((17900 + threads))
    mkfifo "$SCRATCH/ctl_$threads"
    LTTF_QUIET=1 LTTF_THREADS=$threads target/release/lttf serve --model "$SCRATCH/ckpt" \
        --port $SPORT --sessions 8 < "$SCRATCH/ctl_$threads" > "$SCRATCH/serve_$threads.out" 2>&1 &
    SERVE_PID=$!
    exec 9> "$SCRATCH/ctl_$threads"
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$SPORT") 2>/dev/null; then break; fi
        kill -0 "$SERVE_PID" 2>/dev/null \
            || { echo "FAIL: lttf serve exited early:" >&2; cat "$SCRATCH/serve_$threads.out" >&2; exit 1; }
        sleep 0.1
    done
    exec 8<>"/dev/tcp/127.0.0.1/$SPORT"
    echo '{"id":1,"cmd":"open","t0":1700000000,"dt":3600}' >&8
    IFS= read -r resp <&8
    session=$(printf '%s' "$resp" | sed -n 's/.*"session":\([0-9][0-9]*\).*/\1/p')
    [[ "$resp" == *'"ok":true'* && -n "$session" ]] \
        || { echo "FAIL: open refused at LTTF_THREADS=$threads: $resp" >&2; exit 1; }
    awk -F, -v sid="$session" 'NR >= 2 && NR <= 18 {
        printf "{\"id\":%d,\"cmd\":\"push\",\"session\":%s,\"values\":[", NR + 100, sid
        sep = ""
        for (j = 2; j <= NF; j++) { printf "%s%s", sep, $j; sep = "," }
        print "]}"
    }' "$SCRATCH/ettm1.csv" > "$SCRATCH/pushes_$threads.jsonl"
    while IFS= read -r line; do
        printf '%s\n' "$line" >&8
        IFS= read -r resp <&8
        case "$resp" in
            *'"error"'*) echo "FAIL: push refused at LTTF_THREADS=$threads: $resp" >&2; exit 1 ;;
        esac
    done < "$SCRATCH/pushes_$threads.jsonl"
    case "$resp" in
        *'"forecast"'*'"gen":1'*|*'"gen":1'*'"forecast"'*) ;;
        *) echo "FAIL: full window did not forecast at LTTF_THREADS=$threads: $resp" >&2; exit 1 ;;
    esac
    echo "{\"id\":999,\"cmd\":\"close\",\"session\":$session}" >&8
    IFS= read -r resp <&8
    case "$resp" in
        *'"pushed":17'*'"forecasts":2'*) ;;
        *) echo "FAIL: close summary wrong at LTTF_THREADS=$threads: $resp" >&2; exit 1 ;;
    esac
    exec 8>&-
    echo quit >&9
    exec 9>&-
    wait "$SERVE_PID"
    SERVE_PID=""
done

echo "==> OK: build, tests, bench compilation, telemetry smoke, live scrape, and session smoke all passed offline"
