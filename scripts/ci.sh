#!/usr/bin/env bash
# Tier-1 verification, fully offline: build, test, and bench-compile with
# no registry access. Run from the repository root:
#
#   scripts/ci.sh
#
# The workspace has zero external dependencies (see DESIGN.md "Zero
# external dependencies"), so a cold cargo home with no network must
# pass. `--locked` additionally pins the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --locked --no-default-features  (telemetry compiled out)"
cargo build --release --offline --locked --no-default-features

echo "==> cargo build --release --offline --locked"
cargo build --release --offline --locked

echo "==> cargo test -q --offline  (LTTF_THREADS=1 LTTF_SIMD=0, serial + scalar kernels)"
LTTF_QUIET=1 LTTF_THREADS=1 LTTF_SIMD=0 cargo test -q --offline

echo "==> cargo test -q --offline  (LTTF_THREADS=4 LTTF_SIMD=1, pooled + SIMD dispatch)"
LTTF_QUIET=1 LTTF_THREADS=4 LTTF_SIMD=1 cargo test -q --offline

echo "==> determinism + serve e2e under the full LTTF_SIMD x LTTF_THREADS matrix"
# The scalar fallback must never rot, and neither backend may depend on
# the thread count (DESIGN.md §8) — sweep both suites over all four cells.
for simd in 0 1; do
    for threads in 1 4; do
        echo "    LTTF_SIMD=$simd LTTF_THREADS=$threads"
        LTTF_QUIET=1 LTTF_SIMD=$simd LTTF_THREADS=$threads \
            cargo test -q --offline --test determinism --test serve_e2e
    done
done

echo "==> cargo doc --no-deps --offline  (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

echo "==> cargo bench --no-run --offline  (compile-only check of crates/bench)"
cargo bench --no-run --offline

echo "==> lttf profile --smoke  (telemetry end-to-end: span table + JSONL run log)"
LTTF_QUIET=1 target/release/lttf profile --smoke --name ci_smoke | tee /tmp/lttf_profile_smoke.out
for row in matmul conv1d window_attn backward "pool utilization"; do
    grep -q "$row" /tmp/lttf_profile_smoke.out \
        || { echo "FAIL: profile output missing '$row'" >&2; exit 1; }
done

echo "==> lttf trace  (Chrome trace export: record, parse, assert events nest)"
LTTF_QUIET=1 target/release/lttf trace --trace-out /tmp/lttf_trace_smoke.json \
    profile --smoke --name ci_trace_smoke | tee /tmp/lttf_trace_smoke.out
grep -q "^trace: /tmp/lttf_trace_smoke.json" /tmp/lttf_trace_smoke.out \
    || { echo "FAIL: lttf trace printed no trace summary" >&2; exit 1; }
# jsonl_check --trace re-validates from disk: strict per-line JSON, B/E
# nesting per thread, async b/e pairing by id.
cargo run -q --release --offline -p lttf-obs --bin jsonl_check -- --trace /tmp/lttf_trace_smoke.json

echo "==> jsonl_check  (validate every run log under results/runs/ and committed bench files)"
for f in results/runs/*.jsonl; do
    [[ -f "$f" ]] && cargo run -q --release --offline -p lttf-obs --bin jsonl_check -- "$f"
done
for f in results/BENCH_*.json; do
    [[ -f "$f" ]] && cargo run -q --release --offline -p lttf-obs --bin jsonl_check -- "$f"
done

echo "==> OK: build, tests, bench compilation, and telemetry smoke all passed offline"
