#!/usr/bin/env bash
# Tier-1 verification, fully offline: build, test, and bench-compile with
# no registry access. Run from the repository root:
#
#   scripts/ci.sh
#
# The workspace has zero external dependencies (see DESIGN.md "Zero
# external dependencies"), so a cold cargo home with no network must
# pass. `--locked` additionally pins the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --locked"
cargo build --release --offline --locked

echo "==> cargo test -q --offline  (LTTF_THREADS=1, fully serial)"
LTTF_THREADS=1 cargo test -q --offline

echo "==> cargo test -q --offline  (LTTF_THREADS=4, pooled)"
LTTF_THREADS=4 cargo test -q --offline

echo "==> cargo bench --no-run --offline  (compile-only check of crates/bench)"
cargo bench --no-run --offline

echo "==> OK: build, tests, and bench compilation all passed offline"
