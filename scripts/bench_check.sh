#!/usr/bin/env bash
# Kernel performance regression gate.
#
# Re-runs the `kernels` bench suite into a scratch directory and compares
# each benchmark's fresh median against the committed baseline in
# results/BENCH_kernels.json. Fails if any kernel got more than 2x slower
# than its committed median. The committed file is never overwritten —
# refresh it deliberately (BENCH_OUT=results cargo bench -p lttf-bench --bench kernels)
# when a speedup lands.
#
#   scripts/bench_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=results/BENCH_kernels.json
if [[ ! -f "$BASELINE" ]]; then
    echo "no committed baseline at $BASELINE; nothing to check" >&2
    exit 0
fi

FRESH_DIR=$(mktemp -d)
trap 'rm -rf "$FRESH_DIR"' EXIT

echo "==> cargo bench --bench kernels  (fresh run into $FRESH_DIR)"
BENCH_OUT="$FRESH_DIR" cargo bench --offline -p lttf-bench --bench kernels >/dev/null
FRESH="$FRESH_DIR/BENCH_kernels.json"
if [[ ! -f "$FRESH" ]]; then
    echo "FAIL: bench run produced no $FRESH" >&2
    exit 1
fi

# Extract "bench name -> median_ns" pairs from a JSON-lines bench file.
medians() {
    sed -n 's/.*"bench":"\([^"]*\)".*"median_ns":\([0-9]*\).*/\1 \2/p' "$1"
}

fail=0
while read -r name base_med; do
    fresh_med=$(medians "$FRESH" | awk -v n="$name" '$1 == n {print $2}')
    if [[ -z "$fresh_med" ]]; then
        echo "WARN  $name: present in baseline but missing from fresh run"
        continue
    fi
    # Regression when fresh > 2x committed median.
    if (( fresh_med > 2 * base_med )); then
        echo "FAIL  $name: fresh median ${fresh_med}ns > 2x baseline ${base_med}ns"
        fail=1
    else
        printf 'ok    %-28s baseline %10dns  fresh %10dns\n' "$name" "$base_med" "$fresh_med"
    fi
done < <(medians "$BASELINE")

if (( fail )); then
    echo "==> bench_check: kernel regression detected (>2x committed median)" >&2
    exit 1
fi
echo "==> bench_check: all kernels within 2x of committed medians"

# Telemetry overhead gate: the span instrumentation must cost < 3% on the
# kernels suite. Re-run the same suite with telemetry compiled out
# (--no-default-features) and compare the sums of medians — summing across
# the suite damps per-bench timer noise.
echo "==> cargo bench --bench kernels --no-default-features  (telemetry compiled out)"
OFF_DIR=$(mktemp -d)
trap 'rm -rf "$FRESH_DIR" "$OFF_DIR"' EXIT
BENCH_OUT="$OFF_DIR" cargo bench --offline -p lttf-bench --bench kernels \
    --no-default-features >/dev/null
OFF="$OFF_DIR/BENCH_kernels.json"
if [[ ! -f "$OFF" ]]; then
    echo "FAIL: no-default-features bench run produced no $OFF" >&2
    exit 1
fi

on_sum=$(medians "$FRESH" | awk '{s += $2} END {print s}')
off_sum=$(medians "$OFF" | awk '{s += $2} END {print s}')
echo "kernels suite sum of medians: telemetry on ${on_sum}ns, off ${off_sum}ns"
awk -v on="$on_sum" -v off="$off_sum" 'BEGIN {
    pct = (on / off - 1) * 100;
    printf "telemetry overhead: %+.2f%%\n", pct;
    exit (on > off * 1.03) ? 1 : 0;
}' || {
    echo "==> bench_check: telemetry overhead exceeds 3% on the kernels suite" >&2
    exit 1
}
echo "==> bench_check: telemetry overhead within 3%"

# Serving-tier scaling gate: the committed replica curve (written by
# `lttf bench-serve`, see DESIGN.md §10) must contain open-loop entries
# for 1, 2, and 4 replicas, record zero hard failures, and show the
# 4-replica run completing at least 2x the 1-replica throughput. The
# curve is calibrated with a service-time floor, so this holds even on
# single-core CI hosts (the floor is recorded in each entry).
SERVE=results/BENCH_serve.json
if [[ -f "$SERVE" ]]; then
    echo "==> serve replica-scaling gate ($SERVE)"
    for r in 1 2 4; do
        grep -q "\"bench\":\"open_loop_[a-z]*/replicas_$r\"" "$SERVE" \
            || { echo "FAIL: $SERVE missing open-loop entry for replicas_$r" >&2; exit 1; }
    done
    if grep -o '"failed":[0-9]*' "$SERVE" | grep -qv '"failed":0'; then
        echo "FAIL: committed open-loop runs recorded hard failures" >&2
        exit 1
    fi
    speedup=$(sed -n 's/.*"bench":"replica_speedup".*"speedup":\([0-9.]*\).*/\1/p' "$SERVE")
    if [[ -z "$speedup" ]]; then
        echo "FAIL: $SERVE has no replica_speedup entry" >&2
        exit 1
    fi
    awk -v s="$speedup" 'BEGIN { exit (s >= 2.0) ? 0 : 1 }' || {
        echo "FAIL: committed replica speedup ${speedup}x below the 2x gate" >&2
        exit 1
    }
    echo "==> bench_check: replica speedup ${speedup}x (gate >= 2x), zero failed requests"

    # Streaming-session gate (PR 9, online test-time adaptation): the
    # committed regime-shift run must contain both the frozen and the
    # adapted rows, record zero failed pushes (already enforced by the
    # "failed":0 check above), and show the adapted server beating — or
    # at worst matching — the frozen server's post-shift error.
    echo "==> serve streaming-adaptation gate ($SERVE)"
    frozen_mse=$(sed -n 's/.*"bench":"stream_frozen".*"post_shift_mse":\([0-9.eE+-]*\).*/\1/p' "$SERVE")
    adapted_mse=$(sed -n 's/.*"bench":"stream_adapted".*"post_shift_mse":\([0-9.eE+-]*\).*/\1/p' "$SERVE")
    if [[ -z "$frozen_mse" || -z "$adapted_mse" ]]; then
        echo "FAIL: $SERVE missing stream_frozen/stream_adapted rows" >&2
        exit 1
    fi
    publishes=$(sed -n 's/.*"bench":"stream_adapted".*"publishes":\([0-9]*\).*/\1/p' "$SERVE")
    if [[ -z "$publishes" || "$publishes" -lt 1 ]]; then
        echo "FAIL: committed stream_adapted run never published an adapted generation" >&2
        exit 1
    fi
    awk -v f="$frozen_mse" -v a="$adapted_mse" 'BEGIN {
        printf "post-shift mse: frozen %.4f, adapted %.4f (%.2fx)\n", f, a, f / (a > 0 ? a : 1e-9);
        exit (a <= f) ? 0 : 1;
    }' || {
        echo "FAIL: adapted post-shift MSE ${adapted_mse} exceeds frozen ${frozen_mse}" >&2
        exit 1
    }
    echo "==> bench_check: adapted server beats the frozen server after the regime shift"
else
    echo "no committed serve baseline at $SERVE; skipping scaling gate" >&2
fi

# Single-request latency gates (PR 7, SIMD microkernels + intra-request
# parallelism). Fresh parallel_scaling run, compared against the *frozen*
# pre-SIMD medians in results/BENCH_parallel_scaling_pr6_baseline.json
# (that file is a historical snapshot — never regenerate it):
#
#   1. On AVX2+FMA hosts, model_forward/threads=1 must stay >= 1.8x faster
#      than the pre-SIMD median.
#   2. On hosts with >= 4 cores, the batch=1 row must actually scale:
#      model_forward_b1 threads=4 must beat threads=1 by >= 1.4x.
#
# Each gate is skipped (loudly) on hosts that cannot express it.
FROZEN=results/BENCH_parallel_scaling_pr6_baseline.json
if [[ -f "$FROZEN" ]]; then
    echo "==> cargo bench --bench parallel_scaling  (single-request latency gates)"
    BENCH_OUT="$FRESH_DIR" cargo bench --offline -p lttf-bench --bench parallel_scaling >/dev/null
    PSCALE="$FRESH_DIR/BENCH_parallel_scaling.json"
    if [[ ! -f "$PSCALE" ]]; then
        echo "FAIL: bench run produced no $PSCALE" >&2
        exit 1
    fi

    if grep -m1 '^flags' /proc/cpuinfo 2>/dev/null | grep -qw avx2 \
        && grep -m1 '^flags' /proc/cpuinfo 2>/dev/null | grep -qw fma; then
        base_fwd=$(medians "$FROZEN" | awk '$1 == "model_forward/threads=1" {print $2}')
        fresh_fwd=$(medians "$PSCALE" | awk '$1 == "model_forward/threads=1" {print $2}')
        if [[ -z "$base_fwd" || -z "$fresh_fwd" ]]; then
            echo "FAIL: model_forward/threads=1 missing from $FROZEN or fresh run" >&2
            exit 1
        fi
        awk -v b="$base_fwd" -v f="$fresh_fwd" 'BEGIN {
            printf "model_forward/threads=1: pre-SIMD %dns, fresh %dns (%.2fx)\n", b, f, b / f;
            exit (b >= 1.8 * f) ? 0 : 1;
        }' || {
            echo "FAIL: model_forward median no longer >= 1.8x faster than the pre-SIMD baseline" >&2
            exit 1
        }
        echo "==> bench_check: SIMD forward-pass speedup holds (>= 1.8x vs pre-SIMD median)"
    else
        echo "host lacks AVX2+FMA; skipping the 1.8x SIMD speedup gate" >&2
    fi

    cores=$(nproc 2>/dev/null || echo 1)
    if (( cores >= 4 )); then
        b1_t1=$(medians "$PSCALE" | awk '$1 == "model_forward_b1/threads=1" {print $2}')
        b1_t4=$(medians "$PSCALE" | awk '$1 == "model_forward_b1/threads=4" {print $2}')
        if [[ -z "$b1_t1" || -z "$b1_t4" ]]; then
            echo "FAIL: model_forward_b1 rows missing from fresh parallel_scaling run" >&2
            exit 1
        fi
        awk -v t1="$b1_t1" -v t4="$b1_t4" 'BEGIN {
            printf "model_forward_b1: threads=1 %dns, threads=4 %dns (%.2fx)\n", t1, t4, t1 / t4;
            exit (t1 >= 1.4 * t4) ? 0 : 1;
        }' || {
            echo "FAIL: batch=1 forward no longer scales >= 1.4x from 1 to 4 threads" >&2
            exit 1
        }
        echo "==> bench_check: batch=1 intra-request scaling holds (>= 1.4x at 4 threads)"
    else
        echo "host has $cores core(s); skipping the 4-thread batch=1 scaling gate" >&2
    fi
else
    echo "no frozen pre-SIMD baseline at $FROZEN; skipping latency gates" >&2
fi

# Peak-memory regression gate (PR 10, allocation accounting): re-run the
# serve memory bench and compare the fresh run against the committed
# baseline in results/BENCH_memory.json. Fails when fresh peak bytes or
# allocs per request grow past 1.25x the committed values — the gate that
# catches a per-request allocation leak or an accidental working-set
# blow-up before it ships. The committed file is refreshed deliberately
# (target/release/lttf bench-serve --mode memory --out-dir results) when
# an allocation-rate change is intentional.
MEMBASE=results/BENCH_memory.json
if [[ -f "$MEMBASE" ]]; then
    echo "==> serve peak-memory gate (fresh lttf bench-serve --mode memory vs $MEMBASE)"
    cargo build -q --release --offline --locked
    target/release/lttf bench-serve --mode memory --out-dir "$FRESH_DIR" >/dev/null
    MEMFRESH="$FRESH_DIR/BENCH_memory.json"
    if [[ ! -f "$MEMFRESH" ]]; then
        echo "FAIL: memory bench produced no $MEMFRESH" >&2
        exit 1
    fi
    memfield() { sed -n "s/.*\"$2\":\([0-9]*\).*/\1/p" "$1" | head -n 1; }
    base_peak=$(memfield "$MEMBASE" peak_bytes)
    base_allocs=$(memfield "$MEMBASE" allocs_per_request)
    fresh_peak=$(memfield "$MEMFRESH" peak_bytes)
    fresh_allocs=$(memfield "$MEMFRESH" allocs_per_request)
    if [[ -z "$base_peak" || -z "$base_allocs" ]]; then
        echo "FAIL: $MEMBASE has no peak_bytes/allocs_per_request fields" >&2
        exit 1
    fi
    if [[ "$fresh_peak" == 0 || "$fresh_allocs" == 0 ]]; then
        echo "SKIP: fresh memory bench read zeroed counters (allocator compiled out?);" \
             "peak-memory gate not evaluated" >&2
    else
        awk -v bp="$base_peak" -v fp="$fresh_peak" -v ba="$base_allocs" -v fa="$fresh_allocs" 'BEGIN {
            printf "peak bytes: baseline %d, fresh %d (%.2fx); allocs/request: baseline %d, fresh %d (%.2fx)\n",
                bp, fp, fp / bp, ba, fa, fa / ba;
            exit (fp <= 1.25 * bp && fa <= 1.25 * ba) ? 0 : 1;
        }' || {
            echo "FAIL: serve memory footprint regressed past 1.25x the committed baseline" >&2
            exit 1
        }
        echo "==> bench_check: serve peak memory and allocation rate within 1.25x of baseline"
    fi
else
    echo "no committed memory baseline at $MEMBASE; skipping peak-memory gate" >&2
fi
