#!/usr/bin/env bash
# Kernel performance regression gate.
#
# Re-runs the `kernels` bench suite into a scratch directory and compares
# each benchmark's fresh median against the committed baseline in
# results/BENCH_kernels.json. Fails if any kernel got more than 2x slower
# than its committed median. The committed file is never overwritten —
# refresh it deliberately (BENCH_OUT=results cargo bench -p lttf-bench --bench kernels)
# when a speedup lands.
#
#   scripts/bench_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=results/BENCH_kernels.json
if [[ ! -f "$BASELINE" ]]; then
    echo "no committed baseline at $BASELINE; nothing to check" >&2
    exit 0
fi

FRESH_DIR=$(mktemp -d)
trap 'rm -rf "$FRESH_DIR"' EXIT

echo "==> cargo bench --bench kernels  (fresh run into $FRESH_DIR)"
BENCH_OUT="$FRESH_DIR" cargo bench --offline -p lttf-bench --bench kernels >/dev/null
FRESH="$FRESH_DIR/BENCH_kernels.json"
if [[ ! -f "$FRESH" ]]; then
    echo "FAIL: bench run produced no $FRESH" >&2
    exit 1
fi

# Extract "bench name -> median_ns" pairs from a JSON-lines bench file.
medians() {
    sed -n 's/.*"bench":"\([^"]*\)".*"median_ns":\([0-9]*\).*/\1 \2/p' "$1"
}

fail=0
while read -r name base_med; do
    fresh_med=$(medians "$FRESH" | awk -v n="$name" '$1 == n {print $2}')
    if [[ -z "$fresh_med" ]]; then
        echo "WARN  $name: present in baseline but missing from fresh run"
        continue
    fi
    # Regression when fresh > 2x committed median.
    if (( fresh_med > 2 * base_med )); then
        echo "FAIL  $name: fresh median ${fresh_med}ns > 2x baseline ${base_med}ns"
        fail=1
    else
        printf 'ok    %-28s baseline %10dns  fresh %10dns\n' "$name" "$base_med" "$fresh_med"
    fi
done < <(medians "$BASELINE")

if (( fail )); then
    echo "==> bench_check: kernel regression detected (>2x committed median)" >&2
    exit 1
fi
echo "==> bench_check: all kernels within 2x of committed medians"
