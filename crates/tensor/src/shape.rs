//! Shape bookkeeping: dimension lists, strides, and index arithmetic.

/// A tensor shape: an ordered list of dimension extents.
///
/// Kept as a thin wrapper over `Vec<usize>` so that shape utilities (strides,
/// element counts, axis normalization) have an obvious home and so that
/// error messages can render shapes consistently.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Create a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar shape).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides for this shape, in elements.
    ///
    /// The last axis has stride 1; a scalar shape yields an empty vector.
    pub fn strides(&self) -> Vec<usize> {
        let n = self.0.len();
        let mut strides = vec![1usize; n];
        for i in (0..n.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Convert a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    /// Panics if `idx` has the wrong rank or any coordinate is out of range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.0.len(),
            "index rank {} does not match shape rank {} ({})",
            idx.len(),
            self.0.len(),
            self
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in idx.iter().zip(self.0.iter()).enumerate() {
            assert!(
                i < d,
                "index {i} out of range for axis {axis} with extent {d} ({self})"
            );
            off += i * strides[axis];
        }
        off
    }

    /// Normalize a possibly-negative axis spec into `0..ndim`.
    ///
    /// Accepts `-ndim..=ndim-1` like NumPy/PyTorch; `-1` is the last axis.
    ///
    /// # Panics
    /// Panics if the axis is out of range.
    pub fn normalize_axis(&self, axis: isize) -> usize {
        let n = self.0.len() as isize;
        let a = if axis < 0 { axis + n } else { axis };
        assert!(
            (0..n).contains(&a),
            "axis {axis} out of range for rank-{n} shape {self}"
        );
        a as usize
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn numel_and_ndim() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.ndim(), 3);
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]);
                    assert!(off < 24);
                    assert!(seen.insert(off), "duplicate offset {off}");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_out_of_range_panics() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn normalize_axis_accepts_negative() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.normalize_axis(-1), 2);
        assert_eq!(s.normalize_axis(-3), 0);
        assert_eq!(s.normalize_axis(1), 1);
    }

    #[test]
    #[should_panic(expected = "axis 3 out of range")]
    fn normalize_axis_rejects_large() {
        Shape::new(&[2, 3, 4]).normalize_axis(3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Shape::new(&[2, 3])), "[2, 3]");
        assert_eq!(format!("{}", Shape::new(&[])), "[]");
    }
}
