//! # lttf-tensor
//!
//! A small, self-contained N-dimensional `f32` tensor library that serves as
//! the numerical substrate for the Conformer (ICDE 2023) reproduction.
//!
//! Design goals, in order:
//!
//! 1. **Correctness** — every kernel is covered by unit tests against
//!    hand-computed values and by property tests of algebraic identities.
//! 2. **Simplicity** — tensors are always row-major and contiguous. Shape
//!    transformations that would require strided views (`permute`, `slice`)
//!    materialize a new tensor instead. At the model sizes used in this
//!    reproduction (sequence length ≤ 1k, width ≤ 64) the copies are cheap
//!    and the kernels stay trivially verifiable.
//! 3. **Just enough surface** — exactly the operations the forecasting
//!    models need: broadcasting arithmetic, matmul, 1-D convolution and
//!    pooling, reductions, softmax, shape surgery, and seeded randomness.
//!
//! Shape errors are programming errors in this codebase, so shape-mismatched
//! operations **panic** with a descriptive message rather than returning
//! `Result`. Every panicking precondition is documented on the method.
//!
//! ```
//! use lttf_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

// The arithmetic methods on `Tensor` (`add`, `mul`, …) intentionally mirror
// the vocabulary of numpy/PyTorch rather than implementing the operator
// traits, which would force either pervasive references (`&a + &b`) or
// implicit clones.
#![allow(clippy::should_implement_trait)]
#![warn(missing_docs)]

mod broadcast;
mod conv;
mod display;
mod elementwise;
mod gru;
mod matmul;
mod pool;
mod random;
mod reduce;
mod shape;
mod shape_ops;
pub mod simd;
mod tensor;

pub use broadcast::broadcast_shapes;
pub use gru::{gru_layer_backward, gru_layer_forward, GruGrads, GruStash};
pub use random::Rng;
pub use shape::Shape;
pub use tensor::Tensor;

/// Minimum kernel work size (madds / touched elements) before a telemetry
/// span is opened. Keeps the ~50 ns guard cost off tiny ops (e.g. the
/// per-step matmuls of a narrow GRU) so the `telemetry` feature stays
/// within the <3% overhead budget enforced by `scripts/bench_check.sh`.
pub const OBS_MIN_WORK: usize = 4096;

/// Like [`OBS_MIN_WORK`] but for O(n) reductions, which do so little work
/// per element that a span only pays for itself on large inputs.
pub const OBS_MIN_REDUCE: usize = 32 * 1024;

/// [`OBS_MIN_WORK`] with the `OBS_MIN_WORK` environment override applied
/// (parsed once per process by `lttf_obs::env`). Kernel span conditions
/// call this, so e.g. `OBS_MIN_WORK=1 lttf trace profile` captures every
/// kernel in the timeline. Only evaluated when `telemetry` is compiled in.
pub fn obs_min_work() -> usize {
    lttf_obs::env::min_work()
}

/// [`OBS_MIN_REDUCE`] with the `OBS_MIN_REDUCE` environment override
/// applied; see [`obs_min_work`].
pub fn obs_min_reduce() -> usize {
    lttf_obs::env::min_reduce()
}

#[cfg(test)]
mod proptests;
