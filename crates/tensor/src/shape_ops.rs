//! Shape surgery: reshape, permute, slicing, concatenation, padding, etc.
//!
//! All operations materialize contiguous results (see crate docs for why).

use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// View the buffer under a new shape with the same element count.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let s = Shape::new(shape);
        assert_eq!(
            s.numel(),
            self.numel(),
            "cannot reshape {} ({} elements) to {} ({} elements)",
            self.shape,
            self.numel(),
            s,
            s.numel()
        );
        Tensor {
            data: self.data.clone(),
            shape: s,
        }
    }

    /// Insert a new axis of extent 1 at `axis` (may equal `ndim` to append).
    pub fn unsqueeze(&self, axis: usize) -> Tensor {
        assert!(
            axis <= self.ndim(),
            "unsqueeze axis {axis} out of range for rank {}",
            self.ndim()
        );
        let mut dims = self.shape.dims().to_vec();
        dims.insert(axis, 1);
        self.reshape(&dims)
    }

    /// Remove an axis of extent 1.
    ///
    /// # Panics
    /// Panics if the axis extent is not 1.
    pub fn squeeze(&self, axis: isize) -> Tensor {
        let ax = self.shape.normalize_axis(axis);
        assert_eq!(
            self.shape.dims()[ax],
            1,
            "cannot squeeze axis {ax} of extent {} in {}",
            self.shape.dims()[ax],
            self.shape
        );
        let mut dims = self.shape.dims().to_vec();
        dims.remove(ax);
        self.reshape(&dims)
    }

    /// Transpose a 2-D tensor.
    ///
    /// # Panics
    /// Panics unless the tensor is 2-D.
    pub fn t(&self) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "t() requires a 2-D tensor, got {}",
            self.shape
        );
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Permute axes by `order` (a permutation of `0..ndim`), materializing.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the axes.
    pub fn permute(&self, order: &[usize]) -> Tensor {
        let n = self.ndim();
        assert_eq!(
            order.len(),
            n,
            "permute order has wrong length for {}",
            self.shape
        );
        let mut seen = vec![false; n];
        for &o in order {
            assert!(
                o < n && !seen[o],
                "invalid permutation {order:?} for rank {n}"
            );
            seen[o] = true;
        }
        let src_dims = self.shape.dims();
        let src_strides = self.shape.strides();
        let dst_dims: Vec<usize> = order.iter().map(|&o| src_dims[o]).collect();
        let dst_src_strides: Vec<usize> = order.iter().map(|&o| src_strides[o]).collect();
        let dst = Shape::new(&dst_dims);
        let mut out = vec![0.0f32; dst.numel()];
        let mut idx = vec![0usize; n];
        let mut src_off = 0usize;
        for slot in out.iter_mut() {
            *slot = self.data[src_off];
            for axis in (0..n).rev() {
                idx[axis] += 1;
                src_off += dst_src_strides[axis];
                if idx[axis] < dst_dims[axis] {
                    break;
                }
                src_off -= dst_src_strides[axis] * dst_dims[axis];
                idx[axis] = 0;
            }
        }
        Tensor::from_vec(out, &dst_dims)
    }

    /// Swap two axes.
    pub fn swap_axes(&self, a: isize, b: isize) -> Tensor {
        let a = self.shape.normalize_axis(a);
        let b = self.shape.normalize_axis(b);
        let mut order: Vec<usize> = (0..self.ndim()).collect();
        order.swap(a, b);
        self.permute(&order)
    }

    /// Take the half-open range `[start, start+len)` along `axis`.
    ///
    /// # Panics
    /// Panics if the range exceeds the axis extent.
    pub fn narrow(&self, axis: isize, start: usize, len: usize) -> Tensor {
        let ax = self.shape.normalize_axis(axis);
        let dims = self.shape.dims();
        assert!(
            start + len <= dims[ax],
            "narrow range {start}..{} exceeds axis {ax} extent {} in {}",
            start + len,
            dims[ax],
            self.shape
        );
        let outer: usize = dims[..ax].iter().product();
        let inner: usize = dims[ax + 1..].iter().product();
        let extent = dims[ax];
        let mut out = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = (o * extent + start) * inner;
            out.extend_from_slice(&self.data[base..base + len * inner]);
        }
        let mut new_dims = dims.to_vec();
        new_dims[ax] = len;
        Tensor::from_vec(out, &new_dims)
    }

    /// Select a single index along `axis`, removing that axis.
    pub fn index_axis(&self, axis: isize, index: usize) -> Tensor {
        let ax = self.shape.normalize_axis(axis);
        let t = self.narrow(axis, index, 1);
        t.squeeze(ax as isize)
    }

    /// Select (gather) the given `indices` along `axis`, in order.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select(&self, axis: isize, indices: &[usize]) -> Tensor {
        let ax = self.shape.normalize_axis(axis);
        let dims = self.shape.dims();
        let extent = dims[ax];
        for &i in indices {
            assert!(
                i < extent,
                "select index {i} out of range for axis extent {extent}"
            );
        }
        let outer: usize = dims[..ax].iter().product();
        let inner: usize = dims[ax + 1..].iter().product();
        let mut out = Vec::with_capacity(outer * indices.len() * inner);
        for o in 0..outer {
            for &i in indices {
                let base = (o * extent + i) * inner;
                out.extend_from_slice(&self.data[base..base + inner]);
            }
        }
        let mut new_dims = dims.to_vec();
        new_dims[ax] = indices.len();
        Tensor::from_vec(out, &new_dims)
    }

    /// Concatenate tensors along `axis`. All other axes must match.
    ///
    /// # Panics
    /// Panics on an empty list or mismatched non-concat axes.
    pub fn concat(tensors: &[&Tensor], axis: isize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of empty tensor list");
        let ax = tensors[0].shape.normalize_axis(axis);
        let first_dims = tensors[0].shape.dims();
        let mut total = 0usize;
        for t in tensors {
            assert_eq!(
                t.ndim(),
                first_dims.len(),
                "concat rank mismatch: {} vs {}",
                t.shape,
                tensors[0].shape
            );
            for (a, (&d, &d0)) in t.shape.dims().iter().zip(first_dims).enumerate() {
                assert!(
                    a == ax || d == d0,
                    "concat shape mismatch on axis {a}: {} vs {}",
                    t.shape,
                    tensors[0].shape
                );
            }
            total += t.shape.dims()[ax];
        }
        let outer: usize = first_dims[..ax].iter().product();
        let inner: usize = first_dims[ax + 1..].iter().product();
        let mut new_dims = first_dims.to_vec();
        new_dims[ax] = total;
        let mut out = Vec::with_capacity(outer * total * inner);
        for o in 0..outer {
            for t in tensors {
                let e = t.shape.dims()[ax];
                let base = o * e * inner;
                out.extend_from_slice(&t.data[base..base + e * inner]);
            }
        }
        Tensor::from_vec(out, &new_dims)
    }

    /// Stack tensors of identical shape along a new leading `axis`.
    pub fn stack(tensors: &[&Tensor], axis: usize) -> Tensor {
        assert!(!tensors.is_empty(), "stack of empty tensor list");
        let unsqueezed: Vec<Tensor> = tensors.iter().map(|t| t.unsqueeze(axis)).collect();
        let refs: Vec<&Tensor> = unsqueezed.iter().collect();
        Tensor::concat(&refs, axis as isize)
    }

    /// Split into equal chunks of `size` along `axis`.
    ///
    /// # Panics
    /// Panics if the axis extent is not divisible by `size`.
    pub fn split(&self, axis: isize, size: usize) -> Vec<Tensor> {
        let ax = self.shape.normalize_axis(axis);
        let extent = self.shape.dims()[ax];
        assert_eq!(
            extent % size,
            0,
            "axis {ax} extent {extent} not divisible by chunk size {size}"
        );
        (0..extent / size)
            .map(|i| self.narrow(axis, i * size, size))
            .collect()
    }

    /// Pad `axis` with `before` copies of `value` in front and `after` behind.
    pub fn pad_axis(&self, axis: isize, before: usize, after: usize, value: f32) -> Tensor {
        let ax = self.shape.normalize_axis(axis);
        let dims = self.shape.dims();
        let extent = dims[ax];
        let outer: usize = dims[..ax].iter().product();
        let inner: usize = dims[ax + 1..].iter().product();
        let new_extent = extent + before + after;
        let mut out = vec![value; outer * new_extent * inner];
        for o in 0..outer {
            let src = o * extent * inner;
            let dst = (o * new_extent + before) * inner;
            out[dst..dst + extent * inner].copy_from_slice(&self.data[src..src + extent * inner]);
        }
        let mut new_dims = dims.to_vec();
        new_dims[ax] = new_extent;
        Tensor::from_vec(out, &new_dims)
    }

    /// Pad `axis` by replicating the edge values (used by series
    /// decomposition, which pads with the first/last time step).
    pub fn pad_axis_replicate(&self, axis: isize, before: usize, after: usize) -> Tensor {
        let ax = self.shape.normalize_axis(axis);
        let extent = self.shape.dims()[ax];
        assert!(
            extent > 0,
            "cannot replicate-pad empty axis {ax} of {}",
            self.shape
        );
        let mut indices = Vec::with_capacity(before + extent + after);
        indices.extend(std::iter::repeat_n(0, before));
        indices.extend(0..extent);
        indices.extend(std::iter::repeat_n(extent - 1, after));
        self.select(ax as isize, &indices)
    }

    /// Reverse the order of elements along `axis`.
    pub fn flip(&self, axis: isize) -> Tensor {
        let ax = self.shape.normalize_axis(axis);
        let extent = self.shape.dims()[ax];
        let indices: Vec<usize> = (0..extent).rev().collect();
        self.select(ax as isize, &indices)
    }

    /// Repeat the whole tensor `n` times along `axis`.
    pub fn repeat_axis(&self, axis: isize, n: usize) -> Tensor {
        let copies: Vec<&Tensor> = std::iter::repeat_n(self, n).collect();
        Tensor::concat(&copies, axis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Tensor {
        Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3])
    }

    #[test]
    fn reshape_and_squeeze() {
        let t = m23();
        assert_eq!(t.reshape(&[3, 2]).shape(), &[3, 2]);
        assert_eq!(t.reshape(&[6]).data(), t.data());
        let u = t.unsqueeze(0);
        assert_eq!(u.shape(), &[1, 2, 3]);
        assert_eq!(u.squeeze(0).shape(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_wrong_count_panics() {
        m23().reshape(&[4]);
    }

    #[test]
    fn transpose_2d() {
        let t = m23().t();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
        // double transpose is identity
        assert_eq!(t.t().data(), m23().data());
    }

    #[test]
    fn permute_3d() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), t.at(&[0, 2, 1]));
        assert_eq!(p.at(&[3, 1, 0]), t.at(&[1, 0, 3]));
        // identity permutation
        assert_eq!(t.permute(&[0, 1, 2]).data(), t.data());
    }

    #[test]
    fn swap_axes_matches_t_for_2d() {
        let t = m23();
        assert_eq!(t.swap_axes(0, 1).data(), t.t().data());
        assert_eq!(t.swap_axes(-2, -1).data(), t.t().data());
    }

    #[test]
    fn narrow_and_index() {
        let t = m23();
        let n = t.narrow(1, 1, 2);
        assert_eq!(n.shape(), &[2, 2]);
        assert_eq!(n.data(), &[2., 3., 5., 6.]);
        let r = t.index_axis(0, 1);
        assert_eq!(r.shape(), &[3]);
        assert_eq!(r.data(), &[4., 5., 6.]);
    }

    #[test]
    fn select_reorders() {
        let t = m23();
        let s = t.select(1, &[2, 0]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[3., 1., 6., 4.]);
    }

    #[test]
    fn concat_axis0_and_1() {
        let a = m23();
        let b = m23().mul_scalar(10.0);
        let c0 = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c0.shape(), &[4, 3]);
        assert_eq!(c0.at(&[2, 0]), 10.0);
        let c1 = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c1.shape(), &[2, 6]);
        assert_eq!(c1.at(&[0, 3]), 10.0);
        assert_eq!(c1.at(&[1, 5]), 60.0);
    }

    #[test]
    fn stack_new_axis() {
        let a = Tensor::from_slice(&[1., 2.]);
        let b = Tensor::from_slice(&[3., 4.]);
        let s = Tensor::stack(&[&a, &b], 0);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[1., 2., 3., 4.]);
        let s1 = Tensor::stack(&[&a, &b], 1);
        assert_eq!(s1.shape(), &[2, 2]);
        assert_eq!(s1.data(), &[1., 3., 2., 4.]);
    }

    #[test]
    fn split_round_trip() {
        let t = m23();
        let parts = t.split(1, 1);
        assert_eq!(parts.len(), 3);
        let refs: Vec<&Tensor> = parts.iter().collect();
        let back = Tensor::concat(&refs, 1);
        assert_eq!(back.data(), t.data());
    }

    #[test]
    fn pad_constant() {
        let t = Tensor::from_slice(&[1., 2.]);
        let p = t.pad_axis(0, 1, 2, 0.0);
        assert_eq!(p.data(), &[0., 1., 2., 0., 0.]);
    }

    #[test]
    fn pad_replicate() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[3, 2]);
        let p = t.pad_axis_replicate(0, 2, 1);
        assert_eq!(p.shape(), &[6, 2]);
        assert_eq!(p.data(), &[1., 2., 1., 2., 1., 2., 3., 4., 5., 6., 5., 6.]);
    }

    #[test]
    fn flip_axis() {
        let t = m23();
        assert_eq!(t.flip(1).data(), &[3., 2., 1., 6., 5., 4.]);
        assert_eq!(t.flip(0).data(), &[4., 5., 6., 1., 2., 3.]);
    }

    #[test]
    fn select_empty_indices_gives_empty_axis() {
        let t = m23();
        let s = t.select(1, &[]);
        assert_eq!(s.shape(), &[2, 0]);
        assert_eq!(s.numel(), 0);
    }

    #[test]
    fn concat_rank1() {
        let a = Tensor::from_slice(&[1., 2.]);
        let b = Tensor::from_slice(&[3.]);
        let c = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c.data(), &[1., 2., 3.]);
    }

    #[test]
    fn narrow_full_range_is_identity() {
        let t = m23();
        assert_eq!(t.narrow(0, 0, 2).data(), t.data());
        assert_eq!(t.narrow(1, 0, 3).data(), t.data());
    }

    #[test]
    #[should_panic(expected = "exceeds axis")]
    fn narrow_overflow_panics() {
        m23().narrow(1, 2, 2);
    }

    #[test]
    fn repeat_axis_tiles() {
        let t = Tensor::from_slice(&[1., 2.]);
        let r = t.repeat_axis(0, 3);
        assert_eq!(r.data(), &[1., 2., 1., 2., 1., 2.]);
    }
}
