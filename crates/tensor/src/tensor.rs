//! The core [`Tensor`] type: contiguous row-major `f32` storage plus a shape.

use crate::shape::Shape;

/// An N-dimensional array of `f32`, stored contiguously in row-major order.
///
/// `Tensor` is the only array type in this workspace. It is deliberately
/// plain: no strides, no views, no reference counting. Cloning copies the
/// buffer. All shape-changing operations return new tensors.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    pub(crate) data: Vec<f32>,
    pub(crate) shape: Shape,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Build a tensor from a flat buffer and a shape.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer of {} elements cannot be viewed as shape {}",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// A 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor::from_vec(data.to_vec(), &[data.len()])
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            data: vec![v],
            shape: Shape::new(&[]),
        }
    }

    /// All zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// All ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// All elements equal to `v`.
    pub fn full(shape: &[usize], v: f32) -> Self {
        let shape = Shape::new(shape);
        Tensor {
            data: vec![v; shape.numel()],
            shape,
        }
    }

    /// Zeros with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Tensor {
            data: vec![0.0; self.data.len()],
            shape: self.shape.clone(),
        }
    }

    /// Ones with the same shape as `self`.
    pub fn ones_like(&self) -> Self {
        Tensor {
            data: vec![1.0; self.data.len()],
            shape: self.shape.clone(),
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// `[0, 1, ..., n-1]` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[n])
    }

    /// `n` evenly spaced values from `start` to `end` inclusive.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n >= 2, "linspace needs at least 2 points, got {n}");
        let step = (end - start) / (n - 1) as f32;
        Tensor::from_vec((0..n).map(|i| start + step * i as f32).collect(), &[n])
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The underlying flat buffer, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Dimension extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The [`Shape`] object.
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Extent of axis `axis` (negative axes count from the end).
    pub fn size(&self, axis: isize) -> usize {
        self.shape.dims()[self.shape.normalize_axis(axis)]
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics on rank mismatch or out-of-range coordinates.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Set the element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics on rank mismatch or out-of-range coordinates.
    pub fn set(&mut self, idx: &[usize], v: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = v;
    }

    /// The single value of a one-element tensor (any rank).
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() requires a single-element tensor, shape is {}",
            self.shape
        );
        self.data[0]
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "max_abs_diff shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Assert element-wise closeness within `tol`, with a helpful message.
    ///
    /// # Panics
    /// Panics on shape mismatch or if any element differs by more than `tol`.
    pub fn assert_close(&self, other: &Tensor, tol: f32) {
        let d = self.max_abs_diff(other);
        assert!(
            d <= tol,
            "tensors differ by {d} (> tol {tol});\n  left: {:?}\n right: {:?}",
            &self.data[..self.data.len().min(8)],
            &other.data[..other.data.len().min(8)]
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
    }

    #[test]
    #[should_panic(expected = "cannot be viewed as shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.5).data(), &[7.5, 7.5]);
        assert_eq!(Tensor::eye(2).data(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::arange(4).data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(Tensor::scalar(2.0).item(), 2.0);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.data(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn set_and_at() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 1], 5.0);
        assert_eq!(t.at(&[1, 1]), 5.0);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }

    #[test]
    fn size_negative_axis() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.size(-1), 4);
        assert_eq!(t.size(0), 2);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.set(&[0], f32::NAN);
        assert!(t.has_non_finite());
    }

    #[test]
    fn close_comparison() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[1.0, 2.001]);
        a.assert_close(&b, 1e-2);
        assert!(a.max_abs_diff(&b) > 0.0);
    }
}
