//! 1-D pooling and the moving average used by series decomposition (Eq. 9).

use crate::tensor::Tensor;
use lttf_parallel::par_chunks_mut;

impl Tensor {
    /// Average pooling over the last axis of a `[batch, ch, len]` tensor.
    ///
    /// Output length is `(len - k)/stride + 1`.
    ///
    /// # Panics
    /// Panics unless the tensor is 3-D and the window fits.
    pub fn avg_pool1d(&self, k: usize, stride: usize) -> Tensor {
        assert_eq!(
            self.ndim(),
            3,
            "avg_pool1d input must be [b, c, len], got {}",
            self.shape
        );
        assert!(
            k >= 1 && stride >= 1,
            "avg_pool1d window and stride must be >= 1"
        );
        let (b, c, len) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        assert!(len >= k, "avg_pool1d window {k} exceeds length {len}");
        let out_len = (len - k) / stride + 1;
        let mut out = vec![0.0f32; b * c * out_len];
        let inv = 1.0 / k as f32;
        for bc in 0..b * c {
            let base = bc * len;
            for ot in 0..out_len {
                let start = ot * stride;
                let s: f32 = self.data[base + start..base + start + k].iter().sum();
                out[bc * out_len + ot] = s * inv;
            }
        }
        Tensor::from_vec(out, &[b, c, out_len])
    }

    /// Max pooling over the last axis of a `[batch, ch, len]` tensor.
    pub fn max_pool1d(&self, k: usize, stride: usize) -> Tensor {
        assert_eq!(
            self.ndim(),
            3,
            "max_pool1d input must be [b, c, len], got {}",
            self.shape
        );
        let (b, c, len) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        assert!(len >= k, "max_pool1d window {k} exceeds length {len}");
        let out_len = (len - k) / stride + 1;
        let mut out = vec![0.0f32; b * c * out_len];
        for bc in 0..b * c {
            let base = bc * len;
            for ot in 0..out_len {
                let start = ot * stride;
                out[bc * out_len + ot] = self.data[base + start..base + start + k]
                    .iter()
                    .cloned()
                    .fold(f32::NEG_INFINITY, f32::max);
            }
        }
        Tensor::from_vec(out, &[b, c, out_len])
    }

    /// Length-preserving moving average along `axis` with replicate padding —
    /// exactly the `AvgPool(Padding(x))` trend extractor of Autoformer-style
    /// series decomposition (paper Eq. 9).
    ///
    /// The series is padded with `(k-1)/2` leading and `k/2` trailing copies
    /// of the edge values, then averaged with a length-`k` window, so the
    /// output has the same extent along `axis` as the input.
    pub fn moving_avg(&self, axis: isize, k: usize) -> Tensor {
        assert!(k >= 1, "moving_avg window must be >= 1");
        let span = lttf_obs::span!("moving_avg", self.numel() >= crate::obs_min_work());
        span.bytes(self.numel() * 2 * 4);
        let ax = self.shape.normalize_axis(axis);
        let before = (k - 1) / 2;
        let after = k / 2;
        let padded = self.pad_axis_replicate(ax as isize, before, after);
        // Slide a running row-sum along the axis: O(n) total instead of
        // O(n·k) — each step adds the entering row and subtracts the
        // leaving one.
        let dims = padded.shape();
        let extent = dims[ax];
        let out_extent = extent - k + 1;
        let outer: usize = dims[..ax].iter().product();
        let inner: usize = dims[ax + 1..].iter().product();
        let mut out = vec![0.0f32; outer * out_extent * inner];
        let inv = 1.0 / k as f32;
        let src = &padded.data;
        let slide_outer = |o: usize, block: &mut [f32]| {
            let base = o * extent * inner;
            let mut acc = vec![0.0f32; inner];
            for kk in 0..k {
                let row = &src[base + kk * inner..base + (kk + 1) * inner];
                for (a, &v) in acc.iter_mut().zip(row) {
                    *a += v;
                }
            }
            for (slot, &a) in block[..inner].iter_mut().zip(&acc) {
                *slot = a * inv;
            }
            for t in 1..out_extent {
                let leave = &src[base + (t - 1) * inner..base + t * inner];
                let enter = &src[base + (t + k - 1) * inner..base + (t + k) * inner];
                for ((a, &l), &e) in acc.iter_mut().zip(leave).zip(enter) {
                    *a += e - l;
                }
                let orow = &mut block[t * inner..(t + 1) * inner];
                for (slot, &a) in orow.iter_mut().zip(&acc) {
                    *slot = a * inv;
                }
            }
        };
        const PAR_MIN_WORK: usize = 1 << 15;
        let block_len = out_extent * inner;
        if out.is_empty() || inner == 0 {
            // nothing to do for degenerate shapes
        } else if outer >= 2
            && outer * extent * inner >= PAR_MIN_WORK
            && lttf_parallel::num_threads() > 1
        {
            let per = (PAR_MIN_WORK / (extent * inner).max(1)).max(1);
            par_chunks_mut(&mut out, per * block_len, |ci, chunk| {
                for (j, block) in chunk.chunks_mut(block_len).enumerate() {
                    slide_outer(ci * per + j, block);
                }
            });
        } else {
            for (o, block) in out.chunks_mut(block_len).enumerate() {
                slide_outer(o, block);
            }
        }
        let mut new_dims = self.shape.dims().to_vec();
        new_dims[ax] = out_extent.min(new_dims[ax]);
        debug_assert_eq!(out_extent, self.shape.dims()[ax]);
        Tensor::from_vec(out, &new_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_basic() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 4]);
        let y = x.avg_pool1d(2, 2);
        assert_eq!(y.data(), &[1.5, 3.5]);
        let y1 = x.avg_pool1d(2, 1);
        assert_eq!(y1.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn max_pool_basic() {
        let x = Tensor::from_vec(vec![1., 3., 2., 5.], &[1, 1, 4]);
        let y = x.max_pool1d(2, 2);
        assert_eq!(y.data(), &[3., 5.]);
    }

    #[test]
    fn moving_avg_preserves_length() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 5.], &[5, 1]);
        let y = x.moving_avg(0, 3);
        assert_eq!(y.shape(), &[5, 1]);
        // with replicate padding: [1,1,2,3,4,5,5]
        y.assert_close(
            &Tensor::from_vec(vec![4.0 / 3.0, 2.0, 3.0, 4.0, 14.0 / 3.0], &[5, 1]),
            1e-6,
        );
    }

    #[test]
    fn moving_avg_window_one_is_identity() {
        let x = Tensor::from_vec(vec![3., 1., 4., 1., 5.], &[5]);
        assert_eq!(x.moving_avg(0, 1).data(), x.data());
    }

    #[test]
    fn moving_avg_constant_series_unchanged() {
        let x = Tensor::full(&[8, 2], 7.0);
        let y = x.moving_avg(0, 4);
        y.assert_close(&x, 1e-6);
    }

    #[test]
    fn moving_avg_even_window() {
        let x = Tensor::from_vec(vec![0., 2., 4., 6.], &[4]);
        // pad before=(2-1)/2=0, after=2/2=1 -> [0,2,4,6,6]
        let y = x.moving_avg(0, 2);
        assert_eq!(y.data(), &[1., 3., 5., 6.]);
    }

    #[test]
    fn moving_avg_on_middle_axis() {
        // [batch=1, len=4, ch=2]: smooth along axis 1
        let x = Tensor::from_vec(vec![1., 10., 3., 30., 5., 50., 7., 70.], &[1, 4, 2]);
        let y = x.moving_avg(1, 3);
        assert_eq!(y.shape(), &[1, 4, 2]);
        // channel 0 padded: [1,1,3,5,7,7] -> [5/3, 3, 5, 19/3]
        assert!((y.at(&[0, 1, 0]) - 3.0).abs() < 1e-6);
        assert!((y.at(&[0, 2, 1]) - 50.0).abs() < 1e-6);
    }
}
