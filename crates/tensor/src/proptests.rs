//! Property-based tests of algebraic tensor identities.

use crate::{broadcast_shapes, Rng, Tensor};
use lttf_testkit::prop::{self, Gen};
use lttf_testkit::{prop_assert, prop_assert_eq, properties};

/// Generator: a small random shape with 1–3 dims of extent 1–5.
fn small_shape() -> Gen<Vec<usize>> {
    prop::vecs(prop::usizes(1..6), 1..4)
}

/// Generator: a tensor with a random small shape and tame values.
fn arb_tensor() -> Gen<Tensor> {
    small_shape().flat_map(|shape| {
        let n: usize = shape.iter().product();
        let shape = shape.clone();
        prop::vec_exact(prop::f32s(-10.0..10.0), n)
            .map(move |data| Tensor::from_vec(data, &shape))
    })
}

/// Generator: a flat buffer of `n` tame values.
fn vec_f32(lo: f32, hi: f32, n: usize) -> Gen<Vec<f32>> {
    prop::vec_exact(prop::f32s(lo..hi), n)
}

properties! {
    fn add_commutes(t in arb_tensor()) {
        let shape = t.shape().to_vec();
        let mut rng = Rng::seed(1);
        let u = Tensor::randn(&shape, &mut rng);
        t.add(&u).assert_close(&u.add(&t), 1e-5);
    }

    fn add_zero_is_identity(t in arb_tensor()) {
        t.add(&t.zeros_like()).assert_close(&t, 0.0);
    }

    fn mul_one_is_identity(t in arb_tensor()) {
        t.mul(&t.ones_like()).assert_close(&t, 0.0);
    }

    fn sub_self_is_zero(t in arb_tensor()) {
        t.sub(&t).assert_close(&t.zeros_like(), 0.0);
    }

    fn double_neg_is_identity(t in arb_tensor()) {
        t.neg().neg().assert_close(&t, 0.0);
    }

    fn exp_ln_round_trip(t in arb_tensor()) {
        // exp then ln recovers the input (values are in a safe range).
        t.exp().ln().assert_close(&t, 1e-3);
    }

    fn sum_matches_sum_axis_chain(t in arb_tensor()) {
        let mut r = t.clone();
        while r.ndim() > 0 {
            r = r.sum_axis(0);
        }
        prop_assert!((r.item() - t.sum()).abs() < 1e-2 * (1.0 + t.sum().abs()));
    }

    fn softmax_rows_are_distributions(t in arb_tensor()) {
        let s = t.softmax(-1);
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        let sums = s.sum_axis_keepdim(-1);
        sums.assert_close(&sums.ones_like(), 1e-4);
    }

    fn broadcast_is_idempotent_on_same_shape(t in arb_tensor()) {
        let b = t.broadcast_to(t.shape());
        prop_assert_eq!(b.data(), t.data());
    }

    fn broadcast_shapes_commutative(a in small_shape(), b in small_shape()) {
        // Filter to compatible shape pairs by construction: make b a prefix-1 version.
        let b2: Vec<usize> = b.iter().map(|_| 1).collect();
        prop_assert_eq!(broadcast_shapes(&a, &b2), broadcast_shapes(&b2, &a));
    }

    fn transpose_involution(data in vec_f32(-5.0, 5.0, 12)) {
        let t = Tensor::from_vec(data, &[3, 4]);
        t.t().t().assert_close(&t, 0.0);
    }

    fn matmul_identity_right(data in vec_f32(-5.0, 5.0, 12)) {
        let t = Tensor::from_vec(data, &[3, 4]);
        t.matmul(&Tensor::eye(4)).assert_close(&t, 1e-5);
    }

    fn matmul_transpose_identity(a in vec_f32(-3.0, 3.0, 6), b in vec_f32(-3.0, 3.0, 6)) {
        // (A B)^T = B^T A^T
        let a = Tensor::from_vec(a, &[2, 3]);
        let b = Tensor::from_vec(b, &[3, 2]);
        let left = a.matmul(&b).t();
        let right = b.t().matmul(&a.t());
        left.assert_close(&right, 1e-4);
    }

    fn concat_narrow_round_trip(t in arb_tensor()) {
        let parts = t.split(0, 1);
        let refs: Vec<&Tensor> = parts.iter().collect();
        let back = Tensor::concat(&refs, 0);
        back.assert_close(&t, 0.0);
    }

    fn flip_involution(t in arb_tensor()) {
        t.flip(0).flip(0).assert_close(&t, 0.0);
    }

    fn moving_avg_bounded_by_extrema(data in vec_f32(-5.0, 5.0, 10)) {
        let t = Tensor::from_vec(data, &[10]);
        let m = t.moving_avg(0, 3);
        prop_assert!(m.max() <= t.max() + 1e-5);
        prop_assert!(m.min() >= t.min() - 1e-5);
    }

    fn cumsum_last_equals_sum(data in vec_f32(-5.0, 5.0, 8)) {
        let t = Tensor::from_vec(data, &[8]);
        let c = t.cumsum(0);
        prop_assert!((c.data()[7] - t.sum()).abs() < 1e-3);
    }
}

/// Run `f` under forced-scalar then forced-AVX2 dispatch, returning
/// `(scalar, simd)`. Holds the crate's simd test lock for the duration and
/// restores auto-detection even if `f` panics mid-property.
fn on_both_backends<T>(f: impl Fn() -> T) -> (T, T) {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            crate::simd::set_simd_override(None);
        }
    }
    let _guard = crate::simd::test_lock();
    let _restore = Restore;
    crate::simd::set_simd_override(Some(false));
    let scalar = f();
    crate::simd::set_simd_override(Some(true));
    let simd = f();
    (scalar, simd)
}

// SIMD/scalar equivalence over randomized shapes (DESIGN.md §8): the two
// backends may differ in the last ulp on fused/reassociated kernels, so
// these compare within a tolerance scaled by the reduction depth rather
// than bit-for-bit. On hosts without AVX2 both runs take the scalar path
// and the checks are trivially true. Case counts are modest — each case
// runs every kernel twice.
properties! {
    cases = 32;

    // m straddles the MR=4 microkernel tile, n stays below one NC=128
    // column panel, k crosses the KC=256 tile boundary (packed-B path).
    fn simd_gemm_matches_scalar(
        m in prop::usizes(1..10),
        k in prop::usizes(1..320),
        n in prop::usizes(1..140),
        seed in prop::usizes(0..10_000)
    ) {
        let mut rng = Rng::seed(seed as u64 + 1);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let (s, v) = on_both_backends(|| a.matmul(&b));
        let tol = 1e-5 * (k as f32) + 1e-5;
        prop_assert!(
            s.max_abs_diff(&v) <= tol,
            "gemm [{m},{k}]x[{k},{n}]: backends differ by {} (> {tol})",
            s.max_abs_diff(&v)
        );
    }

    fn simd_conv1d_and_backwards_match_scalar(
        b in prop::usizes(1..4),
        cin in prop::usizes(1..6),
        cout in prop::usizes(1..6),
        len in prop::usizes(1..40),
        ksize in prop::usizes(1..6),
        padding in prop::usizes(0..3),
        seed in prop::usizes(0..10_000)
    ) {
        let mut rng = Rng::seed(seed as u64 + 2);
        let x = Tensor::randn(&[b, cin, len], &mut rng);
        let w = Tensor::randn(&[cout, cin, ksize], &mut rng);
        let out_len = (len + 2 * padding).saturating_sub(ksize - 1);
        if out_len == 0 {
            return Ok(());
        }
        let go = Tensor::randn(&[b, cout, out_len], &mut rng);
        let (s, v) = on_both_backends(|| {
            (
                x.conv1d(&w, None, padding, 1),
                Tensor::conv1d_backward_input(&go, &w, &[b, cin, len], padding, 1),
                Tensor::conv1d_backward_weight(&go, &x, &[cout, cin, ksize], padding, 1),
            )
        });
        let tol = 1e-5 * (cin * ksize * out_len) as f32 + 1e-5;
        prop_assert!(s.0.max_abs_diff(&v.0) <= tol, "conv1d forward diverged");
        prop_assert!(s.1.max_abs_diff(&v.1) <= tol, "conv1d bwd_input diverged");
        prop_assert!(s.2.max_abs_diff(&v.2) <= tol, "conv1d bwd_weight diverged");
    }

    // Lengths cover the 8-lane remainder and both sides of the pairwise
    // block size; tolerance is relative, matching the tree-reduction bound.
    fn simd_sum_and_dot_match_scalar(
        n in prop::usizes(1..3000),
        seed in prop::usizes(0..10_000)
    ) {
        let mut rng = Rng::seed(seed as u64 + 3);
        let a = Tensor::randn(&[n], &mut rng);
        let b = Tensor::randn(&[n], &mut rng);
        let (s, v) = on_both_backends(|| (a.sum(), a.dot(&b)));
        prop_assert!(
            (s.0 - v.0).abs() <= 1e-4 * s.0.abs().max(1.0),
            "sum len {n}: {} vs {}", s.0, v.0
        );
        prop_assert!(
            (s.1 - v.1).abs() <= 1e-4 * s.1.abs().max(1.0),
            "dot len {n}: {} vs {}", s.1, v.1
        );
    }

    fn simd_transcendental_maps_match_scalar(data in vec_f32(-12.0, 12.0, 37)) {
        let t = Tensor::from_vec(data, &[37]);
        let (s, v) = on_both_backends(|| (t.exp(), t.sigmoid(), t.tanh(), t.gelu()));
        for (name, (sc, vc)) in [("exp", (&s.0, &v.0)), ("sigmoid", (&s.1, &v.1)),
                                 ("tanh", (&s.2, &v.2)), ("gelu", (&s.3, &v.3))] {
            for (x, y) in sc.data().iter().zip(vc.data()) {
                prop_assert!(
                    (x - y).abs() <= 4e-6 * x.abs().max(1.0),
                    "{name}: {x} vs {y}"
                );
            }
        }
    }

    fn simd_gru_layer_matches_scalar(
        b in prop::usizes(1..3),
        len in prop::usizes(0..8),
        input in prop::usizes(1..6),
        hs in prop::usizes(1..8),
        seed in prop::usizes(0..10_000)
    ) {
        let mut rng = Rng::seed(seed as u64 + 4);
        let x = Tensor::randn(&[b, len, input], &mut rng);
        let w_ih = Tensor::randn(&[input, 3 * hs], &mut rng);
        let w_hh = Tensor::randn(&[hs, 3 * hs], &mut rng);
        let b_ih = Tensor::randn(&[3 * hs], &mut rng);
        let b_hh = Tensor::randn(&[3 * hs], &mut rng);
        let go = Tensor::randn(&[b, len, hs], &mut rng);
        let (s, v) = on_both_backends(|| {
            let (out, stash) =
                crate::gru_layer_forward(&x, &w_ih, &w_hh, &b_ih, &b_hh, true);
            let g = crate::gru_layer_backward(
                &go, &x, &w_ih, &w_hh, &out, stash.as_ref().unwrap(),
            );
            (out, g.dx, g.dw_ih, g.dw_hh)
        });
        // Gates saturate, so absolute error stays small; BPTT compounds
        // per step, hence the len-scaled bound.
        let tol = 1e-4 * (len as f32 + 1.0);
        prop_assert!(s.0.max_abs_diff(&v.0) <= tol, "gru forward diverged");
        prop_assert!(s.1.max_abs_diff(&v.1) <= tol, "gru dx diverged");
        prop_assert!(s.2.max_abs_diff(&v.2) <= tol, "gru dw_ih diverged");
        prop_assert!(s.3.max_abs_diff(&v.3) <= tol, "gru dw_hh diverged");
    }
}
