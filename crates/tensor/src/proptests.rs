//! Property-based tests of algebraic tensor identities.

use crate::{broadcast_shapes, Rng, Tensor};
use lttf_testkit::prop::{self, Gen};
use lttf_testkit::{prop_assert, prop_assert_eq, properties};

/// Generator: a small random shape with 1–3 dims of extent 1–5.
fn small_shape() -> Gen<Vec<usize>> {
    prop::vecs(prop::usizes(1..6), 1..4)
}

/// Generator: a tensor with a random small shape and tame values.
fn arb_tensor() -> Gen<Tensor> {
    small_shape().flat_map(|shape| {
        let n: usize = shape.iter().product();
        let shape = shape.clone();
        prop::vec_exact(prop::f32s(-10.0..10.0), n)
            .map(move |data| Tensor::from_vec(data, &shape))
    })
}

/// Generator: a flat buffer of `n` tame values.
fn vec_f32(lo: f32, hi: f32, n: usize) -> Gen<Vec<f32>> {
    prop::vec_exact(prop::f32s(lo..hi), n)
}

properties! {
    fn add_commutes(t in arb_tensor()) {
        let shape = t.shape().to_vec();
        let mut rng = Rng::seed(1);
        let u = Tensor::randn(&shape, &mut rng);
        t.add(&u).assert_close(&u.add(&t), 1e-5);
    }

    fn add_zero_is_identity(t in arb_tensor()) {
        t.add(&t.zeros_like()).assert_close(&t, 0.0);
    }

    fn mul_one_is_identity(t in arb_tensor()) {
        t.mul(&t.ones_like()).assert_close(&t, 0.0);
    }

    fn sub_self_is_zero(t in arb_tensor()) {
        t.sub(&t).assert_close(&t.zeros_like(), 0.0);
    }

    fn double_neg_is_identity(t in arb_tensor()) {
        t.neg().neg().assert_close(&t, 0.0);
    }

    fn exp_ln_round_trip(t in arb_tensor()) {
        // exp then ln recovers the input (values are in a safe range).
        t.exp().ln().assert_close(&t, 1e-3);
    }

    fn sum_matches_sum_axis_chain(t in arb_tensor()) {
        let mut r = t.clone();
        while r.ndim() > 0 {
            r = r.sum_axis(0);
        }
        prop_assert!((r.item() - t.sum()).abs() < 1e-2 * (1.0 + t.sum().abs()));
    }

    fn softmax_rows_are_distributions(t in arb_tensor()) {
        let s = t.softmax(-1);
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        let sums = s.sum_axis_keepdim(-1);
        sums.assert_close(&sums.ones_like(), 1e-4);
    }

    fn broadcast_is_idempotent_on_same_shape(t in arb_tensor()) {
        let b = t.broadcast_to(t.shape());
        prop_assert_eq!(b.data(), t.data());
    }

    fn broadcast_shapes_commutative(a in small_shape(), b in small_shape()) {
        // Filter to compatible shape pairs by construction: make b a prefix-1 version.
        let b2: Vec<usize> = b.iter().map(|_| 1).collect();
        prop_assert_eq!(broadcast_shapes(&a, &b2), broadcast_shapes(&b2, &a));
    }

    fn transpose_involution(data in vec_f32(-5.0, 5.0, 12)) {
        let t = Tensor::from_vec(data, &[3, 4]);
        t.t().t().assert_close(&t, 0.0);
    }

    fn matmul_identity_right(data in vec_f32(-5.0, 5.0, 12)) {
        let t = Tensor::from_vec(data, &[3, 4]);
        t.matmul(&Tensor::eye(4)).assert_close(&t, 1e-5);
    }

    fn matmul_transpose_identity(a in vec_f32(-3.0, 3.0, 6), b in vec_f32(-3.0, 3.0, 6)) {
        // (A B)^T = B^T A^T
        let a = Tensor::from_vec(a, &[2, 3]);
        let b = Tensor::from_vec(b, &[3, 2]);
        let left = a.matmul(&b).t();
        let right = b.t().matmul(&a.t());
        left.assert_close(&right, 1e-4);
    }

    fn concat_narrow_round_trip(t in arb_tensor()) {
        let parts = t.split(0, 1);
        let refs: Vec<&Tensor> = parts.iter().collect();
        let back = Tensor::concat(&refs, 0);
        back.assert_close(&t, 0.0);
    }

    fn flip_involution(t in arb_tensor()) {
        t.flip(0).flip(0).assert_close(&t, 0.0);
    }

    fn moving_avg_bounded_by_extrema(data in vec_f32(-5.0, 5.0, 10)) {
        let t = Tensor::from_vec(data, &[10]);
        let m = t.moving_avg(0, 3);
        prop_assert!(m.max() <= t.max() + 1e-5);
        prop_assert!(m.min() >= t.min() - 1e-5);
    }

    fn cumsum_last_equals_sum(data in vec_f32(-5.0, 5.0, 8)) {
        let t = Tensor::from_vec(data, &[8]);
        let c = t.cumsum(0);
        prop_assert!((c.data()[7] - t.sum()).abs() < 1e-3);
    }
}
