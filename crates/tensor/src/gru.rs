//! Fused GRU layer kernels.
//!
//! A GRU layer unrolled op-by-op on the autograd tape costs ~20 tape nodes
//! per timestep; at the paper's sequence lengths the tape bookkeeping
//! dominates the arithmetic. These kernels run the whole layer as **one**
//! node: the forward issues a single `[b·len, in] @ [in, 3h]` gemm for the
//! input-side gates, then walks the sequence with one small hidden-side
//! gemm plus the fused gate row kernel ([`crate::simd::gru_gates_row`])
//! per step. The backward is hand-written backprop-through-time whose
//! weight/input gradients are again whole-sequence gemms.
//!
//! Layout follows the PyTorch convention used by `lttf-nn`'s `GruCell`:
//! weights are `[in, 3h]` / `[h, 3h]`, gate order `[r | z | n]`, and the
//! initial hidden state is zero.

use crate::matmul::{gemm, gemm_par};
use crate::tensor::Tensor;

/// Gate activations recorded by [`gru_layer_forward`] for the backward
/// pass. All fields are `[batch, len, hidden]`.
pub struct GruStash {
    /// Reset gate `r = σ(gi_r + gh_r)`.
    pub r: Tensor,
    /// Update gate `z = σ(gi_z + gh_z)`.
    pub z: Tensor,
    /// Candidate state `n = tanh(gi_n + r ⊙ gh_n)`.
    pub n: Tensor,
    /// Hidden-side candidate pre-activation `gh_n` (needed for `dr`).
    pub ghn: Tensor,
}

/// Gradients of [`gru_layer_forward`] with respect to each input.
pub struct GruGrads {
    /// Gradient of the layer input, `[batch, len, in]`.
    pub dx: Tensor,
    /// Gradient of the input-hidden weight, `[in, 3h]`.
    pub dw_ih: Tensor,
    /// Gradient of the hidden-hidden weight, `[h, 3h]`.
    pub dw_hh: Tensor,
    /// Gradient of the input-hidden bias, `[3h]`.
    pub db_ih: Tensor,
    /// Gradient of the hidden-hidden bias, `[3h]`.
    pub db_hh: Tensor,
}

/// Row-major transpose of a `rows × cols` matrix.
fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; src.len()];
    for i in 0..rows {
        for j in 0..cols {
            out[j * rows + i] = src[i * cols + j];
        }
    }
    out
}

/// Run one GRU layer over a sequence from a zero initial hidden state.
///
/// * `x`: input `[batch, len, in]`
/// * `w_ih`: `[in, 3h]`, `w_hh`: `[h, 3h]`, biases `[3h]` (gate order
///   `[r | z | n]`)
/// * `want_stash`: record gate activations for
///   [`gru_layer_backward`] (skip during inference)
///
/// Returns the per-step hidden states `[batch, len, hidden]` and, when
/// requested, the stash.
///
/// # Panics
/// Panics on rank or dimension mismatches between `x` and the weights.
pub fn gru_layer_forward(
    x: &Tensor,
    w_ih: &Tensor,
    w_hh: &Tensor,
    b_ih: &Tensor,
    b_hh: &Tensor,
    want_stash: bool,
) -> (Tensor, Option<GruStash>) {
    assert_eq!(
        x.ndim(),
        3,
        "gru_layer input must be [batch, len, in], got {}",
        x.shape
    );
    let (b, len, input) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let hs = w_hh.shape()[0];
    let h3 = 3 * hs;
    assert_eq!(
        w_ih.shape(),
        &[input, h3],
        "gru_layer w_ih must be [in={input}, 3h={h3}], got {}",
        w_ih.shape
    );
    assert_eq!(
        w_hh.shape(),
        &[hs, h3],
        "gru_layer w_hh must be [h={hs}, 3h={h3}], got {}",
        w_hh.shape
    );
    assert_eq!(b_ih.shape(), &[h3], "gru_layer b_ih must be [3h={h3}]");
    assert_eq!(b_hh.shape(), &[h3], "gru_layer b_hh must be [3h={h3}]");
    let span = lttf_obs::span!(
        "gru_layer",
        b * len * (input + hs) * h3 >= crate::obs_min_work()
    );
    span.bytes((x.numel() + w_ih.numel() + w_hh.numel() + b * len * hs) * 4);

    // Input-side gates for every step at once: gi = x W_ih + b_ih.
    let mut gi_all = vec![0.0f32; b * len * h3];
    for row in gi_all.chunks_mut(h3) {
        row.copy_from_slice(b_ih.data());
    }
    gemm_par(x.data(), w_ih.data(), &mut gi_all, b * len, input, h3);

    let mut outputs = vec![0.0f32; b * len * hs];
    let mut stash = if want_stash {
        Some((
            vec![0.0f32; b * len * hs],
            vec![0.0f32; b * len * hs],
            vec![0.0f32; b * len * hs],
            vec![0.0f32; b * len * hs],
        ))
    } else {
        None
    };

    // Sequential scan: gh_t = h_{t-1} W_hh + b_hh, then the fused gate row.
    let mut h = vec![0.0f32; b * hs];
    let mut gh = vec![0.0f32; b * h3];
    for t in 0..len {
        for row in gh.chunks_mut(h3) {
            row.copy_from_slice(b_hh.data());
        }
        gemm(&h, w_hh.data(), &mut gh, b, hs, h3);
        for bi in 0..b {
            let o = (bi * len + t) * hs;
            let (out_row, h_row) = (o..o + hs, bi * hs..(bi + 1) * hs);
            let stash_rows = stash.as_mut().map(|(r, z, n, ghn)| {
                (
                    &mut r[o..o + hs],
                    &mut z[o..o + hs],
                    &mut n[o..o + hs],
                    &mut ghn[o..o + hs],
                )
            });
            crate::simd::gru_gates_row(
                &gi_all[(bi * len + t) * h3..(bi * len + t + 1) * h3],
                &gh[bi * h3..(bi + 1) * h3],
                &h[h_row.clone()],
                &mut outputs[out_row.clone()],
                stash_rows,
            );
            h[h_row].copy_from_slice(&outputs[out_row]);
        }
    }

    let out = Tensor::from_vec(outputs, &[b, len, hs]);
    let stash = stash.map(|(r, z, n, ghn)| GruStash {
        r: Tensor::from_vec(r, &[b, len, hs]),
        z: Tensor::from_vec(z, &[b, len, hs]),
        n: Tensor::from_vec(n, &[b, len, hs]),
        ghn: Tensor::from_vec(ghn, &[b, len, hs]),
    });
    (out, stash)
}

/// Backprop-through-time for [`gru_layer_forward`].
///
/// * `go`: gradient of the forward output, `[batch, len, hidden]`
/// * `x`, `w_ih`, `w_hh`: the forward operands
/// * `outputs`: the forward result (the per-step hidden states)
/// * `stash`: gate activations from the forward pass
///
/// The per-step gate backward is element-wise; everything matrix-shaped
/// (`dx`, `dw_ih`, `dw_hh`, the recurrent `dh` chain) runs as gemms on the
/// same dispatched kernels as the forward.
pub fn gru_layer_backward(
    go: &Tensor,
    x: &Tensor,
    w_ih: &Tensor,
    w_hh: &Tensor,
    outputs: &Tensor,
    stash: &GruStash,
) -> GruGrads {
    let (b, len, input) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let hs = w_hh.shape()[0];
    let h3 = 3 * hs;
    let span = lttf_obs::span!(
        "gru_layer_bwd",
        2 * b * len * (input + hs) * h3 >= crate::obs_min_work()
    );
    span.bytes((x.numel() + 2 * outputs.numel()) * 4);

    let (rs, zs, ns, ghns) = (stash.r.data(), stash.z.data(), stash.n.data(), stash.ghn.data());
    let out = outputs.data();
    let whh_t = transpose(w_hh.data(), hs, h3);

    // Pre-activation gate gradients for every step. The input-side and
    // hidden-side rows differ only in the candidate slot (`dn` reaches
    // `gh_n` through the reset gate).
    let mut dgi_all = vec![0.0f32; b * len * h3];
    let mut dgh_all = vec![0.0f32; b * len * h3];
    let mut dh = vec![0.0f32; b * hs]; // carry: ∂L/∂h_t flowing backwards
    let mut dh_gate = vec![0.0f32; b * hs]; // z ⊙ dh_t, the direct carry term
    for t in (0..len).rev() {
        for bi in 0..b {
            let o = (bi * len + t) * hs;
            let gbase = (bi * len + t) * h3;
            for j in 0..hs {
                let (r, z, n, ghn) = (rs[o + j], zs[o + j], ns[o + j], ghns[o + j]);
                let h_prev = if t == 0 { 0.0 } else { out[o - hs + j] };
                let dht = go.data()[o + j] + dh[bi * hs + j];
                let dz = (h_prev - n) * dht;
                let dn_pre = (1.0 - n * n) * (1.0 - z) * dht;
                let dr_pre = r * (1.0 - r) * (dn_pre * ghn);
                let dz_pre = z * (1.0 - z) * dz;
                dgi_all[gbase + j] = dr_pre;
                dgi_all[gbase + hs + j] = dz_pre;
                dgi_all[gbase + 2 * hs + j] = dn_pre;
                dgh_all[gbase + j] = dr_pre;
                dgh_all[gbase + hs + j] = dz_pre;
                dgh_all[gbase + 2 * hs + j] = dn_pre * r;
                dh_gate[bi * hs + j] = z * dht;
            }
        }
        // dh_{t-1} = z ⊙ dh_t + dgh_t W_hh^T  (batch rows of dgh_all at
        // step t are strided by len; gather them through a_of-style gemm
        // is overkill for b rows — copy-free per-row gemm instead).
        dh.copy_from_slice(&dh_gate);
        for bi in 0..b {
            let gbase = (bi * len + t) * h3;
            gemm(
                &dgh_all[gbase..gbase + h3],
                &whh_t,
                &mut dh[bi * hs..(bi + 1) * hs],
                1,
                h3,
                hs,
            );
        }
    }

    // Whole-sequence weight/input gradients.
    let wih_t = transpose(w_ih.data(), input, h3);
    let mut dx = vec![0.0f32; b * len * input];
    gemm_par(&dgi_all, &wih_t, &mut dx, b * len, h3, input);

    let x_t = transpose(x.data(), b * len, input);
    let mut dw_ih = vec![0.0f32; input * h3];
    gemm_par(&x_t, &dgi_all, &mut dw_ih, input, b * len, h3);

    // h_prev rows: outputs shifted right one step within each sequence.
    let mut h_prev_all = vec![0.0f32; b * len * hs];
    for bi in 0..b {
        for t in 1..len {
            let src = (bi * len + t - 1) * hs;
            let dst = (bi * len + t) * hs;
            h_prev_all[dst..dst + hs].copy_from_slice(&out[src..src + hs]);
        }
    }
    let h_prev_t = transpose(&h_prev_all, b * len, hs);
    let mut dw_hh = vec![0.0f32; hs * h3];
    gemm_par(&h_prev_t, &dgh_all, &mut dw_hh, hs, b * len, h3);

    let mut db_ih = vec![0.0f32; h3];
    for row in dgi_all.chunks(h3) {
        crate::simd::axpy(&mut db_ih, 1.0, row);
    }
    let mut db_hh = vec![0.0f32; h3];
    for row in dgh_all.chunks(h3) {
        crate::simd::axpy(&mut db_hh, 1.0, row);
    }

    GruGrads {
        dx: Tensor::from_vec(dx, &[b, len, input]),
        dw_ih: Tensor::from_vec(dw_ih, &[input, h3]),
        dw_hh: Tensor::from_vec(dw_hh, &[hs, h3]),
        db_ih: Tensor::from_vec(db_ih, &[h3]),
        db_hh: Tensor::from_vec(db_hh, &[h3]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, mul: usize, modu: usize, off: f32, scale: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * mul % modu) as f32 - off) * scale)
            .collect()
    }

    struct Case {
        x: Tensor,
        w_ih: Tensor,
        w_hh: Tensor,
        b_ih: Tensor,
        b_hh: Tensor,
    }

    fn case(b: usize, len: usize, input: usize, hs: usize) -> Case {
        let h3 = 3 * hs;
        Case {
            x: Tensor::from_vec(fill(b * len * input, 37, 101, 50.0, 0.02), &[b, len, input]),
            w_ih: Tensor::from_vec(fill(input * h3, 53, 67, 33.0, 0.03), &[input, h3]),
            w_hh: Tensor::from_vec(fill(hs * h3, 41, 89, 44.0, 0.025), &[hs, h3]),
            b_ih: Tensor::from_vec(fill(h3, 29, 31, 15.0, 0.01), &[h3]),
            b_hh: Tensor::from_vec(fill(h3, 23, 37, 18.0, 0.01), &[h3]),
        }
    }

    /// Textbook per-step GRU in f32, mirroring `GruCell::step`'s formulas.
    fn reference_forward(c: &Case) -> Vec<f32> {
        let (b, len, input) = (c.x.shape()[0], c.x.shape()[1], c.x.shape()[2]);
        let hs = c.w_hh.shape()[0];
        let mut out = vec![0.0f32; b * len * hs];
        for bi in 0..b {
            let mut h = vec![0.0f32; hs];
            for t in 0..len {
                let xt = &c.x.data()[(bi * len + t) * input..(bi * len + t + 1) * input];
                let mut gi = c.b_ih.data().to_vec();
                let mut gh = c.b_hh.data().to_vec();
                for (p, &xv) in xt.iter().enumerate() {
                    for j in 0..3 * hs {
                        gi[j] += xv * c.w_ih.data()[p * 3 * hs + j];
                    }
                }
                for (p, &hv) in h.iter().enumerate() {
                    for j in 0..3 * hs {
                        gh[j] += hv * c.w_hh.data()[p * 3 * hs + j];
                    }
                }
                for j in 0..hs {
                    let r = 1.0 / (1.0 + (-(gi[j] + gh[j])).exp());
                    let z = 1.0 / (1.0 + (-(gi[hs + j] + gh[hs + j])).exp());
                    let n = (gi[2 * hs + j] + r * gh[2 * hs + j]).tanh();
                    let hn = (1.0 - z) * n + z * h[j];
                    out[(bi * len + t) * hs + j] = hn;
                    h[j] = hn;
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_reference() {
        let c = case(2, 5, 3, 4);
        let (got, stash) = gru_layer_forward(&c.x, &c.w_ih, &c.w_hh, &c.b_ih, &c.b_hh, false);
        assert!(stash.is_none());
        assert_eq!(got.shape(), &[2, 5, 4]);
        let want = reference_forward(&c);
        for (i, (&g, &w)) in got.data().iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() < 1e-5,
                "forward mismatch at {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn stash_bounds_are_sane() {
        let c = case(1, 4, 2, 3);
        let (_, stash) = gru_layer_forward(&c.x, &c.w_ih, &c.w_hh, &c.b_ih, &c.b_hh, true);
        let s = stash.expect("stash requested");
        for v in s.r.data().iter().chain(s.z.data()) {
            assert!((0.0..=1.0).contains(v), "gate out of range: {v}");
        }
        for v in s.n.data() {
            assert!((-1.0..=1.0).contains(v), "candidate out of range: {v}");
        }
    }

    /// Finite-difference check of every gradient the backward produces.
    #[test]
    fn backward_matches_finite_difference() {
        let c = case(2, 3, 3, 4);
        let (out, stash) = gru_layer_forward(&c.x, &c.w_ih, &c.w_hh, &c.b_ih, &c.b_hh, true);
        let go = out.ones_like();
        let g = gru_layer_backward(&go, &c.x, &c.w_ih, &c.w_hh, &out, &stash.unwrap());

        let loss = |c: &Case| -> f32 {
            gru_layer_forward(&c.x, &c.w_ih, &c.w_hh, &c.b_ih, &c.b_hh, false)
                .0
                .sum()
        };
        let eps = 1e-3;
        let check = |name: &str,
                     analytic: &Tensor,
                     read: &dyn Fn(&Case) -> &Tensor,
                     write: &dyn Fn(&mut Case) -> &mut Tensor| {
            for i in 0..analytic.numel() {
                let mut cp = case(2, 3, 3, 4);
                write(&mut cp).data_mut()[i] = read(&c).data()[i] + eps;
                let up = loss(&cp);
                write(&mut cp).data_mut()[i] = read(&c).data()[i] - eps;
                let dn = loss(&cp);
                let num = (up - dn) / (2.0 * eps);
                let ana = analytic.data()[i];
                assert!(
                    (num - ana).abs() < 2e-2 * ana.abs().max(1.0),
                    "{name} grad mismatch at {i}: numeric {num} vs analytic {ana}"
                );
            }
        };
        check("x", &g.dx, &|c| &c.x, &|c| &mut c.x);
        check("w_ih", &g.dw_ih, &|c| &c.w_ih, &|c| &mut c.w_ih);
        check("w_hh", &g.dw_hh, &|c| &c.w_hh, &|c| &mut c.w_hh);
        check("b_ih", &g.db_ih, &|c| &c.b_ih, &|c| &mut c.b_ih);
        check("b_hh", &g.db_hh, &|c| &c.b_hh, &|c| &mut c.b_hh);
    }

    #[test]
    fn zero_length_sequence() {
        let c = case(2, 1, 3, 4);
        let x0 = Tensor::zeros(&[2, 0, 3]);
        let (out, _) = gru_layer_forward(&x0, &c.w_ih, &c.w_hh, &c.b_ih, &c.b_hh, false);
        assert_eq!(out.shape(), &[2, 0, 4]);
    }
}
