//! AVX2+FMA kernels.
//!
//! Every function here is `#[target_feature(enable = "avx2", enable =
//! "fma")]` and must only be reached through the dispatchers in
//! [`super`], which guarantee the features were detected at runtime.
//!
//! Determinism: each kernel's instruction schedule — vector lane
//! grouping, accumulator count, tail handling — is a pure function of the
//! operand lengths, never of the thread count or any global state, so a
//! fixed input always produces the same bytes. Where a tail shorter than
//! one vector remains, the inputs are staged through a zero-padded stack
//! buffer so tail lanes go through the *same* polynomial/FMA pipeline as
//! full lanes (no libm/poly mixing within one backend).

#![allow(unsafe_op_in_unsafe_fn)]

use super::{BinOp, UnOp};
use core::arch::x86_64::*;

/// Recursion base for the pairwise reductions. Larger than the scalar
/// backend's 32 because each lane of the 4×8-wide accumulator bank only
/// folds `256 / 32 = 8` addends sequentially — comparable error growth.
const PAIRWISE_BASE: usize = 256;

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Horizontal sum in a fixed lane order (pure function of the register).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    _mm_cvtss_f32(s)
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sum_base(x: &[f32]) -> f32 {
    let n = x.len();
    let p = x.as_ptr();
    let mut a0 = _mm256_setzero_ps();
    let mut a1 = _mm256_setzero_ps();
    let mut a2 = _mm256_setzero_ps();
    let mut a3 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 32 <= n {
        a0 = _mm256_add_ps(a0, _mm256_loadu_ps(p.add(i)));
        a1 = _mm256_add_ps(a1, _mm256_loadu_ps(p.add(i + 8)));
        a2 = _mm256_add_ps(a2, _mm256_loadu_ps(p.add(i + 16)));
        a3 = _mm256_add_ps(a3, _mm256_loadu_ps(p.add(i + 24)));
        i += 32;
    }
    let mut acc = _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3));
    while i + 8 <= n {
        acc = _mm256_add_ps(acc, _mm256_loadu_ps(p.add(i)));
        i += 8;
    }
    let mut s = hsum(acc);
    while i < n {
        s += *p.add(i);
        i += 1;
    }
    s
}

/// Pairwise sum with a vectorized 256-element base block.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sum(x: &[f32]) -> f32 {
    if x.len() <= PAIRWISE_BASE {
        return sum_base(x);
    }
    let mid = x.len() / 2;
    sum(&x[..mid]) + sum(&x[mid..])
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_base(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut a0 = _mm256_setzero_ps();
    let mut a1 = _mm256_setzero_ps();
    let mut a2 = _mm256_setzero_ps();
    let mut a3 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 32 <= n {
        a0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), a0);
        a1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 8)),
            _mm256_loadu_ps(pb.add(i + 8)),
            a1,
        );
        a2 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 16)),
            _mm256_loadu_ps(pb.add(i + 16)),
            a2,
        );
        a3 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 24)),
            _mm256_loadu_ps(pb.add(i + 24)),
            a3,
        );
        i += 32;
    }
    let mut acc = _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3));
    while i + 8 <= n {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc);
        i += 8;
    }
    let mut s = hsum(acc);
    while i < n {
        s = (*pa.add(i)).mul_add(*pb.add(i), s);
        i += 1;
    }
    s
}

/// Pairwise dot with a vectorized FMA base block.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    if a.len() <= PAIRWISE_BASE {
        return dot_base(a, b);
    }
    let mid = a.len() / 2;
    dot(&a[..mid], &b[..mid]) + dot(&a[mid..], &b[mid..])
}

/// `y[i] += a * x[i]` with FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    let n = y.len();
    let py = y.as_mut_ptr();
    let px = x.as_ptr();
    let av = _mm256_set1_ps(a);
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm256_fmadd_ps(av, _mm256_loadu_ps(px.add(i)), _mm256_loadu_ps(py.add(i)));
        _mm256_storeu_ps(py.add(i), r);
        i += 8;
    }
    while i < n {
        *py.add(i) = a.mul_add(*px.add(i), *py.add(i));
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// gemm micro-tile
// ---------------------------------------------------------------------------

/// `out[0..m,0..n] += a @ b` over strided row-major operands.
///
/// Register blocking: 4 rows × 16 columns (8 FMA accumulators held in
/// registers for the whole k-loop), then a 4×8 column tail, then scalar
/// columns; leftover rows run one at a time with 16/8-wide accumulators.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gemm_block(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let po = out.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= m {
        let a0 = pa.add(i * lda);
        let a1 = pa.add((i + 1) * lda);
        let a2 = pa.add((i + 2) * lda);
        let a3 = pa.add((i + 3) * lda);
        let o0 = po.add(i * ldo);
        let o1 = po.add((i + 1) * ldo);
        let o2 = po.add((i + 2) * ldo);
        let o3 = po.add((i + 3) * ldo);
        let mut j = 0;
        while j + 16 <= n {
            let mut c00 = _mm256_setzero_ps();
            let mut c01 = _mm256_setzero_ps();
            let mut c10 = _mm256_setzero_ps();
            let mut c11 = _mm256_setzero_ps();
            let mut c20 = _mm256_setzero_ps();
            let mut c21 = _mm256_setzero_ps();
            let mut c30 = _mm256_setzero_ps();
            let mut c31 = _mm256_setzero_ps();
            for p in 0..k {
                let b0 = _mm256_loadu_ps(pb.add(p * ldb + j));
                let b1 = _mm256_loadu_ps(pb.add(p * ldb + j + 8));
                let v0 = _mm256_set1_ps(*a0.add(p));
                c00 = _mm256_fmadd_ps(v0, b0, c00);
                c01 = _mm256_fmadd_ps(v0, b1, c01);
                let v1 = _mm256_set1_ps(*a1.add(p));
                c10 = _mm256_fmadd_ps(v1, b0, c10);
                c11 = _mm256_fmadd_ps(v1, b1, c11);
                let v2 = _mm256_set1_ps(*a2.add(p));
                c20 = _mm256_fmadd_ps(v2, b0, c20);
                c21 = _mm256_fmadd_ps(v2, b1, c21);
                let v3 = _mm256_set1_ps(*a3.add(p));
                c30 = _mm256_fmadd_ps(v3, b0, c30);
                c31 = _mm256_fmadd_ps(v3, b1, c31);
            }
            _mm256_storeu_ps(o0.add(j), _mm256_add_ps(_mm256_loadu_ps(o0.add(j)), c00));
            _mm256_storeu_ps(
                o0.add(j + 8),
                _mm256_add_ps(_mm256_loadu_ps(o0.add(j + 8)), c01),
            );
            _mm256_storeu_ps(o1.add(j), _mm256_add_ps(_mm256_loadu_ps(o1.add(j)), c10));
            _mm256_storeu_ps(
                o1.add(j + 8),
                _mm256_add_ps(_mm256_loadu_ps(o1.add(j + 8)), c11),
            );
            _mm256_storeu_ps(o2.add(j), _mm256_add_ps(_mm256_loadu_ps(o2.add(j)), c20));
            _mm256_storeu_ps(
                o2.add(j + 8),
                _mm256_add_ps(_mm256_loadu_ps(o2.add(j + 8)), c21),
            );
            _mm256_storeu_ps(o3.add(j), _mm256_add_ps(_mm256_loadu_ps(o3.add(j)), c30));
            _mm256_storeu_ps(
                o3.add(j + 8),
                _mm256_add_ps(_mm256_loadu_ps(o3.add(j + 8)), c31),
            );
            j += 16;
        }
        while j + 8 <= n {
            let mut c0 = _mm256_setzero_ps();
            let mut c1 = _mm256_setzero_ps();
            let mut c2 = _mm256_setzero_ps();
            let mut c3 = _mm256_setzero_ps();
            for p in 0..k {
                let bv = _mm256_loadu_ps(pb.add(p * ldb + j));
                c0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0.add(p)), bv, c0);
                c1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1.add(p)), bv, c1);
                c2 = _mm256_fmadd_ps(_mm256_set1_ps(*a2.add(p)), bv, c2);
                c3 = _mm256_fmadd_ps(_mm256_set1_ps(*a3.add(p)), bv, c3);
            }
            _mm256_storeu_ps(o0.add(j), _mm256_add_ps(_mm256_loadu_ps(o0.add(j)), c0));
            _mm256_storeu_ps(o1.add(j), _mm256_add_ps(_mm256_loadu_ps(o1.add(j)), c1));
            _mm256_storeu_ps(o2.add(j), _mm256_add_ps(_mm256_loadu_ps(o2.add(j)), c2));
            _mm256_storeu_ps(o3.add(j), _mm256_add_ps(_mm256_loadu_ps(o3.add(j)), c3));
            j += 8;
        }
        while j < n {
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for p in 0..k {
                let bv = *pb.add(p * ldb + j);
                s0 = (*a0.add(p)).mul_add(bv, s0);
                s1 = (*a1.add(p)).mul_add(bv, s1);
                s2 = (*a2.add(p)).mul_add(bv, s2);
                s3 = (*a3.add(p)).mul_add(bv, s3);
            }
            *o0.add(j) += s0;
            *o1.add(j) += s1;
            *o2.add(j) += s2;
            *o3.add(j) += s3;
            j += 1;
        }
        i += 4;
    }
    while i < m {
        let ar = pa.add(i * lda);
        let or = po.add(i * ldo);
        let mut j = 0;
        while j + 16 <= n {
            let mut c0 = _mm256_setzero_ps();
            let mut c1 = _mm256_setzero_ps();
            for p in 0..k {
                let av = _mm256_set1_ps(*ar.add(p));
                c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(pb.add(p * ldb + j)), c0);
                c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(pb.add(p * ldb + j + 8)), c1);
            }
            _mm256_storeu_ps(or.add(j), _mm256_add_ps(_mm256_loadu_ps(or.add(j)), c0));
            _mm256_storeu_ps(
                or.add(j + 8),
                _mm256_add_ps(_mm256_loadu_ps(or.add(j + 8)), c1),
            );
            j += 16;
        }
        while j + 8 <= n {
            let mut c0 = _mm256_setzero_ps();
            for p in 0..k {
                c0 = _mm256_fmadd_ps(
                    _mm256_set1_ps(*ar.add(p)),
                    _mm256_loadu_ps(pb.add(p * ldb + j)),
                    c0,
                );
            }
            _mm256_storeu_ps(or.add(j), _mm256_add_ps(_mm256_loadu_ps(or.add(j)), c0));
            j += 8;
        }
        while j < n {
            let mut s = 0.0f32;
            for p in 0..k {
                s = (*ar.add(p)).mul_add(*pb.add(p * ldb + j), s);
            }
            *or.add(j) += s;
            j += 1;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Transcendentals
// ---------------------------------------------------------------------------

/// Vector `e^x`: range-reduced degree-5 polynomial (Cephes `expf`
/// coefficients), ≈2 ulp over the finite range, clamped so the scaled
/// result never overflows.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp8(x: __m256) -> __m256 {
    let x = _mm256_max_ps(
        _mm256_min_ps(x, _mm256_set1_ps(88.376_26)),
        _mm256_set1_ps(-88.376_26),
    );
    // n = round-to-floor(x * log2(e) + 0.5); r = x - n*ln2 in two parts.
    let fx = _mm256_floor_ps(_mm256_fmadd_ps(
        x,
        _mm256_set1_ps(std::f32::consts::LOG2_E),
        _mm256_set1_ps(0.5),
    ));
    let r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693_359_4), x);
    let r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.121_944_4e-4), r);
    let z = _mm256_mul_ps(r, r);
    let mut y = _mm256_set1_ps(1.987_569_1e-4);
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.398_199_9e-3));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(8.333_452e-3));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(4.166_579_6e-2));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(0.166_666_65));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(0.5));
    y = _mm256_fmadd_ps(y, z, r);
    y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
    // y * 2^n via the exponent field.
    let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        _mm256_cvtps_epi32(fx),
        _mm256_set1_epi32(127),
    )));
    _mm256_mul_ps(y, pow2)
}

/// Vector sigmoid `1 / (1 + e^{-x})`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sigmoid8(x: __m256) -> __m256 {
    let e = exp8(_mm256_sub_ps(_mm256_setzero_ps(), x));
    _mm256_div_ps(
        _mm256_set1_ps(1.0),
        _mm256_add_ps(_mm256_set1_ps(1.0), e),
    )
}

/// Vector tanh via `1 - 2/(e^{2x} + 1)` on `|x|`, sign restored at the
/// end. Absolute error ≈1e-7 near zero (cancellation in `1 - t`), exact
/// saturation for large `|x|`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tanh8(x: __m256) -> __m256 {
    let sign_mask = _mm256_set1_ps(-0.0);
    let sign = _mm256_and_ps(x, sign_mask);
    let ax = _mm256_andnot_ps(sign_mask, x);
    let e = exp8(_mm256_mul_ps(ax, _mm256_set1_ps(-2.0)));
    // (1 - e) / (1 + e)
    let t = _mm256_div_ps(
        _mm256_sub_ps(_mm256_set1_ps(1.0), e),
        _mm256_add_ps(_mm256_set1_ps(1.0), e),
    );
    _mm256_or_ps(t, sign)
}

/// Vector GELU (tanh approximation).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gelu8(x: __m256) -> __m256 {
    let c = _mm256_set1_ps(0.797_884_6); // sqrt(2/pi)
    let inner = _mm256_mul_ps(
        c,
        _mm256_fmadd_ps(
            _mm256_set1_ps(0.044_715),
            _mm256_mul_ps(_mm256_mul_ps(x, x), x),
            x,
        ),
    );
    let t = _mm256_add_ps(_mm256_set1_ps(1.0), tanh8(inner));
    _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.5), x), t)
}

/// Apply `op` lane-wise; tails go through a zero-padded stack buffer so
/// every element sees the same polynomial pipeline.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn unary(op: UnOp, x: &[f32], out: &mut [f32]) {
    let n = x.len();
    let px = x.as_ptr();
    let po = out.as_mut_ptr();
    let apply = |v: __m256| match op {
        UnOp::Exp => exp8(v),
        UnOp::Sigmoid => sigmoid8(v),
        UnOp::Tanh => tanh8(v),
        UnOp::Gelu => gelu8(v),
    };
    let mut i = 0;
    while i + 8 <= n {
        _mm256_storeu_ps(po.add(i), apply(_mm256_loadu_ps(px.add(i))));
        i += 8;
    }
    if i < n {
        let mut buf = [0.0f32; 8];
        buf[..n - i].copy_from_slice(&x[i..]);
        let r = apply(_mm256_loadu_ps(buf.as_ptr()));
        _mm256_storeu_ps(buf.as_mut_ptr(), r);
        out[i..].copy_from_slice(&buf[..n - i]);
    }
}

/// Lane-wise binary arithmetic; same IEEE ops as the scalar backend, so
/// the results are bit-identical — only the stride differs.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = out.len();
    let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let x = _mm256_loadu_ps(pa.add(i));
        let y = _mm256_loadu_ps(pb.add(i));
        let r = match op {
            BinOp::Add => _mm256_add_ps(x, y),
            BinOp::Sub => _mm256_sub_ps(x, y),
            BinOp::Mul => _mm256_mul_ps(x, y),
            BinOp::Div => _mm256_div_ps(x, y),
        };
        _mm256_storeu_ps(po.add(i), r);
        i += 8;
    }
    while i < n {
        let (x, y) = (*pa.add(i), *pb.add(i));
        *po.add(i) = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
        };
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Fused GRU gates
// ---------------------------------------------------------------------------

/// See [`super::gru_gates_row`]. Lanes shorter than one vector are staged
/// through zero-padded buffers so every gate goes through the same
/// pipeline.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gru_gates_row(
    gi: &[f32],
    gh: &[f32],
    h: &[f32],
    out: &mut [f32],
    mut stash: Option<(&mut [f32], &mut [f32], &mut [f32], &mut [f32])>,
) {
    let hs = h.len();
    let (pgi, pgh, ph) = (gi.as_ptr(), gh.as_ptr(), h.as_ptr());
    let po = out.as_mut_ptr();
    let mut j = 0;
    while j + 8 <= hs {
        let r = sigmoid8(_mm256_add_ps(
            _mm256_loadu_ps(pgi.add(j)),
            _mm256_loadu_ps(pgh.add(j)),
        ));
        let z = sigmoid8(_mm256_add_ps(
            _mm256_loadu_ps(pgi.add(hs + j)),
            _mm256_loadu_ps(pgh.add(hs + j)),
        ));
        let ghn = _mm256_loadu_ps(pgh.add(2 * hs + j));
        let n = tanh8(_mm256_fmadd_ps(r, ghn, _mm256_loadu_ps(pgi.add(2 * hs + j))));
        let hv = _mm256_loadu_ps(ph.add(j));
        // h' = n + z*(h - n)
        let hp = _mm256_fmadd_ps(z, _mm256_sub_ps(hv, n), n);
        _mm256_storeu_ps(po.add(j), hp);
        if let Some((sr, sz, sn, sghn)) = &mut stash {
            _mm256_storeu_ps(sr.as_mut_ptr().add(j), r);
            _mm256_storeu_ps(sz.as_mut_ptr().add(j), z);
            _mm256_storeu_ps(sn.as_mut_ptr().add(j), n);
            _mm256_storeu_ps(sghn.as_mut_ptr().add(j), ghn);
        }
        j += 8;
    }
    if j < hs {
        let t = hs - j;
        let mut bgi = [[0.0f32; 8]; 3];
        let mut bgh = [[0.0f32; 8]; 3];
        let mut bh = [0.0f32; 8];
        for g in 0..3 {
            bgi[g][..t].copy_from_slice(&gi[g * hs + j..g * hs + hs]);
            bgh[g][..t].copy_from_slice(&gh[g * hs + j..g * hs + hs]);
        }
        bh[..t].copy_from_slice(&h[j..]);
        let r = sigmoid8(_mm256_add_ps(
            _mm256_loadu_ps(bgi[0].as_ptr()),
            _mm256_loadu_ps(bgh[0].as_ptr()),
        ));
        let z = sigmoid8(_mm256_add_ps(
            _mm256_loadu_ps(bgi[1].as_ptr()),
            _mm256_loadu_ps(bgh[1].as_ptr()),
        ));
        let ghn = _mm256_loadu_ps(bgh[2].as_ptr());
        let n = tanh8(_mm256_fmadd_ps(r, ghn, _mm256_loadu_ps(bgi[2].as_ptr())));
        let hv = _mm256_loadu_ps(bh.as_ptr());
        let hp = _mm256_fmadd_ps(z, _mm256_sub_ps(hv, n), n);
        let mut bout = [0.0f32; 8];
        _mm256_storeu_ps(bout.as_mut_ptr(), hp);
        out[j..].copy_from_slice(&bout[..t]);
        if let Some((sr, sz, sn, sghn)) = &mut stash {
            let mut tmp = [0.0f32; 8];
            _mm256_storeu_ps(tmp.as_mut_ptr(), r);
            sr[j..].copy_from_slice(&tmp[..t]);
            _mm256_storeu_ps(tmp.as_mut_ptr(), z);
            sz[j..].copy_from_slice(&tmp[..t]);
            _mm256_storeu_ps(tmp.as_mut_ptr(), n);
            sn[j..].copy_from_slice(&tmp[..t]);
            _mm256_storeu_ps(tmp.as_mut_ptr(), ghn);
            sghn[j..].copy_from_slice(&tmp[..t]);
        }
    }
}
