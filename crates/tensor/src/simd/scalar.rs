//! Portable scalar twins of the AVX2 kernels.
//!
//! These are the loops the crate ran before explicit SIMD existed; they
//! remain the fallback backend (and the reference the property tests
//! compare against). Keep the math here boring: plain `*`/`+` (no
//! `mul_add` — the scalar backend must not depend on whether the target
//! fuses), `f32::exp`/`f32::tanh` from `libm`.

use super::{BinOp, UnOp};

/// Pairwise sum (recursive halving, 32-element sequential base) — the
/// exact tree `crate::reduce::pairwise_sum` always used.
pub(super) fn sum(x: &[f32]) -> f32 {
    crate::reduce::pairwise_sum(x)
}

/// Pairwise dot, same tree as [`sum`].
pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
    crate::reduce::pairwise_dot(a, b)
}

/// `y[i] += a * x[i]`, plain multiply-then-add.
pub(super) fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    for (o, &xv) in y.iter_mut().zip(x) {
        *o += a * xv;
    }
}

/// Strided `out += a @ b` with the i-k-j order of the historical scalar
/// gemm: for each `p`, every output row accumulates `a[i,p] * b[p,j]`.
#[allow(clippy::too_many_arguments)]
pub(super) fn gemm_block(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        let a_row = &a[i * lda..i * lda + k];
        let out_row = &mut out[i * ldo..i * ldo + n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            let b_row = &b[p * ldb..p * ldb + n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * bv;
            }
        }
    }
}

pub(super) fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    let f = match op {
        BinOp::Add => |x: f32, y: f32| x + y,
        BinOp::Sub => |x: f32, y: f32| x - y,
        BinOp::Mul => |x: f32, y: f32| x * y,
        BinOp::Div => |x: f32, y: f32| x / y,
    };
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = f(x, y);
    }
}

/// The formulas must match the historical `Tensor` map closures exactly —
/// `LTTF_SIMD=0` reproduces the old bits.
pub(super) fn unary(op: UnOp, x: &[f32], out: &mut [f32]) {
    match op {
        UnOp::Exp => {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = v.exp();
            }
        }
        UnOp::Sigmoid => {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = 1.0 / (1.0 + (-v).exp());
            }
        }
        UnOp::Tanh => {
            for (o, &v) in out.iter_mut().zip(x) {
                *o = v.tanh();
            }
        }
        UnOp::Gelu => {
            let c = (2.0 / std::f32::consts::PI).sqrt();
            for (o, &v) in out.iter_mut().zip(x) {
                *o = 0.5 * v * (1.0 + (c * (v + 0.044_715 * v * v * v)).tanh());
            }
        }
    }
}

pub(super) fn gru_gates_row(
    gi: &[f32],
    gh: &[f32],
    h: &[f32],
    out: &mut [f32],
    mut stash: Option<(&mut [f32], &mut [f32], &mut [f32], &mut [f32])>,
) {
    let hs = h.len();
    let sig = |v: f32| 1.0 / (1.0 + (-v).exp());
    for j in 0..hs {
        let r = sig(gi[j] + gh[j]);
        let z = sig(gi[hs + j] + gh[hs + j]);
        let ghn = gh[2 * hs + j];
        let n = (gi[2 * hs + j] + r * ghn).tanh();
        out[j] = (1.0 - z) * n + z * h[j];
        if let Some((sr, sz, sn, sghn)) = &mut stash {
            sr[j] = r;
            sz[j] = z;
            sn[j] = n;
            sghn[j] = ghn;
        }
    }
}
