//! Runtime-dispatched SIMD microkernels with scalar fallbacks.
//!
//! Every hot inner loop in this crate (gemm micro-tiles, conv axpy ranges,
//! block reductions, transcendental maps, the fused GRU gate math) funnels
//! through the free functions in this module. Each function picks a
//! **backend** once per call:
//!
//! - `avx2+fma` — explicit `std::arch` intrinsics, used when the CPU
//!   supports AVX2 and FMA (detected once per process via
//!   `is_x86_feature_detected!`) and the user has not opted out.
//! - `scalar`   — the portable Rust loops that were previously the only
//!   implementation. Always available, always the fallback.
//!
//! Selection order: [`set_simd_override`] (tests/benches) outranks the
//! `LTTF_SIMD` environment variable (`LTTF_SIMD=0` forces scalar), which
//! outranks auto-detection. The decision is process-global, so a kernel
//! never mixes backends across the parallel pool's chunk boundaries.
//!
//! # Determinism contract (see DESIGN.md §8)
//!
//! Lane-parallel operations (element-wise arithmetic) produce **bit
//! -identical** results on both backends: each output element is computed
//! by the same IEEE operations in the same order. Operations that fuse
//! multiply-add (gemm, conv, axpy) or reshape reduction trees (dot, sum)
//! or replace `libm` transcendentals with polynomial kernels (exp,
//! sigmoid, tanh, gelu) may differ from the scalar backend in the last
//! ulp. Within **one** backend every kernel remains a pure function of its
//! operands and shapes — bit-identical across runs and thread counts.

use std::sync::atomic::{AtomicI8, Ordering};
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod avx2;
mod scalar;

/// Process-wide backend override: `-1` unset, `0` force scalar, `1`
/// prefer SIMD (subject to hardware detection).
static OVERRIDE: AtomicI8 = AtomicI8::new(-1);

/// True when this CPU can run the AVX2+FMA kernels (cached detection).
fn hw_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static V: OnceLock<bool> = OnceLock::new();
        *V.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The `LTTF_SIMD`-aware default (parsed once per process).
fn env_default() -> bool {
    static V: OnceLock<bool> = OnceLock::new();
    *V.get_or_init(|| match lttf_obs::env::simd() {
        Some(false) => false,
        _ => hw_supported(),
    })
}

/// True when kernels should take the AVX2+FMA path for this call.
#[inline]
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => hw_supported(),
        _ => env_default(),
    }
}

/// Set (or clear) the backend override. `Some(false)` forces the scalar
/// kernels exactly like `LTTF_SIMD=0`; `Some(true)` asks for the SIMD
/// kernels (still gated on hardware support); `None` restores the
/// environment/auto default.
///
/// The override is **process-global** (kernels run on pool worker
/// threads, so a thread-local override could mix backends within one
/// tensor). Tests that flip it must serialize against other tests that
/// depend on the backend — see `tests/determinism.rs`'s `exclusive()`
/// pattern and this crate's [`test_lock`].
pub fn set_simd_override(v: Option<bool>) {
    let enc = match v {
        None => -1,
        Some(false) => 0,
        Some(true) => 1,
    };
    OVERRIDE.store(enc, Ordering::Relaxed);
}

/// Name of the backend [`enabled`] resolves to right now, for report
/// headers: `"avx2+fma"`, `"scalar"` (hardware cannot do better), or
/// `"scalar (forced)"` (hardware could, but `LTTF_SIMD=0` or an override
/// said no).
pub fn backend_name() -> &'static str {
    if enabled() {
        "avx2+fma"
    } else if hw_supported() {
        "scalar (forced)"
    } else {
        "scalar"
    }
}

/// Serializes tests that flip [`set_simd_override`] (or compare backends)
/// within one test binary. Lock poisoning is ignored — a failed test must
/// not cascade into every later backend test.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Sum of a slice with pairwise (cascade) error growth.
///
/// Scalar backend: recursive halving with a 32-element sequential base.
/// SIMD backend: recursive halving to 256-element blocks reduced by a
/// 4-accumulator AVX2 loop. Both trees depend only on the length.
#[inline]
pub fn sum(x: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2+FMA were detected at runtime.
        return unsafe { avx2::sum(x) };
    }
    scalar::sum(x)
}

/// Dot product with pairwise error growth; same tree shapes as [`sum`].
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2+FMA were detected at runtime.
        return unsafe { avx2::dot(a, b) };
    }
    scalar::dot(a, b)
}

/// `y[i] += a * x[i]` (the conv/attention accumulation primitive).
#[inline]
pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2+FMA were detected at runtime.
        unsafe { avx2::axpy(y, a, x) };
        return;
    }
    scalar::axpy(y, a, x);
}

// ---------------------------------------------------------------------------
// gemm micro-tiles
// ---------------------------------------------------------------------------

/// `out[0..m, 0..n] += a[0..m, 0..k] @ b[0..k, 0..n]` over strided
/// row-major operands (`lda`/`ldb`/`ldo` are row strides, so callers can
/// point into larger matrices or a packed panel).
///
/// Dispatches to the AVX2+FMA register-blocked micro-tile when enabled,
/// else to a portable i-k-j loop. Within each backend the accumulation
/// order per output element is a pure function of `(m, k, n)`.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn gemm_block(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    debug_assert!(a.len() >= (m - 1) * lda + k);
    debug_assert!(b.len() >= (k - 1) * ldb + n);
    debug_assert!(out.len() >= (m - 1) * ldo + n);
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: bounds checked above; `enabled()` implies AVX2+FMA.
        unsafe { avx2::gemm_block(a, lda, b, ldb, out, ldo, m, k, n) };
        return;
    }
    scalar::gemm_block(a, lda, b, ldb, out, ldo, m, k, n);
}

// ---------------------------------------------------------------------------
// Element-wise slice kernels
// ---------------------------------------------------------------------------

/// Which lane-parallel binary operation [`binary`] applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
}

/// `out[i] = a[i] op b[i]`. Lane-parallel IEEE operations — bit-identical
/// on both backends; the SIMD path only widens the stride.
#[inline]
pub fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2+FMA were detected at runtime.
        unsafe { avx2::binary(op, a, b, out) };
        return;
    }
    scalar::binary(op, a, b, out);
}

/// Which transcendental map [`unary`] applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `e^x`
    Exp,
    /// `1 / (1 + e^{-x})`
    Sigmoid,
    /// `tanh x`
    Tanh,
    /// GELU, tanh approximation (transformer convention)
    Gelu,
}

/// `out[i] = f(x[i])` for the transcendental maps the models lean on.
///
/// The SIMD backend uses a degree-5 polynomial `exp` (≈2 ulp) instead of
/// `libm`, so results differ from the scalar backend in the last ulps;
/// each backend alone is a pure function of the input bytes.
#[inline]
pub fn unary(op: UnOp, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2+FMA were detected at runtime.
        unsafe { avx2::unary(op, x, out) };
        return;
    }
    scalar::unary(op, x, out);
}

// ---------------------------------------------------------------------------
// Fused GRU gates
// ---------------------------------------------------------------------------

/// Fused GRU gate math for one batch row of `h` lanes.
///
/// Inputs are the pre-activation gate rows `gi = x_t W_ih + b_ih` and
/// `gh = h_{t-1} W_hh + b_hh`, both laid out `[r | z | n]` (PyTorch
/// order), plus the previous hidden state row. Computes
///
/// ```text
/// r = σ(gi_r + gh_r)    z = σ(gi_z + gh_z)
/// n = tanh(gi_n + r ⊙ gh_n)
/// h' = (1 − z) ⊙ n + z ⊙ h
/// ```
///
/// When `stash` is given, the gate activations `(r, z, n, gh_n)` are
/// recorded for the hand-written backward pass
/// ([`crate::gru_layer_backward`]).
pub fn gru_gates_row(
    gi: &[f32],
    gh: &[f32],
    h: &[f32],
    out: &mut [f32],
    stash: Option<(&mut [f32], &mut [f32], &mut [f32], &mut [f32])>,
) {
    let hs = h.len();
    debug_assert_eq!(gi.len(), 3 * hs);
    debug_assert_eq!(gh.len(), 3 * hs);
    debug_assert_eq!(out.len(), hs);
    if let Some((r, z, n, ghn)) = &stash {
        debug_assert!(r.len() == hs && z.len() == hs && n.len() == hs && ghn.len() == hs);
    }
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2+FMA were detected at runtime.
        unsafe { avx2::gru_gates_row(gi, gh, h, out, stash) };
        return;
    }
    scalar::gru_gates_row(gi, gh, h, out, stash);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_name_is_consistent_with_enabled() {
        let _guard = test_lock();
        set_simd_override(Some(false));
        assert!(!enabled());
        assert!(backend_name().starts_with("scalar"));
        set_simd_override(Some(true));
        assert_eq!(enabled(), hw_supported());
        set_simd_override(None);
    }

    #[test]
    fn binary_ops_bit_identical_across_backends() {
        let _guard = test_lock();
        let a: Vec<f32> = (0..133).map(|i| (i as f32 * 0.37).sin() * 8.0).collect();
        let b: Vec<f32> = (0..133).map(|i| (i as f32 * 0.53).cos() * 2.0 + 0.5).collect();
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div] {
            let mut scalar_out = vec![0.0f32; a.len()];
            set_simd_override(Some(false));
            binary(op, &a, &b, &mut scalar_out);
            let mut simd_out = vec![0.0f32; a.len()];
            set_simd_override(Some(true));
            binary(op, &a, &b, &mut simd_out);
            set_simd_override(None);
            for (i, (s, v)) in scalar_out.iter().zip(&simd_out).enumerate() {
                assert_eq!(s.to_bits(), v.to_bits(), "{op:?} lane {i}: {s} vs {v}");
            }
        }
    }

    #[test]
    fn unary_ops_close_across_backends() {
        let _guard = test_lock();
        let x: Vec<f32> = (0..257).map(|i| (i as f32 - 128.0) * 0.11).collect();
        for op in [UnOp::Exp, UnOp::Sigmoid, UnOp::Tanh, UnOp::Gelu] {
            let mut scalar_out = vec![0.0f32; x.len()];
            set_simd_override(Some(false));
            unary(op, &x, &mut scalar_out);
            let mut simd_out = vec![0.0f32; x.len()];
            set_simd_override(Some(true));
            unary(op, &x, &mut simd_out);
            set_simd_override(None);
            for (i, (s, v)) in scalar_out.iter().zip(&simd_out).enumerate() {
                let tol = 4e-6 * s.abs().max(1.0);
                assert!(
                    (s - v).abs() <= tol,
                    "{op:?} at x={}: scalar {s} vs simd {v}",
                    x[i]
                );
            }
        }
    }

    #[test]
    fn reductions_close_across_backends() {
        let _guard = test_lock();
        for n in [0usize, 1, 7, 31, 32, 33, 255, 256, 257, 1000, 8192] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).cos() * 2.0).collect();
            set_simd_override(Some(false));
            let (s_sum, s_dot) = (sum(&a), dot(&a, &b));
            set_simd_override(Some(true));
            let (v_sum, v_dot) = (sum(&a), dot(&a, &b));
            set_simd_override(None);
            assert!(
                (s_sum - v_sum).abs() <= 1e-4 * s_sum.abs().max(1.0),
                "sum len {n}: {s_sum} vs {v_sum}"
            );
            assert!(
                (s_dot - v_dot).abs() <= 1e-4 * s_dot.abs().max(1.0),
                "dot len {n}: {s_dot} vs {v_dot}"
            );
        }
    }
}
