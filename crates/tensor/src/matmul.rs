//! Matrix multiplication kernels: 2-D, batched 3-D, and transposed variants.

use crate::tensor::Tensor;

/// Multiply an `m×k` row-major block by a `k×n` row-major block into `m×n`.
///
/// Uses the i-k-j loop order so the inner loop streams both `b` and `out`
/// rows sequentially, which the compiler auto-vectorizes well.
fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * bv;
            }
        }
    }
}

impl Tensor {
    /// Matrix product.
    ///
    /// Supported rank combinations:
    /// - `[m,k] @ [k,n] -> [m,n]`
    /// - `[b,m,k] @ [k,n] -> [b,m,n]` (shared right operand)
    /// - `[b,m,k] @ [b,k,n] -> [b,m,n]` (batched)
    /// - `[m,k] @ [b,k,n] -> [b,m,n]` (shared left operand)
    ///
    /// # Panics
    /// Panics on unsupported ranks or mismatched inner/batch dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        match (self.ndim(), other.ndim()) {
            (2, 2) => {
                let (m, k) = (self.shape()[0], self.shape()[1]);
                let (k2, n) = (other.shape()[0], other.shape()[1]);
                assert_eq!(
                    k, k2,
                    "matmul inner dimension mismatch: {} vs {}",
                    self.shape, other.shape
                );
                let mut out = vec![0.0; m * n];
                gemm(&self.data, &other.data, &mut out, m, k, n);
                Tensor::from_vec(out, &[m, n])
            }
            (3, 2) => {
                let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let (k2, n) = (other.shape()[0], other.shape()[1]);
                assert_eq!(
                    k, k2,
                    "matmul inner dimension mismatch: {} vs {}",
                    self.shape, other.shape
                );
                let mut out = vec![0.0; b * m * n];
                for bi in 0..b {
                    gemm(
                        &self.data[bi * m * k..(bi + 1) * m * k],
                        &other.data,
                        &mut out[bi * m * n..(bi + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
                Tensor::from_vec(out, &[b, m, n])
            }
            (3, 3) => {
                let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let (b2, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
                assert_eq!(
                    b, b2,
                    "batched matmul batch mismatch: {} vs {}",
                    self.shape, other.shape
                );
                assert_eq!(
                    k, k2,
                    "matmul inner dimension mismatch: {} vs {}",
                    self.shape, other.shape
                );
                let mut out = vec![0.0; b * m * n];
                for bi in 0..b {
                    gemm(
                        &self.data[bi * m * k..(bi + 1) * m * k],
                        &other.data[bi * k * n..(bi + 1) * k * n],
                        &mut out[bi * m * n..(bi + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
                Tensor::from_vec(out, &[b, m, n])
            }
            (2, 3) => {
                let (m, k) = (self.shape()[0], self.shape()[1]);
                let (b, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
                assert_eq!(
                    k, k2,
                    "matmul inner dimension mismatch: {} vs {}",
                    self.shape, other.shape
                );
                let mut out = vec![0.0; b * m * n];
                for bi in 0..b {
                    gemm(
                        &self.data,
                        &other.data[bi * k * n..(bi + 1) * k * n],
                        &mut out[bi * m * n..(bi + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
                Tensor::from_vec(out, &[b, m, n])
            }
            (ra, rb) => panic!(
                "matmul supports rank (2|3)x(2|3) operands, got rank {ra} {} and rank {rb} {}",
                self.shape, other.shape
            ),
        }
    }

    /// Dot product of two 1-D tensors.
    ///
    /// # Panics
    /// Panics if either operand is not 1-D or lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.ndim(),
            1,
            "dot requires 1-D operands, got {}",
            self.shape
        );
        assert_eq!(
            other.ndim(),
            1,
            "dot requires 1-D operands, got {}",
            other.shape
        );
        assert_eq!(
            self.numel(),
            other.numel(),
            "dot length mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2x2_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).data(), a.data());
        assert_eq!(i.matmul(&a).data(), a.data());
    }

    #[test]
    fn matmul_hand_computed() {
        // [1 2 3]   [7  8]     [58  64]
        // [4 5 6] x [9 10]  =  [139 154]
        //           [11 12]
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::from_vec(vec![7., 8., 9., 10., 11., 12.], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn batched_matmul() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let b = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        // batch 0: [[0,1,2],[3,4,5]] @ [[0,1],[2,3],[4,5]]
        assert_eq!(&c.data()[..4], &[10., 13., 28., 40.]);
        // batch 1: [[6,7,8],[9,10,11]] @ [[6,7],[8,9],[10,11]]
        assert_eq!(&c.data()[4..], &[172., 193., 244., 274.]);
    }

    #[test]
    fn broadcast_batch_right() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let w = Tensor::eye(3);
        let c = a.matmul(&w);
        assert_eq!(c.shape(), &[2, 2, 3]);
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn broadcast_batch_left() {
        let a = Tensor::eye(3);
        let b = Tensor::from_vec((0..18).map(|v| v as f32).collect(), &[2, 3, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 3, 3]);
        assert_eq!(c.data(), b.data());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn inner_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
    }
}
