//! Matrix multiplication kernels: 2-D, batched 3-D, and transposed variants.
//!
//! The serial kernel dispatches through [`crate::simd`]: an AVX2+FMA
//! register-blocked micro-tile when the CPU supports it (with a packed
//! B-panel on the `k > KC` tiled path so the microkernel streams
//! contiguous vectors), else a cache-blocked i-k-j scalar loop. The
//! rank-2/rank-3 entry points parallelize over row blocks / batches with
//! `lttf-parallel`. Chunk boundaries depend only on the problem shape, so
//! results are bit-identical at any thread count (per backend).

use crate::tensor::Tensor;
use lttf_parallel::par_chunks_mut;

/// k-tile: `KC` consecutive inner-dimension elements are accumulated into
/// the accumulator panel before touching `out`, keeping both operand
/// panels in L1/L2.
pub(crate) const KC: usize = 256;
/// n-tile: width of the accumulator / packed-B panel.
pub(crate) const NC: usize = 128;
/// Row micro-tile: rows of `a` processed together so each loaded `b` row is
/// reused `MR` times.
pub(crate) const MR: usize = 4;

/// Approximate multiply-add count per parallel chunk. Below ~2 chunks of
/// this the dispatch overhead outweighs the win and kernels run serially.
/// Halved from the original 128k when the SIMD kernels landed: each madd
/// now takes fewer cycles, and a lower grain lets the serve model's
/// batch=1 gemms (~100–300k madds) split across the pool.
const PAR_GRAIN: usize = 64 * 1024;

/// Multiply an `m×k` row-major block by a `k×n` row-major block into `m×n`,
/// accumulating into `out` (callers pass a zeroed buffer).
///
/// `k <= KC` (every matmul this codebase actually issues) takes the lean
/// path that accumulates straight into `out`; larger `k` goes through the
/// k/n-tiled stack accumulator. The path depends only on the shape, never
/// on the thread count.
pub(crate) fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if k <= KC {
        if crate::simd::enabled() {
            crate::simd::gemm_block(a, k, b, n, out, n, m, k, n);
        } else {
            gemm_single_ktile(a, b, out, m, k, n);
        }
        return;
    }
    if crate::simd::enabled() {
        gemm_tiled_packed(a, b, out, m, k, n);
        return;
    }
    for ks in (0..k).step_by(KC) {
        let ke = (ks + KC).min(k);
        for ns in (0..n).step_by(NC) {
            let ne = (ns + NC).min(n);
            let nb = ne - ns;
            let mut i = 0;
            while i < m {
                let mr = MR.min(m - i);
                let mut acc = [[0.0f32; NC]; MR];
                for p in ks..ke {
                    let b_row = &b[p * n + ns..p * n + ne];
                    for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
                        let a_ip = a[(i + r) * k + p];
                        for (slot, &bv) in acc_r.iter_mut().zip(b_row) {
                            *slot += a_ip * bv;
                        }
                    }
                }
                for (r, acc_r) in acc.iter().enumerate().take(mr) {
                    let row = (i + r) * n;
                    let out_row = &mut out[row + ns..row + ne];
                    for (o, &v) in out_row.iter_mut().zip(&acc_r[..nb]) {
                        *o += v;
                    }
                }
                i += mr;
            }
        }
    }
}

/// KC/NC-tiled gemm for the SIMD backend: each `[kc × nb]` panel of `b`
/// is packed into a contiguous buffer once, then every `MR`-row block of
/// `a` streams it through the AVX2 micro-tile. Packing pays for itself
/// because the panel is reused `m / MR` times with unit-stride loads.
fn gemm_tiled_packed(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    // Heap-allocated: 128 KiB would be a meaningful bite out of a worker
    // thread's stack, and this path only runs for k > KC. The span wraps
    // just the allocation so the pack-buffer churn shows up in `lttf
    // profile`'s alloc columns without eating the gemm's self time.
    let mut pack = {
        let _span = lttf_obs::span!("gemm.pack");
        vec![0.0f32; KC * NC.min(n)]
    };
    for ks in (0..k).step_by(KC) {
        let ke = (ks + KC).min(k);
        let kc = ke - ks;
        for ns in (0..n).step_by(NC) {
            let ne = (ns + NC).min(n);
            let nb = ne - ns;
            for (pi, p) in (ks..ke).enumerate() {
                pack[pi * nb..(pi + 1) * nb].copy_from_slice(&b[p * n + ns..p * n + ne]);
            }
            crate::simd::gemm_block(
                &a[ks..],
                k,
                &pack[..kc * nb],
                nb,
                &mut out[ns..],
                n,
                m,
                kc,
                nb,
            );
        }
    }
}

/// i-k-j kernel for `k <= KC`: with a single k-tile the (zeroed) output
/// rows serve as the accumulators directly — no stack tile to clear and
/// flush. `MR` rows advance together so each streamed `b` row is reused
/// `MR` times from registers.
fn gemm_single_ktile(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut i = 0;
    while i + MR <= m {
        let rows = &mut out[i * n..(i + MR) * n];
        let (o0, rest) = rows.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        for p in 0..k {
            let b_row = &b[p * n..(p + 1) * n];
            let a0 = a[i * k + p];
            let a1 = a[(i + 1) * k + p];
            let a2 = a[(i + 2) * k + p];
            let a3 = a[(i + 3) * k + p];
            for j in 0..n {
                let bv = b_row[j];
                o0[j] += a0 * bv;
                o1[j] += a1 * bv;
                o2[j] += a2 * bv;
                o3[j] += a3 * bv;
            }
        }
        i += MR;
    }
    for r in i..m {
        let a_row = &a[r * k..(r + 1) * k];
        let out_row = &mut out[r * n..(r + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * bv;
            }
        }
    }
}

/// `gemm` parallelized over row blocks of `a`/`out`.
///
/// Each task owns a disjoint block of output rows, so no float operation
/// crosses a block boundary and the result is bit-identical to the serial
/// kernel. Block size is a pure function of the problem shape.
pub(crate) fn gemm_par(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let work = m * k * n;
    if work < 2 * PAR_GRAIN || lttf_parallel::num_threads() <= 1 {
        gemm(a, b, out, m, k, n);
        return;
    }
    // Rows per chunk sized to ~PAR_GRAIN multiply-adds, rounded up to a
    // multiple of MR so every chunk starts on a micro-tile boundary.
    let rows = lttf_parallel::rows_per_block(k * n, PAR_GRAIN, MR);
    par_chunks_mut(out, rows * n, |ci, chunk| {
        let r0 = ci * rows;
        let mb = chunk.len() / n;
        gemm(&a[r0 * k..(r0 + mb) * k], b, chunk, mb, k, n);
    });
}

/// Batched gemm over `bt` independent problems, parallelized across batches.
///
/// `a_of`/`b_of` map a batch index to its operand slice (so shared operands
/// broadcast without copies). Batches are grouped so each task carries
/// ~`PAR_GRAIN` multiply-adds; a single batch degrades to row-parallel
/// [`gemm_par`].
fn gemm_batched<'a>(
    a_of: impl Fn(usize) -> &'a [f32] + Sync,
    b_of: impl Fn(usize) -> &'a [f32] + Sync,
    out: &mut [f32],
    bt: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if bt == 1 {
        gemm_par(a_of(0), b_of(0), out, m, k, n);
        return;
    }
    let per = lttf_parallel::items_per_task(m * k * n, PAR_GRAIN);
    par_chunks_mut(out, per * m * n, |ci, chunk| {
        for (j, o) in chunk.chunks_mut(m * n).enumerate() {
            let bi = ci * per + j;
            gemm(a_of(bi), b_of(bi), o, m, k, n);
        }
    });
}

impl Tensor {
    /// Matrix product.
    ///
    /// Supported rank combinations:
    /// - `[m,k] @ [k,n] -> [m,n]`
    /// - `[b,m,k] @ [k,n] -> [b,m,n]` (shared right operand)
    /// - `[b,m,k] @ [b,k,n] -> [b,m,n]` (batched)
    /// - `[m,k] @ [b,k,n] -> [b,m,n]` (shared left operand)
    ///
    /// # Panics
    /// Panics on unsupported ranks or mismatched inner/batch dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        // ~b*m*k*n madds for every supported rank combination.
        let work = self.numel() * other.shape().last().copied().unwrap_or(0);
        let span = lttf_obs::span!("matmul", work >= crate::obs_min_work());
        span.bytes((self.numel() + other.numel()) * 4);
        match (self.ndim(), other.ndim()) {
            (2, 2) => {
                let (m, k) = (self.shape()[0], self.shape()[1]);
                let (k2, n) = (other.shape()[0], other.shape()[1]);
                assert_eq!(
                    k, k2,
                    "matmul inner dimension mismatch: {} vs {}",
                    self.shape, other.shape
                );
                let mut out = vec![0.0; m * n];
                gemm_par(&self.data, &other.data, &mut out, m, k, n);
                Tensor::from_vec(out, &[m, n])
            }
            (3, 2) => {
                let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let (k2, n) = (other.shape()[0], other.shape()[1]);
                assert_eq!(
                    k, k2,
                    "matmul inner dimension mismatch: {} vs {}",
                    self.shape, other.shape
                );
                let mut out = vec![0.0; b * m * n];
                gemm_batched(
                    |bi| &self.data[bi * m * k..(bi + 1) * m * k],
                    |_| &other.data[..],
                    &mut out,
                    b,
                    m,
                    k,
                    n,
                );
                Tensor::from_vec(out, &[b, m, n])
            }
            (3, 3) => {
                let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
                let (b2, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
                assert_eq!(
                    b, b2,
                    "batched matmul batch mismatch: {} vs {}",
                    self.shape, other.shape
                );
                assert_eq!(
                    k, k2,
                    "matmul inner dimension mismatch: {} vs {}",
                    self.shape, other.shape
                );
                let mut out = vec![0.0; b * m * n];
                gemm_batched(
                    |bi| &self.data[bi * m * k..(bi + 1) * m * k],
                    |bi| &other.data[bi * k * n..(bi + 1) * k * n],
                    &mut out,
                    b,
                    m,
                    k,
                    n,
                );
                Tensor::from_vec(out, &[b, m, n])
            }
            (2, 3) => {
                let (m, k) = (self.shape()[0], self.shape()[1]);
                let (b, k2, n) = (other.shape()[0], other.shape()[1], other.shape()[2]);
                assert_eq!(
                    k, k2,
                    "matmul inner dimension mismatch: {} vs {}",
                    self.shape, other.shape
                );
                let mut out = vec![0.0; b * m * n];
                gemm_batched(
                    |_| &self.data[..],
                    |bi| &other.data[bi * k * n..(bi + 1) * k * n],
                    &mut out,
                    b,
                    m,
                    k,
                    n,
                );
                Tensor::from_vec(out, &[b, m, n])
            }
            (ra, rb) => panic!(
                "matmul supports rank (2|3)x(2|3) operands, got rank {ra} {} and rank {rb} {}",
                self.shape, other.shape
            ),
        }
    }

    /// Dot product of two 1-D tensors, accumulated with chunked pairwise
    /// summation (error grows O(log n) instead of O(n)).
    ///
    /// # Panics
    /// Panics if either operand is not 1-D or lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.ndim(),
            1,
            "dot requires 1-D operands, got {}",
            self.shape
        );
        assert_eq!(
            other.ndim(),
            1,
            "dot requires 1-D operands, got {}",
            other.shape
        );
        assert_eq!(
            self.numel(),
            other.numel(),
            "dot length mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        let _span = lttf_obs::span!("reduce_dot", self.numel() >= crate::obs_min_reduce());
        crate::simd::dot(&self.data, &other.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2x2_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).data(), a.data());
        assert_eq!(i.matmul(&a).data(), a.data());
    }

    #[test]
    fn matmul_hand_computed() {
        // [1 2 3]   [7  8]     [58  64]
        // [4 5 6] x [9 10]  =  [139 154]
        //           [11 12]
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::from_vec(vec![7., 8., 9., 10., 11., 12.], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn batched_matmul() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let b = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        // batch 0: [[0,1,2],[3,4,5]] @ [[0,1],[2,3],[4,5]]
        assert_eq!(&c.data()[..4], &[10., 13., 28., 40.]);
        // batch 1: [[6,7,8],[9,10,11]] @ [[6,7],[8,9],[10,11]]
        assert_eq!(&c.data()[4..], &[172., 193., 244., 274.]);
    }

    #[test]
    fn broadcast_batch_right() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let w = Tensor::eye(3);
        let c = a.matmul(&w);
        assert_eq!(c.shape(), &[2, 2, 3]);
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn broadcast_batch_left() {
        let a = Tensor::eye(3);
        let b = Tensor::from_vec((0..18).map(|v| v as f32).collect(), &[2, 3, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 3, 3]);
        assert_eq!(c.data(), b.data());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn inner_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    /// The blocked kernel must agree with a textbook triple loop on shapes
    /// that are not multiples of any tile size.
    #[test]
    fn blocked_gemm_matches_naive_on_ragged_shapes() {
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 7), (17, 33, 9), (130, 70, 129)] {
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 23) as f32 - 11.0) * 0.25).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 61 % 19) as f32 - 9.0) * 0.5).collect();
            let mut naive = vec![0.0f32; m * n];
            for i in 0..m {
                for p in 0..k {
                    let a_ip = a[i * k + p];
                    for j in 0..n {
                        naive[i * n + j] += a_ip * b[p * n + j];
                    }
                }
            }
            let ta = Tensor::from_vec(a, &[m, k]);
            let tb = Tensor::from_vec(b, &[k, n]);
            let c = ta.matmul(&tb);
            for (i, (&got, &want)) in c.data().iter().zip(&naive).enumerate() {
                assert!(
                    (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "({m}x{k}x{n}) mismatch at {i}: {got} vs {want}"
                );
            }
        }
    }
}
