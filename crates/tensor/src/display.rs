//! Debug formatting for tensors.

use crate::tensor::Tensor;

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        const MAX: usize = 12;
        if self.data.len() <= MAX {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "{:?}… ({} elements)", &self.data[..MAX], self.data.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_small() {
        let t = Tensor::from_slice(&[1.0, 2.0]);
        let s = format!("{t:?}");
        assert!(s.contains("[2]"), "{s}");
        assert!(s.contains("1.0"), "{s}");
    }

    #[test]
    fn debug_truncates_large() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("100 elements"), "{s}");
    }
}
