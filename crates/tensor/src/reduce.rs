//! Reductions (sum, mean, variance, extrema) over whole tensors or axes,
//! plus softmax.

use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn mean(&self) -> f32 {
        assert!(self.numel() > 0, "mean of empty tensor");
        self.sum() / self.numel() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(self.numel() > 0, "max of empty tensor");
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        assert!(self.numel() > 0, "min of empty tensor");
        self.data.iter().cloned().fold(f32::INFINITY, f32::min)
    }

    /// Population variance of all elements.
    pub fn var(&self) -> f32 {
        let m = self.mean();
        self.data.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / self.numel() as f32
    }

    /// Population standard deviation of all elements.
    pub fn std(&self) -> f32 {
        self.var().sqrt()
    }

    /// Flat index of the maximum element (first occurrence).
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(self.numel() > 0, "argmax of empty tensor");
        self.data
            .iter()
            .enumerate()
            .fold((0, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// Generic axis reduction: folds each lane along `axis` with `f` starting
    /// from `init`, then post-processes the lane result with `fin`.
    fn reduce_axis(
        &self,
        axis: isize,
        init: f32,
        f: impl Fn(f32, f32) -> f32,
        fin: impl Fn(f32, usize) -> f32,
        keepdim: bool,
    ) -> Tensor {
        let ax = self.shape.normalize_axis(axis);
        let dims = self.shape.dims();
        let extent = dims[ax];
        let outer: usize = dims[..ax].iter().product();
        let inner: usize = dims[ax + 1..].iter().product();
        let mut out = vec![init; outer * inner];
        for o in 0..outer {
            for e in 0..extent {
                let base = (o * extent + e) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] = f(out[obase + i], self.data[base + i]);
                }
            }
        }
        for v in out.iter_mut() {
            *v = fin(*v, extent);
        }
        let mut new_dims: Vec<usize> = dims.to_vec();
        if keepdim {
            new_dims[ax] = 1;
        } else {
            new_dims.remove(ax);
        }
        Tensor::from_vec(out, &new_dims)
    }

    /// Sum along `axis`, removing that axis.
    pub fn sum_axis(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, 0.0, |a, b| a + b, |v, _| v, false)
    }

    /// Sum along `axis`, keeping it with extent 1.
    pub fn sum_axis_keepdim(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, 0.0, |a, b| a + b, |v, _| v, true)
    }

    /// Mean along `axis`, removing that axis.
    pub fn mean_axis(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, 0.0, |a, b| a + b, |v, n| v / n as f32, false)
    }

    /// Mean along `axis`, keeping it with extent 1.
    pub fn mean_axis_keepdim(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, 0.0, |a, b| a + b, |v, n| v / n as f32, true)
    }

    /// Maximum along `axis`, removing that axis.
    pub fn max_axis(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max, |v, _| v, false)
    }

    /// Maximum along `axis`, keeping it with extent 1.
    pub fn max_axis_keepdim(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max, |v, _| v, true)
    }

    /// Minimum along `axis`, removing that axis.
    pub fn min_axis(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, f32::INFINITY, f32::min, |v, _| v, false)
    }

    /// Population variance along `axis`, keeping it with extent 1.
    pub fn var_axis_keepdim(&self, axis: isize) -> Tensor {
        let m = self.mean_axis_keepdim(axis);
        self.sub(&m).square().mean_axis_keepdim(axis)
    }

    /// Numerically stable softmax along `axis`.
    ///
    /// Each lane along `axis` is shifted by its maximum before
    /// exponentiation, so the result is finite for any finite input.
    pub fn softmax(&self, axis: isize) -> Tensor {
        let m = self.max_axis_keepdim(axis);
        let e = self.sub(&m).exp();
        let s = e.sum_axis_keepdim(axis);
        e.div(&s)
    }

    /// Log-softmax along `axis` (stable).
    pub fn log_softmax(&self, axis: isize) -> Tensor {
        let m = self.max_axis_keepdim(axis);
        let shifted = self.sub(&m);
        let lse = shifted.exp().sum_axis_keepdim(axis).ln();
        shifted.sub(&lse)
    }

    /// Cumulative sum along `axis`.
    pub fn cumsum(&self, axis: isize) -> Tensor {
        let ax = self.shape.normalize_axis(axis);
        let dims = self.shape.dims();
        let extent = dims[ax];
        let outer: usize = dims[..ax].iter().product();
        let inner: usize = dims[ax + 1..].iter().product();
        let mut out = self.data.clone();
        for o in 0..outer {
            for e in 1..extent {
                let prev = (o * extent + e - 1) * inner;
                let cur = (o * extent + e) * inner;
                for i in 0..inner {
                    out[cur + i] += out[prev + i];
                }
            }
        }
        Tensor {
            data: out,
            shape: Shape::new(dims),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Tensor {
        Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3])
    }

    #[test]
    fn global_reductions() {
        let t = m23();
        assert_eq!(t.sum(), 21.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.max(), 6.0);
        assert_eq!(t.min(), 1.0);
        assert!((t.var() - 35.0 / 12.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_occurrence() {
        let t = Tensor::from_slice(&[1.0, 5.0, 5.0, 2.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn axis_reductions() {
        let t = m23();
        assert_eq!(t.sum_axis(0).data(), &[5., 7., 9.]);
        assert_eq!(t.sum_axis(1).data(), &[6., 15.]);
        assert_eq!(t.sum_axis(-1).data(), &[6., 15.]);
        assert_eq!(t.mean_axis(1).data(), &[2., 5.]);
        assert_eq!(t.max_axis(0).data(), &[4., 5., 6.]);
        assert_eq!(t.min_axis(1).data(), &[1., 4.]);
    }

    #[test]
    fn keepdim_shapes() {
        let t = m23();
        assert_eq!(t.sum_axis_keepdim(0).shape(), &[1, 3]);
        assert_eq!(t.mean_axis_keepdim(1).shape(), &[2, 1]);
        assert_eq!(t.max_axis_keepdim(-1).shape(), &[2, 1]);
    }

    #[test]
    fn axis_reduction_3d_middle() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        let s = t.sum_axis(1);
        assert_eq!(s.shape(), &[2, 4]);
        // lane (0, :, 0) = 0 + 4 + 8 = 12
        assert_eq!(s.at(&[0, 0]), 12.0);
        // lane (1, :, 3) = 15 + 19 + 23 = 57
        assert_eq!(s.at(&[1, 3]), 57.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = m23();
        let s = t.softmax(-1);
        for r in 0..2 {
            let row: f32 = (0..3).map(|c| s.at(&[r, c])).sum();
            assert!((row - 1.0).abs() < 1e-6);
        }
        // softmax is monotone: larger input -> larger probability
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let t = Tensor::from_slice(&[1000.0, 1000.0]);
        let s = t.softmax(0);
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let t = m23();
        let a = t.log_softmax(1);
        let b = t.softmax(1).ln();
        a.assert_close(&b, 1e-5);
    }

    #[test]
    fn cumsum_axis() {
        let t = m23();
        assert_eq!(t.cumsum(1).data(), &[1., 3., 6., 4., 9., 15.]);
        assert_eq!(t.cumsum(0).data(), &[1., 2., 3., 5., 7., 9.]);
    }

    #[test]
    fn var_axis() {
        let t = Tensor::from_vec(vec![1., 3., 2., 2.], &[2, 2]);
        let v = t.var_axis_keepdim(1);
        assert_eq!(v.shape(), &[2, 1]);
        assert!((v.at(&[0, 0]) - 1.0).abs() < 1e-6);
        assert!((v.at(&[1, 0]) - 0.0).abs() < 1e-6);
    }
}
