//! Reductions (sum, mean, variance, extrema) over whole tensors or axes,
//! plus softmax.
//!
//! Full-tensor sums use **chunked pairwise summation**: the input is cut
//! into fixed-size blocks, each block is reduced by recursive halving, and
//! the per-block partials are pairwise-reduced in turn. Rounding error
//! grows O(log n) instead of the O(n) of a left fold, and because block
//! boundaries are fixed the result is bit-identical whether the blocks are
//! reduced serially or in parallel.

use crate::shape::Shape;
use crate::tensor::Tensor;
use lttf_parallel::{chunk_count, par_chunks_mut};

/// Below this length a plain sequential fold is both fastest and accurate
/// enough; it is the recursion base of [`pairwise_sum`].
const PAIRWISE_BASE: usize = 32;

/// Fixed block length for the top level of chunked pairwise summation.
/// Must not depend on thread count: block boundaries define the reduction
/// tree, and the tree defines the bits of the answer.
const SUM_BLOCK: usize = 8192;

/// Elements below which `sum` does not bother with the parallel path.
const PAR_SUM_MIN: usize = 4 * SUM_BLOCK;

/// Pairwise (cascade) summation by recursive halving.
pub(crate) fn pairwise_sum(x: &[f32]) -> f32 {
    if x.len() <= PAIRWISE_BASE {
        return x.iter().sum();
    }
    let mid = x.len() / 2;
    pairwise_sum(&x[..mid]) + pairwise_sum(&x[mid..])
}

/// Pairwise summation of the element-wise product `a[i] * b[i]`.
pub(crate) fn pairwise_dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    if a.len() <= PAIRWISE_BASE {
        return a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    }
    let mid = a.len() / 2;
    pairwise_dot(&a[..mid], &b[..mid]) + pairwise_dot(&a[mid..], &b[mid..])
}

impl Tensor {
    /// Sum of all elements, via chunked pairwise summation.
    ///
    /// The reduction tree — `SUM_BLOCK`-sized leaf blocks combined
    /// pairwise — is a pure function of the length, so the serial and
    /// pool-parallel paths produce the same bits; the thread count only
    /// decides who reduces which block. Block reduction dispatches through
    /// [`crate::simd::sum`]; each backend's tree is fixed, but the two
    /// backends' trees differ (DESIGN.md §8).
    pub fn sum(&self) -> f32 {
        let n = self.data.len();
        if n <= SUM_BLOCK {
            return crate::simd::sum(&self.data);
        }
        let span = lttf_obs::span!("reduce_sum", n >= crate::obs_min_reduce());
        span.bytes(n * 4);
        let blocks = chunk_count(n, SUM_BLOCK);
        let mut partials = vec![0.0f32; blocks];
        let src = &self.data;
        let block_sum = |bi: usize| {
            let s = bi * SUM_BLOCK;
            crate::simd::sum(&src[s..(s + SUM_BLOCK).min(n)])
        };
        if n >= PAR_SUM_MIN && lttf_parallel::num_threads() > 1 {
            par_chunks_mut(&mut partials, 1, |bi, slot| {
                slot[0] = block_sum(bi);
            });
        } else {
            for (bi, slot) in partials.iter_mut().enumerate() {
                *slot = block_sum(bi);
            }
        }
        pairwise_sum(&partials)
    }

    /// Mean of all elements.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn mean(&self) -> f32 {
        assert!(self.numel() > 0, "mean of empty tensor");
        self.sum() / self.numel() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(self.numel() > 0, "max of empty tensor");
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        assert!(self.numel() > 0, "min of empty tensor");
        self.data.iter().cloned().fold(f32::INFINITY, f32::min)
    }

    /// Population variance of all elements.
    pub fn var(&self) -> f32 {
        let m = self.mean();
        self.data.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / self.numel() as f32
    }

    /// Population standard deviation of all elements.
    pub fn std(&self) -> f32 {
        self.var().sqrt()
    }

    /// Flat index of the maximum element (first occurrence).
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(self.numel() > 0, "argmax of empty tensor");
        self.data
            .iter()
            .enumerate()
            .fold((0, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// Generic axis reduction: folds each lane along `axis` with `f` starting
    /// from `init`, then post-processes the lane result with `fin`.
    ///
    /// Each outer index owns a disjoint `inner`-sized slice of the output,
    /// so large reductions run outer-parallel with bit-identical results.
    fn reduce_axis(
        &self,
        axis: isize,
        init: f32,
        f: impl Fn(f32, f32) -> f32 + Sync,
        fin: impl Fn(f32, usize) -> f32 + Sync,
        keepdim: bool,
    ) -> Tensor {
        let ax = self.shape.normalize_axis(axis);
        let dims = self.shape.dims();
        let extent = dims[ax];
        let outer: usize = dims[..ax].iter().product();
        let inner: usize = dims[ax + 1..].iter().product();
        let mut out = vec![init; outer * inner];
        let src = &self.data;
        // Fold every lane of outer index `o` into its output slice; the
        // element-visit order is identical on the serial and parallel paths.
        let fold_outer = |o: usize, lane: &mut [f32]| {
            for e in 0..extent {
                let base = (o * extent + e) * inner;
                for (i, slot) in lane.iter_mut().enumerate() {
                    *slot = f(*slot, src[base + i]);
                }
            }
            for v in lane.iter_mut() {
                *v = fin(*v, extent);
            }
        };
        const PAR_MIN_WORK: usize = 1 << 15;
        if out.is_empty() {
            // zero-extent axis elsewhere in the shape: nothing to fold
        } else if outer >= 2
            && outer * extent * inner >= PAR_MIN_WORK
            && lttf_parallel::num_threads() > 1
        {
            let per = (PAR_MIN_WORK / (extent * inner).max(1)).max(1);
            par_chunks_mut(&mut out, per * inner, |ci, chunk| {
                for (j, lane) in chunk.chunks_mut(inner).enumerate() {
                    fold_outer(ci * per + j, lane);
                }
            });
        } else {
            for (o, lane) in out.chunks_mut(inner).enumerate() {
                fold_outer(o, lane);
            }
        }
        let mut new_dims: Vec<usize> = dims.to_vec();
        if keepdim {
            new_dims[ax] = 1;
        } else {
            new_dims.remove(ax);
        }
        Tensor::from_vec(out, &new_dims)
    }

    /// Sum along `axis`, removing that axis.
    pub fn sum_axis(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, 0.0, |a, b| a + b, |v, _| v, false)
    }

    /// Sum along `axis`, keeping it with extent 1.
    pub fn sum_axis_keepdim(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, 0.0, |a, b| a + b, |v, _| v, true)
    }

    /// Mean along `axis`, removing that axis.
    pub fn mean_axis(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, 0.0, |a, b| a + b, |v, n| v / n as f32, false)
    }

    /// Mean along `axis`, keeping it with extent 1.
    pub fn mean_axis_keepdim(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, 0.0, |a, b| a + b, |v, n| v / n as f32, true)
    }

    /// Maximum along `axis`, removing that axis.
    pub fn max_axis(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max, |v, _| v, false)
    }

    /// Maximum along `axis`, keeping it with extent 1.
    pub fn max_axis_keepdim(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max, |v, _| v, true)
    }

    /// Minimum along `axis`, removing that axis.
    pub fn min_axis(&self, axis: isize) -> Tensor {
        self.reduce_axis(axis, f32::INFINITY, f32::min, |v, _| v, false)
    }

    /// Population variance along `axis`, keeping it with extent 1.
    pub fn var_axis_keepdim(&self, axis: isize) -> Tensor {
        let m = self.mean_axis_keepdim(axis);
        self.sub(&m).square().mean_axis_keepdim(axis)
    }

    /// Numerically stable softmax along `axis`.
    ///
    /// Each lane along `axis` is shifted by its maximum before
    /// exponentiation, so the result is finite for any finite input.
    pub fn softmax(&self, axis: isize) -> Tensor {
        let m = self.max_axis_keepdim(axis);
        let e = self.sub(&m).exp();
        let s = e.sum_axis_keepdim(axis);
        e.div(&s)
    }

    /// Log-softmax along `axis` (stable).
    pub fn log_softmax(&self, axis: isize) -> Tensor {
        let m = self.max_axis_keepdim(axis);
        let shifted = self.sub(&m);
        let lse = shifted.exp().sum_axis_keepdim(axis).ln();
        shifted.sub(&lse)
    }

    /// Cumulative sum along `axis`.
    pub fn cumsum(&self, axis: isize) -> Tensor {
        let ax = self.shape.normalize_axis(axis);
        let dims = self.shape.dims();
        let extent = dims[ax];
        let outer: usize = dims[..ax].iter().product();
        let inner: usize = dims[ax + 1..].iter().product();
        let mut out = self.data.clone();
        for o in 0..outer {
            for e in 1..extent {
                let prev = (o * extent + e - 1) * inner;
                let cur = (o * extent + e) * inner;
                for i in 0..inner {
                    out[cur + i] += out[prev + i];
                }
            }
        }
        Tensor {
            data: out,
            shape: Shape::new(dims),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Tensor {
        Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3])
    }

    #[test]
    fn global_reductions() {
        let t = m23();
        assert_eq!(t.sum(), 21.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.max(), 6.0);
        assert_eq!(t.min(), 1.0);
        assert!((t.var() - 35.0 / 12.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_occurrence() {
        let t = Tensor::from_slice(&[1.0, 5.0, 5.0, 2.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn axis_reductions() {
        let t = m23();
        assert_eq!(t.sum_axis(0).data(), &[5., 7., 9.]);
        assert_eq!(t.sum_axis(1).data(), &[6., 15.]);
        assert_eq!(t.sum_axis(-1).data(), &[6., 15.]);
        assert_eq!(t.mean_axis(1).data(), &[2., 5.]);
        assert_eq!(t.max_axis(0).data(), &[4., 5., 6.]);
        assert_eq!(t.min_axis(1).data(), &[1., 4.]);
    }

    #[test]
    fn keepdim_shapes() {
        let t = m23();
        assert_eq!(t.sum_axis_keepdim(0).shape(), &[1, 3]);
        assert_eq!(t.mean_axis_keepdim(1).shape(), &[2, 1]);
        assert_eq!(t.max_axis_keepdim(-1).shape(), &[2, 1]);
    }

    #[test]
    fn axis_reduction_3d_middle() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        let s = t.sum_axis(1);
        assert_eq!(s.shape(), &[2, 4]);
        // lane (0, :, 0) = 0 + 4 + 8 = 12
        assert_eq!(s.at(&[0, 0]), 12.0);
        // lane (1, :, 3) = 15 + 19 + 23 = 57
        assert_eq!(s.at(&[1, 3]), 57.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = m23();
        let s = t.softmax(-1);
        for r in 0..2 {
            let row: f32 = (0..3).map(|c| s.at(&[r, c])).sum();
            assert!((row - 1.0).abs() < 1e-6);
        }
        // softmax is monotone: larger input -> larger probability
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let t = Tensor::from_slice(&[1000.0, 1000.0]);
        let s = t.softmax(0);
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let t = m23();
        let a = t.log_softmax(1);
        let b = t.softmax(1).ln();
        a.assert_close(&b, 1e-5);
    }

    #[test]
    fn cumsum_axis() {
        let t = m23();
        assert_eq!(t.cumsum(1).data(), &[1., 3., 6., 4., 9., 15.]);
        assert_eq!(t.cumsum(0).data(), &[1., 2., 3., 5., 7., 9.]);
    }

    /// Chunked pairwise summation must land far closer to the f64 reference
    /// than a naive left fold on a long series of same-sign values (where a
    /// left fold's accumulator swallows low bits of every addend).
    #[test]
    fn pairwise_sum_tracks_f64_reference() {
        let n = 200_000;
        let data: Vec<f32> = (0..n).map(|i| 1.0 + (i % 7) as f32 * 0.01).collect();
        let exact: f64 = data.iter().map(|&v| v as f64).sum();
        let naive: f32 = data.iter().sum();
        let pw = Tensor::from_vec(data, &[n]).sum();
        let err_pw = (pw as f64 - exact).abs();
        let err_naive = (naive as f64 - exact).abs();
        // Pairwise error stays within a few ulps of the result...
        assert!(
            err_pw <= exact.abs() * 1e-6,
            "pairwise sum drifted: {pw} vs f64 {exact} (err {err_pw:e})"
        );
        // ...while the naive fold it replaced drifts visibly.
        assert!(
            err_pw < err_naive,
            "pairwise err {err_pw:e} not below naive err {err_naive:e}"
        );
    }

    #[test]
    fn pairwise_dot_tracks_f64_reference() {
        let n = 120_000;
        let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.311).cos() * 50.0).collect();
        let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.057).sin() * 50.0 + 0.5).collect();
        let exact: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| x as f64 * y as f64)
            .sum();
        // The products cancel heavily, so measure error against the total
        // magnitude that passed through the accumulator, not the tiny net.
        let magnitude: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x as f64 * y as f64).abs())
            .sum();
        let got = Tensor::from_vec(a, &[n]).dot(&Tensor::from_vec(b, &[n]));
        let err = (got as f64 - exact).abs();
        assert!(
            err <= magnitude * 1e-6,
            "pairwise dot drifted: {got} vs f64 {exact} (err {err:e}, magnitude {magnitude:e})"
        );
    }

    /// `sum` takes the block-parallel path for large tensors; the answer
    /// must be bit-identical to the serial chunked reduction.
    #[test]
    fn parallel_sum_is_bit_identical() {
        let n = 100_000;
        let t = Tensor::from_vec(
            (0..n).map(|i| (i as f32 * 0.41).sin() * 3.0).collect(),
            &[n],
        );
        lttf_parallel::set_threads_override(Some(1));
        let serial = t.sum();
        lttf_parallel::set_threads_override(Some(4));
        let parallel = t.sum();
        lttf_parallel::set_threads_override(None);
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn var_axis() {
        let t = Tensor::from_vec(vec![1., 3., 2., 2.], &[2, 2]);
        let v = t.var_axis_keepdim(1);
        assert_eq!(v.shape(), &[2, 1]);
        assert!((v.at(&[0, 0]) - 1.0).abs() < 1e-6);
        assert!((v.at(&[1, 0]) - 0.0).abs() < 1e-6);
    }
}
