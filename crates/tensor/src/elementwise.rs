//! Element-wise arithmetic and transcendental operations.
//!
//! Maps over large tensors run chunked on the worker pool; each chunk is a
//! pure element-wise image of the corresponding input range, so the output
//! bytes do not depend on the thread count. Same-shape arithmetic and the
//! four transcendental maps the models lean on (`exp`, `sigmoid`, `tanh`,
//! `gelu`) dispatch through [`crate::simd`]; the rest go through the
//! generic closure map.

use crate::simd::{BinOp, UnOp};
use crate::tensor::Tensor;
use lttf_parallel::{chunk_bounds, par_chunks_mut};

/// Elements below which an element-wise map is not worth dispatching.
pub(crate) const PAR_MAP_MIN: usize = 64 * 1024;
/// Chunk length for parallel element-wise work.
pub(crate) const PAR_MAP_CHUNK: usize = 16 * 1024;

impl Tensor {
    /// Same-shape binary arithmetic through the dispatched lane kernels
    /// (bit-identical across backends — the SIMD path only widens the
    /// stride), chunked on the pool for large tensors. Shapes that need
    /// broadcasting fall back to the closure path.
    fn zip_simd(&self, other: &Tensor, op: BinOp, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        if self.shape != other.shape {
            return self.broadcast_zip(other, f);
        }
        let n = self.data.len();
        let mut out = vec![0.0f32; n];
        if n < PAR_MAP_MIN || lttf_parallel::num_threads() <= 1 {
            crate::simd::binary(op, &self.data, &other.data, &mut out);
        } else {
            let (a, b) = (&self.data, &other.data);
            par_chunks_mut(&mut out, PAR_MAP_CHUNK, |ci, chunk| {
                let (s, e) = chunk_bounds(n, PAR_MAP_CHUNK, ci);
                crate::simd::binary(op, &a[s..e], &b[s..e], chunk);
            });
        }
        Tensor {
            data: out,
            shape: self.shape.clone(),
        }
    }

    /// Transcendental map through the dispatched kernels; per-element, so
    /// chunk boundaries never change the bytes (per backend).
    fn map_simd(&self, op: UnOp) -> Tensor {
        let n = self.data.len();
        let mut out = vec![0.0f32; n];
        if n < PAR_MAP_MIN || lttf_parallel::num_threads() <= 1 {
            crate::simd::unary(op, &self.data, &mut out);
        } else {
            let src = &self.data;
            par_chunks_mut(&mut out, PAR_MAP_CHUNK, |ci, chunk| {
                let (s, e) = chunk_bounds(n, PAR_MAP_CHUNK, ci);
                crate::simd::unary(op, &src[s..e], chunk);
            });
        }
        Tensor {
            data: out,
            shape: self.shape.clone(),
        }
    }

    /// Element-wise addition with broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_simd(other, BinOp::Add, |a, b| a + b)
    }

    /// Element-wise subtraction with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_simd(other, BinOp::Sub, |a, b| a - b)
    }

    /// Element-wise multiplication with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_simd(other, BinOp::Mul, |a, b| a * b)
    }

    /// Element-wise division with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_simd(other, BinOp::Div, |a, b| a / b)
    }

    /// Element-wise maximum with broadcasting.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        self.broadcast_zip(other, f32::max)
    }

    /// Element-wise minimum with broadcasting.
    pub fn minimum(&self, other: &Tensor) -> Tensor {
        self.broadcast_zip(other, f32::min)
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Subtract a scalar from every element.
    pub fn sub_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v - s)
    }

    /// Multiply every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Divide every element by a scalar.
    pub fn div_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v / s)
    }

    /// Negate every element.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Element-wise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map_simd(UnOp::Exp)
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Element-wise power with a scalar exponent.
    pub fn powf(&self, p: f32) -> Tensor {
        self.map(|v| v.powf(p))
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor {
        self.map(|v| v * v)
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map_simd(UnOp::Tanh)
    }

    /// Element-wise logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(&self) -> Tensor {
        self.map_simd(UnOp::Sigmoid)
    }

    /// Element-wise ReLU `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Element-wise GELU (tanh approximation, as used by transformers).
    pub fn gelu(&self) -> Tensor {
        self.map_simd(UnOp::Gelu)
    }

    /// Element-wise ELU with `alpha = 1`.
    pub fn elu(&self) -> Tensor {
        self.map(|v| if v > 0.0 { v } else { v.exp_m1() })
    }

    /// Element-wise softplus `ln(1 + e^x)`, computed stably.
    pub fn softplus(&self) -> Tensor {
        self.map(|v| if v > 20.0 { v } else { (1.0 + v.exp()).ln() })
    }

    /// Clamp every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Apply an arbitrary function to every element.
    ///
    /// Large tensors are processed in fixed-size chunks on the worker pool.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let n = self.data.len();
        if n < PAR_MAP_MIN || lttf_parallel::num_threads() <= 1 {
            return Tensor {
                data: self.data.iter().map(|&v| f(v)).collect(),
                shape: self.shape.clone(),
            };
        }
        let mut out = vec![0.0f32; n];
        let src = &self.data;
        par_chunks_mut(&mut out, PAR_MAP_CHUNK, |ci, chunk| {
            let (s, _) = chunk_bounds(n, PAR_MAP_CHUNK, ci);
            for (o, &v) in chunk.iter_mut().zip(&src[s..]) {
                *o = f(v);
            }
        });
        Tensor {
            data: out,
            shape: self.shape.clone(),
        }
    }

    /// In-place `self += other` for identically shaped tensors (no broadcast).
    ///
    /// Used on hot accumulation paths (gradient accumulation).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn arithmetic() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn broadcast_arithmetic() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let row = Tensor::from_vec(vec![10.0, 20.0], &[1, 2]);
        assert_eq!(m.add(&row).data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0]);
        assert_eq!(a.mul_scalar(-2.0).data(), &[-2.0, 4.0]);
        assert_eq!(a.neg().data(), &[-1.0, 2.0]);
        assert_eq!(a.abs().data(), &[1.0, 2.0]);
    }

    #[test]
    fn activations() {
        let a = t(&[0.0]);
        assert_eq!(a.sigmoid().data(), &[0.5]);
        assert_eq!(a.tanh().data(), &[0.0]);
        assert_eq!(t(&[-1.0, 2.0]).relu().data(), &[0.0, 2.0]);
        // softplus(0) = ln 2
        assert!((a.softplus().data()[0] - 2f32.ln()).abs() < 1e-6);
        // softplus is stable for large inputs
        assert_eq!(t(&[100.0]).softplus().data(), &[100.0]);
        // gelu(0) = 0, gelu(large) ≈ large
        assert_eq!(a.gelu().data(), &[0.0]);
        assert!((t(&[10.0]).gelu().data()[0] - 10.0).abs() < 1e-3);
    }

    #[test]
    fn transcendentals() {
        let a = t(&[1.0, 4.0]);
        assert_eq!(a.sqrt().data(), &[1.0, 2.0]);
        assert_eq!(a.square().data(), &[1.0, 16.0]);
        assert!((t(&[std::f32::consts::E]).ln().data()[0] - 1.0).abs() < 1e-6);
        assert!((t(&[1.0]).exp().data()[0] - std::f32::consts::E).abs() < 1e-6);
        assert_eq!(t(&[2.0]).powf(3.0).data(), &[8.0]);
    }

    #[test]
    fn clamp_and_minmax() {
        let a = t(&[-2.0, 0.5, 3.0]);
        assert_eq!(a.clamp(-1.0, 1.0).data(), &[-1.0, 0.5, 1.0]);
        let b = t(&[0.0, 1.0, 0.0]);
        assert_eq!(a.maximum(&b).data(), &[0.0, 1.0, 3.0]);
        assert_eq!(a.minimum(&b).data(), &[-2.0, 0.5, 0.0]);
    }

    #[test]
    fn in_place_ops() {
        let mut a = t(&[1.0, 2.0]);
        a.add_assign(&t(&[3.0, 4.0]));
        assert_eq!(a.data(), &[4.0, 6.0]);
        a.scale_assign(0.5);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn elu_behaviour() {
        let a = t(&[1.0, 0.0, -1.0]);
        let e = a.elu();
        assert_eq!(e.data()[0], 1.0);
        assert_eq!(e.data()[1], 0.0);
        assert!((e.data()[2] - (-1f32).exp_m1()).abs() < 1e-6);
    }
}
