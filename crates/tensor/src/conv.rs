//! 1-D convolution, the workhorse of the models' embedding layers.

use crate::tensor::Tensor;

impl Tensor {
    /// 1-D cross-correlation (the deep-learning "convolution").
    ///
    /// * `self`: input of shape `[batch, in_ch, len]`
    /// * `weight`: kernel of shape `[out_ch, in_ch, k]`
    /// * `bias`: optional `[out_ch]`
    /// * `padding`: zeros added to both ends of the length axis
    /// * `stride`: step between output positions
    ///
    /// Output shape: `[batch, out_ch, (len + 2*padding - k)/stride + 1]`.
    ///
    /// # Panics
    /// Panics on rank/channel mismatches or if the kernel does not fit the
    /// padded input.
    pub fn conv1d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        padding: usize,
        stride: usize,
    ) -> Tensor {
        assert_eq!(
            self.ndim(),
            3,
            "conv1d input must be [batch, in_ch, len], got {}",
            self.shape
        );
        assert_eq!(
            weight.ndim(),
            3,
            "conv1d weight must be [out_ch, in_ch, k], got {}",
            weight.shape
        );
        assert!(stride >= 1, "conv1d stride must be >= 1");
        let (b, cin, len) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (cout, cin_w, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
        assert_eq!(
            cin, cin_w,
            "conv1d channel mismatch: input has {cin}, weight expects {cin_w}"
        );
        if let Some(bias) = bias {
            assert_eq!(
                bias.shape(),
                &[cout],
                "conv1d bias must be [out_ch={cout}], got {}",
                bias.shape
            );
        }
        let padded_len = len + 2 * padding;
        assert!(
            padded_len >= k,
            "conv1d kernel of size {k} does not fit padded input of length {padded_len}"
        );
        let out_len = (padded_len - k) / stride + 1;
        let mut out = vec![0.0f32; b * cout * out_len];
        for bi in 0..b {
            for oc in 0..cout {
                let bias_v = bias.map_or(0.0, |bv| bv.data[oc]);
                for ot in 0..out_len {
                    let start = ot * stride; // position in padded input
                    let mut acc = bias_v;
                    for ic in 0..cin {
                        let in_base = (bi * cin + ic) * len;
                        let w_base = (oc * cin + ic) * k;
                        for kk in 0..k {
                            let pos = start + kk;
                            if pos < padding || pos >= padding + len {
                                continue; // zero padding
                            }
                            acc += self.data[in_base + pos - padding] * weight.data[w_base + kk];
                        }
                    }
                    out[(bi * cout + oc) * out_len + ot] = acc;
                }
            }
        }
        Tensor::from_vec(out, &[b, cout, out_len])
    }

    /// Gradient of `conv1d` with respect to its input.
    ///
    /// `grad_out` has the shape of the forward output. Returns a tensor
    /// shaped like the forward input.
    pub fn conv1d_backward_input(
        grad_out: &Tensor,
        weight: &Tensor,
        input_shape: &[usize],
        padding: usize,
        stride: usize,
    ) -> Tensor {
        let (b, cin, len) = (input_shape[0], input_shape[1], input_shape[2]);
        let (cout, _, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
        let out_len = grad_out.shape()[2];
        let mut gin = vec![0.0f32; b * cin * len];
        for bi in 0..b {
            for oc in 0..cout {
                for ot in 0..out_len {
                    let go = grad_out.data[(bi * cout + oc) * out_len + ot];
                    if go == 0.0 {
                        continue;
                    }
                    let start = ot * stride;
                    for ic in 0..cin {
                        let w_base = (oc * cin + ic) * k;
                        let g_base = (bi * cin + ic) * len;
                        for kk in 0..k {
                            let pos = start + kk;
                            if pos < padding || pos >= padding + len {
                                continue;
                            }
                            gin[g_base + pos - padding] += go * weight.data[w_base + kk];
                        }
                    }
                }
            }
        }
        Tensor::from_vec(gin, input_shape)
    }

    /// Gradient of `conv1d` with respect to its weight.
    pub fn conv1d_backward_weight(
        grad_out: &Tensor,
        input: &Tensor,
        weight_shape: &[usize],
        padding: usize,
        stride: usize,
    ) -> Tensor {
        let (b, cin, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let (cout, _, k) = (weight_shape[0], weight_shape[1], weight_shape[2]);
        let out_len = grad_out.shape()[2];
        let mut gw = vec![0.0f32; cout * cin * k];
        for bi in 0..b {
            for oc in 0..cout {
                for ot in 0..out_len {
                    let go = grad_out.data[(bi * cout + oc) * out_len + ot];
                    if go == 0.0 {
                        continue;
                    }
                    let start = ot * stride;
                    for ic in 0..cin {
                        let in_base = (bi * cin + ic) * len;
                        let w_base = (oc * cin + ic) * k;
                        for kk in 0..k {
                            let pos = start + kk;
                            if pos < padding || pos >= padding + len {
                                continue;
                            }
                            gw[w_base + kk] += go * input.data[in_base + pos - padding];
                        }
                    }
                }
            }
        }
        Tensor::from_vec(gw, weight_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv1d_identity_kernel() {
        // 1x1 kernel of value 1 reproduces the input.
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![1.0], &[1, 1, 1]);
        let y = x.conv1d(&w, None, 0, 1);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv1d_moving_sum() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![1., 1.], &[1, 1, 2]);
        let y = x.conv1d(&w, None, 0, 1);
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[3., 5., 7.]);
    }

    #[test]
    fn conv1d_padding_same() {
        // kernel 3, padding 1 keeps the length ("same" convolution).
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![0., 1., 0.], &[1, 1, 3]);
        let y = x.conv1d(&w, None, 1, 1);
        assert_eq!(y.shape(), &[1, 1, 4]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv1d_stride() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 5.], &[1, 1, 5]);
        let w = Tensor::from_vec(vec![1.], &[1, 1, 1]);
        let y = x.conv1d(&w, None, 0, 2);
        assert_eq!(y.data(), &[1., 3., 5.]);
    }

    #[test]
    fn conv1d_multi_channel() {
        // 2 input channels summed by a kernel of ones.
        let x = Tensor::from_vec(vec![1., 2., 10., 20.], &[1, 2, 2]);
        let w = Tensor::from_vec(vec![1., 1.], &[1, 2, 1]);
        let y = x.conv1d(&w, None, 0, 1);
        assert_eq!(y.data(), &[11., 22.]);
    }

    #[test]
    fn conv1d_bias() {
        let x = Tensor::from_vec(vec![1., 2.], &[1, 1, 2]);
        let w = Tensor::from_vec(vec![1.], &[1, 1, 1]);
        let b = Tensor::from_slice(&[100.0]);
        let y = x.conv1d(&w, Some(&b), 0, 1);
        assert_eq!(y.data(), &[101., 102.]);
    }

    #[test]
    fn conv1d_batched() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 1, 2]);
        let w = Tensor::from_vec(vec![2.], &[1, 1, 1]);
        let y = x.conv1d(&w, None, 0, 1);
        assert_eq!(y.shape(), &[2, 1, 2]);
        assert_eq!(y.data(), &[2., 4., 6., 8.]);
    }

    /// Numerical check of the input gradient: perturb each input element and
    /// compare the finite-difference slope of sum(conv) to the analytic one.
    #[test]
    fn conv1d_input_gradient_matches_finite_difference() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.3, 1.2, -0.7], &[1, 2, 3]);
        let w = Tensor::from_vec(vec![0.2, -0.4, 0.6, 0.1, -0.3, 0.5, 0.7, 0.9], &[2, 2, 2]);
        let pad = 1;
        let stride = 1;
        let y = x.conv1d(&w, None, pad, stride);
        let go = y.ones_like();
        let gin = Tensor::conv1d_backward_input(&go, &w, x.shape(), pad, stride);
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (xp.conv1d(&w, None, pad, stride).sum()
                - xm.conv1d(&w, None, pad, stride).sum())
                / (2.0 * eps);
            assert!(
                (num - gin.data()[i]).abs() < 1e-2,
                "input grad mismatch at {i}: numeric {num} vs analytic {}",
                gin.data()[i]
            );
        }
    }

    #[test]
    fn conv1d_weight_gradient_matches_finite_difference() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.3, 1.2, -0.7], &[1, 2, 3]);
        let w = Tensor::from_vec(vec![0.2, -0.4, 0.6, 0.1, -0.3, 0.5, 0.7, 0.9], &[2, 2, 2]);
        let pad = 0;
        let stride = 1;
        let y = x.conv1d(&w, None, pad, stride);
        let go = y.ones_like();
        let gw = Tensor::conv1d_backward_weight(&go, &x, w.shape(), pad, stride);
        let eps = 1e-3;
        for i in 0..w.numel() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (x.conv1d(&wp, None, pad, stride).sum()
                - x.conv1d(&wm, None, pad, stride).sum())
                / (2.0 * eps);
            assert!(
                (num - gw.data()[i]).abs() < 1e-2,
                "weight grad mismatch at {i}: numeric {num} vs analytic {}",
                gw.data()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv1d_channel_mismatch_panics() {
        let x = Tensor::zeros(&[1, 2, 4]);
        let w = Tensor::zeros(&[1, 3, 2]);
        x.conv1d(&w, None, 0, 1);
    }
}
