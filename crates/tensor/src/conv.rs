//! 1-D convolution, the workhorse of the models' embedding layers.
//!
//! The forward kernel is written in axpy form — for each `(in_ch, tap)`
//! pair the valid output range is computed once and updated with a
//! branch-free fused loop — instead of testing the padding bounds on every
//! multiply. The stride-1 axpy dispatches through [`crate::simd`] (FMA on
//! the AVX2 backend; the scalar backend keeps the accumulation order of
//! the textbook loop bit-for-bit). The stride-1 backward passes are the
//! mirror images — `conv1d_backward_input` is a transposed-conv axpy per
//! `(out_ch, in_ch, tap)`, `conv1d_backward_weight` a dot per weight tap —
//! so the backward paths run on the same microkernels as the forward.
//! Batches/out-channels are distributed over the worker pool without
//! changing any result bytes.

use crate::tensor::Tensor;
use lttf_parallel::par_chunks_mut;

/// Approximate multiply-add count per parallel task for conv kernels.
const PAR_GRAIN: usize = 64 * 1024;

/// Forward kernel for one `(batch, out_ch)` pair: writes `out_len` results
/// given the batch's input plane `x` (`[cin, len]`) and the out-channel's
/// weight plane `w` (`[cin, k]`).
#[allow(clippy::too_many_arguments)]
fn conv1d_one(
    x: &[f32],
    w: &[f32],
    bias_v: f32,
    out: &mut [f32],
    cin: usize,
    len: usize,
    k: usize,
    padding: usize,
    stride: usize,
) {
    let out_len = out.len();
    out.fill(bias_v);
    if len == 0 {
        return;
    }
    for ic in 0..cin {
        let xrow = &x[ic * len..(ic + 1) * len];
        let wrow = &w[ic * k..(ic + 1) * k];
        for (kk, &wv) in wrow.iter().enumerate() {
            // Valid outputs satisfy padding <= ot*stride + kk < padding + len.
            let ot_min = if padding > kk {
                (padding - kk).div_ceil(stride)
            } else {
                0
            };
            let hi = padding + len - 1;
            if hi < kk {
                continue;
            }
            let ot_max = ((hi - kk) / stride).min(out_len.wrapping_sub(1));
            if out_len == 0 || ot_min > ot_max {
                continue;
            }
            if stride == 1 {
                // Contiguous input span: a straight axpy.
                let x0 = ot_min + kk - padding;
                let span = ot_max - ot_min + 1;
                crate::simd::axpy(&mut out[ot_min..ot_min + span], wv, &xrow[x0..x0 + span]);
            } else {
                for ot in ot_min..=ot_max {
                    out[ot] += xrow[ot * stride + kk - padding] * wv;
                }
            }
        }
    }
}

impl Tensor {
    /// 1-D cross-correlation (the deep-learning "convolution").
    ///
    /// * `self`: input of shape `[batch, in_ch, len]`
    /// * `weight`: kernel of shape `[out_ch, in_ch, k]`
    /// * `bias`: optional `[out_ch]`
    /// * `padding`: zeros added to both ends of the length axis
    /// * `stride`: step between output positions
    ///
    /// Output shape: `[batch, out_ch, (len + 2*padding - k)/stride + 1]`.
    ///
    /// # Panics
    /// Panics on rank/channel mismatches or if the kernel does not fit the
    /// padded input.
    pub fn conv1d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        padding: usize,
        stride: usize,
    ) -> Tensor {
        assert_eq!(
            self.ndim(),
            3,
            "conv1d input must be [batch, in_ch, len], got {}",
            self.shape
        );
        assert_eq!(
            weight.ndim(),
            3,
            "conv1d weight must be [out_ch, in_ch, k], got {}",
            weight.shape
        );
        assert!(stride >= 1, "conv1d stride must be >= 1");
        let (b, cin, len) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (cout, cin_w, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
        assert_eq!(
            cin, cin_w,
            "conv1d channel mismatch: input has {cin}, weight expects {cin_w}"
        );
        if let Some(bias) = bias {
            assert_eq!(
                bias.shape(),
                &[cout],
                "conv1d bias must be [out_ch={cout}], got {}",
                bias.shape
            );
        }
        let padded_len = len + 2 * padding;
        assert!(
            padded_len >= k,
            "conv1d kernel of size {k} does not fit padded input of length {padded_len}"
        );
        let out_len = (padded_len - k) / stride + 1;
        let span = lttf_obs::span!(
            "conv1d",
            b * cout * out_len * cin * k >= crate::obs_min_work()
        );
        span.bytes((self.numel() + weight.numel() + b * cout * out_len) * 4);
        let mut out = vec![0.0f32; b * cout * out_len];
        if out_len > 0 {
            // One work item per (batch, out_ch) pair; group enough pairs per
            // task to amortize dispatch.
            let per = lttf_parallel::items_per_task(cin * k * out_len, PAR_GRAIN);
            let x = &self.data;
            let w = &weight.data;
            par_chunks_mut(&mut out, per * out_len, |ci, chunk| {
                for (j, o) in chunk.chunks_mut(out_len).enumerate() {
                    let flat = ci * per + j;
                    let (bi, oc) = (flat / cout, flat % cout);
                    let bias_v = bias.map_or(0.0, |bv| bv.data[oc]);
                    conv1d_one(
                        &x[bi * cin * len..(bi + 1) * cin * len],
                        &w[oc * cin * k..(oc + 1) * cin * k],
                        bias_v,
                        o,
                        cin,
                        len,
                        k,
                        padding,
                        stride,
                    );
                }
            });
        }
        Tensor::from_vec(out, &[b, cout, out_len])
    }

    /// Gradient of `conv1d` with respect to its input.
    ///
    /// `grad_out` has the shape of the forward output. Returns a tensor
    /// shaped like the forward input.
    pub fn conv1d_backward_input(
        grad_out: &Tensor,
        weight: &Tensor,
        input_shape: &[usize],
        padding: usize,
        stride: usize,
    ) -> Tensor {
        let (b, cin, len) = (input_shape[0], input_shape[1], input_shape[2]);
        let (cout, _, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
        let out_len = grad_out.shape()[2];
        let _span = lttf_obs::span!(
            "conv1d_bwd_input",
            b * cout * out_len * cin * k >= crate::obs_min_work()
        );
        let mut gin = vec![0.0f32; b * cin * len];
        if cin * len > 0 {
            let go_all = &grad_out.data;
            let w = &weight.data;
            if stride == 1 {
                // Transposed-conv axpy form: for a fixed `(oc, kk)` the valid
                // output positions `ot` map to the contiguous input span
                // `ot + kk - padding`, so each `(ic)` gradient row is a sum of
                // axpys over `(oc, kk)`. Rows `(bi, ic)` are disjoint, which
                // lets us split a single batch's backward across the pool.
                let per = lttf_parallel::items_per_task(cout * k * out_len, PAR_GRAIN);
                par_chunks_mut(&mut gin, per * len, |ci, chunk| {
                    for (j, row) in chunk.chunks_mut(len).enumerate() {
                        let flat = ci * per + j;
                        let (bi, ic) = (flat / cin, flat % cin);
                        for oc in 0..cout {
                            let go = &go_all
                                [(bi * cout + oc) * out_len..(bi * cout + oc + 1) * out_len];
                            let wrow = &w[(oc * cin + ic) * k..(oc * cin + ic) * k + k];
                            for (kk, &wv) in wrow.iter().enumerate() {
                                let ot_lo = padding.saturating_sub(kk);
                                let ot_hi = (len + padding).saturating_sub(kk).min(out_len);
                                if ot_lo >= ot_hi {
                                    continue;
                                }
                                let span = ot_hi - ot_lo;
                                let x0 = ot_lo + kk - padding;
                                crate::simd::axpy(
                                    &mut row[x0..x0 + span],
                                    wv,
                                    &go[ot_lo..ot_hi],
                                );
                            }
                        }
                    }
                });
            } else {
                // Strided scatter: each batch owns a disjoint gradient plane;
                // the per-batch scatter order matches the textbook loop.
                par_chunks_mut(&mut gin, cin * len, |bi, plane| {
                    for oc in 0..cout {
                        for ot in 0..out_len {
                            let go = go_all[(bi * cout + oc) * out_len + ot];
                            if go == 0.0 {
                                continue;
                            }
                            let start = ot * stride;
                            for ic in 0..cin {
                                let w_base = (oc * cin + ic) * k;
                                let g_base = ic * len;
                                for kk in 0..k {
                                    let pos = start + kk;
                                    if pos < padding || pos >= padding + len {
                                        continue;
                                    }
                                    plane[g_base + pos - padding] += go * w[w_base + kk];
                                }
                            }
                        }
                    }
                });
            }
        }
        Tensor::from_vec(gin, input_shape)
    }

    /// Gradient of `conv1d` with respect to its weight.
    pub fn conv1d_backward_weight(
        grad_out: &Tensor,
        input: &Tensor,
        weight_shape: &[usize],
        padding: usize,
        stride: usize,
    ) -> Tensor {
        let (b, cin, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let (cout, _, k) = (weight_shape[0], weight_shape[1], weight_shape[2]);
        let out_len = grad_out.shape()[2];
        let _span = lttf_obs::span!(
            "conv1d_bwd_weight",
            b * cout * out_len * cin * k >= crate::obs_min_work()
        );
        let mut gw = vec![0.0f32; cout * cin * k];
        if stride == 1 && out_len > 0 {
            // Dot form: each weight tap is the dot of the out-channel's
            // gradient row with the aligned input span, summed over batches.
            // Out-channel weight planes are disjoint, so a single request's
            // weight backward also splits across the pool.
            let go_all = &grad_out.data;
            let x_all = &input.data;
            let per = lttf_parallel::items_per_task(b * cin * k * out_len, PAR_GRAIN);
            par_chunks_mut(&mut gw, per * cin * k, |ci, chunk| {
                for (j, wplane) in chunk.chunks_mut(cin * k).enumerate() {
                    let oc = ci * per + j;
                    for bi in 0..b {
                        let go = &go_all[(bi * cout + oc) * out_len..(bi * cout + oc + 1) * out_len];
                        for ic in 0..cin {
                            let xrow = &x_all[(bi * cin + ic) * len..(bi * cin + ic + 1) * len];
                            for kk in 0..k {
                                let ot_lo = padding.saturating_sub(kk);
                                let ot_hi = (len + padding).saturating_sub(kk).min(out_len);
                                if ot_lo >= ot_hi {
                                    continue;
                                }
                                let span = ot_hi - ot_lo;
                                let x0 = ot_lo + kk - padding;
                                wplane[ic * k + kk] +=
                                    crate::simd::dot(&go[ot_lo..ot_hi], &xrow[x0..x0 + span]);
                            }
                        }
                    }
                }
            });
        } else {
            for bi in 0..b {
                for oc in 0..cout {
                    for ot in 0..out_len {
                        let go = grad_out.data[(bi * cout + oc) * out_len + ot];
                        if go == 0.0 {
                            continue;
                        }
                        let start = ot * stride;
                        for ic in 0..cin {
                            let in_base = (bi * cin + ic) * len;
                            let w_base = (oc * cin + ic) * k;
                            for kk in 0..k {
                                let pos = start + kk;
                                if pos < padding || pos >= padding + len {
                                    continue;
                                }
                                gw[w_base + kk] += go * input.data[in_base + pos - padding];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(gw, weight_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv1d_identity_kernel() {
        // 1x1 kernel of value 1 reproduces the input.
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![1.0], &[1, 1, 1]);
        let y = x.conv1d(&w, None, 0, 1);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv1d_moving_sum() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![1., 1.], &[1, 1, 2]);
        let y = x.conv1d(&w, None, 0, 1);
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[3., 5., 7.]);
    }

    #[test]
    fn conv1d_padding_same() {
        // kernel 3, padding 1 keeps the length ("same" convolution).
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![0., 1., 0.], &[1, 1, 3]);
        let y = x.conv1d(&w, None, 1, 1);
        assert_eq!(y.shape(), &[1, 1, 4]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv1d_stride() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 5.], &[1, 1, 5]);
        let w = Tensor::from_vec(vec![1.], &[1, 1, 1]);
        let y = x.conv1d(&w, None, 0, 2);
        assert_eq!(y.data(), &[1., 3., 5.]);
    }

    #[test]
    fn conv1d_multi_channel() {
        // 2 input channels summed by a kernel of ones.
        let x = Tensor::from_vec(vec![1., 2., 10., 20.], &[1, 2, 2]);
        let w = Tensor::from_vec(vec![1., 1.], &[1, 2, 1]);
        let y = x.conv1d(&w, None, 0, 1);
        assert_eq!(y.data(), &[11., 22.]);
    }

    #[test]
    fn conv1d_bias() {
        let x = Tensor::from_vec(vec![1., 2.], &[1, 1, 2]);
        let w = Tensor::from_vec(vec![1.], &[1, 1, 1]);
        let b = Tensor::from_slice(&[100.0]);
        let y = x.conv1d(&w, Some(&b), 0, 1);
        assert_eq!(y.data(), &[101., 102.]);
    }

    #[test]
    fn conv1d_batched() {
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 1, 2]);
        let w = Tensor::from_vec(vec![2.], &[1, 1, 1]);
        let y = x.conv1d(&w, None, 0, 1);
        assert_eq!(y.shape(), &[2, 1, 2]);
        assert_eq!(y.data(), &[2., 4., 6., 8.]);
    }

    /// Numerical check of the input gradient: perturb each input element and
    /// compare the finite-difference slope of sum(conv) to the analytic one.
    #[test]
    fn conv1d_input_gradient_matches_finite_difference() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.3, 1.2, -0.7], &[1, 2, 3]);
        let w = Tensor::from_vec(vec![0.2, -0.4, 0.6, 0.1, -0.3, 0.5, 0.7, 0.9], &[2, 2, 2]);
        let pad = 1;
        let stride = 1;
        let y = x.conv1d(&w, None, pad, stride);
        let go = y.ones_like();
        let gin = Tensor::conv1d_backward_input(&go, &w, x.shape(), pad, stride);
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (xp.conv1d(&w, None, pad, stride).sum()
                - xm.conv1d(&w, None, pad, stride).sum())
                / (2.0 * eps);
            assert!(
                (num - gin.data()[i]).abs() < 1e-2,
                "input grad mismatch at {i}: numeric {num} vs analytic {}",
                gin.data()[i]
            );
        }
    }

    #[test]
    fn conv1d_weight_gradient_matches_finite_difference() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.3, 1.2, -0.7], &[1, 2, 3]);
        let w = Tensor::from_vec(vec![0.2, -0.4, 0.6, 0.1, -0.3, 0.5, 0.7, 0.9], &[2, 2, 2]);
        let pad = 0;
        let stride = 1;
        let y = x.conv1d(&w, None, pad, stride);
        let go = y.ones_like();
        let gw = Tensor::conv1d_backward_weight(&go, &x, w.shape(), pad, stride);
        let eps = 1e-3;
        for i in 0..w.numel() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (x.conv1d(&wp, None, pad, stride).sum()
                - x.conv1d(&wm, None, pad, stride).sum())
                / (2.0 * eps);
            assert!(
                (num - gw.data()[i]).abs() < 1e-2,
                "weight grad mismatch at {i}: numeric {num} vs analytic {}",
                gw.data()[i]
            );
        }
    }

    /// The axpy-form kernel must be bit-for-bit identical to the textbook
    /// per-output accumulation loop it replaced, across strides and padding.
    /// The contract holds for the scalar backend (the AVX2 axpy fuses the
    /// multiply-add and may differ in the last ulp — DESIGN.md §8), so the
    /// kernel choice is pinned for the duration of the test.
    #[test]
    fn conv1d_matches_reference_bit_for_bit() {
        let _guard = crate::simd::test_lock();
        crate::simd::set_simd_override(Some(false));
        let (b, cin, len, cout, k) = (3, 4, 29, 5, 3);
        let x = Tensor::from_vec(
            (0..b * cin * len)
                .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.013)
                .collect(),
            &[b, cin, len],
        );
        let w = Tensor::from_vec(
            (0..cout * cin * k)
                .map(|i| ((i * 53 % 67) as f32 - 33.0) * 0.021)
                .collect(),
            &[cout, cin, k],
        );
        let bias = Tensor::from_vec((0..cout).map(|i| i as f32 * 0.1).collect(), &[cout]);
        for &(padding, stride) in &[(0usize, 1usize), (2, 1), (1, 2), (3, 3)] {
            let got = x.conv1d(&w, Some(&bias), padding, stride);
            let out_len = (len + 2 * padding - k) / stride + 1;
            let mut want = vec![0.0f32; b * cout * out_len];
            for bi in 0..b {
                for oc in 0..cout {
                    for ot in 0..out_len {
                        let mut acc = bias.data()[oc];
                        for ic in 0..cin {
                            for kk in 0..k {
                                let pos = ot * stride + kk;
                                if pos < padding || pos >= padding + len {
                                    continue;
                                }
                                acc += x.data()[(bi * cin + ic) * len + pos - padding]
                                    * w.data()[(oc * cin + ic) * k + kk];
                            }
                        }
                        want[(bi * cout + oc) * out_len + ot] = acc;
                    }
                }
            }
            for (i, (&g, &e)) in got.data().iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    e.to_bits(),
                    "pad={padding} stride={stride}: mismatch at {i}: {g} vs {e}"
                );
            }
        }
        crate::simd::set_simd_override(None);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv1d_channel_mismatch_panics() {
        let x = Tensor::zeros(&[1, 2, 4]);
        let w = Tensor::zeros(&[1, 3, 2]);
        x.conv1d(&w, None, 0, 1);
    }
}
