//! NumPy-style broadcasting between shapes.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Compute the broadcast shape of two shapes under NumPy rules.
///
/// Shapes are aligned at the trailing axes; each axis pair must be equal or
/// one of them must be 1.
///
/// # Panics
/// Panics if the shapes are not broadcast-compatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Vec<usize> {
    let n = a.len().max(b.len());
    let mut out = vec![0usize; n];
    for i in 0..n {
        let da = if i < n - a.len() {
            1
        } else {
            a[i - (n - a.len())]
        };
        let db = if i < n - b.len() {
            1
        } else {
            b[i - (n - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            panic!(
                "shapes {} and {} are not broadcast-compatible (axis {i}: {da} vs {db})",
                Shape::new(a),
                Shape::new(b)
            )
        };
    }
    out
}

impl Tensor {
    /// Materialize this tensor broadcast to `target` shape.
    ///
    /// # Panics
    /// Panics if `self.shape()` cannot broadcast to `target`.
    pub fn broadcast_to(&self, target: &[usize]) -> Tensor {
        let bs = broadcast_shapes(self.shape(), target);
        assert_eq!(
            bs,
            target,
            "cannot broadcast {} to {}",
            self.shape,
            Shape::new(target)
        );
        if self.shape() == target {
            return self.clone();
        }
        let tgt = Shape::new(target);
        let n = tgt.ndim();
        let pad = n - self.ndim();
        // Source strides aligned to target rank; broadcast axes get stride 0.
        let src_strides = self.shape.strides();
        let mut strides = vec![0usize; n];
        for i in 0..self.ndim() {
            strides[pad + i] = if self.shape.dims()[i] == 1 {
                0
            } else {
                src_strides[i]
            };
        }
        let mut out = vec![0.0f32; tgt.numel()];
        let mut idx = vec![0usize; n];
        let mut src_off = 0usize;
        for slot in out.iter_mut() {
            *slot = self.data[src_off];
            // Increment the multi-index, updating the source offset.
            for axis in (0..n).rev() {
                idx[axis] += 1;
                src_off += strides[axis];
                if idx[axis] < tgt.dims()[axis] {
                    break;
                }
                src_off -= strides[axis] * tgt.dims()[axis];
                idx[axis] = 0;
            }
        }
        Tensor::from_vec(out, target)
    }

    /// Apply a binary op element-wise with broadcasting, returning the result.
    ///
    /// After broadcasting, the element-wise zip of large operands runs in
    /// fixed-size chunks on the worker pool (bit-identical at any count).
    pub(crate) fn broadcast_zip(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Tensor {
        if self.shape() == other.shape() {
            // Fast path: identical shapes.
            return Tensor {
                data: zip_slices(&self.data, &other.data, &f),
                shape: self.shape.clone(),
            };
        }
        let target = broadcast_shapes(self.shape(), other.shape());
        let a = self.broadcast_to(&target);
        let b = other.broadcast_to(&target);
        Tensor {
            data: zip_slices(&a.data, &b.data, &f),
            shape: Shape::new(&target),
        }
    }
}

/// Element-wise `f(a[i], b[i])` into a fresh vector, chunk-parallel when
/// the operands are large.
fn zip_slices(a: &[f32], b: &[f32], f: &(impl Fn(f32, f32) -> f32 + Sync)) -> Vec<f32> {
    use crate::elementwise::{PAR_MAP_CHUNK, PAR_MAP_MIN};
    let n = a.len();
    if n < PAR_MAP_MIN || lttf_parallel::num_threads() <= 1 {
        return a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect();
    }
    let mut out = vec![0.0f32; n];
    lttf_parallel::par_chunks_mut(&mut out, PAR_MAP_CHUNK, |ci, chunk| {
        let (s, _) = lttf_parallel::chunk_bounds(n, PAR_MAP_CHUNK, ci);
        for ((o, &x), &y) in chunk.iter_mut().zip(&a[s..]).zip(&b[s..]) {
            *o = f(x, y);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_shape_rules() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[4]), vec![4]);
        assert_eq!(broadcast_shapes(&[5, 1, 2], &[4, 1]), vec![5, 4, 2]);
    }

    #[test]
    #[should_panic(expected = "not broadcast-compatible")]
    fn incompatible_shapes_panic() {
        broadcast_shapes(&[2, 3], &[2, 4]);
    }

    #[test]
    fn broadcast_row_vector() {
        let row = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = row.broadcast_to(&[2, 3]);
        assert_eq!(b.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn broadcast_column_vector() {
        let col = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = col.broadcast_to(&[2, 3]);
        assert_eq!(b.data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn broadcast_scalar_to_matrix() {
        let s = Tensor::scalar(7.0);
        let b = s.broadcast_to(&[2, 2]);
        assert_eq!(b.data(), &[7.0; 4]);
    }

    #[test]
    fn broadcast_adds_leading_axis() {
        let v = Tensor::from_slice(&[1.0, 2.0]);
        let b = v.broadcast_to(&[3, 2]);
        assert_eq!(b.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn broadcast_middle_axis() {
        // [2,1,2] -> [2,2,2]
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 2]);
        let b = t.broadcast_to(&[2, 2, 2]);
        assert_eq!(b.data(), &[1.0, 2.0, 1.0, 2.0, 3.0, 4.0, 3.0, 4.0]);
    }

    #[test]
    fn zip_same_shape_fast_path() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        let c = a.broadcast_zip(&b, |x, y| x * y);
        assert_eq!(c.data(), &[3.0, 8.0]);
    }
}
