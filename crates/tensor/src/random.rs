//! Seeded random tensor construction.
//!
//! All randomness in the workspace flows through [`Rng`], a thin wrapper
//! over `rand::rngs::StdRng`, so that a single `u64` seed reproduces entire
//! experiments bit-for-bit.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A seeded random number generator for tensor construction.
pub struct Rng {
    inner: StdRng,
}

impl Rng {
    /// Create a generator from a `u64` seed.
    pub fn seed(seed: u64) -> Self {
        Rng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// A standard-normal sample.
    pub fn normal(&mut self) -> f32 {
        // Box–Muller transform; avoids a rand_distr dependency.
        loop {
            let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
            let u2: f32 = self.inner.gen();
            let v = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            if v.is_finite() {
                return v;
            }
        }
    }

    /// A uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// A uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// A Bernoulli sample with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.inner.gen::<f32>() < p
    }

    /// An exponential sample with rate `lambda`.
    pub fn exponential(&mut self, lambda: f32) -> f32 {
        let u: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        -u.ln() / lambda
    }

    /// Fork an independent child generator (used to give each model /
    /// dataset its own stream while staying reproducible from one seed).
    pub fn fork(&mut self) -> Rng {
        Rng::seed(self.inner.gen())
    }

    /// A fresh `u64` for seeding external components.
    pub fn next_seed(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

impl Tensor {
    /// A tensor of i.i.d. standard-normal samples.
    pub fn randn(shape: &[usize], rng: &mut Rng) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.normal()).collect(), shape)
    }

    /// A tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.uniform(lo, hi)).collect(), shape)
    }

    /// A 0/1 Bernoulli mask with keep-probability `p`.
    pub fn bernoulli_mask(shape: &[usize], p: f32, rng: &mut Rng) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n)
                .map(|_| if rng.bernoulli(p) { 1.0 } else { 0.0 })
                .collect(),
            shape,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_reproducibility() {
        let mut r1 = Rng::seed(42);
        let mut r2 = Rng::seed(42);
        let a = Tensor::randn(&[16], &mut r1);
        let b = Tensor::randn(&[16], &mut r2);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Tensor::randn(&[16], &mut Rng::seed(1));
        let b = Tensor::randn(&[16], &mut Rng::seed(2));
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = Rng::seed(7);
        let t = Tensor::randn(&[20_000], &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        assert!((t.std() - 1.0).abs() < 0.05, "std {}", t.std());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = Rng::seed(3);
        let t = Tensor::rand_uniform(&[1000], -2.0, 3.0, &mut rng);
        assert!(t.min() >= -2.0 && t.max() < 3.0);
        // rough mean check
        assert!((t.mean() - 0.5).abs() < 0.2);
    }

    #[test]
    fn bernoulli_mask_rate() {
        let mut rng = Rng::seed(9);
        let m = Tensor::bernoulli_mask(&[10_000], 0.3, &mut rng);
        let rate = m.mean();
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
        assert!(m.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::seed(11);
        let mean: f32 = (0..20_000).map(|_| rng.exponential(2.0)).sum::<f32>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut base = Rng::seed(5);
        let mut c1 = base.fork();
        let mut c2 = base.fork();
        let a = Tensor::randn(&[8], &mut c1);
        let b = Tensor::randn(&[8], &mut c2);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed(13);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
