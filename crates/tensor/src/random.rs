//! Seeded random tensor construction.
//!
//! All randomness in the workspace flows through [`Rng`], a thin wrapper
//! over the in-repo xoshiro256++ generator ([`lttf_testkit::rng`]), so
//! that a single `u64` seed reproduces entire experiments bit-for-bit —
//! on every platform, with zero external dependencies.

use crate::tensor::Tensor;
use lttf_testkit::Xoshiro256PlusPlus;

/// A seeded random number generator for tensor construction.
pub struct Rng {
    inner: Xoshiro256PlusPlus,
}

impl Rng {
    /// Create a generator from a `u64` seed.
    pub fn seed(seed: u64) -> Self {
        Rng {
            inner: Xoshiro256PlusPlus::seed_from_u64(seed),
        }
    }

    /// A standard-normal sample via the Box–Muller transform.
    ///
    /// `u1` is drawn from `(0, 1]` — open at zero — so `ln(u1)` is always
    /// finite and `ln(0) = -∞` is impossible by construction. The
    /// rejection loop is belt-and-braces on top of that guard: with
    /// `u1 ≥ 2⁻²⁴` the magnitude is bounded by `√(−2·ln 2⁻²⁴) ≈ 5.8`, so
    /// in practice the first draw is always accepted.
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1: f32 = self.inner.next_f32_open0(); // (0, 1]: ln is finite
            let u2: f32 = self.inner.next_f32(); // [0, 1)
            let v = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            if v.is_finite() {
                return v;
            }
        }
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform: empty range {lo}..{hi}");
        loop {
            // `next_f32 < 1` guarantees v < hi mathematically; the retry
            // covers the rounding edge where `lo + f*(hi-lo)` lands on hi.
            let v = lo + self.inner.next_f32() * (hi - lo);
            if v < hi {
                return v;
            }
        }
    }

    /// A uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.below(n as u64) as usize
    }

    /// A Bernoulli sample with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.inner.next_f32() < p
    }

    /// An exponential sample with rate `lambda`.
    pub fn exponential(&mut self, lambda: f32) -> f32 {
        let u: f32 = self.inner.next_f32_open0(); // (0, 1]: ln is finite
        -u.ln() / lambda
    }

    /// Fork an independent child generator (used to give each model /
    /// dataset its own stream while staying reproducible from one seed).
    pub fn fork(&mut self) -> Rng {
        Rng::seed(self.inner.next_u64())
    }

    /// A fresh `u64` for seeding external components.
    pub fn next_seed(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        self.inner.permutation(n)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        self.inner.shuffle(xs);
    }
}

impl Tensor {
    /// A tensor of i.i.d. standard-normal samples.
    pub fn randn(shape: &[usize], rng: &mut Rng) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.normal()).collect(), shape)
    }

    /// A tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.uniform(lo, hi)).collect(), shape)
    }

    /// A 0/1 Bernoulli mask with keep-probability `p`.
    pub fn bernoulli_mask(shape: &[usize], p: f32, rng: &mut Rng) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n)
                .map(|_| if rng.bernoulli(p) { 1.0 } else { 0.0 })
                .collect(),
            shape,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_reproducibility() {
        let mut r1 = Rng::seed(42);
        let mut r2 = Rng::seed(42);
        let a = Tensor::randn(&[16], &mut r1);
        let b = Tensor::randn(&[16], &mut r2);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn two_seed_42_streams_are_bit_identical() {
        // The workspace-level determinism contract: every distribution
        // helper, not just randn, reproduces bit-for-bit from one seed.
        let mut r1 = Rng::seed(42);
        let mut r2 = Rng::seed(42);
        let a = Tensor::randn(&[64], &mut r1);
        let b = Tensor::randn(&[64], &mut r2);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let u1 = Tensor::rand_uniform(&[64], -1.0, 1.0, &mut r1);
        let u2 = Tensor::rand_uniform(&[64], -1.0, 1.0, &mut r2);
        for (x, y) in u1.data().iter().zip(u2.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let m1 = Tensor::bernoulli_mask(&[64], 0.4, &mut r1);
        let m2 = Tensor::bernoulli_mask(&[64], 0.4, &mut r2);
        assert_eq!(m1.data(), m2.data());
        assert_eq!(r1.next_seed(), r2.next_seed());
    }

    #[test]
    fn normal_stream_golden_seed1() {
        // Pins the Box–Muller output stream: a change in the PRNG core,
        // the (0,1] guard, or evaluation order shows up here first.
        let mut rng = Rng::seed(1);
        let got: Vec<u32> = (0..4).map(|_| rng.normal().to_bits()).collect();
        let expect: Vec<u32> = [-0.01175305, -0.050988793, -1.548912, -0.16080318f32]
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(got, expect, "normal(seed=1) stream drifted");
    }

    #[test]
    fn different_seeds_differ() {
        let a = Tensor::randn(&[16], &mut Rng::seed(1));
        let b = Tensor::randn(&[16], &mut Rng::seed(2));
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = Rng::seed(7);
        let t = Tensor::randn(&[20_000], &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        assert!((t.std() - 1.0).abs() < 0.05, "std {}", t.std());
    }

    #[test]
    fn normal_is_always_finite() {
        // The u1 ∈ (0,1] guard makes ln(0) unreachable; exhaust a long
        // stream to back that claim with evidence.
        let mut rng = Rng::seed(0xDEAD_BEEF);
        for _ in 0..100_000 {
            assert!(rng.normal().is_finite());
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = Rng::seed(3);
        let t = Tensor::rand_uniform(&[1000], -2.0, 3.0, &mut rng);
        assert!(t.min() >= -2.0 && t.max() < 3.0);
        // rough mean check
        assert!((t.mean() - 0.5).abs() < 0.2);
    }

    #[test]
    fn bernoulli_mask_rate() {
        let mut rng = Rng::seed(9);
        let m = Tensor::bernoulli_mask(&[10_000], 0.3, &mut rng);
        let rate = m.mean();
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
        assert!(m.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::seed(11);
        let mean: f32 = (0..20_000).map(|_| rng.exponential(2.0)).sum::<f32>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut base = Rng::seed(5);
        let mut c1 = base.fork();
        let mut c2 = base.fork();
        let a = Tensor::randn(&[8], &mut c1);
        let b = Tensor::randn(&[8], &mut c2);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed(13);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_matches_shuffle_of_identity() {
        let mut a = Rng::seed(21);
        let mut b = Rng::seed(21);
        let p = a.permutation(32);
        let mut q: Vec<usize> = (0..32).collect();
        b.shuffle(&mut q);
        assert_eq!(p, q);
    }
}
