//! Autoformer (Xu et al. 2021): series decomposition as an inner block
//! plus auto-correlation in place of self-attention. Configured as the
//! paper does: value + timestamp embedding, no positional embedding.

use crate::config::BaselineConfig;
use lttf_autograd::{Graph, Var};
use lttf_nn::{
    mse_loss_to, AttentionKind, DataEmbedding, Fwd, LayerNorm, Linear, MultiHeadAttention,
    ParamSet, SeriesDecomp,
};
use lttf_tensor::{Rng, Tensor};

struct EncLayer {
    attn: MultiHeadAttention,
    ffn: Linear,
    ffn2: Linear,
    norm: LayerNorm,
}

struct DecLayer {
    self_attn: MultiHeadAttention,
    cross_attn: MultiHeadAttention,
    ffn: Linear,
    ffn2: Linear,
    norm: LayerNorm,
    trend_proj1: Linear,
    trend_proj2: Linear,
    trend_proj3: Linear,
}

/// The Autoformer forecaster.
pub struct Autoformer {
    cfg: BaselineConfig,
    decomp: SeriesDecomp,
    enc_embed: DataEmbedding,
    dec_embed: DataEmbedding,
    enc_layers: Vec<EncLayer>,
    dec_layers: Vec<DecLayer>,
    seasonal_proj: Linear,
    trend_out: Linear,
}

impl Autoformer {
    /// Allocate. Uses auto-correlation attention with factor 1 (the
    /// paper's sampling-factor setting for both Informer and Autoformer).
    pub fn new(ps: &mut ParamSet, cfg: &BaselineConfig, rng: &mut Rng) -> Self {
        let d = cfg.d_model;
        let attn = AttentionKind::AutoCorrelation { factor: 1 };
        let enc_layers = (0..cfg.e_layers)
            .map(|i| EncLayer {
                attn: MultiHeadAttention::new(
                    ps,
                    &format!("af.enc{i}.attn"),
                    attn,
                    d,
                    cfg.n_heads,
                    cfg.dropout,
                    rng,
                ),
                ffn: Linear::new(ps, &format!("af.enc{i}.ffn1"), d, 2 * d, rng),
                ffn2: Linear::new(ps, &format!("af.enc{i}.ffn2"), 2 * d, d, rng),
                norm: LayerNorm::new(ps, &format!("af.enc{i}.norm"), d),
            })
            .collect();
        let dec_layers = (0..cfg.d_layers)
            .map(|i| DecLayer {
                self_attn: MultiHeadAttention::new(
                    ps,
                    &format!("af.dec{i}.self"),
                    attn,
                    d,
                    cfg.n_heads,
                    cfg.dropout,
                    rng,
                ),
                cross_attn: MultiHeadAttention::new(
                    ps,
                    &format!("af.dec{i}.cross"),
                    attn,
                    d,
                    cfg.n_heads,
                    cfg.dropout,
                    rng,
                ),
                ffn: Linear::new(ps, &format!("af.dec{i}.ffn1"), d, 2 * d, rng),
                ffn2: Linear::new(ps, &format!("af.dec{i}.ffn2"), 2 * d, d, rng),
                norm: LayerNorm::new(ps, &format!("af.dec{i}.norm"), d),
                trend_proj1: Linear::new(ps, &format!("af.dec{i}.tp1"), d, cfg.c_out, rng),
                trend_proj2: Linear::new(ps, &format!("af.dec{i}.tp2"), d, cfg.c_out, rng),
                trend_proj3: Linear::new(ps, &format!("af.dec{i}.tp3"), d, cfg.c_out, rng),
            })
            .collect();
        Autoformer {
            cfg: cfg.clone(),
            enc_layers,
            dec_layers,
            decomp: SeriesDecomp::new(13.min(cfg.lx / 2).max(1) | 1), // odd window
            enc_embed: DataEmbedding::new(
                ps,
                "af.enc_embed",
                cfg.c_in,
                cfg.mark_dim.max(1),
                d,
                cfg.dropout,
                false, // Autoformer omits the positional embedding
                rng,
            ),
            dec_embed: DataEmbedding::new(
                ps,
                "af.dec_embed",
                cfg.c_in,
                cfg.mark_dim.max(1),
                d,
                cfg.dropout,
                false,
                rng,
            ),
            seasonal_proj: Linear::new(ps, "af.seasonal_proj", d, cfg.c_out, rng),
            trend_out: Linear::new(ps, "af.trend_out", cfg.c_in, cfg.c_out, rng),
        }
    }

    /// Forward pass → `[b, ly, c_out]`.
    ///
    /// Follows Autoformer's decomposition protocol: the decoder input is
    /// the seasonal part of the label window extended with zeros, and the
    /// trend part extended with the input mean; decoder layers refine the
    /// seasonal stream and accumulate projected trends.
    pub fn forward<'g>(
        &self,
        cx: &Fwd<'g, '_>,
        x: Var<'g>,
        x_mark: Var<'g>,
        dec: Var<'g>,
        dec_mark: Var<'g>,
    ) -> Var<'g> {
        let (ly, label) = (self.cfg.ly, self.cfg.label_len);
        // --- decoder initialization from the raw series ---
        let (season_x, trend_x) = self.decomp.forward(x);
        let _ = season_x;
        // label window tails
        let label_season = {
            let (s, _) = self.decomp.forward(dec.narrow(1, 0, label.max(1)));
            s
        };
        let label_trend = {
            let (_, t) = self.decomp.forward(dec.narrow(1, 0, label.max(1)));
            t
        };
        let mean_x = x.mean_axis_keepdim(1); // [b, 1, c_in]
        let b = x.shape()[0];
        let zeros = cx.graph().constant(Tensor::zeros(&[b, ly, self.cfg.c_in]));
        let season_init = Var::concat(&[label_season, zeros], 1);
        let trend_tail = mean_x.broadcast_to(&[b, ly, self.cfg.c_in]);
        let trend_init = Var::concat(&[label_trend, trend_tail], 1);
        let _ = trend_x;

        // --- encoder ---
        let mut e = self.enc_embed.forward(cx, x, x_mark);
        for layer in &self.enc_layers {
            let a = layer.attn.forward_self(cx, e);
            let (s, _) = self.decomp.forward(e.add(a));
            let f = layer.ffn2.forward(cx, layer.ffn.forward(cx, s).gelu());
            let (s2, _) = self.decomp.forward(s.add(f));
            e = layer.norm.forward(cx, s2);
        }

        // --- decoder ---
        let mut d = self.dec_embed.forward(cx, season_init, dec_mark);
        let mut trend = self.trend_out.forward(cx, trend_init); // [b, dec_len, c_out]
        for layer in &self.dec_layers {
            let a = layer.self_attn.forward_self(cx, d);
            let (s1, t1) = self.decomp.forward(d.add(a));
            let c = layer.cross_attn.forward(cx, s1, e, e);
            let (s2, t2) = self.decomp.forward(s1.add(c));
            let f = layer.ffn2.forward(cx, layer.ffn.forward(cx, s2).gelu());
            let (s3, t3) = self.decomp.forward(s2.add(f));
            d = layer.norm.forward(cx, s3);
            trend = trend
                .add(layer.trend_proj1.forward(cx, t1))
                .add(layer.trend_proj2.forward(cx, t2))
                .add(layer.trend_proj3.forward(cx, t3));
        }
        let dec_len = d.shape()[1];
        let seasonal_out = self
            .seasonal_proj
            .forward(cx, d.narrow(1, dec_len - ly, ly));
        let trend_horizon = trend.narrow(1, dec_len - ly, ly);
        seasonal_out.add(trend_horizon)
    }

    /// MSE training loss.
    pub fn loss<'g>(
        &self,
        cx: &Fwd<'g, '_>,
        x: Var<'g>,
        x_mark: Var<'g>,
        dec: Var<'g>,
        dec_mark: Var<'g>,
        target: &Tensor,
    ) -> Var<'g> {
        mse_loss_to(self.forward(cx, x, x_mark, dec, dec_mark), target)
    }

    /// Deterministic prediction.
    pub fn predict(
        &self,
        ps: &ParamSet,
        x: &Tensor,
        x_mark: &Tensor,
        dec: &Tensor,
        dec_mark: &Tensor,
    ) -> Tensor {
        let g = Graph::inference();
        let cx = Fwd::new(&g, ps, false, 0);
        self.forward(
            &cx,
            g.leaf(x.clone()),
            g.leaf(x_mark.clone()),
            g.leaf(dec.clone()),
            g.leaf(dec_mark.clone()),
        )
        .value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_data::MARK_DIM;

    #[test]
    fn forward_shape() {
        let cfg = BaselineConfig::tiny(3, 12, 6);
        let mut ps = ParamSet::new();
        let m = Autoformer::new(&mut ps, &cfg, &mut Rng::seed(0));
        let mut rng = Rng::seed(1);
        let x = Tensor::randn(&[2, 12, 3], &mut rng);
        let xm = Tensor::randn(&[2, 12, MARK_DIM], &mut rng);
        let d = Tensor::randn(&[2, cfg.dec_len(), 3], &mut rng);
        let dm = Tensor::randn(&[2, cfg.dec_len(), MARK_DIM], &mut rng);
        let y = m.predict(&ps, &x, &xm, &d, &dm);
        assert_eq!(y.shape(), &[2, 6, 3]);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn trend_passthrough_on_constant_series() {
        // A constant input decomposes to pure trend; the prediction should
        // sit near the trend initialization (the input mean) rather than
        // exploding, even untrained.
        let cfg = BaselineConfig::tiny(2, 12, 4);
        let mut ps = ParamSet::new();
        let m = Autoformer::new(&mut ps, &cfg, &mut Rng::seed(0));
        let x = Tensor::full(&[1, 12, 2], 1.0);
        let xm = Tensor::zeros(&[1, 12, MARK_DIM]);
        let d = Tensor::full(&[1, cfg.dec_len(), 2], 1.0);
        let dm = Tensor::zeros(&[1, cfg.dec_len(), MARK_DIM]);
        let y = m.predict(&ps, &x, &xm, &d, &dm);
        assert!(
            y.abs().max() < 20.0,
            "untrained output exploded: {}",
            y.abs().max()
        );
    }

    #[test]
    fn training_reduces_loss() {
        use lttf_nn::{Adam, Optimizer};
        let cfg = BaselineConfig::tiny(2, 10, 4);
        let mut ps = ParamSet::new();
        let m = Autoformer::new(&mut ps, &cfg, &mut Rng::seed(0));
        let mut opt = Adam::new(5e-3);
        let mut rng = Rng::seed(2);
        let x = Tensor::randn(&[4, 10, 2], &mut rng);
        let xm = Tensor::randn(&[4, 10, MARK_DIM], &mut rng);
        let dc = Tensor::randn(&[4, cfg.dec_len(), 2], &mut rng);
        let dm = Tensor::randn(&[4, cfg.dec_len(), MARK_DIM], &mut rng);
        let y = Tensor::randn(&[4, 4, 2], &mut rng).mul_scalar(0.3);
        let mut first = None;
        let mut last = 0.0;
        for step in 0..30 {
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, true, step);
            let loss = m.loss(
                &cx,
                g.leaf(x.clone()),
                g.leaf(xm.clone()),
                g.leaf(dc.clone()),
                g.leaf(dm.clone()),
                &y,
            );
            last = loss.value().item();
            first.get_or_insert(last);
            let grads = g.backward(loss);
            let collected = cx.collect_grads(&grads);
            ps.zero_grad();
            ps.apply_grads(collected);
            opt.step(&mut ps);
        }
        assert!(
            last < first.unwrap() * 0.9,
            "no progress: {first:?} → {last}"
        );
    }
}
