//! The generic encoder-decoder Transformer forecaster that instantiates
//! Informer, Longformer, LogTrans, and Reformer — same embedding, same
//! skeleton, different attention (exactly how the paper configures its
//! Transformer baselines).

use crate::config::BaselineConfig;
use lttf_autograd::{Graph, Var};
use lttf_nn::{
    kaiming_uniform, mse_loss_to, AttentionKind, DataEmbedding, Fwd, LayerNorm, Linear,
    MultiHeadAttention, ParamId, ParamSet,
};
use lttf_tensor::{Rng, Tensor};

/// Which published model this instance reproduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransformerFlavor {
    /// Informer (Zhou et al. 2021): ProbSparse attention + self-attention
    /// distilling convolutions between encoder layers.
    Informer,
    /// Longformer (Beltagy et al. 2020): sliding-window attention combined
    /// with task-motivated global tokens.
    Longformer,
    /// LogTrans (Li et al. 2019): log-sparse attention.
    LogTrans,
    /// Reformer (Kitaev et al. 2020): LSH attention.
    Reformer,
    /// Vanilla Transformer (full attention) — used by the efficiency
    /// comparison.
    Vanilla,
}

impl TransformerFlavor {
    /// The self-attention mechanism this flavor uses.
    pub fn attention(&self) -> AttentionKind {
        match self {
            TransformerFlavor::Informer => AttentionKind::ProbSparse { factor: 1 },
            TransformerFlavor::Longformer => {
                AttentionKind::SlidingWindowGlobal { w: 8, n_global: 4 }
            }
            TransformerFlavor::LogTrans => AttentionKind::LogSparse,
            TransformerFlavor::Reformer => AttentionKind::Lsh { n_buckets: 4 },
            TransformerFlavor::Vanilla => AttentionKind::Full,
        }
    }

    /// Informer adds distilling convolutions between encoder layers.
    fn distil(&self) -> bool {
        matches!(self, TransformerFlavor::Informer)
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TransformerFlavor::Informer => "Informer",
            TransformerFlavor::Longformer => "Longformer",
            TransformerFlavor::LogTrans => "LogTrans",
            TransformerFlavor::Reformer => "Reformer",
            TransformerFlavor::Vanilla => "Transformer",
        }
    }
}

/// Position-wise feed-forward block with GELU.
struct FeedForward {
    fc1: Linear,
    fc2: Linear,
}

impl FeedForward {
    fn new(ps: &mut ParamSet, name: &str, d: usize, rng: &mut Rng) -> Self {
        FeedForward {
            fc1: Linear::new(ps, &format!("{name}.fc1"), d, 2 * d, rng),
            fc2: Linear::new(ps, &format!("{name}.fc2"), 2 * d, d, rng),
        }
    }

    fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> Var<'g> {
        self.fc2.forward(cx, self.fc1.forward(cx, x).gelu())
    }
}

struct EncLayer {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    n1: LayerNorm,
    n2: LayerNorm,
    distil_conv: Option<ParamId>,
}

struct DecLayer {
    self_attn: MultiHeadAttention,
    cross_attn: MultiHeadAttention,
    ffn: FeedForward,
    n1: LayerNorm,
    n2: LayerNorm,
    n3: LayerNorm,
}

/// The generic Transformer forecaster.
pub struct TransformerForecaster {
    flavor: TransformerFlavor,
    cfg: BaselineConfig,
    enc_embed: DataEmbedding,
    dec_embed: DataEmbedding,
    enc_layers: Vec<EncLayer>,
    dec_layers: Vec<DecLayer>,
    proj: Linear,
}

impl TransformerForecaster {
    /// Allocate a forecaster of the given flavor.
    pub fn new(
        ps: &mut ParamSet,
        flavor: TransformerFlavor,
        cfg: &BaselineConfig,
        rng: &mut Rng,
    ) -> Self {
        let d = cfg.d_model;
        let attn = flavor.attention();
        let enc_embed = DataEmbedding::new(
            ps,
            "enc_embed",
            cfg.c_in,
            cfg.mark_dim.max(1),
            d,
            cfg.dropout,
            true,
            rng,
        );
        let dec_embed = DataEmbedding::new(
            ps,
            "dec_embed",
            cfg.c_in,
            cfg.mark_dim.max(1),
            d,
            cfg.dropout,
            true,
            rng,
        );
        let enc_layers = (0..cfg.e_layers)
            .map(|i| EncLayer {
                attn: MultiHeadAttention::new(
                    ps,
                    &format!("enc.l{i}.attn"),
                    attn,
                    d,
                    cfg.n_heads,
                    cfg.dropout,
                    rng,
                ),
                ffn: FeedForward::new(ps, &format!("enc.l{i}.ffn"), d, rng),
                n1: LayerNorm::new(ps, &format!("enc.l{i}.n1"), d),
                n2: LayerNorm::new(ps, &format!("enc.l{i}.n2"), d),
                distil_conv: (flavor.distil() && i + 1 < cfg.e_layers).then(|| {
                    ps.add(
                        format!("enc.l{i}.distil"),
                        kaiming_uniform(&[d, d, 3], d * 3, rng),
                    )
                }),
            })
            .collect();
        let dec_layers = (0..cfg.d_layers)
            .map(|i| DecLayer {
                self_attn: MultiHeadAttention::new(
                    ps,
                    &format!("dec.l{i}.self"),
                    // decoder self-attention is dense in all published
                    // configs at these lengths
                    AttentionKind::Full,
                    d,
                    cfg.n_heads,
                    cfg.dropout,
                    rng,
                ),
                cross_attn: MultiHeadAttention::new(
                    ps,
                    &format!("dec.l{i}.cross"),
                    AttentionKind::Full,
                    d,
                    cfg.n_heads,
                    cfg.dropout,
                    rng,
                ),
                ffn: FeedForward::new(ps, &format!("dec.l{i}.ffn"), d, rng),
                n1: LayerNorm::new(ps, &format!("dec.l{i}.n1"), d),
                n2: LayerNorm::new(ps, &format!("dec.l{i}.n2"), d),
                n3: LayerNorm::new(ps, &format!("dec.l{i}.n3"), d),
            })
            .collect();
        TransformerForecaster {
            flavor,
            cfg: cfg.clone(),
            enc_embed,
            dec_embed,
            enc_layers,
            dec_layers,
            proj: Linear::new(ps, "proj", d, cfg.c_out, rng),
        }
    }

    /// The reproduced model.
    pub fn flavor(&self) -> TransformerFlavor {
        self.flavor
    }

    /// Forward pass → `[b, ly, c_out]`.
    pub fn forward<'g>(
        &self,
        cx: &Fwd<'g, '_>,
        x: Var<'g>,
        x_mark: Var<'g>,
        dec: Var<'g>,
        dec_mark: Var<'g>,
    ) -> Var<'g> {
        let mut e = self.enc_embed.forward(cx, x, x_mark);
        for layer in &self.enc_layers {
            let a = layer.attn.forward_self(cx, e);
            e = layer.n1.forward(cx, e.add(a));
            let f = layer.ffn.forward(cx, e);
            e = layer.n2.forward(cx, e.add(f));
            if let Some(w) = layer.distil_conv {
                // Informer's distilling: conv + ELU + stride-2 max-pool.
                let wv = cx.param(w);
                e = e
                    .swap_axes(1, 2)
                    .conv1d(wv, 1, 1)
                    .elu()
                    .swap_axes(1, 2)
                    .select(1, &(0..e.shape()[1]).step_by(2).collect::<Vec<_>>());
            }
        }
        let mut d = self.dec_embed.forward(cx, dec, dec_mark);
        for layer in &self.dec_layers {
            let a = layer.self_attn.forward_self(cx, d);
            d = layer.n1.forward(cx, d.add(a));
            let c = layer.cross_attn.forward(cx, d, e, e);
            d = layer.n2.forward(cx, d.add(c));
            let f = layer.ffn.forward(cx, d);
            d = layer.n3.forward(cx, d.add(f));
        }
        let dec_len = d.shape()[1];
        let horizon = d.narrow(1, dec_len - self.cfg.ly, self.cfg.ly);
        self.proj.forward(cx, horizon)
    }

    /// MSE training loss against a scaled target `[b, ly, c_out]`.
    pub fn loss<'g>(
        &self,
        cx: &Fwd<'g, '_>,
        x: Var<'g>,
        x_mark: Var<'g>,
        dec: Var<'g>,
        dec_mark: Var<'g>,
        target: &Tensor,
    ) -> Var<'g> {
        mse_loss_to(self.forward(cx, x, x_mark, dec, dec_mark), target)
    }

    /// Deterministic prediction.
    pub fn predict(
        &self,
        ps: &ParamSet,
        x: &Tensor,
        x_mark: &Tensor,
        dec: &Tensor,
        dec_mark: &Tensor,
    ) -> Tensor {
        let g = Graph::inference();
        let cx = Fwd::new(&g, ps, false, 0);
        self.forward(
            &cx,
            g.leaf(x.clone()),
            g.leaf(x_mark.clone()),
            g.leaf(dec.clone()),
            g.leaf(dec_mark.clone()),
        )
        .value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_data::MARK_DIM;

    fn inputs(cfg: &BaselineConfig, b: usize, seed: u64) -> (Tensor, Tensor, Tensor, Tensor) {
        let mut rng = Rng::seed(seed);
        (
            Tensor::randn(&[b, cfg.lx, cfg.c_in], &mut rng),
            Tensor::randn(&[b, cfg.lx, MARK_DIM], &mut rng),
            Tensor::randn(&[b, cfg.dec_len(), cfg.c_in], &mut rng),
            Tensor::randn(&[b, cfg.dec_len(), MARK_DIM], &mut rng),
        )
    }

    #[test]
    fn all_flavors_forward() {
        for flavor in [
            TransformerFlavor::Informer,
            TransformerFlavor::Longformer,
            TransformerFlavor::LogTrans,
            TransformerFlavor::Reformer,
            TransformerFlavor::Vanilla,
        ] {
            let cfg = BaselineConfig::tiny(3, 12, 6);
            let mut ps = ParamSet::new();
            let m = TransformerForecaster::new(&mut ps, flavor, &cfg, &mut Rng::seed(0));
            let (x, xm, d, dm) = inputs(&cfg, 2, 1);
            let y = m.predict(&ps, &x, &xm, &d, &dm);
            assert_eq!(y.shape(), &[2, 6, 3], "{flavor:?}");
            assert!(!y.has_non_finite(), "{flavor:?}");
        }
    }

    #[test]
    fn informer_distils_between_layers() {
        // With 2 encoder layers, Informer's first layer halves the length;
        // the model must still produce the right output shape.
        let mut cfg = BaselineConfig::tiny(2, 16, 4);
        cfg.e_layers = 2;
        let mut ps = ParamSet::new();
        let m = TransformerForecaster::new(
            &mut ps,
            TransformerFlavor::Informer,
            &cfg,
            &mut Rng::seed(0),
        );
        let (x, xm, d, dm) = inputs(&cfg, 1, 2);
        let y = m.predict(&ps, &x, &xm, &d, &dm);
        assert_eq!(y.shape(), &[1, 4, 2]);
    }

    #[test]
    fn training_reduces_loss() {
        use lttf_nn::{Adam, Optimizer};
        let cfg = BaselineConfig::tiny(2, 10, 4);
        let mut ps = ParamSet::new();
        let m = TransformerForecaster::new(
            &mut ps,
            TransformerFlavor::Longformer,
            &cfg,
            &mut Rng::seed(0),
        );
        let mut opt = Adam::new(5e-3);
        let (x, xm, d, dm) = inputs(&cfg, 4, 3);
        let y = Tensor::randn(&[4, 4, 2], &mut Rng::seed(4)).mul_scalar(0.3);
        let mut first = None;
        let mut last = 0.0;
        for step in 0..30 {
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, true, step);
            let loss = m.loss(
                &cx,
                g.leaf(x.clone()),
                g.leaf(xm.clone()),
                g.leaf(d.clone()),
                g.leaf(dm.clone()),
                &y,
            );
            last = loss.value().item();
            first.get_or_insert(last);
            let grads = g.backward(loss);
            let collected = cx.collect_grads(&grads);
            ps.zero_grad();
            ps.apply_grads(collected);
            opt.step(&mut ps);
        }
        assert!(
            last < first.unwrap() * 0.8,
            "no progress: {first:?} → {last}"
        );
    }
}
