//! Classical statistical baselines (paper Section II-A): training-free
//! anchors every deep model should beat — persistence, drift, seasonal
//! naive, and additive Holt–Winters exponential smoothing. They operate
//! directly on the input window, per series, with no learned parameters.

use lttf_tensor::Tensor;

/// Repeat the last observed value across the horizon.
pub struct Persistence;

impl Persistence {
    /// `x: [b, lx, d] → [b, ly, d]`.
    pub fn predict(&self, x: &Tensor, ly: usize) -> Tensor {
        let (b, lx, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        x.narrow(1, lx - 1, 1).broadcast_to(&[b, ly, d])
    }
}

/// Extrapolate the line through the first and last observations
/// (the "drift" method).
pub struct Drift;

impl Drift {
    /// `x: [b, lx, d] → [b, ly, d]`.
    pub fn predict(&self, x: &Tensor, ly: usize) -> Tensor {
        let (b, lx, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert!(lx >= 2, "drift needs at least two observations");
        let mut out = Tensor::zeros(&[b, ly, d]);
        for bi in 0..b {
            for di in 0..d {
                let first = x.at(&[bi, 0, di]);
                let last = x.at(&[bi, lx - 1, di]);
                let slope = (last - first) / (lx - 1) as f32;
                for t in 0..ly {
                    out.set(&[bi, t, di], last + slope * (t + 1) as f32);
                }
            }
        }
        out
    }
}

/// Repeat the last full season.
pub struct SeasonalNaive {
    period: usize,
}

impl SeasonalNaive {
    /// A seasonal-naive forecaster with the given period (e.g. 24 for
    /// daily seasonality on hourly data).
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn new(period: usize) -> Self {
        assert!(period >= 1, "season period must be >= 1");
        SeasonalNaive { period }
    }

    /// `x: [b, lx, d] → [b, ly, d]`; requires `lx >= period`.
    pub fn predict(&self, x: &Tensor, ly: usize) -> Tensor {
        let (b, lx, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert!(
            lx >= self.period,
            "input window {lx} shorter than season {}",
            self.period
        );
        let mut out = Tensor::zeros(&[b, ly, d]);
        for bi in 0..b {
            for di in 0..d {
                for t in 0..ly {
                    let src = lx - self.period + (t % self.period);
                    out.set(&[bi, t, di], x.at(&[bi, src, di]));
                }
            }
        }
        out
    }
}

/// Additive Holt–Winters exponential smoothing: level + trend + seasonal
/// components fitted online over the input window.
pub struct HoltWinters {
    alpha: f32,
    beta: f32,
    gamma: f32,
    period: usize,
}

impl HoltWinters {
    /// Standard smoothing constants. `period` is the season length.
    ///
    /// # Panics
    /// Panics if any constant is outside `[0, 1]` or `period == 0`.
    pub fn new(alpha: f32, beta: f32, gamma: f32, period: usize) -> Self {
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            assert!(
                (0.0..=1.0).contains(&v),
                "{name} must be in [0, 1], got {v}"
            );
        }
        assert!(period >= 1, "season period must be >= 1");
        HoltWinters {
            alpha,
            beta,
            gamma,
            period,
        }
    }

    /// Reasonable defaults for hourly-scale data.
    pub fn default_with_period(period: usize) -> Self {
        Self::new(0.3, 0.05, 0.3, period)
    }

    /// Forecast one series (1-D slice).
    fn forecast_series(&self, xs: &[f32], ly: usize) -> Vec<f32> {
        let p = self.period;
        let n = xs.len();
        assert!(
            n >= 2 * p,
            "Holt–Winters needs at least two seasons ({} < {})",
            n,
            2 * p
        );
        // Initialize level/trend from the first two seasons.
        let s1: f32 = xs[..p].iter().sum::<f32>() / p as f32;
        let s2: f32 = xs[p..2 * p].iter().sum::<f32>() / p as f32;
        let mut level = s1;
        let mut trend = (s2 - s1) / p as f32;
        let mut seasonal: Vec<f32> = (0..p).map(|i| xs[i] - s1).collect();
        for (t, &x) in xs.iter().enumerate() {
            let si = t % p;
            let prev_level = level;
            level = self.alpha * (x - seasonal[si]) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            seasonal[si] = self.gamma * (x - level) + (1.0 - self.gamma) * seasonal[si];
        }
        (0..ly)
            .map(|h| level + trend * (h + 1) as f32 + seasonal[(xs.len() + h) % p])
            .collect()
    }

    /// `x: [b, lx, d] → [b, ly, d]`.
    pub fn predict(&self, x: &Tensor, ly: usize) -> Tensor {
        let (b, lx, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut out = Tensor::zeros(&[b, ly, d]);
        for bi in 0..b {
            for di in 0..d {
                let series: Vec<f32> = (0..lx).map(|t| x.at(&[bi, t, di])).collect();
                let fc = self.forecast_series(&series, ly);
                for (t, v) in fc.into_iter().enumerate() {
                    out.set(&[bi, t, di], v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_tensor::Rng;

    #[test]
    fn persistence_repeats_last() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3, 1]);
        let y = Persistence.predict(&x, 4);
        assert_eq!(y.data(), &[3.0; 4]);
    }

    #[test]
    fn drift_extends_line() {
        // 0, 1, 2, 3 → slope 1 → 4, 5
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[1, 4, 1]);
        let y = Drift.predict(&x, 2);
        assert_eq!(y.data(), &[4.0, 5.0]);
    }

    #[test]
    fn seasonal_naive_repeats_season() {
        // period 3: last season is [4, 5, 6]
        let x = Tensor::from_vec((1..=6).map(|v| v as f32).collect(), &[1, 6, 1]);
        let y = SeasonalNaive::new(3).predict(&x, 5);
        assert_eq!(y.data(), &[4.0, 5.0, 6.0, 4.0, 5.0]);
    }

    #[test]
    fn holt_winters_nails_pure_seasonal_signal() {
        // period-4 repeating pattern with no trend: forecast ≈ the pattern.
        let pattern = [1.0f32, 5.0, 2.0, -3.0];
        let xs: Vec<f32> = (0..32).map(|t| pattern[t % 4]).collect();
        let x = Tensor::from_vec(xs, &[1, 32, 1]);
        let hw = HoltWinters::default_with_period(4);
        let y = hw.predict(&x, 8);
        for t in 0..8 {
            let expect = pattern[(32 + t) % 4];
            assert!(
                (y.at(&[0, t, 0]) - expect).abs() < 0.5,
                "t={t}: {} vs {expect}",
                y.at(&[0, t, 0])
            );
        }
    }

    #[test]
    fn holt_winters_follows_trend() {
        // pure ramp: forecast keeps climbing
        let xs: Vec<f32> = (0..40).map(|t| t as f32).collect();
        let x = Tensor::from_vec(xs, &[1, 40, 1]);
        let hw = HoltWinters::new(0.5, 0.3, 0.1, 4);
        let y = hw.predict(&x, 8);
        // the horizon climbs overall (small seasonal residue may wiggle
        // individual steps)
        assert!(
            y.at(&[0, 7, 0]) > y.at(&[0, 0, 0]) + 3.0,
            "trend lost: {} → {}",
            y.at(&[0, 0, 0]),
            y.at(&[0, 7, 0])
        );
        assert!(
            y.at(&[0, 0, 0]) > 38.0,
            "lost the level: {}",
            y.at(&[0, 0, 0])
        );
    }

    #[test]
    fn holt_winters_beats_persistence_on_seasonal_data() {
        // On strongly seasonal data with drift, HW should beat persistence.
        let mut rng = Rng::seed(5);
        let xs: Vec<f32> = (0..96)
            .map(|t| {
                (2.0 * std::f32::consts::PI * t as f32 / 12.0).sin() * 3.0
                    + 0.02 * t as f32
                    + 0.05 * rng.normal()
            })
            .collect();
        let truth: Vec<f32> = (96..120)
            .map(|t| (2.0 * std::f32::consts::PI * t as f32 / 12.0).sin() * 3.0 + 0.02 * t as f32)
            .collect();
        let x = Tensor::from_vec(xs, &[1, 96, 1]);
        let t = Tensor::from_vec(truth, &[1, 24, 1]);
        let hw_err = HoltWinters::default_with_period(12)
            .predict(&x, 24)
            .sub(&t)
            .square()
            .mean();
        let pers_err = Persistence.predict(&x, 24).sub(&t).square().mean();
        assert!(
            hw_err < pers_err / 2.0,
            "HW {hw_err} vs persistence {pers_err}"
        );
    }

    #[test]
    #[should_panic(expected = "two seasons")]
    fn holt_winters_rejects_short_window() {
        let x = Tensor::zeros(&[1, 5, 1]);
        HoltWinters::default_with_period(4).predict(&x, 2);
    }
}
