//! LSTNet (Lai et al. 2018): convolution for short-term local patterns,
//! a recurrent layer for longer dependencies, and a direct output head.
//! As the paper specifies, the highway (autoregressive) and recurrent-skip
//! components are omitted.

use crate::config::BaselineConfig;
use lttf_autograd::{Graph, Var};
use lttf_nn::{kaiming_uniform, mse_loss_to, Fwd, Gru, Linear, ParamId, ParamSet};
use lttf_tensor::{Rng, Tensor};

/// CNN + GRU forecaster.
pub struct LstNet {
    cfg: BaselineConfig,
    conv: ParamId,
    rnn: Gru,
    head: Linear,
    conv_channels: usize,
}

impl LstNet {
    /// Allocate. The convolution uses kernel 6 over time (LSTNet's
    /// default) across all input variables.
    pub fn new(ps: &mut ParamSet, cfg: &BaselineConfig, rng: &mut Rng) -> Self {
        let conv_channels = cfg.hidden;
        let k = 6.min(cfg.lx);
        LstNet {
            cfg: cfg.clone(),
            conv: ps.add(
                "lstnet.conv",
                kaiming_uniform(&[conv_channels, cfg.c_in, k], cfg.c_in * k, rng),
            ),
            rnn: Gru::new(
                ps,
                "lstnet.gru",
                conv_channels,
                cfg.hidden,
                1,
                cfg.dropout,
                rng,
            ),
            head: Linear::new(ps, "lstnet.head", cfg.hidden, cfg.ly * cfg.c_out, rng),
            conv_channels,
        }
    }

    /// Forward `x: [b, lx, c_in]` → `[b, ly, c_out]`.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> Var<'g> {
        let b = x.shape()[0];
        let w = cx.param(self.conv);
        let feats = x.swap_axes(1, 2).conv1d(w, 0, 1).relu().swap_axes(1, 2); // [b, lx-k+1, conv_channels]
        debug_assert_eq!(feats.shape()[2], self.conv_channels);
        let out = self.rnn.forward(cx, feats);
        let h = *out.last_hidden.last().expect("layer");
        self.head
            .forward(cx, h)
            .reshape(&[b, self.cfg.ly, self.cfg.c_out])
    }

    /// MSE training loss.
    pub fn loss<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>, target: &Tensor) -> Var<'g> {
        mse_loss_to(self.forward(cx, x), target)
    }

    /// Deterministic prediction.
    pub fn predict(&self, ps: &ParamSet, x: &Tensor) -> Tensor {
        let g = Graph::inference();
        let cx = Fwd::new(&g, ps, false, 0);
        self.forward(&cx, g.leaf(x.clone())).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let cfg = BaselineConfig::tiny(3, 16, 5);
        let mut ps = ParamSet::new();
        let m = LstNet::new(&mut ps, &cfg, &mut Rng::seed(0));
        let x = Tensor::randn(&[2, 16, 3], &mut Rng::seed(1));
        assert_eq!(m.predict(&ps, &x).shape(), &[2, 5, 3]);
    }

    #[test]
    fn short_inputs_still_work() {
        // kernel is clamped to lx
        let cfg = BaselineConfig::tiny(2, 4, 2);
        let mut ps = ParamSet::new();
        let m = LstNet::new(&mut ps, &cfg, &mut Rng::seed(0));
        let x = Tensor::randn(&[1, 4, 2], &mut Rng::seed(1));
        assert_eq!(m.predict(&ps, &x).shape(), &[1, 2, 2]);
    }

    #[test]
    fn training_reduces_loss() {
        use lttf_nn::{Adam, Optimizer};
        let cfg = BaselineConfig::tiny(2, 12, 3);
        let mut ps = ParamSet::new();
        let m = LstNet::new(&mut ps, &cfg, &mut Rng::seed(0));
        let mut opt = Adam::new(0.01);
        let x = Tensor::randn(&[4, 12, 2], &mut Rng::seed(2));
        let y = x.narrow(1, 9, 3); // "predict" a copy task
        let mut first = None;
        let mut last = 0.0;
        for step in 0..60 {
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, true, step);
            let loss = m.loss(&cx, g.leaf(x.clone()), &y);
            last = loss.value().item();
            first.get_or_insert(last);
            let grads = g.backward(loss);
            let collected = cx.collect_grads(&grads);
            ps.zero_grad();
            ps.apply_grads(collected);
            opt.step(&mut ps);
        }
        assert!(last < first.unwrap() * 0.5, "{first:?} → {last}");
    }
}
