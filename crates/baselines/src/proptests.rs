//! Property-based tests: every baseline honors the forward contract
//! (finite `[b, ly, c_out]` output) across randomized configurations.

use crate::{
    Autoformer, BaselineConfig, DeepAr, GruForecaster, LstNet, NBeats, TransformerFlavor,
    TransformerForecaster, Ts2Vec,
};
use lttf_nn::ParamSet;
use lttf_tensor::{Rng, Tensor};
use lttf_testkit::{prop_assert, prop_assert_eq, properties};

fn cfg_for(c_in: usize, lx: usize, ly: usize) -> BaselineConfig {
    let mut c = BaselineConfig::tiny(c_in, lx, ly);
    c.label_len = lx / 2;
    c
}

fn inputs(cfg: &BaselineConfig, seed: u64) -> (Tensor, Tensor, Tensor, Tensor) {
    let mut rng = Rng::seed(seed);
    (
        Tensor::randn(&[2, cfg.lx, cfg.c_in], &mut rng),
        Tensor::randn(&[2, cfg.lx, lttf_data::MARK_DIM], &mut rng),
        Tensor::randn(&[2, cfg.dec_len(), cfg.c_in], &mut rng),
        Tensor::randn(&[2, cfg.dec_len(), lttf_data::MARK_DIM], &mut rng),
    )
}

properties! {
    cases = 8;

    fn transformer_flavors_forward_contract(
        c_in in 1usize..4,
        lx in 8usize..20,
        ly in 2usize..8,
        seed in 0u64..50,
        flavor_idx in 0usize..5,
    ) {
        let flavor = [
            TransformerFlavor::Informer,
            TransformerFlavor::Longformer,
            TransformerFlavor::LogTrans,
            TransformerFlavor::Reformer,
            TransformerFlavor::Vanilla,
        ][flavor_idx];
        let cfg = cfg_for(c_in, lx, ly);
        let mut ps = ParamSet::new();
        let m = TransformerForecaster::new(&mut ps, flavor, &cfg, &mut Rng::seed(seed));
        let (x, xm, d, dm) = inputs(&cfg, seed);
        let y = m.predict(&ps, &x, &xm, &d, &dm);
        prop_assert_eq!(y.shape(), &[2, ly, c_in]);
        prop_assert!(!y.has_non_finite(), "{:?}", flavor);
    }

    fn autoformer_forward_contract(
        c_in in 1usize..4,
        lx in 8usize..20,
        ly in 2usize..8,
        seed in 0u64..50,
    ) {
        let cfg = cfg_for(c_in, lx, ly);
        let mut ps = ParamSet::new();
        let m = Autoformer::new(&mut ps, &cfg, &mut Rng::seed(seed));
        let (x, xm, d, dm) = inputs(&cfg, seed);
        let y = m.predict(&ps, &x, &xm, &d, &dm);
        prop_assert_eq!(y.shape(), &[2, ly, c_in]);
        prop_assert!(!y.has_non_finite());
    }

    fn simple_models_forward_contract(
        c_in in 1usize..4,
        lx in 8usize..20,
        ly in 2usize..8,
        seed in 0u64..50,
    ) {
        let cfg = cfg_for(c_in, lx, ly);
        let (x, _, _, _) = inputs(&cfg, seed);
        let mut rng = Rng::seed(seed);

        let mut ps = ParamSet::new();
        let gru = GruForecaster::new(&mut ps, &cfg, &mut rng);
        let y = gru.predict(&ps, &x);
        prop_assert_eq!(y.shape(), &[2, ly, c_in]);

        let mut ps = ParamSet::new();
        let lstnet = LstNet::new(&mut ps, &cfg, &mut rng);
        let y = lstnet.predict(&ps, &x);
        prop_assert_eq!(y.shape(), &[2, ly, c_in]);

        let mut ps = ParamSet::new();
        let nbeats = NBeats::new(&mut ps, &cfg, &mut rng);
        let y = nbeats.predict(&ps, &x);
        prop_assert_eq!(y.shape(), &[2, ly, c_in]);

        let mut ps = ParamSet::new();
        let ts2vec = Ts2Vec::new(&mut ps, &cfg, &mut rng);
        let y = ts2vec.predict(&ps, &x);
        prop_assert_eq!(y.shape(), &[2, ly, c_in]);

        let mut ps = ParamSet::new();
        let deepar = DeepAr::new(&mut ps, &cfg, &mut rng);
        let y = deepar.predict(&ps, &x);
        prop_assert_eq!(y.shape(), &[2, ly, c_in]);
        prop_assert!(!y.has_non_finite());
    }
}
