//! The GRU baseline: a 2-layer GRU encoder with a direct multi-horizon
//! projection head (the paper's one-step prediction strategy).

use crate::config::BaselineConfig;
use lttf_autograd::{Graph, Var};
use lttf_nn::{mse_loss_to, Fwd, Gru, Linear, ParamSet};
use lttf_tensor::{Rng, Tensor};

/// 2-layer GRU → linear head over the last hidden state.
pub struct GruForecaster {
    cfg: BaselineConfig,
    rnn: Gru,
    head: Linear,
}

impl GruForecaster {
    /// Allocate (paper: 2-layer GRU; hidden from {16, 24, 32, 64}).
    pub fn new(ps: &mut ParamSet, cfg: &BaselineConfig, rng: &mut Rng) -> Self {
        GruForecaster {
            cfg: cfg.clone(),
            rnn: Gru::new(ps, "gru", cfg.c_in, cfg.hidden, 2, cfg.dropout, rng),
            head: Linear::new(ps, "gru.head", cfg.hidden, cfg.ly * cfg.c_out, rng),
        }
    }

    /// Forward `x: [b, lx, c_in]` → `[b, ly, c_out]`. Marks and decoder
    /// inputs are accepted for interface uniformity but unused.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> Var<'g> {
        let b = x.shape()[0];
        let out = self.rnn.forward(cx, x);
        let h = *out.last_hidden.last().expect("layer");
        self.head
            .forward(cx, h)
            .reshape(&[b, self.cfg.ly, self.cfg.c_out])
    }

    /// MSE training loss.
    pub fn loss<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>, target: &Tensor) -> Var<'g> {
        mse_loss_to(self.forward(cx, x), target)
    }

    /// Deterministic prediction.
    pub fn predict(&self, ps: &ParamSet, x: &Tensor) -> Tensor {
        let g = Graph::inference();
        let cx = Fwd::new(&g, ps, false, 0);
        self.forward(&cx, g.leaf(x.clone())).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let cfg = BaselineConfig::tiny(3, 12, 6);
        let mut ps = ParamSet::new();
        let m = GruForecaster::new(&mut ps, &cfg, &mut Rng::seed(0));
        let x = Tensor::randn(&[2, 12, 3], &mut Rng::seed(1));
        let y = m.predict(&ps, &x);
        assert_eq!(y.shape(), &[2, 6, 3]);
    }

    #[test]
    fn learns_to_repeat_last_value() {
        use lttf_nn::{Adam, Optimizer};
        // Constant-series task: predict the constant forward.
        let cfg = BaselineConfig::tiny(1, 8, 3);
        let mut ps = ParamSet::new();
        let m = GruForecaster::new(&mut ps, &cfg, &mut Rng::seed(0));
        let mut opt = Adam::new(0.01);
        let mut last = f32::MAX;
        for step in 0..120 {
            let mut rng = Rng::seed(10 + step % 8);
            let level = rng.uniform(-1.0, 1.0);
            let x = Tensor::full(&[4, 8, 1], level);
            let y = Tensor::full(&[4, 3, 1], level);
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, true, step);
            let loss = m.loss(&cx, g.leaf(x), &y);
            last = loss.value().item();
            let grads = g.backward(loss);
            let collected = cx.collect_grads(&grads);
            ps.zero_grad();
            ps.apply_grads(collected);
            opt.step(&mut ps);
        }
        assert!(last < 0.05, "GRU failed constancy task: {last}");
    }
}
