//! # lttf-baselines
//!
//! The nine baselines the paper compares Conformer against
//! (Section V-A2):
//!
//! * **Transformer family** — [`TransformerForecaster`] instantiates
//!   Informer (ProbSparse attention + distilling), Longformer
//!   (sliding-window attention), LogTrans (log-sparse attention), and
//!   Reformer (LSH attention) from one architecture, exactly mirroring
//!   the paper's setup ("all Transformer-based baselines use the same
//!   embedding method applied to the Informer"). [`Autoformer`] has its
//!   own decomposition architecture.
//! * **RNN family** — [`GruForecaster`] (2-layer GRU) and [`LstNet`]
//!   (CNN + GRU, highway/skip omitted as the paper specifies).
//! * **Others** — [`NBeats`] (doubly residual fully connected stacks) and
//!   [`Ts2Vec`] (convolutional representation encoder with a forecasting
//!   head; used in the univariate comparison, Table IV).
//!
//! All models share one calling convention (`x`, `x_mark`, `dec`,
//! `dec_mark` → `[b, ly, c_out]` in scaled space) so the experiment
//! runner treats them uniformly.
//!
//! Beyond the paper's comparison set, two extension groups are provided:
//! training-free classical anchors ([`Persistence`], [`Drift`],
//! [`SeasonalNaive`], [`HoltWinters`] — the statistical methods of
//! Section II-A) and [`DeepAr`], the classic probabilistic deep
//! forecaster cited in the paper's related work.

#![warn(missing_docs)]

mod autoformer;
mod classical;
mod config;
mod deepar;
mod gru;
mod lstnet;
mod nbeats;
mod transformer;
mod ts2vec;

pub use autoformer::Autoformer;
pub use classical::{Drift, HoltWinters, Persistence, SeasonalNaive};
pub use config::BaselineConfig;
pub use deepar::DeepAr;
pub use gru::GruForecaster;
pub use lstnet::LstNet;
pub use nbeats::NBeats;
pub use transformer::{TransformerFlavor, TransformerForecaster};
pub use ts2vec::Ts2Vec;

#[cfg(test)]
mod proptests;
