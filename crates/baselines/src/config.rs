//! Shared baseline hyper-parameters.

/// Hyper-parameters shared by every baseline model.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Input variables.
    pub c_in: usize,
    /// Output variables.
    pub c_out: usize,
    /// Input window length.
    pub lx: usize,
    /// Prediction length.
    pub ly: usize,
    /// Decoder warm-start length (transformer decoders).
    pub label_len: usize,
    /// Model width (attention dimensionality).
    pub d_model: usize,
    /// Attention heads (paper: 8; scaled down with `d_model`).
    pub n_heads: usize,
    /// Encoder depth.
    pub e_layers: usize,
    /// Decoder depth.
    pub d_layers: usize,
    /// RNN hidden size (GRU/LSTNet; paper tunes in {16, 24, 32, 64}).
    pub hidden: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Calendar time features per step (0 disables mark embeddings).
    pub mark_dim: usize,
}

impl BaselineConfig {
    /// Defaults at a laptop-scale width.
    pub fn new(c_in: usize, lx: usize, ly: usize) -> Self {
        BaselineConfig {
            c_in,
            c_out: c_in,
            lx,
            ly,
            label_len: lx / 2,
            d_model: 32,
            n_heads: 4,
            e_layers: 2,
            d_layers: 1,
            hidden: 32,
            dropout: 0.05,
            mark_dim: lttf_data::MARK_DIM,
        }
    }

    /// A deliberately small configuration for tests.
    pub fn tiny(c_in: usize, lx: usize, ly: usize) -> Self {
        let mut c = Self::new(c_in, lx, ly);
        c.d_model = 8;
        c.n_heads = 2;
        c.e_layers = 1;
        c.hidden = 8;
        c.dropout = 0.0;
        c
    }

    /// Decoder input length.
    pub fn dec_len(&self) -> usize {
        self.label_len + self.ly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = BaselineConfig::new(7, 96, 48);
        assert_eq!(c.c_out, 7);
        assert_eq!(c.dec_len(), 96);
        assert_eq!(c.mark_dim, lttf_data::MARK_DIM);
    }
}
