//! DeepAR-style probabilistic forecaster (Salinas et al. 2020, cited as
//! [9] in the paper's related work): an autoregressive GRU with a
//! Gaussian output head, trained by negative log-likelihood on one-step
//! transitions and rolled forward autoregressively at prediction time.
//!
//! Included as an extension baseline: it is the classic *probabilistic*
//! deep forecaster, the natural non-flow reference point for Conformer's
//! uncertainty quantification.

use crate::config::BaselineConfig;
use lttf_autograd::{Graph, Var};
use lttf_nn::{Fwd, GruCell, Linear, ParamSet};
use lttf_tensor::{Rng, Tensor};

/// Autoregressive GRU with a diagonal-Gaussian emission head.
pub struct DeepAr {
    cfg: BaselineConfig,
    cell: GruCell,
    mu: Linear,
    sigma: Linear,
}

impl DeepAr {
    /// Allocate the cell and the two emission heads.
    pub fn new(ps: &mut ParamSet, cfg: &BaselineConfig, rng: &mut Rng) -> Self {
        DeepAr {
            cfg: cfg.clone(),
            cell: GruCell::new(ps, "deepar.gru", cfg.c_in, cfg.hidden, rng),
            mu: Linear::new(ps, "deepar.mu", cfg.hidden, cfg.c_in, rng),
            sigma: Linear::new(ps, "deepar.sigma", cfg.hidden, cfg.c_in, rng),
        }
    }

    /// Gaussian negative log-likelihood of one-step-ahead transitions over
    /// the input window plus the horizon (teacher forcing):
    /// `−log N(x_{t+1} | μ(h_t), σ(h_t))`, averaged.
    ///
    /// `x: [b, lx, c]`, `y: [b, ly, c]` (scaled space).
    pub fn loss<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>, y: &Tensor) -> Var<'g> {
        let g = cx.graph();
        let (b, lx, c) = {
            let s = x.shape();
            (s[0], s[1], s[2])
        };
        let full = Var::concat(&[x, g.constant(y.clone())], 1);
        let total = lx + y.shape()[1];
        let hs = self.cell.hidden_size();
        let mut h = g.constant(Tensor::zeros(&[b, hs]));
        let mut nll: Option<Var<'g>> = None;
        for t in 0..total - 1 {
            let xt = full.narrow(1, t, 1).reshape(&[b, c]);
            h = self.cell.step(cx, xt, h);
            let target = full.narrow(1, t + 1, 1).reshape(&[b, c]);
            let mu = self.mu.forward(cx, h);
            let sigma = self.sigma.forward(cx, h).softplus().add_scalar(1e-3);
            // NLL = log σ + (x − μ)² / (2σ²)   (dropping the constant)
            let z = target.sub(mu).div(sigma);
            let term = sigma.ln().add(z.square().mul_scalar(0.5)).mean_all();
            nll = Some(match nll {
                Some(acc) => acc.add(term),
                None => term,
            });
        }
        nll.expect("at least one transition")
            .mul_scalar(1.0 / (total - 1) as f32)
    }

    /// Roll the window forward autoregressively; at each horizon step the
    /// mean is fed back (or a sample when `sample_seed` is set). Returns
    /// `[b, ly, c]`.
    pub fn predict_with(&self, ps: &ParamSet, x: &Tensor, sample_seed: Option<u64>) -> Tensor {
        let g = Graph::inference();
        let cx = Fwd::new(&g, ps, false, 0);
        let (b, lx, c) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let hs = self.cell.hidden_size();
        let mut rng = sample_seed.map(Rng::seed);
        let mut h = g.constant(Tensor::zeros(&[b, hs]));
        // warm up over the observed window
        for t in 0..lx {
            let xt = g.constant(x.narrow(1, t, 1).reshape(&[b, c]));
            h = self.cell.step(&cx, xt, h);
        }
        let mut out = Tensor::zeros(&[b, self.cfg.ly, c]);
        let mut last: Option<Tensor> = None;
        for t in 0..self.cfg.ly {
            if let Some(prev) = &last {
                let xt = g.constant(prev.clone());
                h = self.cell.step(&cx, xt, h);
            }
            let mu = self.mu.forward(&cx, h).value();
            let next = match &mut rng {
                Some(r) => {
                    let sigma = self
                        .sigma
                        .forward(&cx, h)
                        .value()
                        .softplus()
                        .add_scalar(1e-3);
                    mu.add(&sigma.mul(&Tensor::randn(&[b, c], r)))
                }
                None => mu,
            };
            for bi in 0..b {
                for di in 0..c {
                    out.set(&[bi, t, di], next.at(&[bi, di]));
                }
            }
            last = Some(next);
        }
        out
    }

    /// Deterministic (mean-path) prediction.
    pub fn predict(&self, ps: &ParamSet, x: &Tensor) -> Tensor {
        self.predict_with(ps, x, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_nn::{Adam, Optimizer};

    #[test]
    fn prediction_shape() {
        let cfg = BaselineConfig::tiny(3, 12, 6);
        let mut ps = ParamSet::new();
        let m = DeepAr::new(&mut ps, &cfg, &mut Rng::seed(0));
        let x = Tensor::randn(&[2, 12, 3], &mut Rng::seed(1));
        let y = m.predict(&ps, &x);
        assert_eq!(y.shape(), &[2, 6, 3]);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn sampling_differs_from_mean_path() {
        let cfg = BaselineConfig::tiny(2, 10, 5);
        let mut ps = ParamSet::new();
        let m = DeepAr::new(&mut ps, &cfg, &mut Rng::seed(0));
        let x = Tensor::randn(&[1, 10, 2], &mut Rng::seed(1));
        let mean = m.predict(&ps, &x);
        let s1 = m.predict_with(&ps, &x, Some(7));
        let s2 = m.predict_with(&ps, &x, Some(8));
        assert!(mean.max_abs_diff(&s1) > 1e-6);
        assert!(s1.max_abs_diff(&s2) > 1e-6);
    }

    #[test]
    fn nll_training_learns_constant_series() {
        let cfg = BaselineConfig::tiny(1, 8, 4);
        let mut ps = ParamSet::new();
        let m = DeepAr::new(&mut ps, &cfg, &mut Rng::seed(0));
        let mut opt = Adam::new(0.01);
        for step in 0..150 {
            let level = if step % 2 == 0 { 0.5 } else { -0.5 };
            let x = Tensor::full(&[4, 8, 1], level);
            let y = Tensor::full(&[4, 4, 1], level);
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, true, step as u64);
            let loss = m.loss(&cx, g.leaf(x), &y);
            let grads = g.backward(loss);
            let collected = cx.collect_grads(&grads);
            ps.zero_grad();
            ps.apply_grads(collected);
            opt.step(&mut ps);
        }
        let x = Tensor::full(&[1, 8, 1], 0.5);
        let pred = m.predict(&ps, &x);
        for t in 0..4 {
            assert!(
                (pred.at(&[0, t, 0]) - 0.5).abs() < 0.2,
                "t={t}: {}",
                pred.at(&[0, t, 0])
            );
        }
    }

    #[test]
    fn nll_is_finite() {
        let cfg = BaselineConfig::tiny(2, 8, 4);
        let mut ps = ParamSet::new();
        let m = DeepAr::new(&mut ps, &cfg, &mut Rng::seed(0));
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, true, 0);
        let x = g.leaf(Tensor::randn(&[2, 8, 2], &mut Rng::seed(1)));
        let y = Tensor::randn(&[2, 4, 2], &mut Rng::seed(2));
        let v = m.loss(&cx, x, &y).value().item();
        assert!(v.is_finite());
    }
}
