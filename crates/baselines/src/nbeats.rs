//! N-BEATS (Oreshkin et al. 2019): a deep stack of fully connected blocks
//! with doubly residual backcast/forecast links, extended to multivariate
//! inputs by operating on the flattened window (the paper implements
//! "N-Beats for multivariate LTTF with suggested settings").

use crate::config::BaselineConfig;
use lttf_autograd::{Graph, Var};
use lttf_nn::{mse_loss_to, Fwd, Linear, ParamSet};
use lttf_tensor::{Rng, Tensor};

struct Block {
    fc1: Linear,
    fc2: Linear,
    fc3: Linear,
    backcast: Linear,
    forecast: Linear,
}

impl Block {
    fn new(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        Block {
            fc1: Linear::new(ps, &format!("{name}.fc1"), in_dim, hidden, rng),
            fc2: Linear::new(ps, &format!("{name}.fc2"), hidden, hidden, rng),
            fc3: Linear::new(ps, &format!("{name}.fc3"), hidden, hidden, rng),
            backcast: Linear::new(ps, &format!("{name}.backcast"), hidden, in_dim, rng),
            forecast: Linear::new(ps, &format!("{name}.forecast"), hidden, out_dim, rng),
        }
    }

    /// Returns `(backcast, forecast)` for a `[b, in_dim]` input.
    fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> (Var<'g>, Var<'g>) {
        let h = self.fc1.forward(cx, x).relu();
        let h = self.fc2.forward(cx, h).relu();
        let h = self.fc3.forward(cx, h).relu();
        (self.backcast.forward(cx, h), self.forecast.forward(cx, h))
    }
}

/// The N-BEATS forecaster (generic-basis blocks).
pub struct NBeats {
    cfg: BaselineConfig,
    blocks: Vec<Block>,
}

impl NBeats {
    /// Allocate with `4` generic blocks (2 stacks × 2 blocks, the usual
    /// compact configuration).
    pub fn new(ps: &mut ParamSet, cfg: &BaselineConfig, rng: &mut Rng) -> Self {
        let in_dim = cfg.lx * cfg.c_in;
        let out_dim = cfg.ly * cfg.c_out;
        let hidden = (cfg.hidden * 4).max(32);
        let blocks = (0..4)
            .map(|i| Block::new(ps, &format!("nbeats.b{i}"), in_dim, hidden, out_dim, rng))
            .collect();
        NBeats {
            cfg: cfg.clone(),
            blocks,
        }
    }

    /// Forward `x: [b, lx, c_in]` → `[b, ly, c_out]` via the doubly
    /// residual scheme: each block subtracts its backcast from the
    /// running residual and adds its forecast to the running total.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> Var<'g> {
        let b = x.shape()[0];
        let mut residual = x.reshape(&[b, self.cfg.lx * self.cfg.c_in]);
        let mut total: Option<Var<'g>> = None;
        for block in &self.blocks {
            let (back, fore) = block.forward(cx, residual);
            residual = residual.sub(back);
            total = Some(match total {
                Some(t) => t.add(fore),
                None => fore,
            });
        }
        total
            .expect("at least one block")
            .reshape(&[b, self.cfg.ly, self.cfg.c_out])
    }

    /// MSE training loss.
    pub fn loss<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>, target: &Tensor) -> Var<'g> {
        mse_loss_to(self.forward(cx, x), target)
    }

    /// Deterministic prediction.
    pub fn predict(&self, ps: &ParamSet, x: &Tensor) -> Tensor {
        let g = Graph::inference();
        let cx = Fwd::new(&g, ps, false, 0);
        self.forward(&cx, g.leaf(x.clone())).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let cfg = BaselineConfig::tiny(3, 12, 6);
        let mut ps = ParamSet::new();
        let m = NBeats::new(&mut ps, &cfg, &mut Rng::seed(0));
        let x = Tensor::randn(&[2, 12, 3], &mut Rng::seed(1));
        assert_eq!(m.predict(&ps, &x).shape(), &[2, 6, 3]);
    }

    #[test]
    fn fits_linear_trend_extrapolation() {
        use lttf_nn::{Adam, Optimizer};
        // Ramps with random slopes: N-BEATS' residual MLPs should learn to
        // extrapolate them.
        let cfg = BaselineConfig::tiny(1, 10, 4);
        let mut ps = ParamSet::new();
        let m = NBeats::new(&mut ps, &cfg, &mut Rng::seed(0));
        let mut opt = Adam::new(2e-3);
        let mut last = f32::MAX;
        for step in 0..300 {
            let mut rng = Rng::seed(step % 16);
            let slope = rng.uniform(-0.1, 0.1);
            let mk = |t0: usize, n: usize| {
                Tensor::from_vec((t0..t0 + n).map(|t| slope * t as f32).collect(), &[1, n, 1])
            };
            let x = mk(0, 10);
            let y = mk(10, 4);
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, true, step);
            let loss = m.loss(&cx, g.leaf(x), &y);
            last = loss.value().item();
            let grads = g.backward(loss);
            let collected = cx.collect_grads(&grads);
            ps.zero_grad();
            ps.apply_grads(collected);
            opt.step(&mut ps);
        }
        assert!(last < 0.05, "N-BEATS failed trend task: {last}");
    }
}
