//! TS2Vec (Yue et al. 2022), adapted for forecasting: a stacked causal
//! convolutional encoder produces per-timestep representations; a linear
//! head regresses the horizon from the final representation (standing in
//! for the original's ridge-regression protocol). A temporal-consistency
//! auxiliary loss — representations of neighbouring timestamps are pulled
//! together — substitutes for the original's hierarchical contrastive
//! objective, which needs large augmented batches to be meaningful.
//! The simplification is recorded in DESIGN.md; TS2Vec appears only in
//! the univariate comparison (Table IV).

use crate::config::BaselineConfig;
use lttf_autograd::{Graph, Var};
use lttf_nn::{kaiming_uniform, mse_loss_to, Fwd, Linear, ParamId, ParamSet};
use lttf_tensor::{Rng, Tensor};

/// Convolutional representation encoder + forecasting head.
pub struct Ts2Vec {
    cfg: BaselineConfig,
    convs: Vec<ParamId>,
    input_proj: Linear,
    head: Linear,
    repr_dim: usize,
    aux_weight: f32,
}

impl Ts2Vec {
    /// Allocate a 3-layer convolutional encoder.
    pub fn new(ps: &mut ParamSet, cfg: &BaselineConfig, rng: &mut Rng) -> Self {
        let repr_dim = cfg.hidden;
        let convs = (0..3)
            .map(|i| {
                ps.add(
                    format!("ts2vec.conv{i}"),
                    kaiming_uniform(&[repr_dim, repr_dim, 3], repr_dim * 3, rng),
                )
            })
            .collect();
        Ts2Vec {
            cfg: cfg.clone(),
            convs,
            input_proj: Linear::new(ps, "ts2vec.input", cfg.c_in, repr_dim, rng),
            head: Linear::new(ps, "ts2vec.head", repr_dim, cfg.ly * cfg.c_out, rng),
            repr_dim,
            aux_weight: 0.1,
        }
    }

    /// Per-timestep representations `[b, lx, repr_dim]`.
    fn encode<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> Var<'g> {
        let mut h = self.input_proj.forward(cx, x);
        for &w in &self.convs {
            let wv = cx.param(w);
            let c = h.swap_axes(1, 2).conv1d(wv, 1, 1).swap_axes(1, 2).gelu();
            h = h.add(c); // residual conv stack
        }
        h
    }

    /// Forward `x: [b, lx, c_in]` → `[b, ly, c_out]`.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> Var<'g> {
        let b = x.shape()[0];
        let reprs = self.encode(cx, x);
        let last = reprs
            .narrow(1, self.cfg.lx - 1, 1)
            .reshape(&[b, self.repr_dim]);
        self.head
            .forward(cx, last)
            .reshape(&[b, self.cfg.ly, self.cfg.c_out])
    }

    /// Forecast MSE plus the temporal-consistency auxiliary term.
    pub fn loss<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>, target: &Tensor) -> Var<'g> {
        let b = x.shape()[0];
        let reprs = self.encode(cx, x);
        let last = reprs
            .narrow(1, self.cfg.lx - 1, 1)
            .reshape(&[b, self.repr_dim]);
        let pred = self
            .head
            .forward(cx, last)
            .reshape(&[b, self.cfg.ly, self.cfg.c_out]);
        let forecast = mse_loss_to(pred, target);
        // temporal consistency: neighbouring representations stay close
        let lx = self.cfg.lx;
        let a = reprs.narrow(1, 0, lx - 1);
        let bb = reprs.narrow(1, 1, lx - 1);
        let consistency = a.sub(bb).square().mean_all();
        forecast.add(consistency.mul_scalar(self.aux_weight))
    }

    /// Deterministic prediction.
    pub fn predict(&self, ps: &ParamSet, x: &Tensor) -> Tensor {
        let g = Graph::inference();
        let cx = Fwd::new(&g, ps, false, 0);
        self.forward(&cx, g.leaf(x.clone())).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_univariate() {
        let cfg = BaselineConfig::tiny(1, 12, 6);
        let mut ps = ParamSet::new();
        let m = Ts2Vec::new(&mut ps, &cfg, &mut Rng::seed(0));
        let x = Tensor::randn(&[2, 12, 1], &mut Rng::seed(1));
        assert_eq!(m.predict(&ps, &x).shape(), &[2, 6, 1]);
    }

    #[test]
    fn aux_loss_penalizes_jitter() {
        let cfg = BaselineConfig::tiny(1, 8, 2);
        let mut ps = ParamSet::new();
        let m = Ts2Vec::new(&mut ps, &cfg, &mut Rng::seed(0));
        let y = Tensor::zeros(&[1, 2, 1]);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, true, 0);
        let x = g.leaf(Tensor::randn(&[1, 8, 1], &mut Rng::seed(1)));
        let loss = m.loss(&cx, x, &y).value().item();
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn training_reduces_loss() {
        use lttf_nn::{Adam, Optimizer};
        let cfg = BaselineConfig::tiny(1, 10, 3);
        let mut ps = ParamSet::new();
        let m = Ts2Vec::new(&mut ps, &cfg, &mut Rng::seed(0));
        let mut opt = Adam::new(5e-3);
        let x = Tensor::randn(&[4, 10, 1], &mut Rng::seed(2));
        let y = Tensor::randn(&[4, 3, 1], &mut Rng::seed(3)).mul_scalar(0.3);
        let mut first = None;
        let mut last = 0.0;
        for step in 0..60 {
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, true, step);
            let loss = m.loss(&cx, g.leaf(x.clone()), &y);
            last = loss.value().item();
            first.get_or_insert(last);
            let grads = g.backward(loss);
            let collected = cx.collect_grads(&grads);
            ps.zero_grad();
            ps.apply_grads(collected);
            opt.step(&mut ps);
        }
        assert!(last < first.unwrap() * 0.8, "{first:?} → {last}");
    }
}
