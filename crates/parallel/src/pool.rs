//! The process-wide worker pool behind `par_chunks_mut`.
//!
//! Workers are spawned lazily (at most one fewer than the largest engaged
//! thread count seen so far) and live for the rest of the process, parked
//! on a condvar between fork-join regions. Each region publishes a
//! heap-allocated [`RunCtx`] holding the task function and claim/completion
//! counters; workers share it by `Arc`, so a worker that wakes late simply
//! finds the claim counter exhausted and goes back to sleep — it can never
//! touch a stale task function, because the function pointer is only
//! dereferenced after a successful claim and the dispatching thread does
//! not return until every claim has completed.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on engaged threads and spawned workers; far above any sane
/// `LTTF_THREADS`, it only bounds damage from a typo like `LTTF_THREADS=1e9`.
const MAX_THREADS: usize = 256;

/// Session-scoped thread-count override (0 = unset). Takes precedence over
/// `LTTF_THREADS`; used by benches and determinism tests to sweep thread
/// counts inside one process without touching the (cached) environment.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread thread-count override (0 = unset). Outranks everything:
    /// a serving replica pinned to a budget of the machine must keep that
    /// budget even while another component sweeps the global override.
    static LOCAL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Set (or clear) the thread-count override. `Some(1)` forces the serial
/// path exactly like `LTTF_THREADS=1`.
pub fn set_threads_override(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0).min(MAX_THREADS), Ordering::Relaxed);
}

/// Set (or clear) a thread-count override for the **calling thread only**.
///
/// Parallel regions dispatched from this thread engage at most `n`
/// threads; other threads are unaffected. This is how a replicated
/// serving tier pins each replica's batcher to a disjoint share of the
/// `LTTF_THREADS` budget: replica `i` calls
/// `set_thread_threads_override(Some(budget / replicas))` once at thread
/// start, and every forward it runs inherits that cap. `Some(1)` forces
/// the fully serial path for this thread.
pub fn set_thread_threads_override(n: Option<usize>) {
    LOCAL_OVERRIDE.with(|c| c.set(n.unwrap_or(0).min(MAX_THREADS)));
}

/// The thread count parallel regions will engage: the calling thread's
/// [`set_thread_threads_override`] if set, else the process-wide
/// [`set_threads_override`], else `LTTF_THREADS` (parsed once per process
/// by `lttf_obs::env`), else [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    let l = LOCAL_OVERRIDE.with(|c| c.get());
    if l != 0 {
        return l;
    }
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    if let Some(n) = lttf_obs::env::threads() {
        return n.min(MAX_THREADS);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Type-erased `&(dyn Fn(usize) + Sync)` with the lifetime transmuted
/// away. Only dereferenced between a successful task claim and the end of
/// the owning `run_tasks` call, which outlives every claim.
#[derive(Clone, Copy)]
struct TaskFn(*const (dyn Fn(usize) + Sync));
unsafe impl Send for TaskFn {}
unsafe impl Sync for TaskFn {}

/// One fork-join region: the task function plus claim/completion state.
struct RunCtx {
    f: TaskFn,
    n_tasks: usize,
    /// Next unclaimed task index; `fetch_add` claims are how work is
    /// distributed (assignment order does not affect results — chunks are
    /// disjoint, so any schedule yields identical bytes).
    next: AtomicUsize,
    completed: AtomicUsize,
    /// First panic payload from a task, re-thrown by the dispatcher.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<()>,
    done_cv: Condvar,
}

struct State {
    /// Bumped once per published region so sleeping workers can tell a
    /// fresh job from one they already saw.
    generation: u64,
    job: Option<Arc<RunCtx>>,
}

struct Pool {
    state: Mutex<State>,
    start: Condvar,
    /// Serializes dispatchers: one fork-join region at a time. Contending
    /// regions (and regions entered from inside a worker) run serially.
    dispatch: Mutex<()>,
    spawned: Mutex<usize>,
}

fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            generation: 0,
            job: None,
        }),
        start: Condvar::new(),
        dispatch: Mutex::new(()),
        spawned: Mutex::new(0),
    })
}

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Claim-and-execute loop shared by workers and the dispatching thread.
fn execute(ctx: &RunCtx) {
    // SAFETY: `f` outlives the region; see `TaskFn`.
    let f = unsafe { &*ctx.f.0 };
    loop {
        let i = ctx.next.fetch_add(1, Ordering::Relaxed);
        if i >= ctx.n_tasks {
            break;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
            let mut slot = ctx.panic.lock().unwrap();
            slot.get_or_insert(payload);
        }
        if ctx.completed.fetch_add(1, Ordering::Release) + 1 == ctx.n_tasks {
            let _g = ctx.done.lock().unwrap();
            ctx.done_cv.notify_all();
        }
    }
}

/// [`execute`], with the participant's time in the claim loop credited to
/// the `pool.busy_ns` gauge (compiled down to a plain `execute` call when
/// telemetry is off). When timeline tracing is on, the claim loop also
/// shows up as a `pool.execute` slice on the participating thread, so a
/// fork-join region renders as one slice per engaged worker.
fn execute_timed(ctx: &RunCtx) {
    if cfg!(feature = "telemetry") {
        let traced = lttf_obs::trace::enabled();
        if traced {
            lttf_obs::trace::begin(pool_execute_idx());
        }
        let t0 = std::time::Instant::now();
        execute(ctx);
        lttf_obs::gauge_ns!("pool.busy_ns", t0.elapsed().as_nanos() as u64);
        if traced {
            lttf_obs::trace::end(pool_execute_idx());
        }
    } else {
        execute(ctx);
    }
}

/// Interned trace-name index for the worker claim-loop slice.
fn pool_execute_idx() -> u32 {
    static IDX: OnceLock<u32> = OnceLock::new();
    *IDX.get_or_init(|| lttf_obs::trace::intern("pool.execute"))
}

fn worker_loop() {
    IS_WORKER.with(|w| w.set(true));
    let pool = global();
    let mut seen = 0u64;
    loop {
        let ctx = {
            let mut st = pool.state.lock().unwrap();
            loop {
                if st.generation != seen {
                    seen = st.generation;
                    if let Some(c) = st.job.clone() {
                        break c;
                    }
                }
                st = pool.start.wait(st).unwrap();
            }
        };
        execute_timed(&ctx);
    }
}

impl Pool {
    /// Spawn detached workers until `want` exist (best effort: a failed
    /// spawn just leaves the pool smaller).
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_THREADS);
        let mut n = self.spawned.lock().unwrap();
        while *n < want {
            let builder = std::thread::Builder::new().name(format!("lttf-par-{}", *n));
            if builder.spawn(worker_loop).is_err() {
                break;
            }
            *n += 1;
        }
    }
}

/// Run `f(0..n_tasks)` to completion using up to `threads` threads
/// (including the calling thread). Falls back to a plain serial loop when
/// parallelism is unavailable or pointless; either way, every task runs
/// exactly once and this function returns only after all have finished.
pub(crate) fn run_tasks(n_tasks: usize, threads: usize, f: &(dyn Fn(usize) + Sync)) {
    if n_tasks == 0 {
        return;
    }
    if threads <= 1 || n_tasks <= 1 {
        // Deliberately serial (one thread or one task) — not a fallback.
        for i in 0..n_tasks {
            f(i);
        }
        return;
    }
    if IS_WORKER.with(|w| w.get()) {
        // Nested region entered from inside a worker: would deadlock on the
        // pool, so it silently serializes. Count it — accidental nesting is
        // a real perf bug that is otherwise invisible.
        lttf_obs::counter!("pool.serial_nested", 1);
        for i in 0..n_tasks {
            f(i);
        }
        return;
    }
    let pool = global();
    let Ok(_dispatch) = pool.dispatch.try_lock() else {
        // Another thread is mid-region; don't queue behind it.
        lttf_obs::counter!("pool.serial_contended", 1);
        for i in 0..n_tasks {
            f(i);
        }
        return;
    };
    pool.ensure_workers(threads.min(n_tasks) - 1);
    // SAFETY: the borrow is erased to 'static but the context is only used
    // while this frame is alive — `run_tasks` blocks until `completed ==
    // n_tasks`, and no new claim can succeed after that.
    let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let ctx = Arc::new(RunCtx {
        f: TaskFn(f_static as *const _),
        n_tasks,
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        panic: Mutex::new(None),
        done: Mutex::new(()),
        done_cv: Condvar::new(),
    });
    let engaged = threads.min(n_tasks);
    lttf_obs::counter!("pool.regions", 1);
    lttf_obs::counter!("pool.tasks", n_tasks);
    let region_start = if cfg!(feature = "telemetry") {
        Some(std::time::Instant::now())
    } else {
        None
    };
    {
        let mut st = pool.state.lock().unwrap();
        st.generation = st.generation.wrapping_add(1);
        st.job = Some(ctx.clone());
    }
    pool.start.notify_all();
    // The dispatcher participates; panics are captured into `ctx` so the
    // frame stays alive until every worker is done with it.
    execute_timed(&ctx);
    {
        let mut g = ctx.done.lock().unwrap();
        while ctx.completed.load(Ordering::Acquire) < ctx.n_tasks {
            g = ctx.done_cv.wait(g).unwrap();
        }
    }
    if let Some(t0) = region_start {
        // Capacity = region wall time × threads the region intended to
        // engage; each participant's claim loop adds to `pool.busy_ns`, so
        // busy/capacity is the pool utilization over all regions.
        let wall = t0.elapsed().as_nanos() as u64;
        lttf_obs::gauge_ns!("pool.capacity_ns", wall.saturating_mul(engaged as u64));
    }
    {
        let mut st = pool.state.lock().unwrap();
        st.job = None;
    }
    let payload = ctx.panic.lock().unwrap().take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}
