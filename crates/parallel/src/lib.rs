//! # lttf-parallel
//!
//! A zero-dependency fork-join runtime for the tensor hot path, built on
//! the same philosophy as `lttf-testkit`: everything offline, everything
//! deterministic, nothing external.
//!
//! ## Model
//!
//! The only parallel primitive is **static chunking over a disjoint output
//! slice**: [`par_chunks_mut`] splits `out` into contiguous chunks of a
//! caller-chosen length and runs a closure on each `(chunk_index, chunk)`
//! pair, possibly on worker threads. Chunk boundaries depend only on
//! `(len, chunk_len)` — never on the thread count — and every chunk is
//! written by exactly one task, so f32 reduction order never crosses a
//! chunk boundary and results are **bit-identical at any thread count**
//! (including 1). Kernels that need several output buffers sliced in
//! lockstep (e.g. the three gradients of an attention backward) use
//! [`par_chunks_mut_zip3`].
//!
//! ## Thread count
//!
//! Workers come from a lazily grown process-wide pool. The engaged thread
//! count is, in order of precedence:
//!
//! 1. [`set_thread_threads_override`] (calling-thread only; lets each
//!    replica of a serving pool pin its forwards to a disjoint share of
//!    the thread budget),
//! 2. [`set_threads_override`] (process-wide; used by benches and
//!    determinism tests),
//! 3. the `LTTF_THREADS` environment variable (read once; `1` forces the
//!    fully serial path, no pool is ever touched),
//! 4. [`std::thread::available_parallelism`].
//!
//! ## Nesting and re-entrancy
//!
//! A parallel region entered from inside a pool worker (or while another
//! thread holds the dispatch lock) degrades to the serial path rather
//! than deadlocking, so kernels can call other kernels freely.
//!
//! ```
//! // Square 1000 numbers in parallel; the result is bit-identical at
//! // any thread count because chunk boundaries ignore the pool size.
//! let input: Vec<f32> = (0..1000).map(|i| i as f32).collect();
//! let mut out = vec![0.0f32; 1000];
//! lttf_parallel::par_chunks_mut(&mut out, 128, |chunk_idx, chunk| {
//!     let base = chunk_idx * 128;
//!     for (i, o) in chunk.iter_mut().enumerate() {
//!         *o = input[base + i] * input[base + i];
//!     }
//! });
//! assert_eq!(out[31], 31.0 * 31.0);
//! ```

#![deny(missing_docs)]

mod pool;

#[cfg(test)]
mod proptests;

pub use pool::{num_threads, set_thread_threads_override, set_threads_override};

/// Work items per task so each task carries at least `grain` work units:
/// `max(1, grain / work_per_item)`.
///
/// The standard way kernels group small independent problems — batches of
/// a batched gemm, `(batch, out_ch)` pairs of a conv — into tasks big
/// enough to amortize the pool's dispatch cost. A pure function of its
/// arguments, so chunk boundaries (and therefore result bytes) never
/// depend on the thread count.
pub fn items_per_task(work_per_item: usize, grain: usize) -> usize {
    (grain / work_per_item.max(1)).max(1)
}

/// Rows per task for row-partitioned kernels: enough rows that a task
/// carries at least `grain` work units (each row costing `row_work`),
/// rounded **up** to a multiple of `quantum` so every task starts on a
/// micro-tile boundary.
///
/// # Panics
/// Panics if `quantum == 0`.
pub fn rows_per_block(row_work: usize, grain: usize, quantum: usize) -> usize {
    assert!(quantum >= 1, "quantum must be >= 1");
    items_per_task(row_work, grain).max(quantum).div_ceil(quantum) * quantum
}

/// Number of chunks `par_chunks_mut` splits a `len`-element slice into.
///
/// Mirrors `slice::chunks_mut`: all chunks have `chunk_len` elements
/// except possibly the last. An empty slice has zero chunks.
///
/// # Panics
/// Panics if `chunk_len == 0`.
pub fn chunk_count(len: usize, chunk_len: usize) -> usize {
    assert!(chunk_len >= 1, "chunk_len must be >= 1");
    len.div_ceil(chunk_len)
}

/// Half-open element range `[start, end)` of chunk `i` of a `len`-element
/// slice split into `chunk_len`-sized chunks.
///
/// # Panics
/// Panics if `chunk_len == 0` or `i >= chunk_count(len, chunk_len)`.
pub fn chunk_bounds(len: usize, chunk_len: usize, i: usize) -> (usize, usize) {
    assert!(i < chunk_count(len, chunk_len), "chunk index {i} out of range");
    let start = i * chunk_len;
    (start, (start + chunk_len).min(len))
}

/// Raw pointer wrapper so disjoint sub-slices can be formed on worker
/// threads. Soundness: every task index maps to a distinct element range,
/// and each index is claimed exactly once per run.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// wrapper — precise closure capture would otherwise capture the bare
    /// `*mut T` field, which is not `Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Run `f(chunk_index, chunk)` over contiguous `chunk_len`-sized chunks of
/// `data` (last chunk may be shorter), using up to [`num_threads`] threads.
///
/// Equivalent to `data.chunks_mut(chunk_len).enumerate().for_each(...)`
/// in every observable way: chunk boundaries are a pure function of
/// `(data.len(), chunk_len)`, each chunk is processed by exactly one task,
/// and no float operation ever crosses a chunk boundary — so the result is
/// bit-identical whether 1, 4, or 64 threads execute it.
///
/// # Panics
/// Panics if `chunk_len == 0`, or propagates a panic from `f`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let n = chunk_count(len, chunk_len);
    match n {
        0 => return,
        1 => {
            f(0, data);
            return;
        }
        _ => {}
    }
    let base = SendPtr(data.as_mut_ptr());
    pool::run_tasks(n, num_threads(), &move |i| {
        let (s, e) = chunk_bounds(len, chunk_len, i);
        // SAFETY: chunk ranges are disjoint and within `data`; each task
        // index is claimed exactly once, and `run_tasks` does not return
        // until every task has finished.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(s), e - s) };
        f(i, chunk);
    });
}

/// Like [`par_chunks_mut`], but slices three output buffers in lockstep:
/// task `i` receives chunk `i` of `a` (chunks of `ca`), `b` (chunks of
/// `cb`), and `c` (chunks of `cc`). All three must yield the same number
/// of chunks.
///
/// Used by kernels that produce several disjoint outputs per work item,
/// e.g. the dQ/dK/dV gradients of an attention backward pass chunked per
/// batch-head.
///
/// # Panics
/// Panics if any chunk length is zero or the chunk counts disagree.
pub fn par_chunks_mut_zip3<T, F>(
    a: &mut [T],
    ca: usize,
    b: &mut [T],
    cb: usize,
    c: &mut [T],
    cc: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T], &mut [T], &mut [T]) + Sync,
{
    let n = chunk_count(a.len(), ca);
    assert_eq!(
        n,
        chunk_count(b.len(), cb),
        "par_chunks_mut_zip3: chunk count mismatch between first and second slice"
    );
    assert_eq!(
        n,
        chunk_count(c.len(), cc),
        "par_chunks_mut_zip3: chunk count mismatch between first and third slice"
    );
    match n {
        0 => return,
        1 => {
            f(0, a, b, c);
            return;
        }
        _ => {}
    }
    let (la, lb, lc) = (a.len(), b.len(), c.len());
    let (pa, pb, pc) = (
        SendPtr(a.as_mut_ptr()),
        SendPtr(b.as_mut_ptr()),
        SendPtr(c.as_mut_ptr()),
    );
    pool::run_tasks(n, num_threads(), &move |i| {
        let (sa, ea) = chunk_bounds(la, ca, i);
        let (sb, eb) = chunk_bounds(lb, cb, i);
        let (sc, ec) = chunk_bounds(lc, cc, i);
        // SAFETY: as in `par_chunks_mut` — disjoint ranges, single claim.
        unsafe {
            f(
                i,
                std::slice::from_raw_parts_mut(pa.get().add(sa), ea - sa),
                std::slice::from_raw_parts_mut(pb.get().add(sb), eb - sb),
                std::slice::from_raw_parts_mut(pc.get().add(sc), ec - sc),
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_math_basics() {
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(1, 4), 1);
        assert_eq!(chunk_count(8, 4), 2);
        assert_eq!(chunk_count(9, 4), 3);
        assert_eq!(chunk_bounds(9, 4, 2), (8, 9));
        assert_eq!(chunk_bounds(8, 4, 1), (4, 8));
    }

    #[test]
    fn par_chunks_mut_matches_serial_fill() {
        set_threads_override(Some(4));
        let mut v = vec![0u64; 1000];
        par_chunks_mut(&mut v, 7, |ci, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (ci * 7 + j) as u64 * 3 + 1;
            }
        });
        set_threads_override(None);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 * 3 + 1);
        }
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        let mut v: Vec<f32> = Vec::new();
        let calls = AtomicUsize::new(0);
        par_chunks_mut(&mut v, 8, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut v = vec![1.0f32; 5];
        // chunk_len > len → one chunk covering everything
        par_chunks_mut(&mut v, 64, |ci, chunk| {
            assert_eq!(ci, 0);
            assert_eq!(chunk.len(), 5);
            chunk[0] = 9.0;
        });
        assert_eq!(v[0], 9.0);
    }

    #[test]
    fn zip3_slices_in_lockstep() {
        set_threads_override(Some(3));
        let mut a = vec![0u32; 12]; // chunks of 4 → 3 chunks
        let mut b = vec![0u32; 6]; // chunks of 2 → 3 chunks
        let mut c = vec![0u32; 3]; // chunks of 1 → 3 chunks
        par_chunks_mut_zip3(&mut a, 4, &mut b, 2, &mut c, 1, |i, ca, cb, cc| {
            ca.fill(i as u32);
            cb.fill(10 + i as u32);
            cc.fill(20 + i as u32);
        });
        set_threads_override(None);
        assert_eq!(a, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        assert_eq!(b, [10, 10, 11, 11, 12, 12]);
        assert_eq!(c, [20, 21, 22]);
    }

    #[test]
    #[should_panic(expected = "chunk count mismatch")]
    fn zip3_rejects_mismatched_counts() {
        let mut a = vec![0u32; 8];
        let mut b = vec![0u32; 8];
        let mut c = vec![0u32; 8];
        par_chunks_mut_zip3(&mut a, 2, &mut b, 4, &mut c, 4, |_, _, _, _| {});
    }

    #[test]
    fn nested_parallel_regions_do_not_deadlock() {
        set_threads_override(Some(4));
        let mut v = vec![0u32; 64];
        par_chunks_mut(&mut v, 8, |ci, chunk| {
            // nested region inside a (potential) worker: must run serially
            par_chunks_mut(chunk, 2, |cj, inner| {
                inner.fill((ci * 8 + cj) as u32);
            });
        });
        set_threads_override(None);
        assert_eq!(v[0], 0);
        assert_eq!(v[63], 8 * 7 + 3);
    }

    #[test]
    fn task_panics_propagate() {
        set_threads_override(Some(2));
        let result = std::panic::catch_unwind(|| {
            let mut v = vec![0u32; 100];
            par_chunks_mut(&mut v, 10, |ci, _| {
                if ci == 7 {
                    panic!("boom in chunk 7");
                }
            });
        });
        set_threads_override(None);
        assert!(result.is_err(), "panic in a task must propagate to the caller");
    }

    #[test]
    fn threads_override_wins_over_default() {
        set_threads_override(Some(3));
        assert_eq!(num_threads(), 3);
        set_threads_override(None);
        assert!(num_threads() >= 1);
    }
}
