//! Property tests of the chunking math and the parallel/serial equivalence
//! guarantee, using the in-repo `lttf-testkit` harness.

use crate::{chunk_bounds, chunk_count, par_chunks_mut, set_threads_override};
use lttf_testkit::prop;
use lttf_testkit::{prop_assert, prop_assert_eq, properties};

properties! {
    cases = 64;

    /// Chunks tile [0, len) exactly: contiguous, disjoint, in order.
    fn chunks_tile_the_range(len in prop::usizes(0..200), chunk_len in prop::usizes(1..40)) {
        let n = chunk_count(len, chunk_len);
        prop_assert_eq!(n, len.div_ceil(chunk_len));
        let mut cursor = 0usize;
        for i in 0..n {
            let (s, e) = chunk_bounds(len, chunk_len, i);
            prop_assert_eq!(s, cursor);
            prop_assert!(e > s, "chunks are never empty");
            prop_assert!(e - s <= chunk_len);
            cursor = e;
        }
        prop_assert_eq!(cursor, len);
    }

    /// Requesting more chunks than elements (chunk_len = 1 on short data,
    /// or chunk_len > len) stays well-formed.
    fn degenerate_chunk_sizes(len in prop::usizes(0..8)) {
        // chunk_len far above len → one chunk (or zero for empty input)
        let n = chunk_count(len, 1000);
        prop_assert_eq!(n, usize::from(len > 0));
        // chunk_len 1 → one chunk per element
        prop_assert_eq!(chunk_count(len, 1), len);
    }

    /// Parallel execution is bit-identical to the serial reference for
    /// arbitrary sizes, chunk lengths, and thread counts — including sizes
    /// below any parallel threshold and empty input.
    fn parallel_matches_serial(
        len in prop::usizes(0..300),
        chunk_len in prop::usizes(1..50),
        threads in prop::usizes(1..6)
    ) {
        let src: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
        let fill = |ci: usize, chunk: &mut [f32], src: &[f32]| {
            let base = ci * chunk_len;
            // a per-chunk running product: order-sensitive on purpose
            let mut acc = 1.0f32;
            for (j, slot) in chunk.iter_mut().enumerate() {
                acc = acc * 0.9 + src[base + j];
                *slot = acc;
            }
        };
        let mut serial = vec![0.0f32; len];
        set_threads_override(Some(1));
        par_chunks_mut(&mut serial, chunk_len, |ci, c| fill(ci, c, &src));
        let mut parallel = vec![0.0f32; len];
        set_threads_override(Some(threads));
        par_chunks_mut(&mut parallel, chunk_len, |ci, c| fill(ci, c, &src));
        set_threads_override(None);
        for i in 0..len {
            prop_assert_eq!(serial[i].to_bits(), parallel[i].to_bits());
        }
    }

    /// Every chunk index is visited exactly once regardless of thread count.
    fn each_chunk_visited_once(
        len in prop::usizes(1..300),
        chunk_len in prop::usizes(1..50),
        threads in prop::usizes(2..6)
    ) {
        let mut visits = vec![0u32; len];
        set_threads_override(Some(threads));
        par_chunks_mut(&mut visits, chunk_len, |_, chunk| {
            for v in chunk.iter_mut() {
                *v += 1;
            }
        });
        set_threads_override(None);
        prop_assert!(visits.iter().all(|&v| v == 1));
    }
}
