//! Recurrent networks: GRU (the paper's choice for all RNN blocks in
//! Conformer) and LSTM (used by the LSTNet baseline).

use crate::init::xavier_uniform;
use crate::param::{Fwd, ParamId, ParamSet};
use lttf_autograd::Var;
use lttf_tensor::{Rng, Tensor};

/// Output of a recurrent layer stack over a sequence.
pub struct RnnOutput<'g> {
    /// Hidden states of the top layer at every step: `[batch, len, hidden]`.
    pub outputs: Var<'g>,
    /// Final hidden state of each layer: `[batch, hidden]`, bottom first.
    pub last_hidden: Vec<Var<'g>>,
}

/// A single GRU cell (PyTorch gate layout: reset, update, new).
pub struct GruCell {
    w_ih: ParamId,
    w_hh: ParamId,
    b_ih: ParamId,
    b_hh: ParamId,
    input_size: usize,
    hidden_size: usize,
}

impl GruCell {
    /// Allocate a GRU cell.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        input_size: usize,
        hidden_size: usize,
        rng: &mut Rng,
    ) -> Self {
        let h3 = 3 * hidden_size;
        GruCell {
            w_ih: ps.add(
                format!("{name}.w_ih"),
                xavier_uniform(&[input_size, h3], input_size, h3, rng),
            ),
            w_hh: ps.add(
                format!("{name}.w_hh"),
                xavier_uniform(&[hidden_size, h3], hidden_size, h3, rng),
            ),
            b_ih: ps.add(format!("{name}.b_ih"), Tensor::zeros(&[h3])),
            b_hh: ps.add(format!("{name}.b_hh"), Tensor::zeros(&[h3])),
            input_size,
            hidden_size,
        }
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// One step: `x` is `[batch, input]`, `h` is `[batch, hidden]`;
    /// returns the next hidden state.
    pub fn step<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>, h: Var<'g>) -> Var<'g> {
        let hs = self.hidden_size;
        let gi = x.matmul(cx.param(self.w_ih)).add(cx.param(self.b_ih));
        let gh = h.matmul(cx.param(self.w_hh)).add(cx.param(self.b_hh));
        let (gi_r, gi_z, gi_n) = (
            gi.narrow(1, 0, hs),
            gi.narrow(1, hs, hs),
            gi.narrow(1, 2 * hs, hs),
        );
        let (gh_r, gh_z, gh_n) = (
            gh.narrow(1, 0, hs),
            gh.narrow(1, hs, hs),
            gh.narrow(1, 2 * hs, hs),
        );
        let r = gi_r.add(gh_r).sigmoid();
        let z = gi_z.add(gh_z).sigmoid();
        let n = gi_n.add(r.mul(gh_n)).tanh();
        // h' = (1 − z) ⊙ n + z ⊙ h
        let one_minus_z = z.neg().add_scalar(1.0);
        one_minus_z.mul(n).add(z.mul(h))
    }
}

/// A stack of GRU layers unrolled over a sequence.
pub struct Gru {
    cells: Vec<GruCell>,
    dropout: f32,
}

impl Gru {
    /// Allocate `num_layers` GRU layers. Dropout (if nonzero) is applied
    /// between layers, matching PyTorch semantics.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        input_size: usize,
        hidden_size: usize,
        num_layers: usize,
        dropout: f32,
        rng: &mut Rng,
    ) -> Self {
        assert!(num_layers >= 1, "GRU needs at least one layer");
        let mut cells = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let in_size = if l == 0 { input_size } else { hidden_size };
            cells.push(GruCell::new(
                ps,
                &format!("{name}.l{l}"),
                in_size,
                hidden_size,
                rng,
            ));
        }
        Gru { cells, dropout }
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.cells[0].hidden_size
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.cells.len()
    }

    /// Run over `x` of shape `[batch, len, input]` starting from zero
    /// hidden states.
    ///
    /// Each layer runs as **one** tape node through the fused kernels in
    /// `lttf-tensor` ([`lttf_tensor::gru_layer_forward`]): unrolling
    /// `GruCell::step` op-by-op costs ~20 nodes per timestep, and at the
    /// paper's sequence lengths the tape bookkeeping dominates the
    /// arithmetic. The backward is the hand-written BPTT kernel; on
    /// inference graphs no gate stash is recorded at all.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> RnnOutput<'g> {
        let shape = x.shape();
        assert_eq!(
            shape.len(),
            3,
            "GRU input must be [batch, len, input], got {shape:?}"
        );
        let (b, len) = (shape[0], shape[1]);
        let hs = self.hidden_size();
        let g = cx.graph();
        let mut layer_input = x;
        let mut last_hidden = Vec::with_capacity(self.cells.len());
        let mut outputs = layer_input; // replaced below
        for (li, cell) in self.cells.iter().enumerate() {
            let w_ih = cx.param(cell.w_ih);
            let w_hh = cx.param(cell.w_hh);
            let b_ih = cx.param(cell.b_ih);
            let b_hh = cx.param(cell.b_hh);
            let (out, stash) = lttf_tensor::gru_layer_forward(
                &layer_input.value(),
                &w_ih.value(),
                &w_hh.value(),
                &b_ih.value(),
                &b_hh.value(),
                g.records_gradients(),
            );
            outputs = g.custom_named(
                "gru_layer",
                out,
                &[layer_input, w_ih, w_hh, b_ih, b_hh],
                move |ctx| {
                    let stash = stash
                        .as_ref()
                        .expect("gate stash is recorded on gradient-recording graphs");
                    let gr = lttf_tensor::gru_layer_backward(
                        ctx.grad,
                        ctx.inputs[0],
                        ctx.inputs[1],
                        ctx.inputs[2],
                        ctx.out,
                        stash,
                    );
                    vec![gr.dx, gr.dw_ih, gr.dw_hh, gr.db_ih, gr.db_hh]
                },
            );
            let h = if len == 0 {
                g.constant(Tensor::zeros(&[b, hs]))
            } else {
                outputs.narrow(1, len - 1, 1).reshape(&[b, hs])
            };
            last_hidden.push(h);
            if li + 1 < self.cells.len() && self.dropout > 0.0 {
                outputs = cx.dropout(outputs, self.dropout);
            }
            layer_input = outputs;
        }
        RnnOutput {
            outputs,
            last_hidden,
        }
    }
}

/// A single LSTM cell (gate layout: input, forget, cell, output).
pub struct LstmCell {
    w_ih: ParamId,
    w_hh: ParamId,
    b_ih: ParamId,
    b_hh: ParamId,
    input_size: usize,
    hidden_size: usize,
}

impl LstmCell {
    /// Allocate an LSTM cell.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        input_size: usize,
        hidden_size: usize,
        rng: &mut Rng,
    ) -> Self {
        let h4 = 4 * hidden_size;
        LstmCell {
            w_ih: ps.add(
                format!("{name}.w_ih"),
                xavier_uniform(&[input_size, h4], input_size, h4, rng),
            ),
            w_hh: ps.add(
                format!("{name}.w_hh"),
                xavier_uniform(&[hidden_size, h4], hidden_size, h4, rng),
            ),
            b_ih: ps.add(format!("{name}.b_ih"), Tensor::zeros(&[h4])),
            b_hh: ps.add(format!("{name}.b_hh"), Tensor::zeros(&[h4])),
            input_size,
            hidden_size,
        }
    }

    /// One step. Returns `(h', c')`.
    pub fn step<'g>(
        &self,
        cx: &Fwd<'g, '_>,
        x: Var<'g>,
        h: Var<'g>,
        c: Var<'g>,
    ) -> (Var<'g>, Var<'g>) {
        let hs = self.hidden_size;
        let gates = x
            .matmul(cx.param(self.w_ih))
            .add(cx.param(self.b_ih))
            .add(h.matmul(cx.param(self.w_hh)).add(cx.param(self.b_hh)));
        let i = gates.narrow(1, 0, hs).sigmoid();
        let f = gates.narrow(1, hs, hs).sigmoid();
        let gc = gates.narrow(1, 2 * hs, hs).tanh();
        let o = gates.narrow(1, 3 * hs, hs).sigmoid();
        let c_next = f.mul(c).add(i.mul(gc));
        let h_next = o.mul(c_next.tanh());
        (h_next, c_next)
    }
}

/// A single-layer LSTM unrolled over a sequence (LSTNet's recurrent core).
pub struct Lstm {
    cell: LstmCell,
}

impl Lstm {
    /// Allocate a single-layer LSTM.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        input_size: usize,
        hidden_size: usize,
        rng: &mut Rng,
    ) -> Self {
        Lstm {
            cell: LstmCell::new(ps, name, input_size, hidden_size, rng),
        }
    }

    /// Run over `x` of shape `[batch, len, input]` from zero state.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> RnnOutput<'g> {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "LSTM input must be [batch, len, input]");
        let (b, len) = (shape[0], shape[1]);
        let hs = self.cell.hidden_size;
        let g = cx.graph();
        let mut h = g.constant(Tensor::zeros(&[b, hs]));
        let mut c = g.constant(Tensor::zeros(&[b, hs]));
        let mut steps = Vec::with_capacity(len);
        for t in 0..len {
            let xt = x.narrow(1, t, 1).reshape(&[b, self.cell.input_size]);
            let (hn, cn) = self.cell.step(cx, xt, h, c);
            h = hn;
            c = cn;
            steps.push(h.reshape(&[b, 1, hs]));
        }
        RnnOutput {
            outputs: Var::concat(&steps, 1),
            last_hidden: vec![h],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use lttf_autograd::Graph;

    #[test]
    fn gru_output_shapes() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let gru = Gru::new(&mut ps, "g", 4, 8, 2, 0.0, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[3, 5, 4], &mut rng));
        let out = gru.forward(&cx, x);
        assert_eq!(out.outputs.shape(), vec![3, 5, 8]);
        assert_eq!(out.last_hidden.len(), 2);
        assert_eq!(out.last_hidden[1].shape(), vec![3, 8]);
    }

    #[test]
    fn gru_last_output_equals_last_hidden() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(1);
        let gru = Gru::new(&mut ps, "g", 2, 4, 1, 0.0, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[2, 6, 2], &mut rng));
        let out = gru.forward(&cx, x);
        let last_step = out.outputs.narrow(1, 5, 1).reshape(&[2, 4]).value();
        last_step.assert_close(&out.last_hidden[0].value(), 1e-6);
    }

    #[test]
    fn gru_hidden_bounded_by_tanh() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(2);
        let gru = Gru::new(&mut ps, "g", 3, 5, 1, 0.0, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[1, 20, 3], &mut rng).mul_scalar(10.0));
        let out = gru.forward(&cx, x);
        let v = out.outputs.value();
        assert!(v.max() <= 1.0 && v.min() >= -1.0);
    }

    #[test]
    fn gru_zero_input_zero_weights_gives_zero() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(3);
        let gru = Gru::new(&mut ps, "g", 2, 3, 1, 0.0, &mut rng);
        // zero all params -> gates are 0.5, n = 0, h' = 0.5 h + 0.5·0 ... stays 0 from h0=0
        for id in ps.ids().collect::<Vec<_>>() {
            let z = ps.value(id).zeros_like();
            *ps.value_mut(id) = z;
        }
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::zeros(&[1, 4, 2]));
        let out = gru.forward(&cx, x);
        assert!(out.outputs.value().abs().max() < 1e-6);
    }

    #[test]
    fn lstm_output_shapes() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(4);
        let lstm = Lstm::new(&mut ps, "l", 4, 6, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[2, 7, 4], &mut rng));
        let out = lstm.forward(&cx, x);
        assert_eq!(out.outputs.shape(), vec![2, 7, 6]);
        assert_eq!(out.last_hidden[0].shape(), vec![2, 6]);
    }

    /// The fused GRU layer must agree with the op-by-op `GruCell::step`
    /// composition — both the forward outputs and every parameter
    /// gradient — to float tolerance (the fused path reassociates the
    /// per-step gemms into whole-sequence ones).
    #[test]
    fn fused_layer_matches_composed_steps() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(7);
        let gru = Gru::new(&mut ps, "g", 3, 5, 2, 0.0, &mut rng);
        let x = Tensor::randn(&[2, 6, 3], &mut rng);

        // Fused path (Gru::forward).
        let g1 = Graph::new();
        let cx1 = Fwd::new(&g1, &ps, true, 0);
        let out1 = gru.forward(&cx1, g1.leaf(x.clone()));
        let loss1 = out1.outputs.square().sum_all();
        let grads1 = g1.backward(loss1);
        let collected1 = cx1.collect_grads(&grads1);

        // Composed path: the pre-fusion unroll via GruCell::step.
        let g2 = Graph::new();
        let cx2 = Fwd::new(&g2, &ps, true, 0);
        let x2 = g2.leaf(x);
        let mut layer_input = x2;
        let mut composed = layer_input;
        for cell in &gru.cells {
            let mut h = g2.constant(Tensor::zeros(&[2, 5]));
            let mut steps = Vec::new();
            for t in 0..6 {
                let xt = layer_input.narrow(1, t, 1).reshape(&[2, cell.input_size()]);
                h = cell.step(&cx2, xt, h);
                steps.push(h.reshape(&[2, 1, 5]));
            }
            composed = lttf_autograd::Var::concat(&steps, 1);
            layer_input = composed;
        }
        let loss2 = composed.square().sum_all();
        let grads2 = g2.backward(loss2);
        let collected2 = cx2.collect_grads(&grads2);

        out1.outputs.value().assert_close(&composed.value(), 1e-5);
        assert!(!collected1.is_empty(), "fused path produced no param grads");
        for (pid, gt) in collected1 {
            // The composed path binds each param once per timestep, so its
            // gradient arrives as per-binding pieces to be summed.
            let mut want: Option<Tensor> = None;
            for (p2, piece) in &collected2 {
                if *p2 == pid {
                    match want.as_mut() {
                        None => want = Some(piece.clone()),
                        Some(acc) => acc.add_assign(piece),
                    }
                }
            }
            let want =
                want.unwrap_or_else(|| panic!("composed path missing grad for {pid:?}"));
            gt.assert_close(&want, 1e-3);
        }
    }

    /// A GRU can learn to remember: predict the mean of a short sequence.
    #[test]
    fn gru_learns_sequence_mean() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(5);
        let gru = Gru::new(&mut ps, "g", 1, 8, 1, 0.0, &mut rng);
        let head = crate::Linear::new(&mut ps, "head", 8, 1, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut final_loss = f32::MAX;
        for step in 0..150 {
            let mut data_rng = Rng::seed(100 + (step % 10) as u64);
            let x = Tensor::randn(&[8, 6, 1], &mut data_rng);
            let target = x.mean_axis(1); // [8, 1]
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, true, step as u64);
            let out = gru.forward(&cx, g.leaf(x));
            let pred = head.forward(&cx, out.last_hidden[0]);
            let loss = crate::mse_loss_to(pred, &target);
            final_loss = loss.value().item();
            let grads = g.backward(loss);
            let collected = cx.collect_grads(&grads);
            ps.zero_grad();
            ps.apply_grads(collected);
            opt.step(&mut ps);
        }
        assert!(
            final_loss < 0.05,
            "GRU failed to learn mean: loss {final_loss}"
        );
    }
}
