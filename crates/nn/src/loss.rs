//! Loss functions: MSE (the paper's training objective, Eq. 18) and MAE.

use lttf_autograd::Var;
use lttf_tensor::Tensor;

/// Mean squared error between two variables of the same shape.
pub fn mse_loss<'g>(pred: Var<'g>, target: Var<'g>) -> Var<'g> {
    pred.sub(target).square().mean_all()
}

/// Mean squared error against a constant target tensor.
pub fn mse_loss_to<'g>(pred: Var<'g>, target: &Tensor) -> Var<'g> {
    let t = pred.graph().constant(target.clone());
    mse_loss(pred, t)
}

/// Mean absolute error between two variables of the same shape.
pub fn mae_loss<'g>(pred: Var<'g>, target: Var<'g>) -> Var<'g> {
    pred.sub(target).abs().mean_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_autograd::Graph;

    #[test]
    fn mse_zero_for_equal() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_slice(&[1.0, 2.0]));
        let b = g.leaf(Tensor::from_slice(&[1.0, 2.0]));
        assert_eq!(mse_loss(a, b).value().item(), 0.0);
    }

    #[test]
    fn mse_hand_computed() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_slice(&[0.0, 0.0]));
        let b = g.leaf(Tensor::from_slice(&[3.0, 4.0]));
        // (9 + 16) / 2 = 12.5
        assert_eq!(mse_loss(a, b).value().item(), 12.5);
    }

    #[test]
    fn mae_hand_computed() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_slice(&[0.0, 0.0]));
        let b = g.leaf(Tensor::from_slice(&[3.0, -4.0]));
        assert_eq!(mae_loss(a, b).value().item(), 3.5);
    }

    #[test]
    fn mse_gradient_points_toward_target() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_slice(&[0.0]));
        let loss = mse_loss_to(a, &Tensor::from_slice(&[2.0]));
        let grads = g.backward(loss);
        // d/da (a−2)² = 2(a−2) = −4
        assert!((grads.get(a).unwrap().data()[0] + 4.0).abs() < 1e-6);
    }
}
