//! Checkpointing: save and load a [`ParamSet`] in a simple self-describing
//! binary format, with an optional metadata section for deployment state
//! (scaler statistics, target column, model family — whatever the serving
//! layer needs to round-trip raw inputs).
//!
//! Format (little-endian):
//! ```text
//! magic "LTTF" | u32 version
//! version 2 only: u32 n_meta
//!                 per entry: u32 key_len | key bytes | u32 val_len | val bytes
//! u32 n_params
//! per param: u32 name_len | name bytes (utf-8)
//!            u32 ndim | u32 × ndim shape | f32 × numel data
//! ```
//!
//! Version 1 files (no metadata section) still load. All length fields are
//! validated against hard caps **before** any allocation, so a truncated
//! or corrupted file fails with a clear [`io::ErrorKind::InvalidData`]
//! error instead of an abort-by-OOM.

use crate::param::ParamSet;
use lttf_tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"LTTF";
const VERSION: u32 = 2;

/// Longest accepted parameter name, in bytes.
const MAX_NAME_LEN: usize = 4096;
/// Most dimensions a checkpointed tensor may have.
const MAX_NDIM: usize = 8;
/// Largest accepted single dimension.
const MAX_DIM: usize = 1 << 28;
/// Most metadata entries a checkpoint may carry.
const MAX_META: usize = 4096;
/// Longest accepted metadata key or value, in bytes.
const MAX_META_LEN: usize = 1 << 20;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serialize a parameter set with a metadata section to a writer.
///
/// Metadata is free-form `(key, value)` string pairs, written in the given
/// order. The serving registry stores scaler statistics and the target
/// column here so a checkpoint is self-contained at inference time.
pub fn write_params_with_meta<W: Write>(
    ps: &ParamSet,
    meta: &[(String, String)],
    mut w: W,
) -> io::Result<()> {
    assert!(meta.len() <= MAX_META, "too many metadata entries");
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(meta.len() as u32).to_le_bytes())?;
    for (k, v) in meta {
        for s in [k, v] {
            assert!(s.len() <= MAX_META_LEN, "metadata entry too long");
            w.write_all(&(s.len() as u32).to_le_bytes())?;
            w.write_all(s.as_bytes())?;
        }
    }
    w.write_all(&(ps.len() as u32).to_le_bytes())?;
    for id in ps.ids() {
        let name = ps.name(id).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let t = ps.value(id);
        w.write_all(&(t.ndim() as u32).to_le_bytes())?;
        for &d in t.shape() {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in t.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Serialize a parameter set to a writer (no metadata).
pub fn write_params<W: Write>(ps: &ParamSet, w: W) -> io::Result<()> {
    write_params_with_meta(ps, &[], w)
}

/// Save a parameter set and metadata to a file.
pub fn save_params_with_meta(
    ps: &ParamSet,
    meta: &[(String, String)],
    path: impl AsRef<Path>,
) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_params_with_meta(ps, meta, io::BufWriter::new(f))
}

/// Save a parameter set to a file (no metadata).
pub fn save_params(ps: &ParamSet, path: impl AsRef<Path>) -> io::Result<()> {
    save_params_with_meta(ps, &[], path)
}

/// `read_exact` with a clear "truncated checkpoint" error on EOF.
fn fill<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            bad(format!("truncated checkpoint while reading {what}"))
        } else {
            e
        }
    })
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> io::Result<u32> {
    let mut b = [0u8; 4];
    fill(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

/// Read a length-prefixed UTF-8 string, validating the length against
/// `max` before allocating.
fn read_string<R: Read>(r: &mut R, max: usize, what: &str) -> io::Result<String> {
    let len = read_u32(r, what)? as usize;
    if len > max {
        return Err(bad(format!("{what} length {len} exceeds cap {max}")));
    }
    let mut buf = vec![0u8; len];
    fill(r, &mut buf, what)?;
    String::from_utf8(buf).map_err(|e| bad(format!("{what} is not utf-8: {e}")))
}

/// Deserialize parameter values from a reader **into an existing set**,
/// returning the checkpoint's metadata (empty for version-1 files).
///
/// The set must have been built by constructing the same model: names,
/// order, and shapes must match, or an error is returned. This
/// load-into-structure design avoids any reflection machinery.
///
/// Every length field is checked against a hard cap before allocation, so
/// hostile or corrupted input fails fast with [`io::ErrorKind::InvalidData`].
pub fn read_params_with_meta<R: Read>(
    ps: &mut ParamSet,
    mut r: R,
) -> io::Result<Vec<(String, String)>> {
    let mut magic = [0u8; 4];
    fill(&mut r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    let version = read_u32(&mut r, "version")?;
    if version != 1 && version != VERSION {
        return Err(bad(format!("unsupported version {version}")));
    }
    let mut meta = Vec::new();
    if version >= 2 {
        let n_meta = read_u32(&mut r, "metadata count")? as usize;
        if n_meta > MAX_META {
            return Err(bad(format!("metadata count {n_meta} exceeds cap {MAX_META}")));
        }
        for _ in 0..n_meta {
            let k = read_string(&mut r, MAX_META_LEN, "metadata key")?;
            let v = read_string(&mut r, MAX_META_LEN, "metadata value")?;
            meta.push((k, v));
        }
    }
    let n = read_u32(&mut r, "param count")? as usize;
    if n != ps.len() {
        return Err(bad(format!(
            "checkpoint has {n} params, model has {}",
            ps.len()
        )));
    }
    for id in ps.ids().collect::<Vec<_>>() {
        let name = read_string(&mut r, MAX_NAME_LEN, "param name")?;
        if name != ps.name(id) {
            return Err(bad(format!(
                "param name mismatch: checkpoint '{name}' vs model '{}'",
                ps.name(id)
            )));
        }
        let ndim = read_u32(&mut r, "ndim")? as usize;
        if ndim > MAX_NDIM {
            return Err(bad(format!("param '{name}' ndim {ndim} exceeds cap {MAX_NDIM}")));
        }
        let mut shape = Vec::with_capacity(ndim);
        let mut numel = 1usize;
        for _ in 0..ndim {
            let d = read_u32(&mut r, "shape")? as usize;
            if d > MAX_DIM {
                return Err(bad(format!("param '{name}' dimension {d} exceeds cap {MAX_DIM}")));
            }
            numel = numel
                .checked_mul(d)
                .filter(|&n| n <= MAX_DIM)
                .ok_or_else(|| bad(format!("param '{name}' element count overflows cap")))?;
            shape.push(d);
        }
        if shape != ps.value(id).shape() {
            return Err(bad(format!(
                "param '{name}' shape mismatch: checkpoint {shape:?} vs model {:?}",
                ps.value(id).shape()
            )));
        }
        let numel = numel.max(1);
        let mut bytes = vec![0u8; numel * 4];
        fill(&mut r, &mut bytes, "param data")?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        *ps.value_mut(id) = Tensor::from_vec(data, &shape);
    }
    Ok(meta)
}

/// Deserialize parameter values from a reader, discarding any metadata.
/// See [`read_params_with_meta`] for the validation contract.
pub fn read_params<R: Read>(ps: &mut ParamSet, r: R) -> io::Result<()> {
    read_params_with_meta(ps, r).map(|_| ())
}

/// Load parameter values and metadata from a file into an existing set.
pub fn load_params_with_meta(
    ps: &mut ParamSet,
    path: impl AsRef<Path>,
) -> io::Result<Vec<(String, String)>> {
    let f = std::fs::File::open(path)?;
    read_params_with_meta(ps, io::BufReader::new(f))
}

/// Load parameter values from a file into an existing set.
pub fn load_params(ps: &mut ParamSet, path: impl AsRef<Path>) -> io::Result<()> {
    load_params_with_meta(ps, path).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_tensor::{Rng, Tensor};
    use lttf_testkit::{prop_assert, properties};

    fn sample_set(seed: u64) -> ParamSet {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(seed);
        ps.add("a.weight", Tensor::randn(&[3, 4], &mut rng));
        ps.add("a.bias", Tensor::randn(&[4], &mut rng));
        ps.add("b.gamma", Tensor::randn(&[2, 2, 2], &mut rng));
        ps
    }

    fn sample_bytes() -> Vec<u8> {
        let mut buf = Vec::new();
        write_params(&sample_set(1), &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_preserves_values() {
        let src = sample_set(1);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();
        let mut dst = sample_set(2); // same structure, different values
        read_params(&mut dst, buf.as_slice()).unwrap();
        for (a, b) in src.ids().zip(dst.ids()) {
            src.value(a).assert_close(dst.value(b), 0.0);
        }
    }

    #[test]
    fn metadata_round_trips() {
        let src = sample_set(1);
        let meta = vec![
            ("target".to_string(), "OT".to_string()),
            ("scaler.mean".to_string(), "1.5,-2,0.25".to_string()),
        ];
        let mut buf = Vec::new();
        write_params_with_meta(&src, &meta, &mut buf).unwrap();
        let mut dst = sample_set(2);
        let got = read_params_with_meta(&mut dst, buf.as_slice()).unwrap();
        assert_eq!(got, meta);
        for (a, b) in src.ids().zip(dst.ids()) {
            src.value(a).assert_close(dst.value(b), 0.0);
        }
    }

    #[test]
    fn version1_files_still_load() {
        // Hand-write a v1 file (no metadata section) for one parameter.
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::zeros(&[2]));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"LTTF");
        buf.extend_from_slice(&1u32.to_le_bytes()); // version 1
        buf.extend_from_slice(&1u32.to_le_bytes()); // n_params
        buf.extend_from_slice(&1u32.to_le_bytes()); // name_len
        buf.extend_from_slice(b"w");
        buf.extend_from_slice(&1u32.to_le_bytes()); // ndim
        buf.extend_from_slice(&2u32.to_le_bytes()); // shape [2]
        buf.extend_from_slice(&3.0f32.to_le_bytes());
        buf.extend_from_slice(&4.0f32.to_le_bytes());
        let meta = read_params_with_meta(&mut ps, buf.as_slice()).unwrap();
        assert!(meta.is_empty());
        assert_eq!(ps.value(ps.ids().next().unwrap()).data(), &[3.0, 4.0]);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut dst = sample_set(1);
        let err = read_params(&mut dst, &b"NOPE0000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_param_count_mismatch() {
        let buf = sample_bytes();
        let mut dst = ParamSet::new();
        dst.add("a.weight", Tensor::zeros(&[3, 4]));
        let err = read_params(&mut dst, buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("params"));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let buf = sample_bytes();
        let mut dst = ParamSet::new();
        dst.add("a.weight", Tensor::zeros(&[4, 3])); // transposed shape
        dst.add("a.bias", Tensor::zeros(&[4]));
        dst.add("b.gamma", Tensor::zeros(&[2, 2, 2]));
        let err = read_params(&mut dst, buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
    }

    #[test]
    fn rejects_absurd_lengths_without_allocating() {
        // A header claiming a ~4 GiB name must fail on the cap, not OOM.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"LTTF");
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // n_meta
        buf.extend_from_slice(&3u32.to_le_bytes()); // n_params
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd name_len
        let err = read_params(&mut sample_set(1), buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("exceeds cap"), "{err}");

        // Absurd metadata count.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"LTTF");
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd n_meta
        let err = read_params(&mut sample_set(1), buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("exceeds cap"), "{err}");

        // Absurd ndim and dimension values.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"LTTF");
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // n_meta
        buf.extend_from_slice(&3u32.to_le_bytes()); // n_params
        buf.extend_from_slice(&8u32.to_le_bytes()); // name_len
        buf.extend_from_slice(b"a.weight");
        buf.extend_from_slice(&1000u32.to_le_bytes()); // absurd ndim
        let err = read_params(&mut sample_set(1), buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("ndim"), "{err}");
    }

    #[test]
    fn truncated_file_reports_clearly() {
        let buf = sample_bytes();
        for cut in [0, 3, 4, 8, 11, 20, buf.len() / 2, buf.len() - 1] {
            let err = read_params(&mut sample_set(1), &buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
            assert!(
                err.to_string().contains("truncated") || err.to_string().contains("magic"),
                "cut at {cut}: {err}"
            );
        }
    }

    properties! {
        cases = 64;

        /// Any truncation of a valid checkpoint errors — never panics,
        /// never reads garbage into the model.
        fn truncation_always_errors(frac in 0.0f64..1.0) {
            let buf = sample_bytes();
            let cut = ((buf.len() - 1) as f64 * frac) as usize;
            prop_assert!(read_params(&mut sample_set(1), &buf[..cut]).is_err());
        }

        /// Random 4-byte patches anywhere in the file either load cleanly
        /// (data-only damage) or error — never panic, never mass-allocate.
        fn corruption_never_panics(off in 0usize..200, word in 0u32..u32::MAX) {
            let mut buf = sample_bytes();
            let off = off.min(buf.len().saturating_sub(4));
            buf[off..off + 4].copy_from_slice(&word.to_le_bytes());
            let _ = read_params(&mut sample_set(1), buf.as_slice());
            prop_assert!(true);
        }
    }

    #[test]
    fn file_round_trip() {
        let src = sample_set(3);
        let dir = std::env::temp_dir().join("lttf_ser_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        save_params(&src, &path).unwrap();
        let mut dst = sample_set(4);
        load_params(&mut dst, &path).unwrap();
        for (a, b) in src.ids().zip(dst.ids()) {
            src.value(a).assert_close(dst.value(b), 0.0);
        }
        let _ = std::fs::remove_file(path);
    }
}
