//! Checkpointing: save and load a [`ParamSet`] in a simple self-describing
//! binary format.
//!
//! Format (little-endian):
//! ```text
//! magic "LTTF" | u32 version | u32 n_params
//! per param: u32 name_len | name bytes (utf-8)
//!            u32 ndim | u32 × ndim shape | f32 × numel data
//! ```

use crate::param::ParamSet;
use lttf_tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"LTTF";
const VERSION: u32 = 1;

/// Serialize a parameter set to a writer.
pub fn write_params<W: Write>(ps: &ParamSet, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(ps.len() as u32).to_le_bytes())?;
    for id in ps.ids() {
        let name = ps.name(id).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let t = ps.value(id);
        w.write_all(&(t.ndim() as u32).to_le_bytes())?;
        for &d in t.shape() {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in t.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Save a parameter set to a file.
pub fn save_params(ps: &ParamSet, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_params(ps, io::BufWriter::new(f))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Deserialize parameter values from a reader **into an existing set**.
///
/// The set must have been built by constructing the same model: names,
/// order, and shapes must match, or an error is returned. This
/// load-into-structure design avoids any reflection machinery.
pub fn read_params<R: Read>(ps: &mut ParamSet, mut r: R) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let n = read_u32(&mut r)? as usize;
    if n != ps.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint has {n} params, model has {}", ps.len()),
        ));
    }
    for id in ps.ids().collect::<Vec<_>>() {
        let name_len = read_u32(&mut r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if name != ps.name(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "param name mismatch: checkpoint '{name}' vs model '{}'",
                    ps.name(id)
                ),
            ));
        }
        let ndim = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(read_u32(&mut r)? as usize);
        }
        if shape != ps.value(id).shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "param '{name}' shape mismatch: checkpoint {shape:?} vs model {:?}",
                    ps.value(id).shape()
                ),
            ));
        }
        let numel: usize = shape.iter().product::<usize>().max(1);
        let mut data = Vec::with_capacity(numel);
        let mut b = [0u8; 4];
        for _ in 0..numel {
            r.read_exact(&mut b)?;
            data.push(f32::from_le_bytes(b));
        }
        *ps.value_mut(id) = Tensor::from_vec(data, &shape);
    }
    Ok(())
}

/// Load parameter values from a file into an existing set.
pub fn load_params(ps: &mut ParamSet, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::open(path)?;
    read_params(ps, io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_tensor::{Rng, Tensor};

    fn sample_set(seed: u64) -> ParamSet {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(seed);
        ps.add("a.weight", Tensor::randn(&[3, 4], &mut rng));
        ps.add("a.bias", Tensor::randn(&[4], &mut rng));
        ps.add("b.gamma", Tensor::randn(&[2, 2, 2], &mut rng));
        ps
    }

    #[test]
    fn round_trip_preserves_values() {
        let src = sample_set(1);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();
        let mut dst = sample_set(2); // same structure, different values
        read_params(&mut dst, buf.as_slice()).unwrap();
        for (a, b) in src.ids().zip(dst.ids()) {
            src.value(a).assert_close(dst.value(b), 0.0);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut dst = sample_set(1);
        let err = read_params(&mut dst, &b"NOPE0000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_param_count_mismatch() {
        let src = sample_set(1);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();
        let mut dst = ParamSet::new();
        dst.add("a.weight", Tensor::zeros(&[3, 4]));
        let err = read_params(&mut dst, buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("params"));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let src = sample_set(1);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();
        let mut dst = ParamSet::new();
        dst.add("a.weight", Tensor::zeros(&[4, 3])); // transposed shape
        dst.add("a.bias", Tensor::zeros(&[4]));
        dst.add("b.gamma", Tensor::zeros(&[2, 2, 2]));
        let err = read_params(&mut dst, buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let src = sample_set(3);
        let dir = std::env::temp_dir().join("lttf_ser_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        save_params(&src, &path).unwrap();
        let mut dst = sample_set(4);
        load_params(&mut dst, &path).unwrap();
        for (a, b) in src.ids().zip(dst.ids()) {
            src.value(a).assert_close(dst.value(b), 0.0);
        }
        let _ = std::fs::remove_file(path);
    }
}
