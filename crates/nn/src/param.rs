//! Parameter storage ([`ParamSet`]) and the forward-pass context ([`Fwd`]).

use lttf_autograd::{Grads, Graph, Var};
use lttf_tensor::{Rng, Tensor};
use std::cell::RefCell;

/// Handle to a parameter inside a [`ParamSet`]. Cheap to copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamId(pub(crate) usize);

/// One trainable tensor plus its accumulated gradient.
#[derive(Clone)]
pub(crate) struct Param {
    pub value: Tensor,
    pub grad: Tensor,
}

/// The trainable state of a model: a flat, named list of parameters.
///
/// Layers allocate parameters at construction time and keep the returned
/// [`ParamId`]s. Optimizers iterate over the whole set.
#[derive(Default)]
pub struct ParamSet {
    pub(crate) params: Vec<Param>,
    pub(crate) names: Vec<String>,
}

impl ParamSet {
    /// An empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with a diagnostic name; returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.params.len());
        let grad = value.zeros_like();
        self.params.push(Param { value, grad });
        self.names.push(name.into());
        id
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable value (used by optimizers and loaders).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters (tensors, not elements).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalar elements.
    pub fn num_elements(&self) -> usize {
        self.params.iter().map(|p| p.value.numel()).sum()
    }

    /// Reset all gradients to zero. Call before each accumulation cycle.
    pub fn zero_grad(&mut self) {
        for p in self.params.iter_mut() {
            p.grad = p.value.zeros_like();
        }
    }

    /// Add `grad` into the parameter's gradient accumulator.
    ///
    /// # Panics
    /// Panics if the gradient shape does not match the parameter.
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Tensor) {
        self.params[id.0].grad.add_assign(grad);
    }

    /// Global L2 norm of all gradients (used by gradient clipping).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.square().sum())
            .sum::<f32>()
            .sqrt()
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Clone every parameter value, in registration order.
    ///
    /// A snapshot is the unit of rollback for online adaptation: take one
    /// before a risky optimizer step, and [`ParamSet::restore`] rewinds
    /// the set bit-for-bit if the step diverges. Gradients and optimizer
    /// state are *not* captured — a restore lands on clean values with
    /// whatever gradient slots the caller zeroes next.
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }

    /// Overwrite every parameter value from a [`ParamSet::snapshot`].
    ///
    /// # Panics
    /// Panics when the snapshot's length or any tensor shape does not
    /// match this set — restoring across different architectures is
    /// always a bug.
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(
            snapshot.len(),
            self.params.len(),
            "snapshot has {} tensors but the set has {} parameters",
            snapshot.len(),
            self.params.len()
        );
        for (p, s) in self.params.iter_mut().zip(snapshot) {
            assert_eq!(
                p.value.shape(),
                s.shape(),
                "snapshot tensor shape mismatch"
            );
            p.value = s.clone();
        }
    }

    /// One-pass health statistics per parameter, in registration order:
    /// `(name, value stats, gradient stats)`. The training health monitor
    /// feeds these to its divergence watchdog and the run log.
    pub fn health_scan(
        &self,
    ) -> Vec<(&str, lttf_obs::TensorHealth, lttf_obs::TensorHealth)> {
        self.params
            .iter()
            .zip(&self.names)
            .map(|(p, name)| {
                (
                    name.as_str(),
                    lttf_obs::TensorHealth::from_slice(p.value.data()),
                    lttf_obs::TensorHealth::from_slice(p.grad.data()),
                )
            })
            .collect()
    }

    /// A human-readable parameter-count breakdown, grouped by the first
    /// dot-separated component of each parameter name (i.e. per layer /
    /// block), largest first. Useful for model cards and debugging:
    ///
    /// ```text
    /// encoder.l0       12_345
    /// decoder.l0        6_789
    /// flow              4_321
    /// total            23_455
    /// ```
    pub fn summary(&self) -> String {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<String, usize> = BTreeMap::new();
        for id in self.ids() {
            let name = self.name(id);
            let group = name.splitn(3, '.').take(2).collect::<Vec<_>>().join(".");
            *groups.entry(group).or_default() += self.value(id).numel();
        }
        let mut rows: Vec<(String, usize)> = groups.into_iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(5).max(5);
        let mut out = String::new();
        for (name, count) in &rows {
            out.push_str(&format!("{name:<width$}  {count:>10}\n"));
        }
        out.push_str(&format!(
            "{:<width$}  {:>10}\n",
            "total",
            self.num_elements()
        ));
        out
    }
}

/// Context threading a [`Graph`], a [`ParamSet`], and per-pass state
/// (train/eval mode, dropout RNG) through a model's `forward` methods.
pub struct Fwd<'g, 'p> {
    g: &'g Graph,
    ps: &'p ParamSet,
    binds: RefCell<Vec<(ParamId, usize)>>,
    /// True during training: dropout is active.
    pub train: bool,
    rng: RefCell<Rng>,
}

impl<'g, 'p> Fwd<'g, 'p> {
    /// Begin a forward pass on `g` reading parameters from `ps`.
    ///
    /// `seed` drives dropout masks (and any other stochastic layer state),
    /// so a fixed seed makes the whole pass deterministic.
    pub fn new(g: &'g Graph, ps: &'p ParamSet, train: bool, seed: u64) -> Self {
        Fwd {
            g,
            ps,
            binds: RefCell::new(Vec::new()),
            train,
            rng: RefCell::new(Rng::seed(seed)),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Bind a parameter into the graph as a leaf and record the binding.
    ///
    /// Binding the same parameter twice (weight sharing) is fine: both
    /// bindings' gradients are summed at harvest time.
    pub fn param(&self, id: ParamId) -> Var<'g> {
        let v = self.g.leaf(self.ps.value(id).clone());
        self.binds.borrow_mut().push((id, v.id()));
        v
    }

    /// Insert a non-trainable constant.
    pub fn constant(&self, t: Tensor) -> Var<'g> {
        self.g.constant(t)
    }

    /// Inverted dropout: in train mode, zero each element with probability
    /// `p` and scale survivors by `1/(1-p)`; identity in eval mode.
    pub fn dropout(&self, x: Var<'g>, p: f32) -> Var<'g> {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0, 1), got {p}"
        );
        if !self.train || p == 0.0 {
            return x;
        }
        let shape = x.shape();
        let mask = Tensor::bernoulli_mask(&shape, 1.0 - p, &mut self.rng.borrow_mut())
            .mul_scalar(1.0 / (1.0 - p));
        x.mul_mask(&mask)
    }

    /// A standard-normal noise tensor from the pass's RNG (used by the
    /// normalizing-flow reparameterization, Eq. 15).
    pub fn noise(&self, shape: &[usize]) -> Tensor {
        Tensor::randn(shape, &mut self.rng.borrow_mut())
    }

    /// After `backward`, collect every bound parameter's gradient.
    ///
    /// Consumes the context — this releases its borrow of the [`ParamSet`],
    /// so the caller can then mutate the set:
    ///
    /// ```text
    /// let collected = cx.collect_grads(&grads);
    /// ps.zero_grad();
    /// ps.apply_grads(collected);
    /// opt.step(&mut ps);
    /// ```
    pub fn collect_grads(self, grads: &Grads) -> Vec<(ParamId, Tensor)> {
        let binds = self.binds.into_inner();
        let mut out = Vec::with_capacity(binds.len());
        for (pid, node) in binds {
            let v = Var::from_raw(self.g, node);
            if let Some(gt) = grads.get(v) {
                out.push((pid, gt.clone()));
            }
        }
        out
    }
}

impl ParamSet {
    /// Accumulate a batch of collected gradients (from
    /// [`Fwd::collect_grads`]) into the parameters' gradient slots.
    pub fn apply_grads(&mut self, collected: Vec<(ParamId, Tensor)>) {
        for (pid, g) in collected {
            self.accumulate_grad(pid, &g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_params() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::from_slice(&[1.0, 2.0]));
        assert_eq!(ps.value(id).data(), &[1.0, 2.0]);
        assert_eq!(ps.name(id), "w");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.num_elements(), 2);
    }

    #[test]
    fn zero_grad_resets() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::from_slice(&[1.0]));
        ps.accumulate_grad(id, &Tensor::from_slice(&[5.0]));
        assert_eq!(ps.grad(id).data(), &[5.0]);
        ps.zero_grad();
        assert_eq!(ps.grad(id).data(), &[0.0]);
    }

    #[test]
    fn harvest_collects_gradients() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::from_slice(&[3.0, 4.0]));
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, true, 0);
        let w = cx.param(id);
        let loss = w.square().sum_all();
        let grads = g.backward(loss);
        let collected = cx.collect_grads(&grads);
        ps.zero_grad();
        ps.apply_grads(collected);
        assert_eq!(ps.grad(id).data(), &[6.0, 8.0]);
    }

    #[test]
    fn shared_binding_gradients_sum() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::from_slice(&[2.0]));
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, true, 0);
        // Bind twice: loss = w·w through two independent leaves.
        let w1 = cx.param(id);
        let w2 = cx.param(id);
        let loss = w1.mul(w2).sum_all();
        let grads = g.backward(loss);
        let collected = cx.collect_grads(&grads);
        ps.zero_grad();
        ps.apply_grads(collected);
        // d(w²)/dw = 2w = 4
        assert_eq!(ps.grad(id).data(), &[4.0]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let ps = ParamSet::new();
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::ones(&[100]));
        let y = cx.dropout(x, 0.5);
        assert_eq!(y.value().data(), &[1.0; 100]);
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let ps = ParamSet::new();
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, true, 7);
        let x = g.leaf(Tensor::ones(&[10_000]));
        let y = cx.dropout(x, 0.3).value();
        // survivors are scaled by 1/0.7, mean should stay near 1.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // some elements must be dropped
        assert!(y.data().iter().filter(|&&v| v == 0.0).count() > 2000);
    }

    #[test]
    fn summary_groups_and_totals() {
        let mut ps = ParamSet::new();
        ps.add("enc.l0.w", Tensor::zeros(&[10]));
        ps.add("enc.l0.b", Tensor::zeros(&[5]));
        ps.add("dec.l0.w", Tensor::zeros(&[3]));
        let s = ps.summary();
        assert!(s.contains("enc.l0"), "{s}");
        assert!(s.contains("15"), "{s}");
        assert!(s.contains("dec.l0"), "{s}");
        assert!(s.lines().last().unwrap().contains("18"), "{s}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let ps = ParamSet::new();
        let g = Graph::new();
        let a = Fwd::new(&g, &ps, true, 42).noise(&[8]);
        let b = Fwd::new(&g, &ps, true, 42).noise(&[8]);
        let c = Fwd::new(&g, &ps, true, 43).noise(&[8]);
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    #[should_panic(expected = "dropout p must be in")]
    fn dropout_rejects_p_one() {
        let ps = ParamSet::new();
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, true, 0);
        let x = g.leaf(Tensor::ones(&[4]));
        cx.dropout(x, 1.0);
    }

    #[test]
    fn health_scan_reports_per_param_stats() {
        let mut ps = ParamSet::new();
        let a = ps.add("enc.w", Tensor::from_slice(&[3.0, 4.0]));
        ps.add("enc.b", Tensor::from_slice(&[0.0]));
        ps.accumulate_grad(a, &Tensor::from_slice(&[f32::NAN, 1.0]));
        let scan = ps.health_scan();
        assert_eq!(scan.len(), 2);
        let (name, value, grad) = &scan[0];
        assert_eq!(*name, "enc.w");
        assert!((value.norm - 5.0).abs() < 1e-9);
        assert_eq!(grad.nan, 1);
        assert!(grad.non_finite());
        assert!(!scan[1].2.non_finite());
    }

    #[test]
    fn snapshot_restore_round_trips_bit_for_bit() {
        let mut ps = ParamSet::new();
        let a = ps.add("a", Tensor::from_slice(&[1.5, -2.25]));
        let b = ps.add("b", Tensor::from_slice(&[0.125]));
        let snap = ps.snapshot();
        ps.value_mut(a).data_mut().copy_from_slice(&[9.0, 9.0]);
        ps.value_mut(b).data_mut().copy_from_slice(&[f32::NAN]);
        ps.restore(&snap);
        assert_eq!(ps.value(a).data(), &[1.5, -2.25]);
        assert_eq!(ps.value(b).data(), &[0.125]);
    }

    #[test]
    #[should_panic(expected = "snapshot has")]
    fn restore_rejects_wrong_length() {
        let mut ps = ParamSet::new();
        ps.add("a", Tensor::from_slice(&[1.0]));
        ps.restore(&[]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn restore_rejects_wrong_shape() {
        let mut ps = ParamSet::new();
        ps.add("a", Tensor::from_slice(&[1.0, 2.0]));
        ps.restore(&[Tensor::from_slice(&[1.0])]);
    }

    #[test]
    fn grad_norm_computation() {
        let mut ps = ParamSet::new();
        let a = ps.add("a", Tensor::from_slice(&[0.0, 0.0]));
        ps.accumulate_grad(a, &Tensor::from_slice(&[3.0, 4.0]));
        assert!((ps.grad_norm() - 5.0).abs() < 1e-6);
    }
}
