//! Layer normalization.

use crate::param::{Fwd, ParamId, ParamSet};
use lttf_autograd::Var;
use lttf_tensor::Tensor;

/// Layer normalization over the last axis with learnable scale and shift:
/// `y = γ ⊙ (x − μ)/√(σ² + ε) + β`.
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Allocate a layer norm over a last axis of width `dim`.
    pub fn new(ps: &mut ParamSet, name: &str, dim: usize) -> Self {
        let gamma = ps.add(format!("{name}.gamma"), Tensor::ones(&[dim]));
        let beta = ps.add(format!("{name}.beta"), Tensor::zeros(&[dim]));
        LayerNorm {
            gamma,
            beta,
            dim,
            eps: 1e-5,
        }
    }

    /// Apply the normalization.
    ///
    /// # Panics
    /// Panics if the input's last axis is not `dim`.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> Var<'g> {
        let shape = x.shape();
        assert_eq!(
            *shape.last().expect("layernorm input must have an axis"),
            self.dim,
            "layernorm expects last axis {}, got {:?}",
            self.dim,
            shape
        );
        let normed = x.normalize_last(self.eps);
        normed.mul(cx.param(self.gamma)).add(cx.param(self.beta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_autograd::Graph;
    use lttf_tensor::Rng;

    #[test]
    fn normalizes_rows() {
        let mut ps = ParamSet::new();
        let ln = LayerNorm::new(&mut ps, "ln", 8);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(
            Tensor::randn(&[4, 8], &mut Rng::seed(1))
                .mul_scalar(3.0)
                .add_scalar(7.0),
        );
        let y = ln.forward(&cx, x).value();
        for r in 0..4 {
            let row = y.narrow(0, r, 1);
            assert!(row.mean().abs() < 1e-4, "row {r} mean {}", row.mean());
            assert!((row.var() - 1.0).abs() < 1e-2, "row {r} var {}", row.var());
        }
    }

    #[test]
    fn gamma_beta_trainable() {
        let mut ps = ParamSet::new();
        let ln = LayerNorm::new(&mut ps, "ln", 4);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, true, 0);
        let x = g.leaf(Tensor::randn(&[2, 4], &mut Rng::seed(2)));
        let loss = ln.forward(&cx, x).square().sum_all();
        let grads = g.backward(loss);
        let collected = cx.collect_grads(&grads);
        ps.zero_grad();
        ps.apply_grads(collected);
        // both gamma and beta must receive nonzero gradients
        let mut ids = ps.ids();
        let gamma = ids.next().unwrap();
        let beta = ids.next().unwrap();
        assert!(ps.grad(gamma).abs().sum() > 0.0);
        assert!(ps.grad(beta).abs().sum() > 0.0);
    }
}
