//! Weight initialization schemes.

use lttf_tensor::{Rng, Tensor};

/// Xavier/Glorot uniform initialization: `U(−a, a)` with
/// `a = √(6 / (fan_in + fan_out))`. The default for linear projections.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// Kaiming/He uniform initialization: `U(−a, a)` with `a = √(6 / fan_in)`.
/// Used for convolution kernels feeding ReLU-family activations.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    let a = (6.0 / fan_in as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds_and_scale() {
        let mut rng = Rng::seed(1);
        let t = xavier_uniform(&[100, 100], 100, 100, &mut rng);
        let a = (6.0f32 / 200.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
        // variance of U(-a,a) is a²/3
        assert!((t.var() - a * a / 3.0).abs() < 0.002);
    }

    #[test]
    fn kaiming_bounds() {
        let mut rng = Rng::seed(2);
        let t = kaiming_uniform(&[64, 64], 64, &mut rng);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
        assert!(t.std() > 0.0);
    }
}
