//! Fully connected (dense) layer.

use crate::init::xavier_uniform;
use crate::param::{Fwd, ParamId, ParamSet};
use lttf_autograd::Var;
use lttf_tensor::Rng;

/// A dense layer `y = x W + b` applied over the last axis.
///
/// Accepts 2-D `[n, in]` or 3-D `[batch, len, in]` inputs.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Allocate a linear layer with bias.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut Rng,
    ) -> Self {
        Self::with_bias(ps, name, in_features, out_features, true, rng)
    }

    /// Allocate a linear layer, optionally without bias.
    pub fn with_bias(
        ps: &mut ParamSet,
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        let w = ps.add(
            format!("{name}.weight"),
            xavier_uniform(&[in_features, out_features], in_features, out_features, rng),
        );
        let b = bias.then(|| {
            ps.add(
                format!("{name}.bias"),
                lttf_tensor::Tensor::zeros(&[out_features]),
            )
        });
        Linear {
            w,
            b,
            in_features,
            out_features,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Apply the layer. Input must be 2-D or 3-D with last axis
    /// `in_features`.
    ///
    /// # Panics
    /// Panics on a last-axis mismatch.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> Var<'g> {
        let shape = x.shape();
        assert_eq!(
            *shape
                .last()
                .expect("linear input must have at least 1 axis"),
            self.in_features,
            "linear layer expects last axis {}, got {:?}",
            self.in_features,
            shape
        );
        let w = cx.param(self.w);
        let mut y = x.matmul(w);
        if let Some(b) = self.b {
            y = y.add(cx.param(b));
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSet;
    use lttf_autograd::Graph;
    use lttf_tensor::{Rng, Tensor};

    #[test]
    fn forward_shape_2d_and_3d() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let lin = Linear::new(&mut ps, "l", 4, 3, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let y2 = lin.forward(&cx, g.leaf(Tensor::zeros(&[5, 4])));
        assert_eq!(y2.shape(), vec![5, 3]);
        let y3 = lin.forward(&cx, g.leaf(Tensor::zeros(&[2, 7, 4])));
        assert_eq!(y3.shape(), vec![2, 7, 3]);
    }

    #[test]
    fn bias_shifts_output() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let lin = Linear::new(&mut ps, "l", 2, 2, &mut rng);
        // Set bias to a known value.
        let bias_id = ps.ids().nth(1).unwrap();
        *ps.value_mut(bias_id) = Tensor::from_slice(&[10.0, 20.0]);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let y = lin.forward(&cx, g.leaf(Tensor::zeros(&[1, 2])));
        assert_eq!(y.value().data(), &[10.0, 20.0]);
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        use crate::optim::{Adam, Optimizer};
        // Fit y = 2x with a 1x1 linear layer.
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(1);
        let lin = Linear::new(&mut ps, "l", 1, 1, &mut rng);
        let mut opt = Adam::new(0.1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4, 1]);
        let t = x.mul_scalar(2.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..100 {
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, true, 0);
            let pred = lin.forward(&cx, g.leaf(x.clone()));
            let loss = pred.sub(g.constant(t.clone())).square().mean_all();
            last = loss.value().item();
            first.get_or_insert(last);
            let grads = g.backward(loss);
            let collected = cx.collect_grads(&grads);
            ps.zero_grad();
            ps.apply_grads(collected);
            opt.step(&mut ps);
        }
        assert!(last < 1e-3, "final loss {last}");
        assert!(last < first.unwrap() / 100.0);
    }

    #[test]
    #[should_panic(expected = "expects last axis")]
    fn wrong_input_width_panics() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let lin = Linear::new(&mut ps, "l", 4, 3, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        lin.forward(&cx, g.leaf(Tensor::zeros(&[5, 5])));
    }
}
