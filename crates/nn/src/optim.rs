//! Optimizers: Adam (the paper's choice) and SGD with momentum, plus
//! gradient clipping.

use crate::param::ParamSet;
use lttf_tensor::Tensor;

/// A first-order optimizer over a [`ParamSet`].
pub trait Optimizer {
    /// Apply one update step using the accumulated gradients.
    fn step(&mut self, ps: &mut ParamSet);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Override the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Adam (Kingma & Ba 2015) with the paper's defaults:
/// `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`. Construct with
/// [`Adam::with_weight_decay`] for the decoupled-decay (AdamW) variant.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with default betas and the given learning rate. The paper uses
    /// `1e-4` for Conformer training.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// AdamW (Loshchilov & Hutter 2019): weight decay applied directly to
    /// the parameters, decoupled from the adaptive gradient statistics.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        let mut a = Self::new(lr);
        a.weight_decay = weight_decay;
        a
    }

    fn ensure_state(&mut self, ps: &ParamSet) {
        while self.m.len() < ps.len() {
            let i = self.m.len();
            let shape = ps.params[i].value.shape().to_vec();
            self.m.push(Tensor::zeros(&shape));
            self.v.push(Tensor::zeros(&shape));
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, ps: &mut ParamSet) {
        self.ensure_state(ps);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in ps.params.iter_mut().enumerate() {
            let g = &p.grad;
            // m ← β₁ m + (1−β₁) g ; v ← β₂ v + (1−β₂) g²
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mv, vv), &gv) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(g.data())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            for ((pv, &mv), &vv) in p.value.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                *pv -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *pv);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// SGD with classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD (`momentum = 0`).
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum `μ`: `v ← μv − lr·g ; θ ← θ + v`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, ps: &mut ParamSet) {
        while self.velocity.len() < ps.len() {
            let i = self.velocity.len();
            self.velocity.push(ps.params[i].value.zeros_like());
        }
        for (i, p) in ps.params.iter_mut().enumerate() {
            let vel = &mut self.velocity[i];
            for ((vv, pv), &gv) in vel
                .data_mut()
                .iter_mut()
                .zip(p.value.data_mut().iter_mut())
                .zip(p.grad.data())
            {
                *vv = self.momentum * *vv - self.lr * gv;
                *pv += *vv;
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Global-norm gradient clipping.
pub struct GradClip {
    max_norm: f32,
}

impl GradClip {
    /// Clip gradients so their global L2 norm is at most `max_norm`.
    pub fn new(max_norm: f32) -> Self {
        GradClip { max_norm }
    }

    /// Rescale all gradients in place if the global norm exceeds the bound.
    /// Returns the pre-clip norm.
    pub fn apply(&self, ps: &mut ParamSet) -> f32 {
        let norm = ps.grad_norm();
        if norm > self.max_norm && norm > 0.0 {
            let scale = self.max_norm / norm;
            for p in ps.params.iter_mut() {
                p.grad.scale_assign(scale);
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_tensor::Tensor;

    /// Minimize f(x) = Σ (x − c)² with each optimizer.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let target = Tensor::from_slice(&[3.0, -2.0, 0.5]);
        let mut ps = ParamSet::new();
        let x = ps.add("x", Tensor::zeros(&[3]));
        for _ in 0..steps {
            // grad = 2(x − c)
            let g = ps.value(x).sub(&target).mul_scalar(2.0);
            ps.zero_grad();
            ps.accumulate_grad(x, &g);
            opt.step(&mut ps);
        }
        ps.value(x).sub(&target).square().sum()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let loss = quadratic_descent(&mut opt, 200);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let loss = quadratic_descent(&mut opt, 200);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let loss = quadratic_descent(&mut opt, 200);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    fn weight_decay_shrinks_unused_parameters() {
        // With zero gradients, AdamW still pulls weights toward zero while
        // plain Adam leaves them alone.
        let mut ps = ParamSet::new();
        let x = ps.add("x", Tensor::from_slice(&[1.0, -2.0]));
        ps.zero_grad();
        let mut adamw = Adam::with_weight_decay(0.1, 0.1);
        for _ in 0..10 {
            adamw.step(&mut ps);
        }
        let decayed = ps.value(x).abs().sum();
        assert!(decayed < 3.0, "no decay applied: {decayed}");

        let mut ps2 = ParamSet::new();
        let y = ps2.add("y", Tensor::from_slice(&[1.0, -2.0]));
        ps2.zero_grad();
        let mut adam = Adam::new(0.1);
        for _ in 0..10 {
            adam.step(&mut ps2);
        }
        assert_eq!(ps2.value(y).data(), &[1.0, -2.0]);
    }

    #[test]
    fn adamw_still_converges() {
        let mut opt = Adam::with_weight_decay(0.1, 0.01);
        let loss = quadratic_descent(&mut opt, 200);
        assert!(loss < 1e-2, "loss {loss}");
    }

    #[test]
    fn lr_get_set() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }

    #[test]
    fn grad_clip_rescales() {
        let mut ps = ParamSet::new();
        let x = ps.add("x", Tensor::zeros(&[2]));
        ps.accumulate_grad(x, &Tensor::from_slice(&[3.0, 4.0])); // norm 5
        let clip = GradClip::new(1.0);
        let pre = clip.apply(&mut ps);
        assert_eq!(pre, 5.0);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-5);
        // direction preserved
        let g = ps.grad(x);
        assert!((g.data()[0] / g.data()[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn grad_clip_noop_below_bound() {
        let mut ps = ParamSet::new();
        let x = ps.add("x", Tensor::zeros(&[2]));
        ps.accumulate_grad(x, &Tensor::from_slice(&[0.3, 0.4]));
        GradClip::new(1.0).apply(&mut ps);
        assert_eq!(ps.grad(x).data(), &[0.3, 0.4]);
    }

    #[test]
    fn adam_handles_params_added_later() {
        let mut ps = ParamSet::new();
        let a = ps.add("a", Tensor::zeros(&[1]));
        let mut opt = Adam::new(0.1);
        ps.zero_grad();
        ps.accumulate_grad(a, &Tensor::from_slice(&[1.0]));
        opt.step(&mut ps);
        let b = ps.add("b", Tensor::zeros(&[1]));
        ps.zero_grad();
        ps.accumulate_grad(b, &Tensor::from_slice(&[1.0]));
        opt.step(&mut ps); // must not panic
        assert!(ps.value(b).data()[0] < 0.0);
    }
}
