//! Series decomposition (paper Eq. 9): split a series into a stationary
//! trend (moving average) and an instant/seasonal residual.

use lttf_autograd::Var;

/// The decomposition block `X_t = AvgPool(Padding(X)); X_s = X − X_t`.
///
/// Operates on `[batch, len, d]` variables along the time axis (axis 1).
/// The moving average uses replicate padding so the output lengths match
/// the input, exactly as Autoformer/Conformer implement it.
#[derive(Clone, Copy)]
pub struct SeriesDecomp {
    kernel: usize,
}

impl SeriesDecomp {
    /// A decomposition block with moving-average window `kernel`.
    ///
    /// # Panics
    /// Panics if `kernel` is zero.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel >= 1, "decomposition kernel must be >= 1");
        SeriesDecomp { kernel }
    }

    /// The moving-average window.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Split `x` (shape `[batch, len, d]`) into `(seasonal, trend)`.
    pub fn forward<'g>(&self, x: Var<'g>) -> (Var<'g>, Var<'g>) {
        let trend = x.moving_avg(1, self.kernel);
        let seasonal = x.sub(trend);
        (seasonal, trend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_autograd::Graph;
    use lttf_tensor::{Rng, Tensor};

    #[test]
    fn reconstruction_identity() {
        // seasonal + trend == input, by construction.
        let g = Graph::new();
        let x = g.leaf(Tensor::randn(&[2, 16, 3], &mut Rng::seed(1)));
        let d = SeriesDecomp::new(5);
        let (s, t) = d.forward(x);
        s.add(t).value().assert_close(&x.value(), 1e-5);
    }

    #[test]
    fn constant_series_is_pure_trend() {
        let g = Graph::new();
        let x = g.leaf(Tensor::full(&[1, 10, 2], 4.0));
        let (s, t) = SeriesDecomp::new(3).forward(x);
        t.value()
            .assert_close(&Tensor::full(&[1, 10, 2], 4.0), 1e-5);
        assert!(s.value().abs().max() < 1e-5);
    }

    #[test]
    fn trend_captures_ramp() {
        // For a linear ramp the interior of the moving average is the ramp
        // itself, so the seasonal part vanishes away from the edges.
        let len = 20;
        let data: Vec<f32> = (0..len).map(|i| i as f32).collect();
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(data, &[1, len, 1]));
        let (s, _) = SeriesDecomp::new(5).forward(x);
        let sv = s.value();
        for i in 3..len - 3 {
            assert!(sv.at(&[0, i, 0]).abs() < 1e-4, "interior residual at {i}");
        }
    }

    #[test]
    fn seasonal_captures_oscillation() {
        // A fast oscillation on a slow trend: the trend output should be
        // smooth (small second difference) while seasonal holds the wiggle.
        let len = 32;
        let data: Vec<f32> = (0..len)
            .map(|i| i as f32 * 0.5 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(data, &[1, len, 1]));
        let (s, t) = SeriesDecomp::new(4).forward(x);
        let (sv, tv) = (s.value(), t.value());
        // seasonal must retain the alternating component
        let mut alternating = 0;
        for i in 8..24 {
            if (sv.at(&[0, i, 0]) > 0.0) != (sv.at(&[0, i + 1, 0]) > 0.0) {
                alternating += 1;
            }
        }
        assert!(alternating > 12, "seasonal lost the oscillation");
        // trend second differences are small in the interior
        for i in 8..22 {
            let dd = tv.at(&[0, i + 2, 0]) - 2.0 * tv.at(&[0, i + 1, 0]) + tv.at(&[0, i, 0]);
            assert!(dd.abs() < 0.3, "trend not smooth at {i}: {dd}");
        }
    }
}
