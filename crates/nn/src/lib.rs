//! # lttf-nn
//!
//! Neural-network building blocks for the Conformer (ICDE 2023)
//! reproduction: parameter management, layers, six attention mechanisms,
//! optimizers, and losses — all on top of [`lttf_autograd`].
//!
//! ## Parameter model
//!
//! Trainable state lives in a [`ParamSet`]; layers hold [`ParamId`] handles
//! created at construction time. A forward pass runs inside an [`Fwd`]
//! context that binds parameters into the current [`Graph`](lttf_autograd::Graph)
//! as leaves and records the binding so gradients can be harvested after
//! `backward`:
//!
//! ```
//! use lttf_autograd::Graph;
//! use lttf_nn::{Adam, Fwd, Linear, Optimizer, ParamSet};
//! use lttf_tensor::{Rng, Tensor};
//!
//! let mut ps = ParamSet::new();
//! let mut rng = Rng::seed(0);
//! let layer = Linear::new(&mut ps, "lin", 4, 2, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! // one SGD step on || layer(x) ||²
//! let g = Graph::new();
//! let cx = Fwd::new(&g, &ps, true, 1);
//! let x = g.leaf(Tensor::randn(&[8, 4], &mut rng));
//! let loss = layer.forward(&cx, x).square().mean_all();
//! let grads = g.backward(loss);
//! let collected = cx.collect_grads(&grads);
//! ps.zero_grad();
//! ps.apply_grads(collected);
//! opt.step(&mut ps);
//! ```
//!
//! ## Attention mechanisms
//!
//! [`MultiHeadAttention`] implements the paper's sliding-window attention
//! plus the five mechanisms it is compared against in Table VI and Fig. 5:
//! full ([Vaswani et al.]), ProbSparse (Informer), LSH (Reformer),
//! log-sparse (LogTrans), and auto-correlation (Autoformer).

#![warn(missing_docs)]

mod decomp;
mod embed;
mod init;
mod linear;
mod loss;
mod norm;
mod optim;
mod param;
mod rnn;
mod schedule;
mod serialize;

pub mod attention;

pub use attention::{AttentionKind, MultiHeadAttention};
pub use decomp::SeriesDecomp;
pub use embed::{positional_encoding, DataEmbedding, TokenEmbedding};
pub use init::{kaiming_uniform, xavier_uniform};
pub use linear::Linear;
pub use loss::{mae_loss, mse_loss, mse_loss_to};
pub use norm::LayerNorm;
pub use optim::{Adam, GradClip, Optimizer, Sgd};
pub use param::{Fwd, ParamId, ParamSet};
pub use rnn::{Gru, GruCell, Lstm, LstmCell, RnnOutput};
pub use schedule::{CosineAnnealing, ExponentialDecay, LrSchedule, StepDecay, Warmup};
pub use serialize::{
    load_params, load_params_with_meta, read_params, read_params_with_meta, save_params,
    save_params_with_meta, write_params, write_params_with_meta,
};
