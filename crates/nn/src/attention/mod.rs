//! Attention mechanisms.
//!
//! Implements the paper's **sliding-window attention** (linear in sequence
//! length) plus the five mechanisms it is compared against in Table VI and
//! Fig. 5:
//!
//! | kind | paper | complexity |
//! |------|-------|------------|
//! | [`AttentionKind::SlidingWindow`] | Conformer (this paper) | O(L·w) |
//! | [`AttentionKind::Full`] | Vaswani et al. | O(L²) |
//! | [`AttentionKind::ProbSparse`] | Informer | O(L log L) |
//! | [`AttentionKind::Lsh`] | Reformer | O(L log L) |
//! | [`AttentionKind::LogSparse`] | LogTrans | O(L log L) scores on a full mask |
//! | [`AttentionKind::AutoCorrelation`] | Autoformer | O(L log L) |
//!
//! All mechanisms share one calling convention: head-folded tensors of
//! shape `[batch·heads, len, d_head]` go in, the same shape comes out.
//! [`MultiHeadAttention`] wraps projection, head folding, dispatch, and the
//! output projection.
//!
//! ### Faithfulness notes (documented deviations)
//!
//! * ProbSparse and LSH pick their sparse structure (top queries / bucket
//!   assignments) from batch-aggregated statistics rather than per batch
//!   row. The per-row variant requires per-row gather, which this
//!   reproduction trades away for simplicity; the asymptotic cost and the
//!   attention structure are unchanged.
//! * Delay candidates in auto-correlation are chosen by FFT on detached
//!   values (as in Autoformer); the delay *weights* are differentiable.

mod autocorr;
mod full;
mod logsparse;
mod lsh;
mod prob;
mod window;

#[cfg(test)]
mod proptests;

pub use full::full_attention;
pub use logsparse::{log_sparse_attention, log_sparse_mask};
pub use lsh::lsh_forward;
pub use window::{
    sliding_window_attention, sliding_window_global_attention, window_forward,
    window_global_backward, window_global_forward,
};

use crate::linear::Linear;
use crate::param::{Fwd, ParamSet};
use lttf_autograd::Var;
use lttf_tensor::Rng;

/// Which attention mechanism to use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttentionKind {
    /// Dense softmax attention, O(L²).
    Full,
    /// The paper's sliding-window attention with window size `w`
    /// (each query attends to `w/2` neighbours on each side plus the
    /// aligned centre). The paper's default is `w = 2`.
    SlidingWindow {
        /// Total window width (neighbours on both sides).
        w: usize,
    },
    /// Longformer's combined pattern: sliding window plus `n_global`
    /// global tokens that attend to (and are attended by) everything.
    /// Complexity O(L·(w + n_global)).
    SlidingWindowGlobal {
        /// Local window width.
        w: usize,
        /// Number of leading global positions.
        n_global: usize,
    },
    /// Informer's ProbSparse attention: only the `factor·ln L` most
    /// "active" queries attend; the rest receive the mean value.
    ProbSparse {
        /// Sampling factor `c` (paper sets 1).
        factor: usize,
    },
    /// Reformer's LSH attention with `n_buckets` hash buckets.
    Lsh {
        /// Number of hash buckets.
        n_buckets: usize,
    },
    /// LogTrans' log-sparse attention: each query sees itself and
    /// exponentially spaced predecessors.
    LogSparse,
    /// Autoformer's auto-correlation: aggregate time-delayed copies of V
    /// weighted by series autocorrelation; `factor·ln L` delays are used.
    AutoCorrelation {
        /// Sampling factor `c` (paper sets 1).
        factor: usize,
    },
}

impl AttentionKind {
    /// A short identifier used in benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            AttentionKind::Full => "full",
            AttentionKind::SlidingWindow { .. } => "sliding-window",
            AttentionKind::SlidingWindowGlobal { .. } => "sliding-window+global",
            AttentionKind::ProbSparse { .. } => "prob-sparse",
            AttentionKind::Lsh { .. } => "lsh",
            AttentionKind::LogSparse => "log-sparse",
            AttentionKind::AutoCorrelation { .. } => "auto-correlation",
        }
    }
}

/// Run an attention mechanism on head-folded tensors
/// `q: [bh, Lq, dh]`, `k, v: [bh, Lk, dh]` → `[bh, Lq, dh]`.
pub fn attend_folded<'g>(
    kind: AttentionKind,
    cx: &Fwd<'g, '_>,
    q: Var<'g>,
    k: Var<'g>,
    v: Var<'g>,
) -> Var<'g> {
    match kind {
        AttentionKind::Full => full::full_attention(q, k, v, None),
        AttentionKind::SlidingWindow { w } => window::sliding_window_attention(q, k, v, w),
        AttentionKind::SlidingWindowGlobal { w, n_global } => {
            window::sliding_window_global_attention(q, k, v, w, n_global)
        }
        AttentionKind::ProbSparse { factor } => prob::prob_sparse_attention(q, k, v, factor),
        AttentionKind::Lsh { n_buckets } => lsh::lsh_attention(cx, q, k, v, n_buckets),
        AttentionKind::LogSparse => logsparse::log_sparse_attention(q, k, v),
        AttentionKind::AutoCorrelation { factor } => {
            autocorr::auto_correlation_attention(q, k, v, factor)
        }
    }
}

/// Multi-head attention: project, fold heads, dispatch to a mechanism,
/// merge heads, project out (paper Eq. 7).
pub struct MultiHeadAttention {
    kind: AttentionKind,
    n_heads: usize,
    d_model: usize,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    dropout: f32,
}

impl MultiHeadAttention {
    /// Allocate the four projections.
    ///
    /// # Panics
    /// Panics unless `n_heads` divides `d_model`.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        kind: AttentionKind,
        d_model: usize,
        n_heads: usize,
        dropout: f32,
        rng: &mut Rng,
    ) -> Self {
        assert_eq!(
            d_model % n_heads,
            0,
            "n_heads {n_heads} must divide d_model {d_model}"
        );
        MultiHeadAttention {
            kind,
            n_heads,
            d_model,
            wq: Linear::new(ps, &format!("{name}.wq"), d_model, d_model, rng),
            wk: Linear::new(ps, &format!("{name}.wk"), d_model, d_model, rng),
            wv: Linear::new(ps, &format!("{name}.wv"), d_model, d_model, rng),
            wo: Linear::new(ps, &format!("{name}.wo"), d_model, d_model, rng),
            dropout,
        }
    }

    /// The configured mechanism.
    pub fn kind(&self) -> AttentionKind {
        self.kind
    }

    /// `[B, L, d] → [B·N, L, d/N]`.
    fn split_heads<'g>(&self, x: Var<'g>) -> Var<'g> {
        let s = x.shape();
        let (b, l) = (s[0], s[1]);
        let dh = self.d_model / self.n_heads;
        x.reshape(&[b, l, self.n_heads, dh])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b * self.n_heads, l, dh])
    }

    /// `[B·N, L, d/N] → [B, L, d]`.
    fn merge_heads<'g>(&self, x: Var<'g>, b: usize) -> Var<'g> {
        let s = x.shape();
        let l = s[1];
        let dh = self.d_model / self.n_heads;
        x.reshape(&[b, self.n_heads, l, dh])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b, l, self.d_model])
    }

    /// Attend `query → key/value`. All inputs `[B, L, d_model]`.
    pub fn forward<'g>(
        &self,
        cx: &Fwd<'g, '_>,
        query: Var<'g>,
        key: Var<'g>,
        value: Var<'g>,
    ) -> Var<'g> {
        let b = query.shape()[0];
        let q = self.split_heads(self.wq.forward(cx, query));
        let k = self.split_heads(self.wk.forward(cx, key));
        let v = self.split_heads(self.wv.forward(cx, value));
        let ctxt = attend_folded(self.kind, cx, q, k, v);
        let merged = self.merge_heads(ctxt, b);
        let out = self.wo.forward(cx, merged);
        cx.dropout(out, self.dropout)
    }

    /// Self-attention convenience: query = key = value = `x`.
    pub fn forward_self<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> Var<'g> {
        self.forward(cx, x, x, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSet;
    use lttf_autograd::Graph;
    use lttf_tensor::{Rng, Tensor};

    fn run_kind(kind: AttentionKind) -> Vec<usize> {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let mha = MultiHeadAttention::new(&mut ps, "a", kind, 16, 4, 0.0, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[2, 12, 16], &mut rng));
        mha.forward_self(&cx, x).shape()
    }

    #[test]
    fn all_kinds_preserve_shape() {
        for kind in [
            AttentionKind::Full,
            AttentionKind::SlidingWindow { w: 2 },
            AttentionKind::ProbSparse { factor: 1 },
            AttentionKind::Lsh { n_buckets: 4 },
            AttentionKind::LogSparse,
            AttentionKind::AutoCorrelation { factor: 1 },
        ] {
            assert_eq!(run_kind(kind), vec![2, 12, 16], "kind {kind:?}");
        }
    }

    #[test]
    fn cross_attention_shapes() {
        // decoder-style: query length != key length
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(1);
        for kind in [
            AttentionKind::Full,
            AttentionKind::SlidingWindow { w: 4 },
            AttentionKind::ProbSparse { factor: 1 },
            AttentionKind::AutoCorrelation { factor: 1 },
        ] {
            let mha = MultiHeadAttention::new(&mut ps, "a", kind, 16, 2, 0.0, &mut rng);
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, false, 0);
            let q = g.leaf(Tensor::randn(&[1, 20, 16], &mut rng));
            let kv = g.leaf(Tensor::randn(&[1, 8, 16], &mut rng));
            let y = mha.forward(&cx, q, kv, kv);
            assert_eq!(y.shape(), vec![1, 20, 16], "kind {kind:?}");
        }
    }

    #[test]
    fn gradients_flow_through_every_kind() {
        for kind in [
            AttentionKind::Full,
            AttentionKind::SlidingWindow { w: 2 },
            AttentionKind::ProbSparse { factor: 1 },
            AttentionKind::Lsh { n_buckets: 2 },
            AttentionKind::LogSparse,
            AttentionKind::AutoCorrelation { factor: 1 },
        ] {
            let mut ps = ParamSet::new();
            let mut rng = Rng::seed(2);
            let mha = MultiHeadAttention::new(&mut ps, "a", kind, 8, 2, 0.0, &mut rng);
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, true, 0);
            let x = g.leaf(Tensor::randn(&[1, 10, 8], &mut rng));
            let loss = mha.forward_self(&cx, x).square().sum_all();
            let grads = g.backward(loss);
            let collected = cx.collect_grads(&grads);
            ps.zero_grad();
            ps.apply_grads(collected);
            let total: f32 = ps.ids().map(|id| ps.grad(id).abs().sum()).sum();
            assert!(total > 0.0, "no gradient for {kind:?}");
            assert!(total.is_finite(), "non-finite gradient for {kind:?}");
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn head_mismatch_panics() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        MultiHeadAttention::new(&mut ps, "a", AttentionKind::Full, 10, 3, 0.0, &mut rng);
    }
}
