//! Dense (full) scaled-dot-product attention — the Vaswani et al. baseline.

use lttf_autograd::Var;
use lttf_tensor::Tensor;

/// Full attention on head-folded tensors:
/// `softmax(QKᵀ/√d + mask) V`, with an optional additive mask of shape
/// `[Lq, Lk]` (−∞-style entries disable positions).
pub fn full_attention<'g>(q: Var<'g>, k: Var<'g>, v: Var<'g>, mask: Option<&Tensor>) -> Var<'g> {
    let dh = *q.shape().last().expect("q must have a feature axis");
    let scale = 1.0 / (dh as f32).sqrt();
    let mut scores = q.matmul(k.swap_axes(1, 2)).mul_scalar(scale);
    if let Some(m) = mask {
        let g = q.graph();
        let lq = scores.shape()[1];
        let lk = scores.shape()[2];
        assert_eq!(m.shape(), &[lq, lk], "attention mask must be [Lq, Lk]");
        scores = scores.add(g.constant(m.reshape(&[1, lq, lk])));
    }
    scores.softmax(-1).matmul(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_autograd::Graph;
    use lttf_tensor::{Rng, Tensor};

    #[test]
    fn uniform_attention_averages_values() {
        // Identical queries/keys ⇒ uniform weights ⇒ output = mean of V.
        let g = Graph::new();
        let q = g.leaf(Tensor::ones(&[1, 3, 4]));
        let k = g.leaf(Tensor::ones(&[1, 3, 4]));
        let v = g.leaf(Tensor::from_vec(
            (0..12).map(|x| x as f32).collect(),
            &[1, 3, 4],
        ));
        let out = full_attention(q, k, v, None).value();
        let mean = v.value().mean_axis_keepdim(1);
        for i in 0..3 {
            out.narrow(1, i, 1).assert_close(&mean, 1e-5);
        }
    }

    #[test]
    fn sharp_attention_selects_matching_key() {
        // One key aligned with the query and scaled up ⇒ output ≈ its value.
        let g = Graph::new();
        let mut qd = Tensor::zeros(&[1, 1, 2]);
        qd.set(&[0, 0, 0], 10.0);
        let mut kd = Tensor::zeros(&[1, 3, 2]);
        kd.set(&[0, 1, 0], 10.0); // key 1 matches strongly
        let v = Tensor::from_vec(vec![1.0, 1.0, 5.0, 5.0, 9.0, 9.0], &[1, 3, 2]);
        let out = full_attention(g.leaf(qd), g.leaf(kd), g.leaf(v), None).value();
        assert!((out.at(&[0, 0, 0]) - 5.0).abs() < 1e-2, "{out:?}");
    }

    #[test]
    fn mask_disables_positions() {
        let g = Graph::new();
        let mut rng = Rng::seed(1);
        let q = g.leaf(Tensor::randn(&[1, 2, 4], &mut rng));
        let k = g.leaf(Tensor::randn(&[1, 3, 4], &mut rng));
        let v = g.leaf(Tensor::randn(&[1, 3, 4], &mut rng));
        // Only key 0 allowed for every query.
        let mut mask = Tensor::full(&[2, 3], -1e9);
        mask.set(&[0, 0], 0.0);
        mask.set(&[1, 0], 0.0);
        let out = full_attention(q, k, v, Some(&mask)).value();
        let v0 = v.value().narrow(1, 0, 1);
        out.narrow(1, 0, 1).assert_close(&v0, 1e-4);
        out.narrow(1, 1, 1).assert_close(&v0, 1e-4);
    }

    #[test]
    fn output_rows_are_convex_combinations() {
        let g = Graph::new();
        let mut rng = Rng::seed(2);
        let q = g.leaf(Tensor::randn(&[2, 4, 3], &mut rng));
        let k = g.leaf(Tensor::randn(&[2, 5, 3], &mut rng));
        let v = g.leaf(Tensor::randn(&[2, 5, 3], &mut rng));
        let out = full_attention(q, k, v, None).value();
        let vv = v.value();
        // each output element is within [min V, max V] per batch/feature lane
        for b in 0..2 {
            for f in 0..3 {
                let col: Vec<f32> = (0..5).map(|t| vv.at(&[b, t, f])).collect();
                let (lo, hi) = (
                    col.iter().cloned().fold(f32::INFINITY, f32::min),
                    col.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
                );
                for t in 0..4 {
                    let o = out.at(&[b, t, f]);
                    assert!(o >= lo - 1e-4 && o <= hi + 1e-4);
                }
            }
        }
    }
}
