//! Autoformer's auto-correlation mechanism: instead of point-wise
//! attention, aggregate time-delayed copies of the values weighted by the
//! series' autocorrelation at the top-k delays.
//!
//! Delay *candidates* are found with FFT on detached values (exactly how
//! Autoformer does it); the per-delay *weights* are computed
//! differentiably in the time domain as `mean_t,d (Q ⊙ roll(K, τ))` and
//! softmax-normalized.

use lttf_autograd::Var;
use lttf_fft::top_k_periods;

/// Cyclic-roll index list: `out[t] = (t + tau) mod len`.
fn roll_indices(len: usize, tau: usize) -> Vec<usize> {
    (0..len).map(|t| (t + tau) % len).collect()
}

/// Auto-correlation "attention" on head-folded tensors
/// (`q, k, v: [bh, L, dh]`). Cross-attention inputs are length-aligned by
/// truncation / zero-padding of K and V, as in Autoformer.
pub fn auto_correlation_attention<'g>(
    q: Var<'g>,
    k: Var<'g>,
    v: Var<'g>,
    factor: usize,
) -> Var<'g> {
    let (bh, lq, _dh) = {
        let s = q.shape();
        (s[0], s[1], s[2])
    };
    let lk = k.shape()[1];
    // Length-align K and V to the query length.
    let (k, v) = if lk == lq {
        (k, v)
    } else if lk > lq {
        (k.narrow(1, 0, lq), v.narrow(1, 0, lq))
    } else {
        (k.pad_axis(1, 0, lq - lk), v.pad_axis(1, 0, lq - lk))
    };

    // Top-k delay candidates from the detached, aggregated query series.
    let topk = ((factor.max(1) as f32) * (lq as f32).ln().max(1.0)).ceil() as usize;
    let topk = topk.clamp(1, lq.saturating_sub(1).max(1));
    let delays = {
        let qv = q.value();
        // aggregate over batch·head and features → one series of length L
        let series: Vec<f32> = (0..lq)
            .map(|t| {
                let mut s = 0.0;
                for b in 0..bh {
                    s += qv.narrow(0, b, 1).narrow(1, t, 1).sum();
                }
                s
            })
            .collect();
        let mut d = top_k_periods(&series, topk);
        if d.is_empty() {
            d.push(1);
        }
        d
    };

    // Differentiable delay weights: w_τ = mean(Q ⊙ roll(K, τ)) per bh row.
    let mut weight_parts: Vec<Var<'g>> = Vec::with_capacity(delays.len());
    let mut rolled_vs: Vec<Var<'g>> = Vec::with_capacity(delays.len());
    for &tau in &delays {
        let idx = roll_indices(lq, tau);
        let k_rolled = k.select(1, &idx);
        let score = q.mul(k_rolled).mean_axis_keepdim(1).mean_axis_keepdim(2); // [bh, 1, 1]
        weight_parts.push(score);
        rolled_vs.push(v.select(1, &idx));
    }
    let weights = Var::concat(&weight_parts, 1).softmax(1); // [bh, topk, 1]

    // Weighted sum of rolled values.
    let mut out: Option<Var<'g>> = None;
    for (i, v_rolled) in rolled_vs.into_iter().enumerate() {
        let w = weights.narrow(1, i, 1); // [bh, 1, 1] broadcasts over [bh, L, dv]
        let term = v_rolled.mul(w);
        out = Some(match out {
            Some(acc) => acc.add(term),
            None => term,
        });
    }
    out.expect("at least one delay")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_autograd::Graph;
    use lttf_tensor::{Rng, Tensor};

    #[test]
    fn roll_indices_wrap() {
        assert_eq!(roll_indices(4, 1), vec![1, 2, 3, 0]);
        assert_eq!(roll_indices(4, 0), vec![0, 1, 2, 3]);
        assert_eq!(roll_indices(4, 5), vec![1, 2, 3, 0]);
    }

    #[test]
    fn shape_preserved_self() {
        let g = Graph::new();
        let mut rng = Rng::seed(1);
        let q = g.leaf(Tensor::randn(&[2, 24, 4], &mut rng));
        let k = g.leaf(Tensor::randn(&[2, 24, 4], &mut rng));
        let v = g.leaf(Tensor::randn(&[2, 24, 4], &mut rng));
        assert_eq!(
            auto_correlation_attention(q, k, v, 1).shape(),
            vec![2, 24, 4]
        );
    }

    #[test]
    fn shape_preserved_cross_short_kv() {
        let g = Graph::new();
        let mut rng = Rng::seed(2);
        let q = g.leaf(Tensor::randn(&[1, 16, 4], &mut rng));
        let k = g.leaf(Tensor::randn(&[1, 8, 4], &mut rng));
        let v = g.leaf(Tensor::randn(&[1, 8, 4], &mut rng));
        assert_eq!(
            auto_correlation_attention(q, k, v, 1).shape(),
            vec![1, 16, 4]
        );
    }

    #[test]
    fn output_is_convex_combination_of_rolled_values() {
        // Weights softmax to 1, so a constant V must pass through unchanged.
        let g = Graph::new();
        let mut rng = Rng::seed(3);
        let q = g.leaf(Tensor::randn(&[1, 12, 3], &mut rng));
        let k = g.leaf(Tensor::randn(&[1, 12, 3], &mut rng));
        let v = g.leaf(Tensor::full(&[1, 12, 3], 2.5));
        let out = auto_correlation_attention(q, k, v, 2).value();
        out.assert_close(&Tensor::full(&[1, 12, 3], 2.5), 1e-4);
    }

    #[test]
    fn periodic_series_picks_its_period() {
        // Q = K = a period-8 wave; the dominant delay must be 8, so
        // V rolled by 8 (identical to V for a period-8 V) dominates.
        let l = 32;
        let wave: Vec<f32> = (0..l)
            .map(|t| (2.0 * std::f32::consts::PI * t as f32 / 8.0).sin())
            .collect();
        let g = Graph::new();
        let qk = Tensor::from_vec(wave.clone(), &[1, l, 1]);
        let v = Tensor::from_vec(wave, &[1, l, 1]);
        let out = auto_correlation_attention(g.leaf(qk.clone()), g.leaf(qk), g.leaf(v.clone()), 1)
            .value();
        // rolling a period-8 series by multiples of 8 is identity, so the
        // output should look very much like V itself.
        let corr: f32 = (0..l)
            .map(|t| out.at(&[0, t, 0]) * v.at(&[0, t, 0]))
            .sum::<f32>()
            / (0..l).map(|t| v.at(&[0, t, 0]).powi(2)).sum::<f32>();
        assert!(corr > 0.7, "correlation with V is only {corr}");
    }

    #[test]
    fn gradients_flow() {
        let g = Graph::new();
        let mut rng = Rng::seed(4);
        let q = g.leaf(Tensor::randn(&[1, 10, 3], &mut rng));
        let k = g.leaf(Tensor::randn(&[1, 10, 3], &mut rng));
        let v = g.leaf(Tensor::randn(&[1, 10, 3], &mut rng));
        let grads = g.backward(auto_correlation_attention(q, k, v, 1).square().sum_all());
        assert!(grads.get(q).unwrap().abs().sum() > 0.0);
        assert!(grads.get(k).unwrap().abs().sum() > 0.0);
        assert!(grads.get(v).unwrap().abs().sum() > 0.0);
    }
}
