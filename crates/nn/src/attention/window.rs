//! The paper's sliding-window attention (Section IV-B), implemented as a
//! fused banded kernel with a hand-written backward pass.
//!
//! Each query position attends only to the keys inside a window of width
//! `w` around its (length-aligned) centre, so both time and memory are
//! O(L·w) — this is the op that Fig. 5 benchmarks against the O(L²) and
//! O(L log L) alternatives.

use lttf_autograd::Var;
use lttf_parallel::{par_chunks_mut, par_chunks_mut_zip3};
use lttf_tensor::Tensor;

/// Minimum per-call score-evaluation count before the batched-head loops
/// are dispatched to the worker pool.
const PAR_MIN_WORK: usize = 32 * 1024;

/// Minimum score-matrix work (`bh·lq·(w+n_global+1)·dh`) before the
/// telemetry span is opened; lower than `lttf_tensor::OBS_MIN_WORK`
/// because the attention kernel is called once per layer per batch, never
/// in a tight loop.
const OBS_MIN_ATTN: usize = 2048;

/// Window bounds for query `i`: `[lo, hi)` over key positions.
///
/// For self-attention (`lq == lk`) the centre is `i`; for cross-attention
/// the centre is rescaled to `i·lk/lq`. The window covers `w/2` keys on
/// each side of the centre, inclusive of the centre itself.
fn window_bounds(i: usize, lq: usize, lk: usize, w: usize) -> (usize, usize) {
    let center = if lq == lk { i } else { i * lk / lq };
    let half = w / 2;
    let lo = center.saturating_sub(half);
    let hi = (center + half + 1).min(lk);
    (lo, hi)
}

/// The key positions query `i` attends to: the `[lo, hi)` band plus, when
/// `n_global > 0`, the Longformer-style global prefix `[0, n_global)`.
/// Global queries (`i < n_global`) attend to every key.
fn key_positions(i: usize, lq: usize, lk: usize, w: usize, n_global: usize, buf: &mut Vec<usize>) {
    buf.clear();
    if i < n_global.min(lk) {
        buf.extend(0..lk);
        return;
    }
    let g = n_global.min(lk);
    buf.extend(0..g);
    let (lo, hi) = window_bounds(i, lq, lk, w);
    for j in lo.max(g)..hi {
        buf.push(j);
    }
    if buf.is_empty() {
        // degenerate: window entirely inside the (empty) global prefix
        let (lo, hi) = window_bounds(i, lq, lk, w);
        buf.extend(lo..hi);
    }
}

/// Compute softmax attention restricted to a width-`w` band.
///
/// * `q`: `[bh, lq, dh]`, `k`/`v`: `[bh, lk, dh]` → output `[bh, lq, dh]`.
///
/// # Panics
/// Panics on rank/shape mismatches or `w == 0`.
pub fn sliding_window_attention<'g>(q: Var<'g>, k: Var<'g>, v: Var<'g>, w: usize) -> Var<'g> {
    sliding_window_global_attention(q, k, v, w, 0)
}

/// Sliding-window attention with `n_global` Longformer-style global
/// tokens: the first `n_global` positions attend to (and are attended by)
/// every position, on top of the local band. Complexity
/// O(L·(w + n_global)).
///
/// # Panics
/// Panics on rank/shape mismatches or `w == 0`.
pub fn sliding_window_global_attention<'g>(
    q: Var<'g>,
    k: Var<'g>,
    v: Var<'g>,
    w: usize,
    n_global: usize,
) -> Var<'g> {
    assert!(w >= 1, "window size must be >= 1");
    let (qv, kv, vv) = (q.value(), k.value(), v.value());
    let out = window_global_forward(&qv, &kv, &vv, w, n_global);
    let g = q.graph();
    g.custom_named("window_attn", out, &[q, k, v], move |ctx| {
        let (qv, kv, vv) = (ctx.inputs[0], ctx.inputs[1], ctx.inputs[2]);
        window_global_backward(qv, kv, vv, ctx.grad, w, n_global)
    })
}

/// Non-autograd forward (exposed for the Fig. 5 efficiency benchmark).
pub fn window_forward(q: &Tensor, k: &Tensor, v: &Tensor, w: usize) -> Tensor {
    window_global_forward(q, k, v, w, 0)
}

/// Non-autograd forward with global tokens.
pub fn window_global_forward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    w: usize,
    n_global: usize,
) -> Tensor {
    let (bh, lq, dh) = (q.shape()[0], q.shape()[1], q.shape()[2]);
    let lk = k.shape()[1];
    assert_eq!(k.shape()[0], bh, "batch mismatch between q and k");
    assert_eq!(v.shape()[1], lk, "k/v length mismatch");
    assert_eq!(k.shape()[2], dh, "q/k feature mismatch");
    let dv = v.shape()[2];
    let span = lttf_obs::span!(
        "window_attn_fwd",
        bh * lq * (w + n_global + 1) * dh >= OBS_MIN_ATTN
    );
    span.bytes((q.numel() + k.numel() + v.numel() + bh * lq * dv) * 4);
    let scale = 1.0 / (dh as f32).sqrt();
    let (qd, kd, vd) = (q.data(), k.data(), v.data());
    let mut out = vec![0.0f32; bh * lq * dv];
    // Each batch-head writes its own output plane, so the heads distribute
    // over the worker pool with bit-identical results at any thread count.
    let plane = |b: usize, oplane: &mut [f32]| {
        let mut scores: Vec<f32> = Vec::new();
        let mut positions: Vec<usize> = Vec::new();
        for i in 0..lq {
            key_positions(i, lq, lk, w, n_global, &mut positions);
            let n = positions.len();
            scores.resize(n, 0.0);
            let qrow = &qd[(b * lq + i) * dh..(b * lq + i + 1) * dh];
            // scores
            let mut max = f32::NEG_INFINITY;
            for (s, &j) in positions.iter().enumerate() {
                let krow = &kd[(b * lk + j) * dh..(b * lk + j + 1) * dh];
                scores[s] = lttf_tensor::simd::dot(qrow, krow) * scale;
                max = max.max(scores[s]);
            }
            // softmax
            let mut z = 0.0;
            for s in scores.iter_mut().take(n) {
                *s = (*s - max).exp();
                z += *s;
            }
            let inv_z = 1.0 / z;
            // weighted sum of values
            let orow = &mut oplane[i * dv..(i + 1) * dv];
            for (s, &j) in positions.iter().enumerate() {
                let a = scores[s] * inv_z;
                let vrow = &vd[(b * lk + j) * dv..(b * lk + j + 1) * dv];
                lttf_tensor::simd::axpy(orow, a, vrow);
            }
        }
    };
    let work = bh * lq * (w + n_global + 1) * dh;
    if bh >= 2 && work >= PAR_MIN_WORK && lttf_parallel::num_threads() > 1 && lq * dv > 0 {
        par_chunks_mut(&mut out, lq * dv, &plane);
    } else {
        for (b, oplane) in out.chunks_mut((lq * dv).max(1)).enumerate() {
            plane(b, oplane);
        }
    }
    Tensor::from_vec(out, &[bh, lq, dv])
}

/// Hand-written backward: recomputes the banded softmax and applies the
/// standard attention gradients within each query's key set. Returns
/// `[dQ, dK, dV]`. Exposed (like [`window_global_forward`]) for benches
/// and the determinism suite.
pub fn window_global_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    gout: &Tensor,
    w: usize,
    n_global: usize,
) -> Vec<Tensor> {
    let (bh, lq, dh) = (q.shape()[0], q.shape()[1], q.shape()[2]);
    let lk = k.shape()[1];
    let dv = v.shape()[2];
    let _span = lttf_obs::span!(
        "window_attn_bwd",
        bh * lq * (w + n_global + 1) * dh >= OBS_MIN_ATTN
    );
    let scale = 1.0 / (dh as f32).sqrt();
    let (qd, kd, vd, gd) = (q.data(), k.data(), v.data(), gout.data());
    let mut gq = vec![0.0f32; bh * lq * dh];
    let mut gk = vec![0.0f32; bh * lk * dh];
    let mut gv = vec![0.0f32; bh * lk * dv];
    // Each batch-head scatters only into its own gq/gk/gv planes, so the
    // three gradient buffers are sliced in lockstep across the pool.
    let plane = |b: usize, gq_p: &mut [f32], gk_p: &mut [f32], gv_p: &mut [f32]| {
        let mut attn: Vec<f32> = Vec::new();
        let mut dattn: Vec<f32> = Vec::new();
        let mut positions: Vec<usize> = Vec::new();
        for i in 0..lq {
            key_positions(i, lq, lk, w, n_global, &mut positions);
            let n = positions.len();
            attn.resize(n, 0.0);
            dattn.resize(n, 0.0);
            let qrow = &qd[(b * lq + i) * dh..(b * lq + i + 1) * dh];
            let grow = &gd[(b * lq + i) * dv..(b * lq + i + 1) * dv];
            // recompute softmax weights
            let mut max = f32::NEG_INFINITY;
            for (s, &j) in positions.iter().enumerate() {
                let krow = &kd[(b * lk + j) * dh..(b * lk + j + 1) * dh];
                attn[s] = lttf_tensor::simd::dot(qrow, krow) * scale;
                max = max.max(attn[s]);
            }
            let mut z = 0.0;
            for a in attn.iter_mut().take(n) {
                *a = (*a - max).exp();
                z += *a;
            }
            for a in attn.iter_mut().take(n) {
                *a /= z;
            }
            // dV and dA
            let mut dot_sum = 0.0;
            for (s, &j) in positions.iter().enumerate() {
                let vrow = &vd[(b * lk + j) * dv..(b * lk + j + 1) * dv];
                let da = lttf_tensor::simd::dot(grow, vrow);
                dattn[s] = da;
                dot_sum += attn[s] * da;
                let gvrow = &mut gv_p[j * dv..(j + 1) * dv];
                lttf_tensor::simd::axpy(gvrow, attn[s], grow);
            }
            // softmax backward → dscores, then dQ/dK
            let gqrow = &mut gq_p[i * dh..(i + 1) * dh];
            for (s, &j) in positions.iter().enumerate() {
                let ds = attn[s] * (dattn[s] - dot_sum) * scale;
                if ds == 0.0 {
                    continue;
                }
                let krow = &kd[(b * lk + j) * dh..(b * lk + j + 1) * dh];
                let gkrow = &mut gk_p[j * dh..(j + 1) * dh];
                lttf_tensor::simd::axpy(gqrow, ds, krow);
                lttf_tensor::simd::axpy(gkrow, ds, qrow);
            }
        }
    };
    let work = bh * lq * (w + n_global + 1) * dh;
    if bh >= 2
        && work >= PAR_MIN_WORK
        && lttf_parallel::num_threads() > 1
        && lq * dh > 0
        && lk * dh > 0
        && lk * dv > 0
    {
        par_chunks_mut_zip3(
            &mut gq,
            lq * dh,
            &mut gk,
            lk * dh,
            &mut gv,
            lk * dv,
            &plane,
        );
    } else {
        for b in 0..bh {
            plane(
                b,
                &mut gq[b * lq * dh..(b + 1) * lq * dh],
                &mut gk[b * lk * dh..(b + 1) * lk * dh],
                &mut gv[b * lk * dv..(b + 1) * lk * dv],
            );
        }
    }
    vec![
        Tensor::from_vec(gq, &[bh, lq, dh]),
        Tensor::from_vec(gk, &[bh, lk, dh]),
        Tensor::from_vec(gv, &[bh, lk, dv]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::full::full_attention;
    use lttf_autograd::{check::grad_check, Graph};
    use lttf_tensor::{Rng, Tensor};

    #[test]
    fn window_bounds_self_attention() {
        assert_eq!(window_bounds(0, 8, 8, 2), (0, 2));
        assert_eq!(window_bounds(4, 8, 8, 2), (3, 6));
        assert_eq!(window_bounds(7, 8, 8, 2), (6, 8));
    }

    #[test]
    fn window_bounds_cross_attention_rescales() {
        // 16 queries over 8 keys: query 15 centres at key 7.
        assert_eq!(window_bounds(15, 16, 8, 2), (6, 8));
        assert_eq!(window_bounds(0, 16, 8, 2), (0, 2));
    }

    #[test]
    fn wide_window_matches_full_attention() {
        // With w >= 2L the band covers everything, so the result must equal
        // dense attention exactly.
        let mut rng = Rng::seed(1);
        let q = Tensor::randn(&[2, 6, 4], &mut rng);
        let k = Tensor::randn(&[2, 6, 4], &mut rng);
        let v = Tensor::randn(&[2, 6, 4], &mut rng);
        let g = Graph::new();
        let win =
            sliding_window_attention(g.leaf(q.clone()), g.leaf(k.clone()), g.leaf(v.clone()), 16);
        let full = full_attention(g.leaf(q), g.leaf(k), g.leaf(v), None);
        win.value().assert_close(&full.value(), 1e-4);
    }

    #[test]
    fn narrow_window_is_local() {
        // With w=0 semantics disallowed; w=1 → each query sees only its own
        // centre key (half = 0), so output = v at the centre.
        let mut rng = Rng::seed(2);
        let q = Tensor::randn(&[1, 5, 3], &mut rng);
        let k = Tensor::randn(&[1, 5, 3], &mut rng);
        let v = Tensor::randn(&[1, 5, 3], &mut rng);
        let g = Graph::new();
        let out = sliding_window_attention(g.leaf(q), g.leaf(k), g.leaf(v.clone()), 1);
        out.value().assert_close(&v, 1e-5);
    }

    #[test]
    fn rows_are_convex_combinations_of_window() {
        let mut rng = Rng::seed(3);
        let q = Tensor::randn(&[1, 8, 4], &mut rng);
        let k = Tensor::randn(&[1, 8, 4], &mut rng);
        let v = Tensor::randn(&[1, 8, 4], &mut rng);
        let out = window_forward(&q, &k, &v, 2);
        for i in 0..8 {
            let (lo, hi) = window_bounds(i, 8, 8, 2);
            for f in 0..4 {
                let vals: Vec<f32> = (lo..hi).map(|j| v.at(&[0, j, f])).collect();
                let (mn, mx) = (
                    vals.iter().cloned().fold(f32::INFINITY, f32::min),
                    vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
                );
                let o = out.at(&[0, i, f]);
                assert!(o >= mn - 1e-4 && o <= mx + 1e-4, "i={i} f={f}");
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed(4);
        let q = Tensor::randn(&[1, 5, 3], &mut rng).mul_scalar(0.5);
        let k = Tensor::randn(&[1, 5, 3], &mut rng).mul_scalar(0.5);
        let v = Tensor::randn(&[1, 5, 3], &mut rng).mul_scalar(0.5);
        grad_check(
            &[q, k, v],
            |_, xs| {
                sliding_window_attention(xs[0], xs[1], xs[2], 2)
                    .square()
                    .sum_all()
            },
            3e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn cross_attention_gradients_match_finite_differences() {
        let mut rng = Rng::seed(5);
        let q = Tensor::randn(&[1, 6, 3], &mut rng).mul_scalar(0.5);
        let k = Tensor::randn(&[1, 3, 3], &mut rng).mul_scalar(0.5);
        let v = Tensor::randn(&[1, 3, 3], &mut rng).mul_scalar(0.5);
        grad_check(
            &[q, k, v],
            |_, xs| {
                sliding_window_attention(xs[0], xs[1], xs[2], 2)
                    .square()
                    .sum_all()
            },
            3e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn global_tokens_see_everything() {
        // With n_global = L every query attends everywhere: equals full
        // attention exactly.
        let mut rng = Rng::seed(11);
        let q = Tensor::randn(&[1, 6, 3], &mut rng);
        let k = Tensor::randn(&[1, 6, 3], &mut rng);
        let v = Tensor::randn(&[1, 6, 3], &mut rng);
        let g = Graph::new();
        let win = sliding_window_global_attention(
            g.leaf(q.clone()),
            g.leaf(k.clone()),
            g.leaf(v.clone()),
            1,
            6,
        );
        let full = full_attention(g.leaf(q), g.leaf(k), g.leaf(v), None);
        win.value().assert_close(&full.value(), 1e-4);
    }

    #[test]
    fn global_prefix_changes_distant_rows() {
        // Without global tokens, a far-away key cannot influence row L−1;
        // with key 0 global it can.
        let mut rng = Rng::seed(12);
        let q = Tensor::randn(&[1, 16, 3], &mut rng);
        let k = Tensor::randn(&[1, 16, 3], &mut rng);
        let v0 = Tensor::randn(&[1, 16, 3], &mut rng);
        let mut v1 = v0.clone();
        // perturb only value row 0
        for f in 0..3 {
            let old = v1.at(&[0, 0, f]);
            v1.set(&[0, 0, f], old + 10.0);
        }
        let local0 = window_global_forward(&q, &k, &v0, 2, 0);
        let local1 = window_global_forward(&q, &k, &v1, 2, 0);
        // last row unaffected without global tokens
        for f in 0..3 {
            assert_eq!(local0.at(&[0, 15, f]), local1.at(&[0, 15, f]));
        }
        let glob0 = window_global_forward(&q, &k, &v0, 2, 1);
        let glob1 = window_global_forward(&q, &k, &v1, 2, 1);
        let mut moved = false;
        for f in 0..3 {
            moved |= (glob0.at(&[0, 15, f]) - glob1.at(&[0, 15, f])).abs() > 1e-6;
        }
        assert!(moved, "global token did not reach the last row");
    }

    #[test]
    fn global_attention_gradients_match_finite_differences() {
        let mut rng = Rng::seed(13);
        let q = Tensor::randn(&[1, 6, 3], &mut rng).mul_scalar(0.5);
        let k = Tensor::randn(&[1, 6, 3], &mut rng).mul_scalar(0.5);
        let v = Tensor::randn(&[1, 6, 3], &mut rng).mul_scalar(0.5);
        grad_check(
            &[q, k, v],
            |_, xs| {
                sliding_window_global_attention(xs[0], xs[1], xs[2], 2, 2)
                    .square()
                    .sum_all()
            },
            3e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn gradient_against_full_attention_when_window_covers_all() {
        // Same loss, same gradients when the band is the whole matrix.
        let mut rng = Rng::seed(6);
        let q = Tensor::randn(&[1, 4, 3], &mut rng);
        let k = Tensor::randn(&[1, 4, 3], &mut rng);
        let v = Tensor::randn(&[1, 4, 3], &mut rng);

        let g1 = Graph::new();
        let (q1, k1, v1) = (g1.leaf(q.clone()), g1.leaf(k.clone()), g1.leaf(v.clone()));
        let l1 = sliding_window_attention(q1, k1, v1, 10).square().sum_all();
        let gr1 = g1.backward(l1);

        let g2 = Graph::new();
        let (q2, k2, v2) = (g2.leaf(q), g2.leaf(k), g2.leaf(v));
        let l2 = full_attention(q2, k2, v2, None).square().sum_all();
        let gr2 = g2.backward(l2);

        gr1.get(q1)
            .unwrap()
            .assert_close(gr2.get(q2).unwrap(), 1e-4);
        gr1.get(k1)
            .unwrap()
            .assert_close(gr2.get(k2).unwrap(), 1e-4);
        gr1.get(v1)
            .unwrap()
            .assert_close(gr2.get(v2).unwrap(), 1e-4);
    }
}
