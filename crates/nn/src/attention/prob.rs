//! Informer's ProbSparse attention.
//!
//! Only the `u = factor·⌈ln Lq⌉` queries with the highest sparsity
//! measurement `M(q) = max_j s(q,k_j) − mean_j s(q,k_j)` perform full
//! attention; the remaining queries output the mean of the values (the
//! Informer "lazy query" shortcut for non-causal attention).
//!
//! Deviation from the original: the top-u query set is chosen from
//! batch-aggregated scores (see module docs in `attention`), keeping the
//! structure and asymptotics while avoiding per-batch gathers.

use crate::attention::full::full_attention;
use lttf_autograd::Var;

/// ProbSparse attention on head-folded tensors.
pub fn prob_sparse_attention<'g>(q: Var<'g>, k: Var<'g>, v: Var<'g>, factor: usize) -> Var<'g> {
    let (bh, lq, _dh) = {
        let s = q.shape();
        (s[0], s[1], s[2])
    };
    let lk = k.shape()[1];
    let u = (factor.max(1) as f32 * (lq as f32).ln().max(1.0)).ceil() as usize;
    let u = u.clamp(1, lq);
    if u == lq {
        // Every query is active: identical to full attention.
        return full_attention(q, k, v, None);
    }

    // Sparsity measurement from detached values, aggregated over the
    // batch·head axis.
    let active = {
        let qv = q.value();
        let kv = k.value();
        let dh = qv.shape()[2];
        let scale = 1.0 / (dh as f32).sqrt();
        let scores = qv.matmul(&kv.swap_axes(1, 2)).mul_scalar(scale); // [bh, lq, lk]
        let max = scores.max_axis(-1); // [bh, lq]
        let mean = scores.mean_axis(-1); // [bh, lq]
        let m = max.sub(&mean).mean_axis(0); // [lq] aggregated over bh
        let mut idx: Vec<usize> = (0..lq).collect();
        idx.sort_by(|&a, &b| {
            m.data()[b]
                .partial_cmp(&m.data()[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut sel = idx[..u].to_vec();
        sel.sort_unstable();
        sel
    };

    // Active queries attend fully.
    let q_sel = q.select(1, &active); // [bh, u, dh]
    let attn_sel = full_attention(q_sel, k, v, None); // [bh, u, dv]

    // Lazy queries receive mean(V).
    let dv = v.shape()[2];
    let v_mean = v
        .mean_axis_keepdim(1) // [bh, 1, dv]
        .broadcast_to(&[bh, lq, dv]);

    // Scatter: concat [lazy rows | active rows] and select per position.
    let combined = Var::concat(&[v_mean, attn_sel], 1); // [bh, lq + u, dv]
    let mut order = Vec::with_capacity(lq);
    let mut next_active = 0usize;
    for (i, slot) in (0..lq)
        .map(|i| {
            if next_active < active.len() && active[next_active] == i {
                next_active += 1;
                lq + next_active - 1
            } else {
                i
            }
        })
        .enumerate()
    {
        debug_assert!(i < lq);
        order.push(slot);
    }
    let _ = lk;
    combined.select(1, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::full::full_attention;
    use lttf_autograd::Graph;
    use lttf_tensor::{Rng, Tensor};

    #[test]
    fn output_shape() {
        let g = Graph::new();
        let mut rng = Rng::seed(1);
        let q = g.leaf(Tensor::randn(&[2, 20, 4], &mut rng));
        let k = g.leaf(Tensor::randn(&[2, 20, 4], &mut rng));
        let v = g.leaf(Tensor::randn(&[2, 20, 4], &mut rng));
        assert_eq!(prob_sparse_attention(q, k, v, 1).shape(), vec![2, 20, 4]);
    }

    #[test]
    fn small_sequences_fall_back_to_full() {
        // ln(3) ≈ 1.1, u = 2 < 3... use factor large enough to cover all.
        let g = Graph::new();
        let mut rng = Rng::seed(2);
        let q = g.leaf(Tensor::randn(&[1, 3, 4], &mut rng));
        let k = g.leaf(Tensor::randn(&[1, 3, 4], &mut rng));
        let v = g.leaf(Tensor::randn(&[1, 3, 4], &mut rng));
        let sparse = prob_sparse_attention(q, k, v, 5);
        let full = full_attention(q, k, v, None);
        sparse.value().assert_close(&full.value(), 1e-5);
    }

    #[test]
    fn lazy_queries_get_value_mean() {
        // Craft one clearly dominant query (big magnitude), the rest tiny:
        // non-selected rows must equal mean(V).
        let g = Graph::new();
        let lq = 12;
        let mut qd = Tensor::zeros(&[1, lq, 2]);
        qd.set(&[0, 0, 0], 10.0); // query 0 is "active"
        let k = g.leaf(Tensor::randn(&[1, lq, 2], &mut Rng::seed(3)));
        let v = g.leaf(Tensor::randn(&[1, lq, 2], &mut Rng::seed(4)));
        let out = prob_sparse_attention(g.leaf(qd), k, v, 1).value();
        let vmean = v.value().mean_axis(1); // [1, 2]
                                            // u = ceil(ln 12) = 3 selected; at least the flat rows match mean(V).
        let mut mean_rows = 0;
        for i in 0..lq {
            let row = out.narrow(1, i, 1).reshape(&[1, 2]);
            if row.max_abs_diff(&vmean) < 1e-4 {
                mean_rows += 1;
            }
        }
        assert!(mean_rows >= lq - 3, "only {mean_rows} rows are mean(V)");
    }

    #[test]
    fn gradients_flow() {
        let mut rng = Rng::seed(5);
        let g = Graph::new();
        let q = g.leaf(Tensor::randn(&[1, 10, 3], &mut rng));
        let k = g.leaf(Tensor::randn(&[1, 10, 3], &mut rng));
        let v = g.leaf(Tensor::randn(&[1, 10, 3], &mut rng));
        let loss = prob_sparse_attention(q, k, v, 1).square().sum_all();
        let grads = g.backward(loss);
        assert!(grads.get(v).unwrap().abs().sum() > 0.0);
        assert!(grads.get(q).unwrap().abs().sum() > 0.0);
    }
}
