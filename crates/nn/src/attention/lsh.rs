//! Reformer's LSH attention: hash queries/keys into buckets with random
//! hyperplane projections and attend only within buckets.
//!
//! Deviation from the original (documented in the module docs of
//! `attention`): bucket assignments are computed from batch-aggregated
//! projections, and Q/K are hashed with the same random rotation (Reformer
//! shares QK weights, so this matches its spirit).

use crate::attention::full::full_attention;
use crate::param::Fwd;
use lttf_autograd::Var;
use lttf_tensor::Tensor;

/// LSH attention on head-folded tensors. Requires `Lq == Lk` (self-
/// attention); for cross-attention callers should fall back to full
/// attention.
pub fn lsh_attention<'g>(
    cx: &Fwd<'g, '_>,
    q: Var<'g>,
    k: Var<'g>,
    v: Var<'g>,
    n_buckets: usize,
) -> Var<'g> {
    let (lq, dh) = {
        let s = q.shape();
        (s[1], s[2])
    };
    let lk = k.shape()[1];
    if lq != lk || n_buckets <= 1 {
        return full_attention(q, k, v, None);
    }

    // Random rotation hashing from detached values. Positions with the
    // same argmax bucket attend to each other.
    let buckets = {
        let proj = cx.noise(&[dh, n_buckets]);
        let qv = q.value().mean_axis(0); // [lq, dh] aggregated over bh
        let kv = k.value().mean_axis(0);
        let shared = qv.add(&kv).mul_scalar(0.5);
        let rot = shared.matmul(&proj); // [lq, n_buckets]
        (0..lq)
            .map(|i| {
                let row = rot.narrow(0, i, 1);
                row.argmax() % n_buckets
            })
            .collect::<Vec<usize>>()
    };

    // Group positions by bucket and attend within each group.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_buckets];
    for (i, &b) in buckets.iter().enumerate() {
        groups[b].push(i);
    }
    let mut pieces: Vec<Var<'g>> = Vec::new();
    let mut member_order: Vec<usize> = Vec::new();
    for group in groups.iter().filter(|g| !g.is_empty()) {
        let qs = q.select(1, group);
        let ks = k.select(1, group);
        let vs = v.select(1, group);
        pieces.push(full_attention(qs, ks, vs, None));
        member_order.extend_from_slice(group);
    }
    let stacked = Var::concat(&pieces, 1); // [bh, lq, dv] in bucket order
                                           // Invert the permutation to restore time order.
    let mut inverse = vec![0usize; lq];
    for (pos, &orig) in member_order.iter().enumerate() {
        inverse[orig] = pos;
    }
    stacked.select(1, &inverse)
}

/// Non-autograd forward used by the Fig. 5 efficiency benchmark.
pub fn lsh_forward(q: &Tensor, k: &Tensor, v: &Tensor, n_buckets: usize, proj: &Tensor) -> Tensor {
    let (bh, lq, dh) = (q.shape()[0], q.shape()[1], q.shape()[2]);
    let dv = v.shape()[2];
    let shared = q.mean_axis(0).add(&k.mean_axis(0)).mul_scalar(0.5);
    let rot = shared.matmul(proj);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_buckets];
    for i in 0..lq {
        groups[rot.narrow(0, i, 1).argmax() % n_buckets].push(i);
    }
    let scale = 1.0 / (dh as f32).sqrt();
    let mut out = Tensor::zeros(&[bh, lq, dv]);
    for group in groups.iter().filter(|g| !g.is_empty()) {
        let qs = q.select(1, group);
        let ks = k.select(1, group);
        let vs = v.select(1, group);
        let attn = qs
            .matmul(&ks.swap_axes(1, 2))
            .mul_scalar(scale)
            .softmax(-1)
            .matmul(&vs);
        for (gi, &i) in group.iter().enumerate() {
            for b in 0..bh {
                for f in 0..dv {
                    out.set(&[b, i, f], attn.at(&[b, gi, f]));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSet;
    use lttf_autograd::Graph;
    use lttf_tensor::Rng;

    #[test]
    fn shape_preserved() {
        let ps = ParamSet::new();
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 1);
        let mut rng = Rng::seed(2);
        let q = g.leaf(Tensor::randn(&[2, 16, 4], &mut rng));
        let k = g.leaf(Tensor::randn(&[2, 16, 4], &mut rng));
        let v = g.leaf(Tensor::randn(&[2, 16, 4], &mut rng));
        assert_eq!(lsh_attention(&cx, q, k, v, 4).shape(), vec![2, 16, 4]);
    }

    #[test]
    fn single_bucket_equals_full() {
        let ps = ParamSet::new();
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 1);
        let mut rng = Rng::seed(3);
        let q = g.leaf(Tensor::randn(&[1, 8, 4], &mut rng));
        let k = g.leaf(Tensor::randn(&[1, 8, 4], &mut rng));
        let v = g.leaf(Tensor::randn(&[1, 8, 4], &mut rng));
        let a = lsh_attention(&cx, q, k, v, 1).value();
        let b = full_attention(q, k, v, None).value();
        a.assert_close(&b, 1e-5);
    }

    #[test]
    fn bucket_locality_blocks_cross_talk() {
        // Two well-separated clusters of q/k vectors land in different
        // buckets with overwhelming probability, so values do not mix
        // between clusters: every output row must be a convex combination
        // of same-bucket values only. We verify rows equal in-bucket means
        // when q·k ≈ 0 inside the bucket.
        let ps = ParamSet::new();
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 7);
        let l = 8;
        // cluster A: +e0 direction, cluster B: −e0.
        let mut qd = Tensor::zeros(&[1, l, 2]);
        for i in 0..l {
            qd.set(&[0, i, 0], if i < l / 2 { 5.0 } else { -5.0 });
        }
        let kd = qd.clone();
        let mut vd = Tensor::zeros(&[1, l, 1]);
        for i in 0..l {
            vd.set(&[0, i, 0], if i < l / 2 { 1.0 } else { -1.0 });
        }
        let out = lsh_attention(&cx, g.leaf(qd), g.leaf(kd), g.leaf(vd), 2).value();
        // Outputs keep the sign of their own cluster (no cross-mixing).
        for i in 0..l {
            let expect = if i < l / 2 { 1.0 } else { -1.0 };
            assert!(
                (out.at(&[0, i, 0]) - expect).abs() < 0.2,
                "row {i}: {}",
                out.at(&[0, i, 0])
            );
        }
    }

    #[test]
    fn gradients_flow() {
        let ps = ParamSet::new();
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 5);
        let mut rng = Rng::seed(6);
        let q = g.leaf(Tensor::randn(&[1, 12, 4], &mut rng));
        let v = g.leaf(Tensor::randn(&[1, 12, 4], &mut rng));
        let loss = lsh_attention(&cx, q, q, v, 3).square().sum_all();
        let grads = g.backward(loss);
        assert!(grads.get(q).unwrap().abs().sum() > 0.0);
        assert!(grads.get(v).unwrap().abs().sum() > 0.0);
    }
}
