//! LogTrans' log-sparse attention: each query attends to itself and to
//! predecessors at exponentially growing distances (i−1, i−2, i−4, …),
//! realized here as an additive mask on dense scores.

use crate::attention::full::full_attention;
use lttf_autograd::Var;
use lttf_tensor::Tensor;

/// Build the `[lq, lk]` log-sparse additive mask (0 = allowed, −1e9 =
/// blocked). For cross-attention, query positions are rescaled onto the
/// key axis first.
pub fn log_sparse_mask(lq: usize, lk: usize) -> Tensor {
    let mut mask = Tensor::full(&[lq, lk], -1e9);
    for i in 0..lq {
        let center = if lq == lk { i } else { i * lk / lq };
        mask.set(&[i, center], 0.0);
        // successors at +1 keep a minimal forward context
        if center + 1 < lk {
            mask.set(&[i, center + 1], 0.0);
        }
        let mut step = 1usize;
        while step <= center {
            mask.set(&[i, center - step], 0.0);
            step *= 2;
        }
    }
    mask
}

/// Log-sparse attention on head-folded tensors.
pub fn log_sparse_attention<'g>(q: Var<'g>, k: Var<'g>, v: Var<'g>) -> Var<'g> {
    let lq = q.shape()[1];
    let lk = k.shape()[1];
    let mask = log_sparse_mask(lq, lk);
    full_attention(q, k, v, Some(&mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_autograd::Graph;
    use lttf_tensor::Rng;

    #[test]
    fn mask_allows_exponential_predecessors() {
        let m = log_sparse_mask(16, 16);
        // row 8 allows 8 (self), 9 (next), and 8−1, 8−2, 8−4, 8−8.
        for j in [8usize, 9, 7, 6, 4, 0] {
            assert_eq!(m.at(&[8, j]), 0.0, "position {j} should be allowed");
        }
        // 8−3 = 5 and 8−5 = 3 are blocked.
        for j in [5usize, 3, 2] {
            assert!(m.at(&[8, j]) < -1e8, "position {j} should be blocked");
        }
    }

    #[test]
    fn allowed_count_is_logarithmic() {
        let l = 256;
        let m = log_sparse_mask(l, l);
        for i in [0usize, 17, 128, 255] {
            let allowed = (0..l).filter(|&j| m.at(&[i, j]) == 0.0).count();
            assert!(
                allowed <= 2 + (l as f32).log2() as usize + 1,
                "row {i}: {allowed} allowed"
            );
        }
    }

    #[test]
    fn attention_shape_and_grads() {
        let g = Graph::new();
        let mut rng = Rng::seed(1);
        let q = g.leaf(Tensor::randn(&[2, 10, 4], &mut rng));
        let k = g.leaf(Tensor::randn(&[2, 10, 4], &mut rng));
        let v = g.leaf(Tensor::randn(&[2, 10, 4], &mut rng));
        let out = log_sparse_attention(q, k, v);
        assert_eq!(out.shape(), vec![2, 10, 4]);
        let grads = g.backward(out.square().sum_all());
        assert!(grads.get(q).unwrap().abs().sum() > 0.0);
    }

    #[test]
    fn first_row_sees_only_self_and_next() {
        let g = Graph::new();
        let q = g.leaf(Tensor::ones(&[1, 4, 2]));
        let k = g.leaf(Tensor::ones(&[1, 4, 2]));
        // distinct values per position
        let v = g.leaf(Tensor::from_vec(
            vec![1.0, 1.0, 3.0, 3.0, 100.0, 100.0, 200.0, 200.0],
            &[1, 4, 2],
        ));
        let out = log_sparse_attention(q, k, v).value();
        // row 0: uniform over positions {0, 1} → (1+3)/2 = 2
        assert!((out.at(&[0, 0, 0]) - 2.0).abs() < 1e-4, "{out:?}");
    }
}
