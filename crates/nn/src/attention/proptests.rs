//! Property-based tests for the attention mechanisms: the fused banded
//! kernel agrees with a dense masked reference for arbitrary window and
//! global-token configurations, and every mechanism preserves the
//! convex-combination property of softmax attention.

use crate::attention::{full_attention, sliding_window_global_attention, window_global_forward};
use lttf_autograd::Graph;
use lttf_tensor::{Rng, Tensor};
use lttf_testkit::{prop_assert, properties};

/// Dense reference for the banded+global pattern: full scores with a
/// −1e9 mask wherever the fused kernel would not look.
fn masked_reference(q: &Tensor, k: &Tensor, v: &Tensor, w: usize, n_global: usize) -> Tensor {
    let l = q.shape()[1];
    let half = w / 2;
    let mut mask = Tensor::full(&[l, l], -1e9);
    for i in 0..l {
        if i < n_global {
            for j in 0..l {
                mask.set(&[i, j], 0.0);
            }
            continue;
        }
        for j in 0..n_global.min(l) {
            mask.set(&[i, j], 0.0);
        }
        for j in i.saturating_sub(half)..(i + half + 1).min(l) {
            mask.set(&[i, j], 0.0);
        }
    }
    let g = Graph::new();
    full_attention(
        g.leaf(q.clone()),
        g.leaf(k.clone()),
        g.leaf(v.clone()),
        Some(&mask),
    )
    .value()
}

properties! {
    cases = 24;

    fn fused_kernel_matches_masked_reference(
        l in 3usize..12,
        w_half in 0usize..4,
        n_global in 0usize..4,
        seed in 0u64..200,
    ) {
        let w = (2 * w_half).max(1);
        let n_global = n_global.min(l);
        let mut rng = Rng::seed(seed);
        let q = Tensor::randn(&[2, l, 3], &mut rng);
        let k = Tensor::randn(&[2, l, 3], &mut rng);
        let v = Tensor::randn(&[2, l, 3], &mut rng);
        let fused = window_global_forward(&q, &k, &v, w, n_global);
        let reference = masked_reference(&q, &k, &v, w, n_global);
        fused.assert_close(&reference, 1e-3);
    }

    fn window_output_bounded_by_value_range(
        l in 2usize..16,
        w in 1usize..6,
        seed in 0u64..100,
    ) {
        let mut rng = Rng::seed(seed);
        let q = Tensor::randn(&[1, l, 4], &mut rng);
        let k = Tensor::randn(&[1, l, 4], &mut rng);
        let v = Tensor::randn(&[1, l, 4], &mut rng);
        let out = window_global_forward(&q, &k, &v, w, 0);
        // softmax attention is a convex combination: global bounds hold
        prop_assert!(out.max() <= v.max() + 1e-4);
        prop_assert!(out.min() >= v.min() - 1e-4);
    }

    fn window_gradients_are_finite(
        l in 3usize..10,
        w in 1usize..4,
        n_global in 0usize..3,
        seed in 0u64..100,
    ) {
        let mut rng = Rng::seed(seed);
        let g = Graph::new();
        let q = g.leaf(Tensor::randn(&[1, l, 3], &mut rng));
        let k = g.leaf(Tensor::randn(&[1, l, 3], &mut rng));
        let v = g.leaf(Tensor::randn(&[1, l, 3], &mut rng));
        let loss = sliding_window_global_attention(q, k, v, w, n_global.min(l))
            .square()
            .sum_all();
        let grads = g.backward(loss);
        for var in [q, k, v] {
            let gt = grads.get(var).expect("gradient present");
            prop_assert!(!gt.has_non_finite());
        }
    }
}
