//! Input embeddings: value (token) embedding via 1-D convolution, fixed
//! sinusoidal positional encoding, and linear time-feature embedding —
//! the standard Informer-style embedding stack shared by all
//! Transformer-family models in this reproduction.

use crate::init::kaiming_uniform;
use crate::linear::Linear;
use crate::param::{Fwd, ParamId, ParamSet};
use lttf_autograd::Var;
use lttf_tensor::{Rng, Tensor};

/// Sinusoidal positional encoding of shape `[len, d_model]`:
/// `PE[t, 2i] = sin(t / 10000^{2i/d})`, `PE[t, 2i+1] = cos(…)`.
pub fn positional_encoding(len: usize, d_model: usize) -> Tensor {
    let mut data = vec![0.0f32; len * d_model];
    for t in 0..len {
        for i in 0..d_model {
            let exponent = (2 * (i / 2)) as f32 / d_model as f32;
            let angle = t as f32 / 10_000f32.powf(exponent);
            data[t * d_model + i] = if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
    Tensor::from_vec(data, &[len, d_model])
}

/// Value embedding: a kernel-3, padding-1 1-D convolution mapping
/// `[batch, len, c_in] → [batch, len, d_model]`.
pub struct TokenEmbedding {
    weight: ParamId,
    c_in: usize,
    d_model: usize,
}

impl TokenEmbedding {
    /// Allocate the embedding convolution.
    pub fn new(ps: &mut ParamSet, name: &str, c_in: usize, d_model: usize, rng: &mut Rng) -> Self {
        let weight = ps.add(
            format!("{name}.conv"),
            kaiming_uniform(&[d_model, c_in, 3], c_in * 3, rng),
        );
        TokenEmbedding {
            weight,
            c_in,
            d_model,
        }
    }

    /// Apply: `[batch, len, c_in] → [batch, len, d_model]`.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> Var<'g> {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "token embedding input must be [b, len, c]");
        assert_eq!(
            shape[2], self.c_in,
            "token embedding expects {} channels, got {:?}",
            self.c_in, shape
        );
        let w = cx.param(self.weight);
        // conv1d wants [b, c, len]
        x.swap_axes(1, 2).conv1d(w, 1, 1).swap_axes(1, 2)
    }

    /// Output width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }
}

/// The combined input embedding
/// `DataEmbedding(x, marks) = TokenEmb(x) + PosEnc + Linear(marks)`,
/// with dropout — the embedding used by Informer/Longformer/Reformer/
/// LogTrans and by Conformer's encoder/decoder inputs.
pub struct DataEmbedding {
    value: TokenEmbedding,
    time: Linear,
    d_model: usize,
    dropout: f32,
    use_position: bool,
}

impl DataEmbedding {
    /// Allocate the embedding stack. `mark_dim` is the number of time
    /// features per step. `use_position=false` matches the paper's
    /// Autoformer configuration ("omit the position embedding").
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        c_in: usize,
        mark_dim: usize,
        d_model: usize,
        dropout: f32,
        use_position: bool,
        rng: &mut Rng,
    ) -> Self {
        DataEmbedding {
            value: TokenEmbedding::new(ps, &format!("{name}.value"), c_in, d_model, rng),
            time: Linear::with_bias(ps, &format!("{name}.time"), mark_dim, d_model, false, rng),
            d_model,
            dropout,
            use_position,
        }
    }

    /// Embed values `x: [b, len, c_in]` with time features
    /// `marks: [b, len, mark_dim]`.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>, marks: Var<'g>) -> Var<'g> {
        let len = x.shape()[1];
        let mut e = self.value.forward(cx, x).add(self.time.forward(cx, marks));
        if self.use_position {
            let pe = positional_encoding(len, self.d_model).reshape(&[1, len, self.d_model]);
            e = e.add(cx.constant(pe));
        }
        cx.dropout(e, self.dropout)
    }

    /// Output width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_autograd::Graph;

    #[test]
    fn positional_encoding_shape_and_range() {
        let pe = positional_encoding(10, 8);
        assert_eq!(pe.shape(), &[10, 8]);
        assert!(pe.max() <= 1.0 && pe.min() >= -1.0);
        // first row: sin(0)=0, cos(0)=1 alternating
        assert_eq!(pe.at(&[0, 0]), 0.0);
        assert_eq!(pe.at(&[0, 1]), 1.0);
    }

    #[test]
    fn positional_encoding_rows_distinct() {
        let pe = positional_encoding(50, 16);
        let a = pe.narrow(0, 3, 1);
        let b = pe.narrow(0, 17, 1);
        assert!(a.max_abs_diff(&b) > 0.1);
    }

    #[test]
    fn token_embedding_shape() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let emb = TokenEmbedding::new(&mut ps, "e", 7, 16, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[2, 12, 7], &mut rng));
        let y = emb.forward(&cx, x);
        assert_eq!(y.shape(), vec![2, 12, 16]);
    }

    #[test]
    fn data_embedding_shape_and_determinism() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(1);
        let emb = DataEmbedding::new(&mut ps, "e", 7, 4, 16, 0.0, true, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[2, 12, 7], &mut rng));
        let m = g.leaf(Tensor::randn(&[2, 12, 4], &mut rng));
        let y1 = emb.forward(&cx, x, m).value();
        assert_eq!(y1.shape(), &[2, 12, 16]);
        let y2 = emb.forward(&cx, x, m).value();
        y1.assert_close(&y2, 0.0);
    }

    #[test]
    fn data_embedding_position_toggle_changes_output() {
        let mut rng = Rng::seed(2);
        let mut ps1 = ParamSet::new();
        let with_pos = DataEmbedding::new(&mut ps1, "e", 3, 2, 8, 0.0, true, &mut rng);
        let mut rng2 = Rng::seed(2);
        let mut ps2 = ParamSet::new();
        let without = DataEmbedding::new(&mut ps2, "e", 3, 2, 8, 0.0, false, &mut rng2);

        let x = Tensor::randn(&[1, 6, 3], &mut Rng::seed(3));
        let m = Tensor::randn(&[1, 6, 2], &mut Rng::seed(4));

        let g1 = Graph::new();
        let c1 = Fwd::new(&g1, &ps1, false, 0);
        let y1 = with_pos
            .forward(&c1, g1.leaf(x.clone()), g1.leaf(m.clone()))
            .value();
        let g2 = Graph::new();
        let c2 = Fwd::new(&g2, &ps2, false, 0);
        let y2 = without.forward(&c2, g2.leaf(x), g2.leaf(m)).value();
        assert!(y1.max_abs_diff(&y2) > 1e-3);
    }
}
