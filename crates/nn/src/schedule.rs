//! Learning-rate schedules.
//!
//! The paper's protocol halves the learning rate each epoch (the Informer
//! convention); cosine and warmup schedules are provided for the extended
//! experiments.

/// A learning-rate schedule: maps a 0-based epoch (or step) index to a
/// multiplier of the base rate.
pub trait LrSchedule {
    /// Multiplier applied to the base learning rate at `epoch`.
    fn factor(&self, epoch: usize) -> f32;

    /// Convenience: the absolute rate at `epoch` for a given base.
    fn lr_at(&self, base: f32, epoch: usize) -> f32 {
        base * self.factor(epoch)
    }
}

/// Exponential decay: `γ^epoch` (γ = 0.5 reproduces the paper's halving).
pub struct ExponentialDecay {
    gamma: f32,
}

impl ExponentialDecay {
    /// Decay with factor `gamma` per epoch.
    ///
    /// # Panics
    /// Panics unless `0 < gamma <= 1`.
    pub fn new(gamma: f32) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        ExponentialDecay { gamma }
    }

    /// The paper's per-epoch halving.
    pub fn halving() -> Self {
        Self::new(0.5)
    }
}

impl LrSchedule for ExponentialDecay {
    fn factor(&self, epoch: usize) -> f32 {
        self.gamma.powi(epoch as i32)
    }
}

/// Step decay: multiply by `gamma` every `every` epochs.
pub struct StepDecay {
    gamma: f32,
    every: usize,
}

impl StepDecay {
    /// Decay by `gamma` each `every` epochs.
    ///
    /// # Panics
    /// Panics if `every == 0` or gamma is outside `(0, 1]`.
    pub fn new(gamma: f32, every: usize) -> Self {
        assert!(every >= 1, "step interval must be >= 1");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        StepDecay { gamma, every }
    }
}

impl LrSchedule for StepDecay {
    fn factor(&self, epoch: usize) -> f32 {
        self.gamma.powi((epoch / self.every) as i32)
    }
}

/// Cosine annealing from 1 down to `min_factor` over `total` epochs.
pub struct CosineAnnealing {
    total: usize,
    min_factor: f32,
}

impl CosineAnnealing {
    /// Anneal over `total` epochs to `min_factor` of the base rate.
    ///
    /// # Panics
    /// Panics if `total == 0`.
    pub fn new(total: usize, min_factor: f32) -> Self {
        assert!(total >= 1, "total epochs must be >= 1");
        CosineAnnealing { total, min_factor }
    }
}

impl LrSchedule for CosineAnnealing {
    fn factor(&self, epoch: usize) -> f32 {
        let t = (epoch.min(self.total)) as f32 / self.total as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_factor + (1.0 - self.min_factor) * cos
    }
}

/// Linear warmup for `warmup` epochs, then an inner schedule.
pub struct Warmup<S> {
    warmup: usize,
    inner: S,
}

impl<S: LrSchedule> Warmup<S> {
    /// Ramp linearly from `1/warmup` to 1 over the first `warmup` epochs,
    /// then follow `inner` (re-indexed from 0).
    pub fn new(warmup: usize, inner: S) -> Self {
        Warmup { warmup, inner }
    }
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn factor(&self, epoch: usize) -> f32 {
        if epoch < self.warmup {
            (epoch + 1) as f32 / self.warmup as f32
        } else {
            self.inner.factor(epoch - self.warmup)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halving_matches_paper_protocol() {
        let s = ExponentialDecay::halving();
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(1), 0.5);
        assert_eq!(s.factor(3), 0.125);
        assert_eq!(s.lr_at(1e-4, 1), 5e-5);
    }

    #[test]
    fn step_decay_plateaus() {
        let s = StepDecay::new(0.1, 3);
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(2), 1.0);
        assert!((s.factor(3) - 0.1).abs() < 1e-7);
        assert!((s.factor(6) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn cosine_endpoints() {
        let s = CosineAnnealing::new(10, 0.1);
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        assert!((s.factor(10) - 0.1).abs() < 1e-6);
        // midpoint is halfway
        let mid = s.factor(5);
        assert!((mid - 0.55).abs() < 1e-5, "mid {mid}");
        // monotone decreasing
        for e in 0..10 {
            assert!(s.factor(e) >= s.factor(e + 1));
        }
    }

    #[test]
    fn warmup_ramps_then_delegates() {
        let s = Warmup::new(4, ExponentialDecay::new(0.5));
        assert_eq!(s.factor(0), 0.25);
        assert_eq!(s.factor(3), 1.0);
        assert_eq!(s.factor(4), 1.0); // inner epoch 0
        assert_eq!(s.factor(5), 0.5); // inner epoch 1
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn invalid_gamma_rejected() {
        ExponentialDecay::new(1.5);
    }
}
