//! Differentiable reductions and softmax.

use crate::graph::Var;
use lttf_tensor::Tensor;

impl<'g> Var<'g> {
    /// Sum of all elements, as a scalar variable. (`sum` in math notation;
    /// named `sum_all` to avoid clashing with axis sums.)
    pub fn sum_all(self) -> Var<'g> {
        let v = self.with_value(|a| Tensor::scalar(a.sum()));
        let shape = self.shape();
        self.g.push(
            "sum_all",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| {
                vec![Tensor::full(&shape, ctx.grad.item())]
            })),
        )
    }

    /// Mean of all elements, as a scalar variable.
    pub fn mean_all(self) -> Var<'g> {
        let n = self.with_value(|a| a.numel());
        self.sum_all().mul_scalar(1.0 / n as f32)
    }

    /// Sum along `axis`, keeping it with extent 1.
    pub fn sum_axis_keepdim(self, axis: isize) -> Var<'g> {
        let v = self.with_value(|a| a.sum_axis_keepdim(axis));
        let shape = self.shape();
        self.g.push(
            "sum_axis_keepdim",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| vec![ctx.grad.broadcast_to(&shape)])),
        )
    }

    /// Mean along `axis`, keeping it with extent 1.
    pub fn mean_axis_keepdim(self, axis: isize) -> Var<'g> {
        let extent = self.with_value(|a| a.size(axis));
        self.sum_axis_keepdim(axis).mul_scalar(1.0 / extent as f32)
    }

    /// Numerically stable softmax along `axis`, with the closed-form
    /// Jacobian-vector backward `dx = y ⊙ (g − Σ(g ⊙ y))`.
    pub fn softmax(self, axis: isize) -> Var<'g> {
        let v = self.with_value(|a| a.softmax(axis));
        self.g.push(
            "softmax",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| {
                let y = ctx.out;
                let gy = ctx.grad.mul(y);
                let s = gy.sum_axis_keepdim(axis);
                vec![gy.sub(&y.mul(&s))]
            })),
        )
    }

    /// Layer-normalize along the last axis with learnable-free statistics:
    /// `(x − μ) / √(σ² + ε)`. Affine scale/shift are applied by callers.
    ///
    /// Implemented as a composite of differentiable primitives, so the
    /// gradient is exact.
    pub fn normalize_last(self, eps: f32) -> Var<'g> {
        let mu = self.mean_axis_keepdim(-1);
        let centered = self.sub(mu);
        let var = centered.square().mean_axis_keepdim(-1);
        let denom = var.add_scalar(eps).sqrt();
        centered.div(denom)
    }
}

#[cfg(test)]
mod tests {
    use crate::check::grad_check;
    use crate::Graph;
    use lttf_tensor::{Rng, Tensor};

    fn sample(shape: &[usize], seed: u64) -> Tensor {
        Tensor::randn(shape, &mut Rng::seed(seed))
    }

    #[test]
    fn sum_all_grad_is_ones() {
        let g = Graph::new();
        let x = g.leaf(sample(&[2, 3], 1));
        let y = x.sum_all();
        let grads = g.backward(y);
        assert_eq!(grads.get(x).unwrap().data(), &[1.0; 6]);
    }

    #[test]
    fn mean_all_grad() {
        let x = sample(&[4], 2);
        grad_check(&[x], |_, xs| xs[0].mean_all().square(), 1e-2).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn sum_axis_grads() {
        let x = sample(&[3, 4], 3);
        grad_check(
            &[x],
            |_, xs| xs[0].sum_axis_keepdim(0).square().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn mean_axis_grads() {
        let x = sample(&[3, 4], 4);
        grad_check(
            &[x],
            |_, xs| xs[0].mean_axis_keepdim(-1).square().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn softmax_grads() {
        let x = sample(&[2, 5], 5);
        grad_check(&[x], |_, xs| xs[0].softmax(-1).square().sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn softmax_grad_of_plain_sum_is_zero() {
        // Σ softmax(x) is constant (=rows), so its gradient must vanish.
        let g = Graph::new();
        let x = g.leaf(sample(&[2, 5], 6));
        let y = x.softmax(-1).sum_all();
        let grads = g.backward(y);
        let gx = grads.get(x).unwrap();
        assert!(gx.abs().max() < 1e-5, "max |grad| = {}", gx.abs().max());
    }

    #[test]
    fn normalize_last_grads() {
        let x = sample(&[2, 6], 7);
        grad_check(
            &[x],
            |_, xs| xs[0].normalize_last(1e-5).square().sum_all(),
            3e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn normalize_last_produces_zero_mean_unit_var() {
        let g = Graph::new();
        let x = g.leaf(sample(&[4, 16], 8).mul_scalar(5.0).add_scalar(3.0));
        let y = x.normalize_last(1e-6).value();
        for r in 0..4 {
            let row = y.narrow(0, r, 1);
            assert!(row.mean().abs() < 1e-4);
            assert!((row.var() - 1.0).abs() < 1e-2);
        }
    }
}
