//! # lttf-autograd
//!
//! Tape-based reverse-mode automatic differentiation over [`lttf_tensor`].
//!
//! ## Model
//!
//! A [`Graph`] is a growing tape of nodes. Each node stores its forward
//! value, the ids of its parents, and (for non-leaf nodes) a backward
//! closure that maps the node's output gradient to per-parent gradients.
//! A [`Var`] is a copyable handle (graph reference + node id).
//!
//! A fresh graph is built for every training step — there is no graph
//! reuse, no in-place mutation, and therefore no stale-state hazards:
//!
//! ```
//! use lttf_autograd::Graph;
//! use lttf_tensor::Tensor;
//!
//! let g = Graph::new();
//! let x = g.leaf(Tensor::from_slice(&[1.0, 2.0, 3.0]));
//! let y = x.square().sum_all(); // y = Σ x²  ⇒  dy/dx = 2x
//! let grads = g.backward(y);
//! assert_eq!(grads.get(x).unwrap().data(), &[2.0, 4.0, 6.0]);
//! ```
//!
//! ## Design notes
//!
//! * Nodes are stored in `RefCell<Vec<_>>` columns (values / parents /
//!   backward fns), so `Var` can be `Copy` and ops can take `&self`.
//! * Backward closures do **not** capture parent tensors; they read them
//!   from the tape at backward time through [`Ctx`]. Only small config
//!   (axes, shapes, masks) is captured.
//! * Broadcasting ops reduce their output gradient back to each parent's
//!   shape by summing over broadcast axes ([`reduce_to_shape`]).
//! * Every op's gradient is verified against central finite differences in
//!   the test suite (see [`check::grad_check`]).

// `Var` mirrors the tensor vocabulary (`add`, `mul`, …) as inherent methods
// rather than operator traits: `Var` is `Copy` and carries a graph lifetime,
// so trait-based operators would add noise without ergonomics gains.
#![allow(clippy::should_implement_trait)]
#![warn(missing_docs)]

mod graph;
mod ops_basic;
mod ops_conv;
mod ops_matmul;
mod ops_reduce;
mod ops_shape;

pub mod check;

pub use graph::{Ctx, Grads, Graph, Var};
pub use ops_basic::reduce_to_shape;

#[cfg(test)]
mod proptests;
