//! Differentiable 1-D convolution and moving average.

use crate::graph::Var;
use lttf_tensor::Tensor;

impl<'g> Var<'g> {
    /// 1-D convolution `[b, c_in, L] * [c_out, c_in, k] → [b, c_out, L']`
    /// with zero padding and stride, differentiable in both input and
    /// weight (bias, when present, is a separate `add`).
    pub fn conv1d(self, weight: Var<'g>, padding: usize, stride: usize) -> Var<'g> {
        let v = self.with_value(|x| weight.with_value(|w| x.conv1d(w, None, padding, stride)));
        let in_shape = self.shape();
        let w_shape = weight.shape();
        self.g.push(
            "conv1d",
            v,
            vec![self.id, weight.id],
            Some(Box::new(move |ctx| {
                let (x, w) = (ctx.inputs[0], ctx.inputs[1]);
                let gx = Tensor::conv1d_backward_input(ctx.grad, w, &in_shape, padding, stride);
                let gw = Tensor::conv1d_backward_weight(ctx.grad, x, &w_shape, padding, stride);
                vec![gx, gw]
            })),
        )
    }

    /// Length-preserving moving average along `axis` with replicate padding
    /// — the differentiable version of [`Tensor::moving_avg`], used by the
    /// series-decomposition block (paper Eq. 9).
    ///
    /// The backward pass distributes each output gradient equally over the
    /// `k` input positions in its window, folding replicate-padding
    /// contributions back onto the edge elements.
    pub fn moving_avg(self, axis: isize, k: usize) -> Var<'g> {
        let v = self.with_value(|t| t.moving_avg(axis, k));
        let shape = self.shape();
        self.g.push(
            "moving_avg",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| {
                let ax = if axis < 0 {
                    (shape.len() as isize + axis) as usize
                } else {
                    axis as usize
                };
                let extent = shape[ax];
                let before = (k - 1) / 2;
                let outer: usize = shape[..ax].iter().product();
                let inner: usize = shape[ax + 1..].iter().product();
                let inv = 1.0 / k as f32;
                let mut grad = Tensor::zeros(&shape);
                let gd = ctx.grad.data();
                let out = grad.data_mut();
                // Output position t averaged padded positions t..t+k; padded
                // position p maps to input clamp(p - before, 0, extent-1).
                for o in 0..outer {
                    for t in 0..extent {
                        for kk in 0..k {
                            let p = t + kk;
                            let src = (p as isize - before as isize).clamp(0, extent as isize - 1)
                                as usize;
                            for i in 0..inner {
                                out[(o * extent + src) * inner + i] +=
                                    gd[(o * extent + t) * inner + i] * inv;
                            }
                        }
                    }
                }
                vec![grad]
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::check::grad_check;
    use lttf_tensor::{Rng, Tensor};

    fn sample(shape: &[usize], seed: u64) -> Tensor {
        Tensor::randn(shape, &mut Rng::seed(seed))
    }

    #[test]
    fn conv1d_grads() {
        let x = sample(&[2, 2, 5], 1);
        let w = sample(&[3, 2, 3], 2);
        grad_check(
            &[x, w],
            |_, xs| xs[0].conv1d(xs[1], 1, 1).square().sum_all(),
            3e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn conv1d_stride_grads() {
        let x = sample(&[1, 1, 8], 3);
        let w = sample(&[2, 1, 2], 4);
        grad_check(
            &[x, w],
            |_, xs| xs[0].conv1d(xs[1], 0, 2).square().sum_all(),
            2e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn moving_avg_grads() {
        let x = sample(&[2, 7, 3], 5);
        grad_check(
            &[x],
            |_, xs| xs[0].moving_avg(1, 3).square().sum_all(),
            2e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn moving_avg_even_window_grads() {
        let x = sample(&[1, 6, 2], 6);
        grad_check(
            &[x],
            |_, xs| xs[0].moving_avg(1, 4).square().sum_all(),
            2e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn moving_avg_last_axis_grads() {
        let x = sample(&[2, 8], 7);
        grad_check(
            &[x],
            |_, xs| xs[0].moving_avg(-1, 3).square().sum_all(),
            2e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }
}
