//! The tape: node storage, `Var` handles, and the backward pass.

use lttf_tensor::Tensor;
use std::cell::RefCell;

/// Context handed to a backward closure.
pub struct Ctx<'a> {
    /// Forward value of this node.
    pub out: &'a Tensor,
    /// Gradient of the loss with respect to this node's output.
    pub grad: &'a Tensor,
    /// Forward values of this node's parents, in registration order.
    pub inputs: Vec<&'a Tensor>,
}

/// A backward closure: maps the output gradient to one gradient per parent.
pub(crate) type BackFn = Box<dyn Fn(&Ctx<'_>) -> Vec<Tensor>>;

/// A dynamic computation graph (tape).
///
/// Create one per forward/backward pass. See the crate docs for the model.
pub struct Graph {
    pub(crate) values: RefCell<Vec<Tensor>>,
    pub(crate) parents: RefCell<Vec<Vec<usize>>>,
    pub(crate) backs: RefCell<Vec<Option<BackFn>>>,
    /// Op name per node (`"leaf"` for leaves); names the per-op backward
    /// telemetry spans (`bwd.<name>`).
    pub(crate) names: RefCell<Vec<&'static str>>,
    /// False for inference graphs: backward closures are dropped at push
    /// time and [`Graph::backward`] is unavailable.
    pub(crate) record: bool,
}

/// A handle to a node in a [`Graph`]. Cheap to copy.
#[derive(Clone, Copy)]
pub struct Var<'g> {
    pub(crate) g: &'g Graph,
    pub(crate) id: usize,
}

/// Gradients produced by [`Graph::backward`], indexed by [`Var`].
pub struct Grads {
    grads: Vec<Option<Tensor>>,
}

impl Grads {
    /// The gradient of the loss with respect to `v`, if `v` influenced it.
    pub fn get(&self, v: Var<'_>) -> Option<&Tensor> {
        self.grads.get(v.id).and_then(|g| g.as_ref())
    }

    /// Take ownership of the gradient for `v`.
    pub fn take(&mut self, v: Var<'_>) -> Option<Tensor> {
        self.grads.get_mut(v.id).and_then(|g| g.take())
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph {
            values: RefCell::new(Vec::new()),
            parents: RefCell::new(Vec::new()),
            backs: RefCell::new(Vec::new()),
            names: RefCell::new(Vec::new()),
            record: true,
        }
    }

    /// An empty **inference** graph: forward values are tracked as usual,
    /// but backward closures are discarded at push time, so no gradient
    /// state (boxed closures, captured buffers) accumulates on the tape.
    /// This is the no-grad mode used by every `predict` path and by the
    /// serving batcher, where thousands of forward passes would otherwise
    /// allocate tape machinery that is never used.
    ///
    /// Calling [`Graph::backward`] on an inference graph panics.
    pub fn inference() -> Self {
        Graph {
            record: false,
            ..Graph::new()
        }
    }

    /// True when this graph records backward closures (i.e. was created
    /// with [`Graph::new`], not [`Graph::inference`]).
    pub fn records_gradients(&self) -> bool {
        self.record
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.values.borrow().len()
    }

    /// True if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a leaf node (an input or parameter). Gradients flow *to*
    /// leaves but not through them.
    pub fn leaf(&self, value: Tensor) -> Var<'_> {
        self.push("leaf", value, Vec::new(), None)
    }

    /// Alias for [`Graph::leaf`] that reads better for non-trainable data.
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.leaf(value)
    }

    /// Push a computed node onto the tape. `name` labels the node's
    /// backward span in the telemetry registry.
    pub(crate) fn push(
        &self,
        name: &'static str,
        value: Tensor,
        parents: Vec<usize>,
        back: Option<BackFn>,
    ) -> Var<'_> {
        let mut values = self.values.borrow_mut();
        let id = values.len();
        values.push(value);
        self.parents.borrow_mut().push(parents);
        self.backs
            .borrow_mut()
            .push(if self.record { back } else { None });
        self.names.borrow_mut().push(name);
        Var { g: self, id }
    }

    /// Register a custom differentiable operation.
    ///
    /// `value` is the precomputed forward output, `parents` the input
    /// variables, and `back` maps the output gradient to one gradient per
    /// parent (same order, same shapes as the parents' values).
    ///
    /// This is the extension point used by fused kernels (e.g. the
    /// sliding-window attention in `lttf-nn`) whose backward passes are
    /// hand-written rather than composed from primitives.
    pub fn custom(
        &self,
        value: Tensor,
        parents: &[Var<'_>],
        back: impl Fn(&Ctx<'_>) -> Vec<Tensor> + 'static,
    ) -> Var<'_> {
        self.custom_named("custom", value, parents, back)
    }

    /// [`Graph::custom`] with an explicit op name, so the fused kernel's
    /// backward time shows up as `bwd.<name>` in `lttf profile` instead of
    /// the anonymous `bwd.custom`.
    pub fn custom_named(
        &self,
        name: &'static str,
        value: Tensor,
        parents: &[Var<'_>],
        back: impl Fn(&Ctx<'_>) -> Vec<Tensor> + 'static,
    ) -> Var<'_> {
        let ids = parents.iter().map(|v| v.id).collect();
        self.push(name, value, ids, Some(Box::new(back)))
    }

    /// Scan every computed node's forward value and aggregate one
    /// [`lttf_obs::TensorHealth`] per op name (leaves are skipped — the
    /// trainer inspects parameters and gradients separately). Names come
    /// back in first-appearance tape order, so the health monitor's log
    /// records follow the forward pass. One pass over the tape's values;
    /// call it at a cadence, not per batch.
    pub fn activation_health(&self) -> Vec<(&'static str, lttf_obs::TensorHealth)> {
        let values = self.values.borrow();
        let names = self.names.borrow();
        let mut order: Vec<&'static str> = Vec::new();
        let mut agg: std::collections::HashMap<&'static str, lttf_obs::TensorHealth> =
            std::collections::HashMap::new();
        for (v, &name) in values.iter().zip(names.iter()) {
            if name == "leaf" {
                continue;
            }
            let h = lttf_obs::TensorHealth::from_slice(v.data());
            match agg.get_mut(name) {
                Some(existing) => *existing = existing.merge(&h),
                None => {
                    order.push(name);
                    agg.insert(name, h);
                }
            }
        }
        order.into_iter().map(|n| (n, agg[n])).collect()
    }

    /// Run reverse-mode accumulation from `root`.
    ///
    /// The root is seeded with a gradient of ones (so a scalar root yields
    /// plain derivatives; a tensor root yields the gradient of its sum).
    pub fn backward(&self, root: Var<'_>) -> Grads {
        let seed = self.values.borrow()[root.id].ones_like();
        self.backward_with_seed(root, seed)
    }

    /// Run reverse-mode accumulation from `root` with an explicit seed
    /// gradient (must have the root's shape).
    ///
    /// # Panics
    /// Panics if the seed shape does not match the root value's shape.
    pub fn backward_with_seed(&self, root: Var<'_>, seed: Tensor) -> Grads {
        assert!(
            self.record,
            "backward on an inference graph (built with Graph::inference)"
        );
        let _span = lttf_obs::span!("backward");
        let values = self.values.borrow();
        let parents = self.parents.borrow();
        let backs = self.backs.borrow();
        let names = self.names.borrow();
        assert_eq!(
            seed.shape(),
            values[root.id].shape(),
            "backward seed shape mismatch"
        );
        let n = values.len();
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        grads[root.id] = Some(seed);
        for id in (0..=root.id).rev() {
            let Some(g) = grads[id].take() else { continue };
            if let Some(back) = &backs[id] {
                let inputs: Vec<&Tensor> = parents[id].iter().map(|&p| &values[p]).collect();
                let ctx = Ctx {
                    out: &values[id],
                    grad: &g,
                    inputs,
                };
                // Per-op backward timing. `scoped` pays a registry lookup
                // per call, which is noise next to a backward closure; it
                // nests under the "backward" span for self-time purposes.
                let op_span = if cfg!(feature = "telemetry") {
                    lttf_obs::scoped("bwd", names[id])
                } else {
                    lttf_obs::SpanGuard::inactive()
                };
                let pgrads = back(&ctx);
                drop(op_span);
                debug_assert_eq!(
                    pgrads.len(),
                    parents[id].len(),
                    "backward fn returned wrong number of gradients"
                );
                for (&pid, pg) in parents[id].iter().zip(pgrads) {
                    debug_assert_eq!(
                        pg.shape(),
                        values[pid].shape(),
                        "gradient shape mismatch for parent node {pid}"
                    );
                    match &mut grads[pid] {
                        Some(existing) => existing.add_assign(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            grads[id] = Some(g);
        }
        Grads { grads }
    }
}

impl<'g> Var<'g> {
    /// The node's forward value (cloned out of the tape).
    pub fn value(&self) -> Tensor {
        self.g.values.borrow()[self.id].clone()
    }

    /// Shape of the node's value.
    pub fn shape(&self) -> Vec<usize> {
        self.g.values.borrow()[self.id].shape().to_vec()
    }

    /// The graph this variable belongs to.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Node id (stable within its graph).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Reconstruct a handle from a graph and a node id previously obtained
    /// via [`Var::id`]. Used by integrations (e.g. parameter binding in
    /// `lttf-nn`) that must store ids rather than borrow-carrying handles.
    ///
    /// # Panics
    /// Panics if `id` is not a node of `g`.
    pub fn from_raw(g: &'g Graph, id: usize) -> Self {
        assert!(
            id < g.len(),
            "node id {id} out of range for graph of {} nodes",
            g.len()
        );
        Var { g, id }
    }

    /// Apply `f` to the forward value without cloning it.
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.g.values.borrow()[self.id])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_round_trip() {
        let g = Graph::new();
        let t = Tensor::from_slice(&[1.0, 2.0]);
        let v = g.leaf(t.clone());
        assert_eq!(v.value().data(), t.data());
        assert_eq!(v.shape(), vec![2]);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn inference_graph_stores_no_closures() {
        let g = Graph::inference();
        assert!(!g.records_gradients());
        let a = g.leaf(Tensor::from_slice(&[1.0, 2.0]));
        let b = g.leaf(Tensor::from_slice(&[3.0, 4.0]));
        let c = a.add(b);
        // Forward values match a recording graph exactly.
        assert_eq!(c.value().data(), &[4.0, 6.0]);
        // No backward closure was kept for any node.
        assert!(g.backs.borrow().iter().all(|b| b.is_none()));
    }

    #[test]
    #[should_panic(expected = "backward on an inference graph")]
    fn backward_on_inference_graph_panics() {
        let g = Graph::inference();
        let v = g.leaf(Tensor::from_slice(&[1.0]));
        let _ = g.backward(v);
    }

    #[test]
    fn backward_on_leaf_is_seed() {
        let g = Graph::new();
        let v = g.leaf(Tensor::from_slice(&[5.0, 6.0]));
        let grads = g.backward(v);
        assert_eq!(grads.get(v).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn custom_seed() {
        let g = Graph::new();
        let v = g.leaf(Tensor::from_slice(&[5.0, 6.0]));
        let grads = g.backward_with_seed(v, Tensor::from_slice(&[2.0, 3.0]));
        assert_eq!(grads.get(v).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "seed shape mismatch")]
    fn wrong_seed_shape_panics() {
        let g = Graph::new();
        let v = g.leaf(Tensor::from_slice(&[5.0, 6.0]));
        g.backward_with_seed(v, Tensor::from_slice(&[1.0]));
    }

    #[test]
    fn gradient_fan_out_accumulates() {
        // y = x + x  ⇒ dy/dx = 2
        let g = Graph::new();
        let x = g.leaf(Tensor::from_slice(&[3.0]));
        let y = x.add(x);
        let grads = g.backward(y);
        assert_eq!(grads.get(x).unwrap().data(), &[2.0]);
    }

    #[test]
    fn custom_op_round_trip() {
        // A user-defined op: y = 3x with backward 3·g.
        let g = Graph::new();
        let x = g.leaf(Tensor::from_slice(&[1.0, 2.0]));
        let y = g.custom(x.value().mul_scalar(3.0), &[x], |ctx| {
            vec![ctx.grad.mul_scalar(3.0)]
        });
        assert_eq!(y.value().data(), &[3.0, 6.0]);
        let grads = g.backward(y);
        assert_eq!(grads.get(x).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn custom_op_sees_parent_values() {
        // backward reads its inputs from the tape rather than captures
        let g = Graph::new();
        let a = g.leaf(Tensor::from_slice(&[2.0]));
        let b = g.leaf(Tensor::from_slice(&[5.0]));
        let y = g.custom(a.value().mul(&b.value()), &[a, b], |ctx| {
            vec![ctx.grad.mul(ctx.inputs[1]), ctx.grad.mul(ctx.inputs[0])]
        });
        let grads = g.backward(y);
        assert_eq!(grads.get(a).unwrap().data(), &[5.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_raw_validates_id() {
        let g = Graph::new();
        Var::from_raw(&g, 3);
    }

    #[test]
    fn activation_health_aggregates_by_op() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_slice(&[1.0, 2.0]));
        let y = x.add(x); // [2, 4]
        let _z = y.add(y); // [4, 8] — same op name, merged with y's stats
        let scan = g.activation_health();
        assert_eq!(scan.len(), 1, "leaves skipped, adds merged");
        let (name, h) = &scan[0];
        assert_eq!(*name, "add");
        assert_eq!(h.count, 4);
        assert!((h.mean - 4.5).abs() < 1e-9);
        assert!(!h.non_finite());
    }

    #[test]
    fn unreached_nodes_have_no_grad() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_slice(&[1.0]));
        let unused = g.leaf(Tensor::from_slice(&[9.0]));
        let y = x.mul_scalar(2.0);
        let grads = g.backward(y);
        assert!(grads.get(unused).is_none());
        assert!(grads.get(x).is_some());
    }
}
