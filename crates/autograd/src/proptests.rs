//! Property-based tests: autograd gradients agree with calculus identities
//! on randomly generated inputs.

use crate::Graph;
use lttf_tensor::Tensor;
use lttf_testkit::prop::{self, Gen};
use lttf_testkit::{prop_assert, properties};

fn arb_vec(n: usize) -> Gen<Vec<f32>> {
    prop::vec_exact(prop::f32s(-3.0..3.0), n)
}

properties! {
    // d/dx Σ (a·x) = a for any constant a (linearity).
    fn linear_gradient_is_coefficient(xs in arb_vec(6), a in -5.0f32..5.0) {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(xs, &[6]));
        let y = x.mul_scalar(a).sum_all();
        let grads = g.backward(y);
        for &v in grads.get(x).unwrap().data() {
            prop_assert!((v - a).abs() < 1e-5);
        }
    }

    // Gradient of sum(x²) is 2x exactly.
    fn quadratic_gradient(xs in arb_vec(8)) {
        let g = Graph::new();
        let t = Tensor::from_vec(xs, &[8]);
        let x = g.leaf(t.clone());
        let y = x.square().sum_all();
        let grads = g.backward(y);
        grads.get(x).unwrap().assert_close(&t.mul_scalar(2.0), 1e-4);
    }

    // Product rule: d/dx Σ(x ⊙ c) = c.
    fn product_rule_with_constant(xs in arb_vec(5), cs in arb_vec(5)) {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(xs, &[5]));
        let c = g.constant(Tensor::from_vec(cs.clone(), &[5]));
        let y = x.mul(c).sum_all();
        let grads = g.backward(y);
        grads.get(x).unwrap().assert_close(&Tensor::from_vec(cs, &[5]), 1e-4);
    }

    // Chain rule through composition: d/dx Σ tanh(x)² = 2 tanh(x)(1 − tanh²(x)).
    fn chain_rule_composition(xs in arb_vec(5)) {
        let g = Graph::new();
        let t = Tensor::from_vec(xs, &[5]);
        let x = g.leaf(t.clone());
        let y = x.tanh().square().sum_all();
        let grads = g.backward(y);
        let th = t.tanh();
        let expect = th.mul_scalar(2.0).mul(&th.square().neg().add_scalar(1.0));
        grads.get(x).unwrap().assert_close(&expect, 1e-4);
    }

    // Gradient is additive over fan-out: f = Σx + Σx ⇒ grad = 2.
    fn fan_out_accumulation(xs in arb_vec(4)) {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(xs, &[4]));
        let y = x.sum_all().add(x.sum_all());
        let grads = g.backward(y);
        for &v in grads.get(x).unwrap().data() {
            prop_assert!((v - 2.0).abs() < 1e-5);
        }
    }

    // Shape ops are gradient-orthogonal: reshape/swap do not change Σx².
    fn shape_ops_preserve_gradients(xs in arb_vec(12)) {
        let t = Tensor::from_vec(xs, &[3, 4]);
        let g1 = Graph::new();
        let x1 = g1.leaf(t.clone());
        let y1 = x1.square().sum_all();
        let direct = g1.backward(y1).take(x1).unwrap();

        let g2 = Graph::new();
        let x2 = g2.leaf(t);
        let y2 = x2.reshape(&[4, 3]).swap_axes(0, 1).square().sum_all();
        let routed = g2.backward(y2).take(x2).unwrap();

        direct.assert_close(&routed, 1e-5);
    }

    // Softmax gradient lanes sum to zero (softmax is shift-invariant).
    fn softmax_gradient_rows_sum_to_zero(xs in arb_vec(10)) {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(xs, &[2, 5]));
        let y = x.softmax(-1).square().sum_all();
        let grads = g.backward(y);
        let gx = grads.get(x).unwrap();
        for r in 0..2 {
            let s: f32 = (0..5).map(|c| gx.at(&[r, c])).sum();
            prop_assert!(s.abs() < 1e-4, "row {r} grad sum {s}");
        }
    }
}
