//! Finite-difference gradient checking.
//!
//! Every differentiable op in this workspace is validated with
//! [`grad_check`]: build the scalar function twice per input element with a
//! central difference, and compare against the analytic gradient from
//! [`Graph::backward`].

use crate::graph::{Graph, Var};
use lttf_tensor::Tensor;

/// Check the analytic gradient of `f` at `inputs` against central finite
/// differences.
///
/// `f` receives a fresh [`Graph`] and one leaf [`Var`] per input tensor and
/// must return a **scalar** variable. `tol` bounds the allowed absolute
/// deviation per element, scaled by `1 + |numeric|` so large gradients get
/// proportional slack.
///
/// Returns `Err` with a diagnostic on the first mismatch.
pub fn grad_check<F>(inputs: &[Tensor], f: F, tol: f32) -> Result<(), String>
where
    F: for<'g> Fn(&'g Graph, &[Var<'g>]) -> Var<'g>,
{
    // Analytic gradients.
    let g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.leaf(t.clone())).collect();
    let out = f(&g, &vars);
    if out.shape() != Vec::<usize>::new() && out.with_value(|t| t.numel()) != 1 {
        return Err(format!(
            "grad_check requires a scalar output, got shape {:?}",
            out.shape()
        ));
    }
    let grads = g.backward(out);
    let analytic: Vec<Option<Tensor>> = vars.iter().map(|&v| grads.get(v).cloned()).collect();

    // Numeric gradients by central differences.
    let eps = 1e-2f32;
    for (i, input) in inputs.iter().enumerate() {
        for j in 0..input.numel() {
            let mut plus = inputs.to_vec();
            plus[i].data_mut()[j] += eps;
            let mut minus = inputs.to_vec();
            minus[i].data_mut()[j] -= eps;
            let fp = eval_scalar(&plus, &f);
            let fm = eval_scalar(&minus, &f);
            let numeric = (fp - fm) / (2.0 * eps);
            let got = analytic[i].as_ref().map(|t| t.data()[j]).unwrap_or(0.0);
            let slack = tol * (1.0 + numeric.abs());
            if (numeric - got).abs() > slack {
                return Err(format!(
                    "gradient mismatch for input {i} element {j}: \
                     numeric {numeric:.6} vs analytic {got:.6} (tol {slack:.6})"
                ));
            }
        }
    }
    Ok(())
}

fn eval_scalar<F>(inputs: &[Tensor], f: &F) -> f32
where
    F: for<'g> Fn(&'g Graph, &[Var<'g>]) -> Var<'g>,
{
    let g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.leaf(t.clone())).collect();
    let out = f(&g, &vars);
    out.with_value(|t| t.item())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_tensor::Rng;

    #[test]
    fn accepts_correct_gradient() {
        let x = Tensor::randn(&[4], &mut Rng::seed(1));
        grad_check(&[x], |_, xs| xs[0].square().sum_all(), 1e-2).unwrap();
    }

    #[test]
    fn rejects_wrong_gradient() {
        // tanh forward with relu-like magnitudes: construct a deliberately
        // wrong gradient by comparing tanh against a detached transform.
        let x = Tensor::randn(&[4], &mut Rng::seed(2));
        // f computes sum(tanh(x)) analytically, but we check with a looser
        // function mismatch: compare against sum(x) numerics by evaluating a
        // *different* function in the numeric branch is not possible here,
        // so instead verify that an absurdly tight tolerance fails for a
        // nonlinear function (finite-difference error exceeds 1e-9).
        let r = grad_check(&[x], |_, xs| xs[0].tanh().exp().sum_all(), 1e-9);
        assert!(r.is_err(), "expected tolerance failure");
    }

    #[test]
    fn rejects_non_scalar_output() {
        let x = Tensor::randn(&[4], &mut Rng::seed(3));
        let r = grad_check(&[x], |_, xs| xs[0].square(), 1e-2);
        assert!(r.is_err());
    }
}
