//! Differentiable element-wise arithmetic and activations.

use crate::graph::Var;
use lttf_tensor::{broadcast_shapes, Tensor};

/// Sum-reduce `grad` back to `shape`, undoing broadcasting.
///
/// Axes that were added by broadcasting are summed away; axes that were
/// stretched from extent 1 are summed and kept with extent 1.
pub fn reduce_to_shape(grad: &Tensor, shape: &[usize]) -> Tensor {
    if grad.shape() == shape {
        return grad.clone();
    }
    let mut g = grad.clone();
    // Sum away leading axes added by broadcasting.
    while g.ndim() > shape.len() {
        g = g.sum_axis(0);
    }
    // Sum (keepdim) axes that were stretched from 1.
    for (axis, (&gs, &ts)) in g.shape().to_vec().iter().zip(shape).enumerate() {
        if ts == 1 && gs != 1 {
            g = g.sum_axis_keepdim(axis as isize);
        }
    }
    assert_eq!(
        g.shape(),
        shape,
        "reduce_to_shape failed: grad {:?} cannot reduce to {:?}",
        grad.shape(),
        shape
    );
    g
}

impl<'g> Var<'g> {
    /// Element-wise addition with broadcasting.
    pub fn add(self, other: Var<'g>) -> Var<'g> {
        let v = self.with_value(|a| other.with_value(|b| a.add(b)));
        let (sa, sb) = (self.shape(), other.shape());
        self.g.push(
            "add",
            v,
            vec![self.id, other.id],
            Some(Box::new(move |ctx| {
                vec![
                    reduce_to_shape(ctx.grad, &sa),
                    reduce_to_shape(ctx.grad, &sb),
                ]
            })),
        )
    }

    /// Element-wise subtraction with broadcasting.
    pub fn sub(self, other: Var<'g>) -> Var<'g> {
        let v = self.with_value(|a| other.with_value(|b| a.sub(b)));
        let (sa, sb) = (self.shape(), other.shape());
        self.g.push(
            "sub",
            v,
            vec![self.id, other.id],
            Some(Box::new(move |ctx| {
                vec![
                    reduce_to_shape(ctx.grad, &sa),
                    reduce_to_shape(&ctx.grad.neg(), &sb),
                ]
            })),
        )
    }

    /// Element-wise multiplication with broadcasting.
    pub fn mul(self, other: Var<'g>) -> Var<'g> {
        let v = self.with_value(|a| other.with_value(|b| a.mul(b)));
        let (sa, sb) = (self.shape(), other.shape());
        self.g.push(
            "mul",
            v,
            vec![self.id, other.id],
            Some(Box::new(move |ctx| {
                let (a, b) = (ctx.inputs[0], ctx.inputs[1]);
                vec![
                    reduce_to_shape(&ctx.grad.mul(b), &sa),
                    reduce_to_shape(&ctx.grad.mul(a), &sb),
                ]
            })),
        )
    }

    /// Element-wise division with broadcasting.
    pub fn div(self, other: Var<'g>) -> Var<'g> {
        let v = self.with_value(|a| other.with_value(|b| a.div(b)));
        let (sa, sb) = (self.shape(), other.shape());
        self.g.push(
            "div",
            v,
            vec![self.id, other.id],
            Some(Box::new(move |ctx| {
                let (a, b) = (ctx.inputs[0], ctx.inputs[1]);
                let ga = ctx.grad.div(b);
                let gb = ctx.grad.mul(a).neg().div(&b.square());
                vec![reduce_to_shape(&ga, &sa), reduce_to_shape(&gb, &sb)]
            })),
        )
    }

    /// Add a scalar.
    pub fn add_scalar(self, s: f32) -> Var<'g> {
        let v = self.with_value(|a| a.add_scalar(s));
        self.g.push(
            "add_scalar",
            v,
            vec![self.id],
            Some(Box::new(|ctx| vec![ctx.grad.clone()])),
        )
    }

    /// Multiply by a scalar.
    pub fn mul_scalar(self, s: f32) -> Var<'g> {
        let v = self.with_value(|a| a.mul_scalar(s));
        self.g.push(
            "mul_scalar",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| vec![ctx.grad.mul_scalar(s)])),
        )
    }

    /// Negation.
    pub fn neg(self) -> Var<'g> {
        self.mul_scalar(-1.0)
    }

    /// Element-wise natural exponential.
    pub fn exp(self) -> Var<'g> {
        let v = self.with_value(|a| a.exp());
        self.g.push(
            "exp",
            v,
            vec![self.id],
            Some(Box::new(|ctx| vec![ctx.grad.mul(ctx.out)])),
        )
    }

    /// Element-wise natural logarithm.
    pub fn ln(self) -> Var<'g> {
        let v = self.with_value(|a| a.ln());
        self.g.push(
            "ln",
            v,
            vec![self.id],
            Some(Box::new(|ctx| vec![ctx.grad.div(ctx.inputs[0])])),
        )
    }

    /// Element-wise square root.
    pub fn sqrt(self) -> Var<'g> {
        let v = self.with_value(|a| a.sqrt());
        self.g.push(
            "sqrt",
            v,
            vec![self.id],
            Some(Box::new(|ctx| {
                // d/dx √x = 1 / (2√x)
                vec![ctx.grad.div(&ctx.out.mul_scalar(2.0))]
            })),
        )
    }

    /// Element-wise square.
    pub fn square(self) -> Var<'g> {
        let v = self.with_value(|a| a.square());
        self.g.push(
            "square",
            v,
            vec![self.id],
            Some(Box::new(|ctx| {
                vec![ctx.grad.mul(&ctx.inputs[0].mul_scalar(2.0))]
            })),
        )
    }

    /// Element-wise absolute value (subgradient 0 at 0).
    pub fn abs(self) -> Var<'g> {
        let v = self.with_value(|a| a.abs());
        self.g.push(
            "abs",
            v,
            vec![self.id],
            Some(Box::new(|ctx| {
                let sign = ctx.inputs[0].map(|x| {
                    if x > 0.0 {
                        1.0
                    } else if x < 0.0 {
                        -1.0
                    } else {
                        0.0
                    }
                });
                vec![ctx.grad.mul(&sign)]
            })),
        )
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(self) -> Var<'g> {
        let v = self.with_value(|a| a.tanh());
        self.g.push(
            "tanh",
            v,
            vec![self.id],
            Some(Box::new(|ctx| {
                // d tanh = 1 - tanh²
                let one_minus = ctx.out.square().neg().add_scalar(1.0);
                vec![ctx.grad.mul(&one_minus)]
            })),
        )
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(self) -> Var<'g> {
        let v = self.with_value(|a| a.sigmoid());
        self.g.push(
            "sigmoid",
            v,
            vec![self.id],
            Some(Box::new(|ctx| {
                // dσ = σ(1-σ)
                let d = ctx.out.mul(&ctx.out.neg().add_scalar(1.0));
                vec![ctx.grad.mul(&d)]
            })),
        )
    }

    /// Element-wise ReLU.
    pub fn relu(self) -> Var<'g> {
        let v = self.with_value(|a| a.relu());
        self.g.push(
            "relu",
            v,
            vec![self.id],
            Some(Box::new(|ctx| {
                let mask = ctx.inputs[0].map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                vec![ctx.grad.mul(&mask)]
            })),
        )
    }

    /// Element-wise GELU (tanh approximation); gradient computed from the
    /// same approximation.
    pub fn gelu(self) -> Var<'g> {
        let v = self.with_value(|a| a.gelu());
        self.g.push(
            "gelu",
            v,
            vec![self.id],
            Some(Box::new(|ctx| {
                let c = (2.0 / std::f32::consts::PI).sqrt();
                let d = ctx.inputs[0].map(|x| {
                    let inner = c * (x + 0.044_715 * x * x * x);
                    let t = inner.tanh();
                    let dinner = c * (1.0 + 3.0 * 0.044_715 * x * x);
                    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
                });
                vec![ctx.grad.mul(&d)]
            })),
        )
    }

    /// Element-wise softplus (stable); gradient is the sigmoid.
    pub fn softplus(self) -> Var<'g> {
        let v = self.with_value(|a| a.softplus());
        self.g.push(
            "softplus",
            v,
            vec![self.id],
            Some(Box::new(|ctx| vec![ctx.grad.mul(&ctx.inputs[0].sigmoid())])),
        )
    }

    /// Element-wise ELU (alpha = 1).
    pub fn elu(self) -> Var<'g> {
        let v = self.with_value(|a| a.elu());
        self.g.push(
            "elu",
            v,
            vec![self.id],
            Some(Box::new(|ctx| {
                let d = ctx.inputs[0].map(|x| if x > 0.0 { 1.0 } else { x.exp() });
                vec![ctx.grad.mul(&d)]
            })),
        )
    }

    /// Multiply by a constant mask tensor (used for dropout). The mask is
    /// treated as non-differentiable.
    pub fn mul_mask(self, mask: &Tensor) -> Var<'g> {
        assert_eq!(
            broadcast_shapes(&self.shape(), mask.shape()),
            self.shape(),
            "mask must broadcast to the variable's shape without growing it"
        );
        let v = self.with_value(|a| a.mul(mask));
        let m = mask.clone();
        let shape = self.shape();
        self.g.push(
            "mul_mask",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| {
                vec![reduce_to_shape(&ctx.grad.mul(&m), &shape)]
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::check::grad_check;
    use crate::Graph;
    use lttf_tensor::{Rng, Tensor};

    fn sample(shape: &[usize], seed: u64) -> Tensor {
        Tensor::randn(shape, &mut Rng::seed(seed))
    }

    #[test]
    fn add_grads() {
        let a = sample(&[2, 3], 1);
        let b = sample(&[2, 3], 2);
        grad_check(&[a, b], |_, xs| xs[0].add(xs[1]).sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
        let _ = Graph::new(); // silence unused import in some cfgs
    }

    #[test]
    fn add_broadcast_grads() {
        let a = sample(&[2, 3], 1);
        let b = sample(&[1, 3], 2);
        grad_check(&[a, b], |_, xs| xs[0].add(xs[1]).sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn sub_grads() {
        let a = sample(&[4], 3);
        let b = sample(&[4], 4);
        grad_check(&[a, b], |_, xs| xs[0].sub(xs[1]).square().sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn mul_broadcast_grads() {
        let a = sample(&[2, 3], 5);
        let b = sample(&[3], 6);
        grad_check(&[a, b], |_, xs| xs[0].mul(xs[1]).sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn div_grads() {
        let a = sample(&[3], 7);
        let b = sample(&[3], 8).abs_offset();
        grad_check(&[a, b], |_, xs| xs[0].div(xs[1]).sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn unary_grads() {
        let x = sample(&[5], 9);
        grad_check(
            std::slice::from_ref(&x),
            |_, xs| xs[0].tanh().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        grad_check(
            std::slice::from_ref(&x),
            |_, xs| xs[0].sigmoid().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        grad_check(
            std::slice::from_ref(&x),
            |_, xs| xs[0].exp().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        grad_check(
            std::slice::from_ref(&x),
            |_, xs| xs[0].square().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        grad_check(
            std::slice::from_ref(&x),
            |_, xs| xs[0].softplus().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        grad_check(
            std::slice::from_ref(&x),
            |_, xs| xs[0].gelu().sum_all(),
            2e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        grad_check(
            std::slice::from_ref(&x),
            |_, xs| xs[0].elu().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn positive_domain_grads() {
        let x = sample(&[5], 10).abs_offset();
        grad_check(std::slice::from_ref(&x), |_, xs| xs[0].ln().sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
        grad_check(
            std::slice::from_ref(&x),
            |_, xs| xs[0].sqrt().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn scalar_op_grads() {
        let x = sample(&[4], 11);
        grad_check(
            std::slice::from_ref(&x),
            |_, xs| xs[0].mul_scalar(3.0).sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        grad_check(
            std::slice::from_ref(&x),
            |_, xs| xs[0].add_scalar(2.0).square().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn mask_multiplication_grad() {
        let x = sample(&[6], 12);
        let mask = Tensor::from_slice(&[1.0, 0.0, 1.0, 1.0, 0.0, 1.0]);
        grad_check(
            std::slice::from_ref(&x),
            move |_, xs| xs[0].mul_mask(&mask).sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn forward_values_match_tensor_ops() {
        let g = Graph::new();
        let t = sample(&[3, 3], 13);
        let v = g.leaf(t.clone());
        v.tanh().value().assert_close(&t.tanh(), 1e-6);
        v.relu().value().assert_close(&t.relu(), 1e-6);
        v.mul_scalar(2.0)
            .value()
            .assert_close(&t.mul_scalar(2.0), 1e-6);
    }

    /// Helper: shift samples away from zero for ln/sqrt/div domains.
    trait AbsOffset {
        fn abs_offset(&self) -> Tensor;
    }
    impl AbsOffset for Tensor {
        fn abs_offset(&self) -> Tensor {
            self.abs().add_scalar(0.5)
        }
    }
}
