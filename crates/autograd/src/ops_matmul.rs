//! Differentiable matrix multiplication.

use crate::graph::Var;
use lttf_tensor::Tensor;

/// Transpose the last two axes of a 2-D or 3-D tensor.
fn t_last2(x: &Tensor) -> Tensor {
    match x.ndim() {
        2 => x.t(),
        3 => x.swap_axes(1, 2),
        r => panic!("t_last2 expects rank 2 or 3, got {r}"),
    }
}

impl<'g> Var<'g> {
    /// Matrix product; supports the same rank combinations as
    /// [`Tensor::matmul`] (2×2, 3×2, 3×3, 2×3).
    ///
    /// Gradients:
    /// `dA = dC · Bᵀ`, `dB = Aᵀ · dC`, with batch axes summed away where an
    /// operand was shared across the batch.
    pub fn matmul(self, other: Var<'g>) -> Var<'g> {
        let v = self.with_value(|a| other.with_value(|b| a.matmul(b)));
        let (ra, rb) = (self.shape().len(), other.shape().len());
        self.g.push(
            "matmul",
            v,
            vec![self.id, other.id],
            Some(Box::new(move |ctx| {
                let (a, b) = (ctx.inputs[0], ctx.inputs[1]);
                let gc = ctx.grad;
                // grad A = gC @ B^T
                let mut ga = gc.matmul(&t_last2(b));
                // grad B = A^T @ gC
                let mut gb = t_last2(a).matmul(gc);
                // If an operand was rank-2 but the product was batched,
                // its gradient carries a batch axis that must be summed.
                if ra == 2 && ga.ndim() == 3 {
                    ga = ga.sum_axis(0);
                }
                if rb == 2 && gb.ndim() == 3 {
                    gb = gb.sum_axis(0);
                }
                vec![ga, gb]
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::check::grad_check;
    use lttf_tensor::{Rng, Tensor};

    fn sample(shape: &[usize], seed: u64) -> Tensor {
        Tensor::randn(shape, &mut Rng::seed(seed))
    }

    #[test]
    fn matmul_2x2_grads() {
        let a = sample(&[3, 4], 1);
        let b = sample(&[4, 2], 2);
        grad_check(&[a, b], |_, xs| xs[0].matmul(xs[1]).sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn matmul_batched_grads() {
        let a = sample(&[2, 3, 4], 3);
        let b = sample(&[2, 4, 2], 4);
        grad_check(
            &[a, b],
            |_, xs| xs[0].matmul(xs[1]).square().sum_all(),
            2e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn matmul_shared_right_grads() {
        let a = sample(&[2, 3, 4], 5);
        let b = sample(&[4, 2], 6);
        grad_check(&[a, b], |_, xs| xs[0].matmul(xs[1]).sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn matmul_shared_left_grads() {
        let a = sample(&[3, 4], 7);
        let b = sample(&[2, 4, 2], 8);
        grad_check(&[a, b], |_, xs| xs[0].matmul(xs[1]).sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn matmul_chain_grads() {
        // f(A, B, C) = sum(A @ B @ C)
        let a = sample(&[2, 3], 9);
        let b = sample(&[3, 3], 10);
        let c = sample(&[3, 2], 11);
        grad_check(
            &[a, b, c],
            |_, xs| xs[0].matmul(xs[1]).matmul(xs[2]).sum_all(),
            2e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }
}
