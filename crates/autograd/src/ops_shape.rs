//! Differentiable shape surgery: reshape, axis swaps, slicing, concat, pad.

use crate::graph::Var;
use lttf_tensor::Tensor;

impl<'g> Var<'g> {
    /// Reshape to a new shape with the same element count.
    pub fn reshape(self, shape: &[usize]) -> Var<'g> {
        let v = self.with_value(|a| a.reshape(shape));
        let old = self.shape();
        self.g.push(
            "reshape",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| vec![ctx.grad.reshape(&old)])),
        )
    }

    /// Swap two axes (gradient swaps them back).
    pub fn swap_axes(self, a: isize, b: isize) -> Var<'g> {
        let v = self.with_value(|t| t.swap_axes(a, b));
        self.g.push(
            "swap_axes",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| vec![ctx.grad.swap_axes(a, b)])),
        )
    }

    /// Permute axes; the gradient applies the inverse permutation.
    pub fn permute(self, order: &[usize]) -> Var<'g> {
        let v = self.with_value(|t| t.permute(order));
        let mut inverse = vec![0usize; order.len()];
        for (i, &o) in order.iter().enumerate() {
            inverse[o] = i;
        }
        self.g.push(
            "permute",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| vec![ctx.grad.permute(&inverse)])),
        )
    }

    /// Take `[start, start+len)` along `axis`; the gradient scatters back
    /// into a zero tensor of the original shape.
    pub fn narrow(self, axis: isize, start: usize, len: usize) -> Var<'g> {
        let v = self.with_value(|t| t.narrow(axis, start, len));
        let shape = self.shape();
        self.g.push(
            "narrow",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| {
                let ax = if axis < 0 {
                    (shape.len() as isize + axis) as usize
                } else {
                    axis as usize
                };
                let before = start;
                let after = shape[ax] - start - len;
                vec![ctx.grad.pad_axis(ax as isize, before, after, 0.0)]
            })),
        )
    }

    /// Select `indices` along `axis` (gather); the gradient scatter-adds.
    pub fn select(self, axis: isize, indices: &[usize]) -> Var<'g> {
        let v = self.with_value(|t| t.select(axis, indices));
        let shape = self.shape();
        let idx = indices.to_vec();
        self.g.push(
            "select",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| {
                let ax = if axis < 0 {
                    (shape.len() as isize + axis) as usize
                } else {
                    axis as usize
                };
                let mut grad = Tensor::zeros(&shape);
                let extent = shape[ax];
                let outer: usize = shape[..ax].iter().product();
                let inner: usize = shape[ax + 1..].iter().product();
                let k = idx.len();
                let gd = ctx.grad.data();
                let out = grad.data_mut();
                for o in 0..outer {
                    for (j, &i) in idx.iter().enumerate() {
                        let src = (o * k + j) * inner;
                        let dst = (o * extent + i) * inner;
                        for t in 0..inner {
                            out[dst + t] += gd[src + t];
                        }
                    }
                }
                vec![grad]
            })),
        )
    }

    /// Zero-pad along `axis`; the gradient narrows back.
    pub fn pad_axis(self, axis: isize, before: usize, after: usize) -> Var<'g> {
        let v = self.with_value(|t| t.pad_axis(axis, before, after, 0.0));
        let len = self.with_value(|t| t.size(axis));
        self.g.push(
            "pad_axis",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| {
                vec![ctx.grad.narrow(axis, before, len)]
            })),
        )
    }

    /// Concatenate variables along `axis`; each parent's gradient is the
    /// matching slice of the output gradient.
    ///
    /// # Panics
    /// Panics on an empty list (and on shape mismatches, from the tensor op).
    pub fn concat(vars: &[Var<'g>], axis: isize) -> Var<'g> {
        assert!(!vars.is_empty(), "concat of empty var list");
        let g = vars[0].g;
        let values: Vec<Tensor> = vars.iter().map(|v| v.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let out = Tensor::concat(&refs, axis);
        let extents: Vec<usize> = values.iter().map(|t| t.size(axis)).collect();
        let parents: Vec<usize> = vars.iter().map(|v| v.id).collect();
        g.push(
            "concat",
            out,
            parents,
            Some(Box::new(move |ctx| {
                let mut grads = Vec::with_capacity(extents.len());
                let mut start = 0;
                for &e in &extents {
                    grads.push(ctx.grad.narrow(axis, start, e));
                    start += e;
                }
                grads
            })),
        )
    }

    /// Broadcast to a larger shape; the gradient sum-reduces back.
    pub fn broadcast_to(self, target: &[usize]) -> Var<'g> {
        let v = self.with_value(|t| t.broadcast_to(target));
        let shape = self.shape();
        self.g.push(
            "broadcast_to",
            v,
            vec![self.id],
            Some(Box::new(move |ctx| {
                vec![crate::ops_basic::reduce_to_shape(ctx.grad, &shape)]
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::check::grad_check;
    use crate::{Graph, Var};
    use lttf_tensor::{Rng, Tensor};

    fn sample(shape: &[usize], seed: u64) -> Tensor {
        Tensor::randn(shape, &mut Rng::seed(seed))
    }

    #[test]
    fn reshape_grads() {
        let x = sample(&[2, 6], 1);
        grad_check(
            &[x],
            |_, xs| xs[0].reshape(&[3, 4]).square().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn swap_axes_grads() {
        let x = sample(&[2, 3, 4], 2);
        grad_check(&[x], |_, xs| xs[0].swap_axes(0, 2).square().sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn permute_grads() {
        let x = sample(&[2, 3, 4], 3);
        grad_check(
            &[x],
            |_, xs| xs[0].permute(&[2, 0, 1]).square().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn narrow_grads() {
        let x = sample(&[3, 5], 4);
        grad_check(&[x], |_, xs| xs[0].narrow(1, 1, 3).square().sum_all(), 1e-2)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn narrow_grad_zero_outside_window() {
        let g = Graph::new();
        let x = g.leaf(sample(&[1, 5], 5));
        let y = x.narrow(1, 1, 2).sum_all();
        let grads = g.backward(y);
        assert_eq!(grads.get(x).unwrap().data(), &[0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn select_grads() {
        let x = sample(&[4, 3], 6);
        grad_check(
            &[x],
            |_, xs| xs[0].select(0, &[2, 0, 2]).square().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn select_duplicate_indices_accumulate() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_slice(&[1.0, 2.0, 3.0]));
        let y = x.select(0, &[1, 1]).sum_all();
        let grads = g.backward(y);
        assert_eq!(grads.get(x).unwrap().data(), &[0.0, 2.0, 0.0]);
    }

    #[test]
    fn pad_grads() {
        let x = sample(&[2, 3], 7);
        grad_check(
            &[x],
            |_, xs| xs[0].pad_axis(1, 2, 1).square().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn concat_grads() {
        let a = sample(&[2, 2], 8);
        let b = sample(&[2, 3], 9);
        grad_check(
            &[a, b],
            |_, xs| Var::concat(&[xs[0], xs[1]], 1).square().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn broadcast_to_grads() {
        let x = sample(&[1, 3], 10);
        grad_check(
            &[x],
            |_, xs| xs[0].broadcast_to(&[4, 3]).square().sum_all(),
            1e-2,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn narrow_concat_round_trip_gradient() {
        // Splitting then concatenating is identity; gradient must be ones.
        let g = Graph::new();
        let x = g.leaf(sample(&[2, 4], 11));
        let left = x.narrow(1, 0, 2);
        let right = x.narrow(1, 2, 2);
        let y = Var::concat(&[left, right], 1).sum_all();
        let grads = g.backward(y);
        assert_eq!(grads.get(x).unwrap().data(), &[1.0; 8]);
    }
}
