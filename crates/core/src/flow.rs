//! The normalizing-flow block (paper Section IV-C, Fig. 3b, Eq. 15–17).
//!
//! The flow absorbs the encoder/decoder RNN hidden states:
//!
//! * Eq. 15: `z_e = μ_e(h_e) + σ_e(h_e) ⊙ ε`, `ε ~ N(0, I)`,
//! * Eq. 16: `z_0 = μ_d(h_d) + σ_d(h_d) ⊙ z_e`,
//! * Eq. 17: `z_t = μ_t(h_d, z_{t−1}) + σ_t(h_d, z_{t−1}) ⊙ z_{t−1}`.
//!
//! `z_T` lives in a latent space of width `d_model` and is projected to
//! the `[ly, c_out]` horizon by a final linear head; as Section IV-D
//! specifies, the sampled output is treated as a point estimate and
//! trained with MSE (Eq. 18), not log-likelihood. σ networks are made
//! positive with softplus. Setting the noise to zero yields the flow's
//! mean prediction; sampling many ε gives the uncertainty bands of
//! Figs. 6–7.

use crate::config::FlowMode;
use lttf_autograd::Var;
use lttf_nn::{Fwd, Linear, ParamSet};
use lttf_tensor::{Rng, Tensor};

/// The conditional affine flow head.
pub struct NormalizingFlow {
    mode: FlowMode,
    enc_mu: Linear,
    enc_sigma: Linear,
    dec_mu: Linear,
    dec_sigma: Linear,
    step_mu: Vec<Linear>,
    step_sigma: Vec<Linear>,
    out: Linear,
    d_model: usize,
    ly: usize,
    c_out: usize,
}

impl NormalizingFlow {
    /// Allocate the flow with `steps` transformations (Eq. 17's T).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        mode: FlowMode,
        d_model: usize,
        ly: usize,
        c_out: usize,
        steps: usize,
        rng: &mut Rng,
    ) -> Self {
        let mk = |ps: &mut ParamSet, n: String, rng: &mut Rng| {
            Linear::new(ps, &n, d_model, d_model, rng)
        };
        let mut step_mu = Vec::with_capacity(steps);
        let mut step_sigma = Vec::with_capacity(steps);
        for t in 0..steps {
            step_mu.push(Linear::new(
                ps,
                &format!("{name}.step{t}.mu"),
                2 * d_model,
                d_model,
                rng,
            ));
            step_sigma.push(Linear::new(
                ps,
                &format!("{name}.step{t}.sigma"),
                2 * d_model,
                d_model,
                rng,
            ));
        }
        NormalizingFlow {
            mode,
            enc_mu: mk(ps, format!("{name}.enc.mu"), rng),
            enc_sigma: mk(ps, format!("{name}.enc.sigma"), rng),
            dec_mu: mk(ps, format!("{name}.dec.mu"), rng),
            dec_sigma: mk(ps, format!("{name}.dec.sigma"), rng),
            out: Linear::new(ps, &format!("{name}.out"), d_model, ly * c_out, rng),
            step_mu,
            step_sigma,
            d_model,
            ly,
            c_out,
        }
    }

    /// Number of flow transformations.
    pub fn steps(&self) -> usize {
        self.step_mu.len()
    }

    /// Positive scale from a linear head: `softplus(Wx) + 1e-4`.
    fn sigma<'g>(&self, cx: &Fwd<'g, '_>, lin: &Linear, x: Var<'g>) -> Var<'g> {
        lin.forward(cx, x).softplus().add_scalar(1e-4)
    }

    /// Generate the flow output `Z^out: [b, ly, c_out]`.
    ///
    /// `h_e`, `h_d`: `[b, d_model]` hidden states from the SIRN RNNs.
    /// When `sample` is false the Gaussian noise is zeroed, yielding the
    /// deterministic mean path (used at evaluation time).
    pub fn forward<'g>(
        &self,
        cx: &Fwd<'g, '_>,
        h_e: Var<'g>,
        h_d: Var<'g>,
        sample: bool,
    ) -> Var<'g> {
        let b = h_e.shape()[0];
        let g = cx.graph();
        let eps = if sample {
            g.constant(cx.noise(&[b, self.d_model]))
        } else {
            g.constant(Tensor::zeros(&[b, self.d_model]))
        };
        // Eq. 15
        let z_e = self
            .enc_mu
            .forward(cx, h_e)
            .add(self.sigma(cx, &self.enc_sigma, h_e).mul(eps));
        let z = match self.mode {
            FlowMode::ZeOnly => z_e,
            FlowMode::ZdOnly => {
                // h_d through the same reparameterization as Eq. 15.
                self.dec_mu
                    .forward(cx, h_d)
                    .add(self.sigma(cx, &self.dec_sigma, h_d).mul(eps))
            }
            FlowMode::ZeZd | FlowMode::Full => {
                // Eq. 16
                let mut z = self
                    .dec_mu
                    .forward(cx, h_d)
                    .add(self.sigma(cx, &self.dec_sigma, h_d).mul(z_e));
                if self.mode == FlowMode::Full {
                    // Eq. 17
                    for (mu, sg) in self.step_mu.iter().zip(&self.step_sigma) {
                        let joint = Var::concat(&[h_d, z], 1);
                        z = mu.forward(cx, joint).add(self.sigma(cx, sg, joint).mul(z));
                    }
                }
                z
            }
            FlowMode::None => panic!("FlowMode::None has no flow output; the model must skip it"),
        };
        self.out.forward(cx, z).reshape(&[b, self.ly, self.c_out])
    }

    /// Sample `n` flow outputs and return per-element empirical quantiles
    /// `(lo, hi)` at the given coverage level (e.g. 0.9 → 5%/95%), plus
    /// the mean. Used by the uncertainty showcases (Figs. 6–7).
    #[allow(clippy::too_many_arguments)]
    pub fn quantiles(
        &self,
        ps: &ParamSet,
        h_e: &Tensor,
        h_d: &Tensor,
        n: usize,
        coverage: f32,
        seed: u64,
    ) -> (Tensor, Tensor, Tensor) {
        assert!(n >= 2, "need at least 2 samples");
        assert!((0.0..1.0).contains(&coverage), "coverage in [0,1)");
        let mut draws: Vec<Tensor> = Vec::with_capacity(n);
        for i in 0..n {
            let g = lttf_autograd::Graph::new();
            let cx = Fwd::new(&g, ps, true, seed.wrapping_add(i as u64 * 7919));
            let he = g.leaf(h_e.clone());
            let hd = g.leaf(h_d.clone());
            draws.push(self.forward(&cx, he, hd, true).value());
        }
        let numel = draws[0].numel();
        let shape = draws[0].shape().to_vec();
        let mut mean = vec![0.0f32; numel];
        let mut lo = vec![0.0f32; numel];
        let mut hi = vec![0.0f32; numel];
        let alpha = (1.0 - coverage) / 2.0;
        let lo_idx = ((n as f32 * alpha) as usize).min(n - 1);
        let hi_idx = ((n as f32 * (1.0 - alpha)) as usize).min(n - 1);
        let mut column = vec![0.0f32; n];
        for e in 0..numel {
            for (i, d) in draws.iter().enumerate() {
                column[i] = d.data()[e];
            }
            mean[e] = column.iter().sum::<f32>() / n as f32;
            column.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            lo[e] = column[lo_idx];
            hi[e] = column[hi_idx];
        }
        (
            Tensor::from_vec(mean, &shape),
            Tensor::from_vec(lo, &shape),
            Tensor::from_vec(hi, &shape),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_autograd::Graph;

    fn build(mode: FlowMode, steps: usize) -> (ParamSet, NormalizingFlow) {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let f = NormalizingFlow::new(&mut ps, "nf", mode, 8, 6, 3, steps, &mut rng);
        (ps, f)
    }

    #[test]
    fn output_shapes_for_all_modes() {
        for mode in [
            FlowMode::Full,
            FlowMode::ZeOnly,
            FlowMode::ZdOnly,
            FlowMode::ZeZd,
        ] {
            let (ps, f) = build(mode, 2);
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, false, 0);
            let he = g.leaf(Tensor::randn(&[2, 8], &mut Rng::seed(1)));
            let hd = g.leaf(Tensor::randn(&[2, 8], &mut Rng::seed(2)));
            let z = f.forward(&cx, he, hd, false);
            assert_eq!(z.shape(), vec![2, 6, 3], "mode {mode:?}");
        }
    }

    #[test]
    fn deterministic_without_sampling() {
        let (ps, f) = build(FlowMode::Full, 2);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let he = g.leaf(Tensor::randn(&[1, 8], &mut Rng::seed(3)));
        let hd = g.leaf(Tensor::randn(&[1, 8], &mut Rng::seed(4)));
        let a = f.forward(&cx, he, hd, false).value();
        let b = f.forward(&cx, he, hd, false).value();
        a.assert_close(&b, 0.0);
    }

    #[test]
    fn sampling_injects_variance() {
        let (ps, f) = build(FlowMode::Full, 2);
        let he = Tensor::randn(&[1, 8], &mut Rng::seed(5));
        let hd = Tensor::randn(&[1, 8], &mut Rng::seed(6));
        let g1 = Graph::new();
        let c1 = Fwd::new(&g1, &ps, true, 1);
        let a = f
            .forward(&c1, g1.leaf(he.clone()), g1.leaf(hd.clone()), true)
            .value();
        let g2 = Graph::new();
        let c2 = Fwd::new(&g2, &ps, true, 2);
        let b = f.forward(&c2, g2.leaf(he), g2.leaf(hd), true).value();
        assert!(a.max_abs_diff(&b) > 1e-6, "samples identical across seeds");
    }

    #[test]
    fn modes_produce_distinct_heads() {
        let he = Tensor::randn(&[1, 8], &mut Rng::seed(7));
        let hd = Tensor::randn(&[1, 8], &mut Rng::seed(8));
        let (ps_full, f_full) = build(FlowMode::Full, 2);
        let (_, f_ze) = build(FlowMode::ZeOnly, 2);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps_full, false, 0);
        let a = f_full
            .forward(&cx, g.leaf(he.clone()), g.leaf(hd.clone()), false)
            .value();
        let b = f_ze.forward(&cx, g.leaf(he), g.leaf(hd), false).value();
        assert!(a.max_abs_diff(&b) > 1e-6);
    }

    #[test]
    #[should_panic(expected = "no flow output")]
    fn none_mode_panics() {
        let (ps, f) = build(FlowMode::None, 1);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let he = g.leaf(Tensor::zeros(&[1, 8]));
        f.forward(&cx, he, he, false);
    }

    #[test]
    fn quantiles_bracket_mean_and_widen_with_coverage() {
        let (ps, f) = build(FlowMode::Full, 2);
        let he = Tensor::randn(&[1, 8], &mut Rng::seed(9));
        let hd = Tensor::randn(&[1, 8], &mut Rng::seed(10));
        let (mean, lo80, hi80) = f.quantiles(&ps, &he, &hd, 50, 0.8, 42);
        let (_, lo95, hi95) = f.quantiles(&ps, &he, &hd, 50, 0.95, 42);
        for e in 0..mean.numel() {
            assert!(lo80.data()[e] <= mean.data()[e] + 1e-4);
            assert!(hi80.data()[e] >= mean.data()[e] - 1e-4);
            assert!(lo95.data()[e] <= lo80.data()[e] + 1e-5);
            assert!(hi95.data()[e] >= hi80.data()[e] - 1e-5);
        }
    }

    #[test]
    fn gradients_flow_through_chain() {
        let (mut ps, f) = build(FlowMode::Full, 3);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, true, 0);
        let he = g.leaf(Tensor::randn(&[1, 8], &mut Rng::seed(11)));
        let hd = g.leaf(Tensor::randn(&[1, 8], &mut Rng::seed(12)));
        let loss = f.forward(&cx, he, hd, true).square().sum_all();
        let grads = g.backward(loss);
        let collected = cx.collect_grads(&grads);
        ps.zero_grad();
        ps.apply_grads(collected);
        let with_grad = ps.ids().filter(|&id| ps.grad(id).abs().sum() > 0.0).count();
        // every flow parameter participates in Full mode
        assert_eq!(with_grad, ps.len(), "some flow parameters unused");
    }
}
