//! Model configuration and the ablation switches of Tables V–IX.

use lttf_nn::AttentionKind;

/// How the input representation combines multivariate correlation (R),
/// multiscale dynamics (Γ), and the raw series (X) — the variants of
/// Table V plus the fusion methods of Table VIII.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputReprMode {
    /// Paper default (Eq. 6): `X^in = Conv(W^R X + X) + Γ̄`.
    Full,
    /// `X^in_{−Γ}`: drop multiscale dynamics.
    NoMultiscale,
    /// `X^in_{−R}`: drop the correlation weighting, keep raw X and Γ̄.
    NoCorrelation,
    /// `X^in_{−R−Γ}`: convolution of raw X only.
    NoCorrelationNoMultiscale,
    /// `X^in_{−X}`: drop the raw-series residual, keep W^R X and Γ̄.
    NoRaw,
    /// `X^in_{−X−Γ}`: W^R X alone through the convolution.
    NoRawNoMultiscale,
    /// Table VIII Method 1: `Conv(W^Γ W^R X + X)`.
    Method1,
    /// Table VIII Method 2: `Conv(W^R X + W^Γ X)`.
    Method2,
    /// Table VIII Method 3: `Conv(W^R X + W^Γ X + X)`.
    Method3,
    /// Table VIII Method 4: `W^Γ [Conv(W^R X + X)]`.
    Method4,
}

/// Which generative head produces `Z^out` — the variants of Table VII.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowMode {
    /// Paper default: the full normalizing-flow chain (Eq. 15–17).
    Full,
    /// `Conformer −NF^{z_e}`: output generated from `z_e` alone (Eq. 15).
    ZeOnly,
    /// `Conformer −NF^{z_d}`: `z_d` computed from `h_d` the way `z_e` is
    /// from `h_e`.
    ZdOnly,
    /// `Conformer −NF^{z_e+z_d}`: stop at the flow initialization `z_0`
    /// (Eq. 16).
    ZeZd,
    /// `Conformer −NF`: no generative head; train on the decoder loss only.
    None,
}

/// Which SIRN layers' RNN hidden states feed the flow — Table IX.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HiddenFeed {
    /// Paper default: first RNN's hidden state of the **last** SIRN layer
    /// in both encoder and decoder.
    LastEncLastDec,
    /// `(h_1^{(e)}, h_k^{(d)})`: first encoder layer, last decoder layer.
    FirstEncLastDec,
    /// `(h_1^{(e)}, h_1^{(d)})`.
    FirstEncFirstDec,
    /// `(h_k^{(e)}, h_1^{(d)})`.
    LastEncFirstDec,
}

/// Full Conformer hyper-parameter set.
///
/// Defaults follow Section V-A3: 2-layer encoder, 1-layer decoder,
/// sliding-window attention with `w = 2`, a 2-step normalizing flow,
/// `λ = 0.8`, 1-layer encoder GRU / 2-layer decoder GRU.
#[derive(Clone, Debug)]
pub struct ConformerConfig {
    /// Input variables (encoder channels).
    pub c_in: usize,
    /// Output variables (decoder channels; = `c_in` for multivariate,
    /// 1 for univariate LTTF).
    pub c_out: usize,
    /// Input window length `Lx`.
    pub lx: usize,
    /// Prediction length `Ly`.
    pub ly: usize,
    /// Decoder warm-start length (label length).
    pub label_len: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Encoder SIRN layers (paper: 2).
    pub enc_layers: usize,
    /// Decoder SIRN layers (paper: 1).
    pub dec_layers: usize,
    /// Attention mechanism (paper: sliding window, `w = 2`;
    /// Table VI swaps this out).
    pub attention: AttentionKind,
    /// Decomposition-distillation iterations η in Eq. (10).
    pub eta: usize,
    /// Moving-average window of the series decomposition (Eq. 9).
    pub moving_avg: usize,
    /// Number of flow transformations T (paper: 2-layer flow block).
    pub flow_steps: usize,
    /// Trade-off λ in Eq. (18) (paper: 0.8).
    pub lambda: f32,
    /// Dropout probability.
    pub dropout: f32,
    /// GRU layers in the encoder's RNN blocks (paper: 1).
    pub enc_rnn_layers: usize,
    /// GRU layers in the decoder's RNN blocks (paper: 2 multivariate,
    /// 1 univariate).
    pub dec_rnn_layers: usize,
    /// Multiscale sampling strides (Eq. 3's temporal resolutions),
    /// e.g. `[1, 24]` for hourly data = {hour, day}.
    pub multiscale_strides: Vec<usize>,
    /// Calendar time features per step (0 disables the mark embedding).
    pub mark_dim: usize,
    /// Input-representation ablation switch (Tables V, VIII).
    pub input_repr: InputReprMode,
    /// Generative-head ablation switch (Table VII).
    pub flow_mode: FlowMode,
    /// Hidden-state feed switch (Table IX).
    pub hidden_feed: HiddenFeed,
}

impl ConformerConfig {
    /// The paper's defaults at a configurable width.
    pub fn new(c_in: usize, lx: usize, ly: usize) -> Self {
        ConformerConfig {
            c_in,
            c_out: c_in,
            lx,
            ly,
            label_len: lx / 2,
            d_model: 32,
            n_heads: 4,
            enc_layers: 2,
            dec_layers: 1,
            attention: AttentionKind::SlidingWindow { w: 2 },
            eta: 1,
            moving_avg: 13,
            flow_steps: 2,
            lambda: 0.8,
            dropout: 0.05,
            enc_rnn_layers: 1,
            dec_rnn_layers: 2,
            multiscale_strides: vec![1, 24],
            mark_dim: lttf_data::MARK_DIM,
            input_repr: InputReprMode::Full,
            flow_mode: FlowMode::Full,
            hidden_feed: HiddenFeed::LastEncLastDec,
        }
    }

    /// A deliberately small configuration for unit tests and doctests.
    pub fn tiny(c_in: usize, lx: usize, ly: usize) -> Self {
        let mut cfg = Self::new(c_in, lx, ly);
        cfg.d_model = 8;
        cfg.n_heads = 2;
        cfg.enc_layers = 1;
        cfg.moving_avg = 5;
        cfg.multiscale_strides = vec![1, 4];
        cfg.dropout = 0.0;
        cfg
    }

    /// Decoder input length (`label_len + ly`).
    pub fn dec_len(&self) -> usize {
        self.label_len + self.ly
    }

    /// Serialize to the sidecar `.config` text format: one `key value`
    /// pair per line. `target` is the forecast variable's column name,
    /// stored alongside the hyper-parameters so a checkpoint can be
    /// reloaded without the original CLI invocation.
    ///
    /// Only the fields that affect checkpoint shape/semantics are stored;
    /// ablation switches stay at their defaults on reload.
    pub fn to_sidecar(&self, target: &str) -> String {
        format!(
            "c_in {}\nc_out {}\nlx {}\nly {}\nlabel_len {}\nd_model {}\nn_heads {}\n\
             enc_layers {}\ndec_layers {}\nflow_steps {}\nlambda {}\ntarget {}\n\
             strides {}\nmoving_avg {}\n",
            self.c_in,
            self.c_out,
            self.lx,
            self.ly,
            self.label_len,
            self.d_model,
            self.n_heads,
            self.enc_layers,
            self.dec_layers,
            self.flow_steps,
            self.lambda,
            target,
            self.multiscale_strides
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.moving_avg,
        )
    }

    /// Parse the sidecar text produced by [`Self::to_sidecar`], returning
    /// the config and the stored target column name. Unknown keys are
    /// ignored; missing required keys are an `InvalidData` error naming
    /// the field.
    pub fn from_sidecar(text: &str) -> std::io::Result<(Self, String)> {
        use std::collections::HashMap;
        let mut kv = HashMap::new();
        for line in text.lines() {
            if let Some((k, v)) = line.split_once(' ') {
                kv.insert(k.to_string(), v.to_string());
            }
        }
        let geti = |k: &str| -> std::io::Result<usize> {
            kv.get(k).and_then(|v| v.parse().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("config missing field '{k}'"),
                )
            })
        };
        let mut cfg = ConformerConfig::new(geti("c_in")?, geti("lx")?, geti("ly")?);
        cfg.c_out = geti("c_out")?;
        cfg.label_len = geti("label_len")?;
        cfg.d_model = geti("d_model")?;
        cfg.n_heads = geti("n_heads")?;
        cfg.enc_layers = geti("enc_layers")?;
        cfg.dec_layers = geti("dec_layers")?;
        cfg.flow_steps = geti("flow_steps")?;
        cfg.lambda = kv.get("lambda").and_then(|v| v.parse().ok()).unwrap_or(0.8);
        cfg.multiscale_strides = kv
            .get("strides")
            .map(|s| s.split(',').filter_map(|v| v.parse().ok()).collect())
            .unwrap_or_else(|| vec![1]);
        // Added after the first checkpoint format: decomposition kernel
        // size changes the forward pass without changing any parameter
        // shape, so a reload that guessed it would silently produce
        // different forecasts. Old sidecars fall back to the default.
        if let Some(m) = kv.get("moving_avg").and_then(|v| v.parse().ok()) {
            cfg.moving_avg = m;
        }
        let target = kv.get("target").cloned().unwrap_or_default();
        Ok((cfg, target))
    }

    /// Write the sidecar file next to a checkpoint (see [`Self::to_sidecar`]).
    pub fn save_sidecar(&self, target: &str, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_sidecar(target))
    }

    /// Load a sidecar file written by [`Self::save_sidecar`].
    pub fn load_sidecar(path: &str) -> std::io::Result<(Self, String)> {
        Self::from_sidecar(&std::fs::read_to_string(path)?)
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    /// Panics on inconsistent settings, with a message naming the field.
    pub fn validate(&self) {
        assert!(self.c_in >= 1, "c_in must be >= 1");
        assert!(
            self.c_out >= 1 && self.c_out <= self.c_in,
            "c_out must be in 1..=c_in"
        );
        assert!(self.lx >= 2 && self.ly >= 1, "window lengths too small");
        assert!(self.label_len <= self.lx, "label_len cannot exceed lx");
        assert_eq!(
            self.d_model % self.n_heads,
            0,
            "n_heads must divide d_model"
        );
        assert!(
            self.enc_layers >= 1 && self.dec_layers >= 1,
            "need at least one layer"
        );
        assert!(
            (0.0..=1.0).contains(&self.lambda),
            "lambda must be in [0, 1]"
        );
        assert!(self.moving_avg >= 1, "moving_avg must be >= 1");
        assert!(
            !self.multiscale_strides.is_empty(),
            "need at least one multiscale stride"
        );
        // Strides larger than the window are filtered out by the input
        // representation, so only zero is invalid here.
        assert!(
            self.multiscale_strides.iter().all(|&s| s >= 1),
            "multiscale strides must be >= 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = ConformerConfig::new(7, 96, 48);
        assert_eq!(cfg.enc_layers, 2);
        assert_eq!(cfg.dec_layers, 1);
        assert_eq!(cfg.flow_steps, 2);
        assert_eq!(cfg.lambda, 0.8);
        assert_eq!(cfg.attention, AttentionKind::SlidingWindow { w: 2 });
        assert_eq!(cfg.enc_rnn_layers, 1);
        assert_eq!(cfg.dec_rnn_layers, 2);
        cfg.validate();
    }

    #[test]
    fn tiny_validates() {
        ConformerConfig::tiny(3, 12, 6).validate();
    }

    #[test]
    fn sidecar_round_trips() {
        let mut cfg = ConformerConfig::tiny(3, 12, 6);
        cfg.lambda = 0.65;
        cfg.multiscale_strides = vec![1, 4, 8];
        let (back, target) = ConformerConfig::from_sidecar(&cfg.to_sidecar("OT")).unwrap();
        assert_eq!(target, "OT");
        assert_eq!(back.c_in, cfg.c_in);
        assert_eq!(back.c_out, cfg.c_out);
        assert_eq!(back.lx, cfg.lx);
        assert_eq!(back.ly, cfg.ly);
        assert_eq!(back.label_len, cfg.label_len);
        assert_eq!(back.d_model, cfg.d_model);
        assert_eq!(back.lambda, cfg.lambda);
        assert_eq!(back.multiscale_strides, cfg.multiscale_strides);
        // tiny() overrides moving_avg; a reload must not fall back to the
        // default and silently change the decomposition.
        assert_eq!(back.moving_avg, cfg.moving_avg);
    }

    #[test]
    fn sidecar_without_moving_avg_uses_default() {
        let text = ConformerConfig::new(2, 8, 4).to_sidecar("OT");
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("moving_avg"))
            .map(|l| format!("{l}\n"))
            .collect();
        let (back, _) = ConformerConfig::from_sidecar(&stripped).unwrap();
        assert_eq!(back.moving_avg, ConformerConfig::new(2, 8, 4).moving_avg);
    }

    #[test]
    fn sidecar_missing_field_names_it() {
        let err = ConformerConfig::from_sidecar("c_in 3\nlx 12\n").unwrap_err();
        assert!(err.to_string().contains("'ly'"), "{err}");
    }

    #[test]
    #[should_panic(expected = "label_len")]
    fn bad_label_len_rejected() {
        let mut cfg = ConformerConfig::tiny(3, 12, 6);
        cfg.label_len = 20;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "n_heads")]
    fn bad_heads_rejected() {
        let mut cfg = ConformerConfig::tiny(3, 12, 6);
        cfg.d_model = 9;
        cfg.validate();
    }
}
