//! Input representation (paper Section IV-A): multivariate correlation
//! (Eq. 1–2), multiscale dynamics (Eq. 3–4), and their fusion (Eq. 5–6).
//!
//! ### Interpretation notes
//!
//! * **W^R (Eq. 2)** — the paper computes the FFT autocorrelation of each
//!   variable (Eq. 1) and softmaxes it "to highlight informative
//!   variables". We realize this as a per-variable informativeness weight:
//!   each variable's score is its strongest non-zero-lag autocorrelation
//!   (normalized by lag 0), softmaxed across variables and rescaled by
//!   `d_x` so the weighted series keeps the input's magnitude. `W^R X` is
//!   then a data-derived diagonal reweighting of the variables — cheap
//!   (O(d·L log L)) and faithful to the stated intent.
//! * **W^Γ (Table VIII)** — defined as the softmaxed temporal affinity of
//!   the multiscale representation, `Softmax(Γ̄ Γ̄ᵀ/√d)`, an `[L, L]`
//!   mixing matrix along time.

use crate::config::InputReprMode;
use lttf_autograd::Var;
use lttf_fft::autocorrelation;
use lttf_nn::{kaiming_uniform, Fwd, Linear, ParamId, ParamSet};
use lttf_tensor::{Rng, Tensor};

/// The input representation block. One instance per (encoder/decoder)
/// input, since the multiscale weights are tied to the sequence length.
pub struct InputRepresentation {
    mode: InputReprMode,
    conv_w: ParamId,             // W^v ⊙ : [d_model, c_in, 3]
    conv_b: ParamId,             // b^v : [d_model]
    scale_embed: Linear,         // ℰ in Eq. (3): c_in → d_model, shared
    scale_weights: Vec<ParamId>, // W_k^S : [L, L] per stride
    scale_bias: ParamId,         // b^S : [L, d_model]
    time_embed: Option<Linear>,  // mark embedding (0 marks disables)
    strides: Vec<usize>,
    len: usize,
    c_in: usize,
    d_model: usize,
}

impl InputRepresentation {
    /// Allocate for inputs of shape `[b, len, c_in]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        mode: InputReprMode,
        c_in: usize,
        d_model: usize,
        len: usize,
        strides: &[usize],
        mark_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let strides: Vec<usize> = strides.iter().cloned().filter(|&s| s <= len).collect();
        let strides = if strides.is_empty() { vec![1] } else { strides };
        let conv_w = ps.add(
            format!("{name}.conv.weight"),
            kaiming_uniform(&[d_model, c_in, 3], c_in * 3, rng),
        );
        let conv_b = ps.add(format!("{name}.conv.bias"), Tensor::zeros(&[d_model]));
        let scale_embed = Linear::new(ps, &format!("{name}.scale_embed"), c_in, d_model, rng);
        let scale_weights = strides
            .iter()
            .enumerate()
            .map(|(k, _)| {
                // near-identity init so multiscale starts as a mild signal
                let mut w = Tensor::eye(len).mul_scalar(0.5);
                let noise = Tensor::randn(&[len, len], rng).mul_scalar(0.02 / len as f32);
                w = w.add(&noise);
                ps.add(format!("{name}.scale_w{k}"), w)
            })
            .collect();
        let scale_bias = ps.add(format!("{name}.scale_bias"), Tensor::zeros(&[len, d_model]));
        let time_embed = (mark_dim > 0)
            .then(|| Linear::with_bias(ps, &format!("{name}.time"), mark_dim, d_model, false, rng));
        InputRepresentation {
            mode,
            conv_w,
            conv_b,
            scale_embed,
            scale_weights,
            scale_bias,
            time_embed,
            strides,
            len,
            c_in,
            d_model,
        }
    }

    /// Output width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Per-variable correlation weights `W^R` (Eq. 1–2) for a batch:
    /// `[b, 1, c_in]`, softmaxed across variables, rescaled by `c_in`.
    fn correlation_weights(x: &Tensor) -> Tensor {
        let (b, len, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut scores = Vec::with_capacity(b * d);
        for bi in 0..b {
            for di in 0..d {
                let series: Vec<f32> = (0..len).map(|t| x.at(&[bi, t, di])).collect();
                let r = autocorrelation(&series);
                let r0 = r[0].max(1e-6);
                let peak = r[1..len.div_ceil(2).max(2)]
                    .iter()
                    .cloned()
                    .fold(f32::NEG_INFINITY, f32::max);
                scores.push(peak / r0);
            }
        }
        Tensor::from_vec(scores, &[b, 1, d])
            .softmax(-1)
            .mul_scalar(d as f32)
    }

    /// Multiscale dynamics `Γ̄^S` (Eq. 3–4): sample at each stride, hold-
    /// upsample back to `len`, embed, mix along time with `W_k^S`, sum.
    fn multiscale<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> Var<'g> {
        let mut acc: Option<Var<'g>> = None;
        for (k, &stride) in self.strides.iter().enumerate() {
            // Γ^{S_k}: hold-sample every `stride` steps.
            let idx: Vec<usize> = (0..self.len).map(|t| (t / stride) * stride).collect();
            let sampled = x.select(1, &idx); // [b, len, c_in]
            let embedded = self.scale_embed.forward(cx, sampled); // [b, len, d]
            let wk = cx.param(self.scale_weights[k]); // [len, len]
            let mixed = wk.matmul(embedded); // broadcast batch: [b, len, d]
            acc = Some(match acc {
                Some(a) => a.add(mixed),
                None => mixed,
            });
        }
        acc.expect("at least one stride")
            .add(cx.param(self.scale_bias))
    }

    /// `Conv(inner) + b` per Eq. (5): kernel-3 convolution over time
    /// mapping `c_in → d_model`.
    fn fuse_conv<'g>(&self, cx: &Fwd<'g, '_>, inner: Var<'g>) -> Var<'g> {
        let w = cx.param(self.conv_w);
        let b = cx.param(self.conv_b);
        inner.swap_axes(1, 2).conv1d(w, 1, 1).swap_axes(1, 2).add(b)
    }

    /// Temporal mixing matrix `W^Γ = Softmax(Γ̄ Γ̄ᵀ/√d)` for Table VIII.
    fn gamma_mixer<'g>(&self, gamma: Var<'g>) -> Var<'g> {
        let scale = 1.0 / (self.d_model as f32).sqrt();
        gamma
            .matmul(gamma.swap_axes(1, 2))
            .mul_scalar(scale)
            .softmax(-1) // [b, len, len]
    }

    /// Build `X^in` from values `x: [b, len, c_in]` and time features
    /// `marks: [b, len, mark_dim]`.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>, marks: Option<Var<'g>>) -> Var<'g> {
        let shape = x.shape();
        assert_eq!(
            shape[1], self.len,
            "input representation built for length {}, got {:?}",
            self.len, shape
        );
        assert_eq!(
            shape[2], self.c_in,
            "expected {} channels, got {:?}",
            self.c_in, shape
        );
        let g = cx.graph();
        use InputReprMode::*;

        // W^R X (diagonal reweighting) — computed from detached values.
        let wr = g.constant(Self::correlation_weights(&x.value())); // [b, 1, c_in]
        let rx = x.mul(wr);

        let needs_gamma = !matches!(
            self.mode,
            NoMultiscale | NoCorrelationNoMultiscale | NoRawNoMultiscale
        );
        let gamma = needs_gamma.then(|| self.multiscale(cx, x));

        let mut out = match self.mode {
            Full => self.fuse_conv(cx, rx.add(x)).add(gamma.expect("gamma")),
            NoMultiscale => self.fuse_conv(cx, rx.add(x)),
            NoCorrelation => self.fuse_conv(cx, x).add(gamma.expect("gamma")),
            NoCorrelationNoMultiscale => self.fuse_conv(cx, x),
            NoRaw => self.fuse_conv(cx, rx).add(gamma.expect("gamma")),
            NoRawNoMultiscale => self.fuse_conv(cx, rx),
            Method1 => {
                let wg = self.gamma_mixer(gamma.expect("gamma"));
                self.fuse_conv(cx, wg.matmul(rx).add(x))
            }
            Method2 => {
                let wg = self.gamma_mixer(gamma.expect("gamma"));
                self.fuse_conv(cx, rx.add(wg.matmul(x)))
            }
            Method3 => {
                let wg = self.gamma_mixer(gamma.expect("gamma"));
                self.fuse_conv(cx, rx.add(wg.matmul(x)).add(x))
            }
            Method4 => {
                let wg = self.gamma_mixer(gamma.expect("gamma"));
                wg.matmul(self.fuse_conv(cx, rx.add(x)))
            }
        };
        if let (Some(te), Some(m)) = (&self.time_embed, marks) {
            out = out.add(te.forward(cx, m));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_autograd::Graph;

    fn build(mode: InputReprMode) -> (ParamSet, InputRepresentation) {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let repr = InputRepresentation::new(&mut ps, "ir", mode, 3, 8, 16, &[1, 4], 5, &mut rng);
        (ps, repr)
    }

    #[test]
    fn all_modes_produce_correct_shape() {
        use InputReprMode::*;
        for mode in [
            Full,
            NoMultiscale,
            NoCorrelation,
            NoCorrelationNoMultiscale,
            NoRaw,
            NoRawNoMultiscale,
            Method1,
            Method2,
            Method3,
            Method4,
        ] {
            let (ps, repr) = build(mode);
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, false, 0);
            let x = g.leaf(Tensor::randn(&[2, 16, 3], &mut Rng::seed(1)));
            let m = g.leaf(Tensor::randn(&[2, 16, 5], &mut Rng::seed(2)));
            let y = repr.forward(&cx, x, Some(m));
            assert_eq!(y.shape(), vec![2, 16, 8], "mode {mode:?}");
            assert!(!y.value().has_non_finite(), "mode {mode:?}");
        }
    }

    #[test]
    fn correlation_weights_prefer_periodic_variables() {
        // var 0: strong period-4 wave; var 1: white noise. The periodic
        // variable should receive the larger weight.
        let len = 32;
        let mut rng = Rng::seed(3);
        let mut data = Vec::with_capacity(len * 2);
        for t in 0..len {
            data.push((2.0 * std::f32::consts::PI * t as f32 / 4.0).sin() * 2.0);
            data.push(rng.normal());
        }
        let x = Tensor::from_vec(data, &[1, len, 2]);
        let w = InputRepresentation::correlation_weights(&x);
        assert_eq!(w.shape(), &[1, 1, 2]);
        assert!(
            w.at(&[0, 0, 0]) > w.at(&[0, 0, 1]),
            "periodic variable not highlighted: {w:?}"
        );
    }

    #[test]
    fn correlation_weights_sum_to_dims() {
        let x = Tensor::randn(&[2, 20, 4], &mut Rng::seed(4));
        let w = InputRepresentation::correlation_weights(&x);
        for b in 0..2 {
            let s: f32 = (0..4).map(|d| w.at(&[b, 0, d])).sum();
            assert!((s - 4.0).abs() < 1e-4, "weights sum {s}");
        }
    }

    #[test]
    fn modes_differ_in_output() {
        let (ps, full) = build(InputReprMode::Full);
        let (_, nog) = {
            // rebuild with same seed so parameters coincide
            let mut ps2 = ParamSet::new();
            let mut rng = Rng::seed(0);
            let r = InputRepresentation::new(
                &mut ps2,
                "ir",
                InputReprMode::NoMultiscale,
                3,
                8,
                16,
                &[1, 4],
                5,
                &mut rng,
            );
            (ps2, r)
        };
        let x = Tensor::randn(&[1, 16, 3], &mut Rng::seed(5));
        let g1 = Graph::new();
        let c1 = Fwd::new(&g1, &ps, false, 0);
        let y1 = full.forward(&c1, g1.leaf(x.clone()), None).value();
        let g2 = Graph::new();
        let c2 = Fwd::new(&g2, &ps, false, 0);
        let y2 = nog.forward(&c2, g2.leaf(x), None).value();
        assert!(y1.max_abs_diff(&y2) > 1e-4, "ablation has no effect");
    }

    #[test]
    fn gradients_reach_all_parameters_in_full_mode() {
        let (mut ps, repr) = build(InputReprMode::Full);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, true, 0);
        let x = g.leaf(Tensor::randn(&[1, 16, 3], &mut Rng::seed(6)));
        let m = g.leaf(Tensor::randn(&[1, 16, 5], &mut Rng::seed(7)));
        let loss = repr.forward(&cx, x, Some(m)).square().sum_all();
        let grads = g.backward(loss);
        let collected = cx.collect_grads(&grads);
        ps.zero_grad();
        ps.apply_grads(collected);
        for id in ps.ids() {
            assert!(
                ps.grad(id).abs().sum() > 0.0,
                "no gradient for {}",
                ps.name(id)
            );
        }
    }

    #[test]
    fn oversized_strides_are_dropped() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let repr = InputRepresentation::new(
            &mut ps,
            "ir",
            InputReprMode::Full,
            2,
            8,
            8,
            &[1, 100],
            0,
            &mut rng,
        );
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[1, 8, 2], &mut Rng::seed(1)));
        assert_eq!(repr.forward(&cx, x, None).shape(), vec![1, 8, 8]);
    }
}
