//! The Conformer encoder: a stack of SIRN layers (paper default: 2).

use crate::config::ConformerConfig;
use crate::sirn::SirnLayer;
use lttf_autograd::Var;
use lttf_nn::{Fwd, ParamSet};
use lttf_tensor::Rng;

/// Encoder output: the representation plus each layer's RNN hidden state.
pub struct EncoderOutput<'g> {
    /// Final representation, `[b, lx, d_model]`.
    pub out: Var<'g>,
    /// First-RNN hidden state per layer, `[b, d_model]`, bottom first —
    /// the candidates for the normalizing flow's `h_e` (Table IX).
    pub hiddens: Vec<Var<'g>>,
}

/// A stack of self-attention SIRN layers.
pub struct Encoder {
    layers: Vec<SirnLayer>,
}

impl Encoder {
    /// Allocate `cfg.enc_layers` SIRN layers.
    pub fn new(ps: &mut ParamSet, cfg: &ConformerConfig, rng: &mut Rng) -> Self {
        let layers = (0..cfg.enc_layers)
            .map(|i| {
                SirnLayer::new(
                    ps,
                    &format!("encoder.l{i}"),
                    cfg.d_model,
                    cfg.n_heads,
                    cfg.attention,
                    cfg.enc_rnn_layers,
                    cfg.eta,
                    cfg.moving_avg,
                    cfg.dropout,
                    false,
                    rng,
                )
            })
            .collect();
        Encoder { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Encode `x: [b, lx, d_model]`.
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>) -> EncoderOutput<'g> {
        let mut h = x;
        let mut hiddens = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let out = layer.forward(cx, h, None);
            h = out.out;
            hiddens.push(out.hidden);
        }
        EncoderOutput { out: h, hiddens }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConformerConfig;
    use lttf_autograd::Graph;
    use lttf_tensor::Tensor;

    #[test]
    fn two_layer_encoder_shapes() {
        let mut cfg = ConformerConfig::tiny(3, 12, 6);
        cfg.enc_layers = 2;
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let enc = Encoder::new(&mut ps, &cfg, &mut rng);
        assert_eq!(enc.num_layers(), 2);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[2, 12, cfg.d_model], &mut rng));
        let out = enc.forward(&cx, x);
        assert_eq!(out.out.shape(), vec![2, 12, cfg.d_model]);
        assert_eq!(out.hiddens.len(), 2);
        assert_eq!(out.hiddens[0].shape(), vec![2, cfg.d_model]);
    }

    #[test]
    fn layers_transform_progressively() {
        let mut cfg = ConformerConfig::tiny(3, 12, 6);
        cfg.enc_layers = 2;
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(1);
        let enc = Encoder::new(&mut ps, &cfg, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[1, 12, cfg.d_model], &mut rng));
        let out = enc.forward(&cx, x);
        // output differs from input and hiddens differ between layers
        assert!(out.out.value().max_abs_diff(&x.value()) > 1e-4);
        assert!(out.hiddens[0].value().max_abs_diff(&out.hiddens[1].value()) > 1e-6);
    }
}
