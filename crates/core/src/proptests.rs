//! Property-based tests: the Conformer forward contract holds across
//! randomized shapes and ablation switches.

use crate::{Conformer, ConformerConfig, FlowMode, HiddenFeed, InputReprMode};
use lttf_nn::ParamSet;
use lttf_tensor::{Rng, Tensor};
use lttf_testkit::prop::{self, Gen};
use lttf_testkit::{prop_assert, prop_assert_eq, properties};

fn arb_repr() -> Gen<InputReprMode> {
    prop::select(vec![
        InputReprMode::Full,
        InputReprMode::NoMultiscale,
        InputReprMode::NoCorrelation,
        InputReprMode::NoCorrelationNoMultiscale,
        InputReprMode::NoRaw,
        InputReprMode::NoRawNoMultiscale,
        InputReprMode::Method1,
        InputReprMode::Method2,
        InputReprMode::Method3,
        InputReprMode::Method4,
    ])
}

fn arb_flow() -> Gen<FlowMode> {
    prop::select(vec![
        FlowMode::Full,
        FlowMode::ZeOnly,
        FlowMode::ZdOnly,
        FlowMode::ZeZd,
        FlowMode::None,
    ])
}

fn arb_feed() -> Gen<HiddenFeed> {
    prop::select(vec![
        HiddenFeed::LastEncLastDec,
        HiddenFeed::FirstEncLastDec,
        HiddenFeed::FirstEncFirstDec,
        HiddenFeed::LastEncFirstDec,
    ])
}

properties! {
    cases = 12;

    // Every combination of shape and ablation switch produces a finite
    // prediction of the right shape.
    fn forward_contract_holds(
        c_in in 1usize..4,
        lx in 8usize..16,
        ly_half in 2usize..6,
        repr in arb_repr(),
        flow in arb_flow(),
        feed in arb_feed(),
        seed in 0u64..100,
    ) {
        let ly = ly_half * 2;
        let mut cfg = ConformerConfig::tiny(c_in, lx, ly);
        cfg.input_repr = repr;
        cfg.flow_mode = flow;
        cfg.hidden_feed = feed;
        cfg.enc_layers = 2; // make hidden-feed variants meaningful
        let mut ps = ParamSet::new();
        let model = Conformer::new(&mut ps, &cfg, &mut Rng::seed(seed));
        let mut rng = Rng::seed(seed + 1);
        let x = Tensor::randn(&[1, lx, c_in], &mut rng);
        let xm = Tensor::randn(&[1, lx, cfg.mark_dim], &mut rng);
        let dec = Tensor::randn(&[1, cfg.dec_len(), c_in], &mut rng);
        let dm = Tensor::randn(&[1, cfg.dec_len(), cfg.mark_dim], &mut rng);
        let y = model.predict(&ps, &x, &xm, &dec, &dm);
        prop_assert_eq!(y.shape(), &[1, ly, c_in]);
        prop_assert!(!y.has_non_finite(), "{:?}/{:?}/{:?}", repr, flow, feed);
    }

    // Prediction is a pure function of (weights, inputs): repeated calls
    // agree bit-for-bit regardless of configuration.
    fn prediction_is_deterministic(seed in 0u64..50, flow in arb_flow()) {
        let mut cfg = ConformerConfig::tiny(2, 10, 4);
        cfg.flow_mode = flow;
        let mut ps = ParamSet::new();
        let model = Conformer::new(&mut ps, &cfg, &mut Rng::seed(seed));
        let mut rng = Rng::seed(seed ^ 0xABCD);
        let x = Tensor::randn(&[2, 10, 2], &mut rng);
        let xm = Tensor::randn(&[2, 10, cfg.mark_dim], &mut rng);
        let dec = Tensor::randn(&[2, cfg.dec_len(), 2], &mut rng);
        let dm = Tensor::randn(&[2, cfg.dec_len(), cfg.mark_dim], &mut rng);
        let a = model.predict(&ps, &x, &xm, &dec, &dm);
        let b = model.predict(&ps, &x, &xm, &dec, &dm);
        prop_assert_eq!(a.data(), b.data());
    }

    // Uncertainty bands are ordered (lo ≤ hi) for any seed and coverage.
    fn bands_are_ordered(seed in 0u64..20, cov_pct in 50u32..99) {
        let cfg = ConformerConfig::tiny(2, 10, 4);
        let mut ps = ParamSet::new();
        let model = Conformer::new(&mut ps, &cfg, &mut Rng::seed(seed));
        let mut rng = Rng::seed(seed + 7);
        let x = Tensor::randn(&[1, 10, 2], &mut rng);
        let xm = Tensor::randn(&[1, 10, cfg.mark_dim], &mut rng);
        let dec = Tensor::randn(&[1, cfg.dec_len(), 2], &mut rng);
        let dm = Tensor::randn(&[1, cfg.dec_len(), cfg.mark_dim], &mut rng);
        let (_, lo, hi) = model.predict_with_uncertainty(
            &ps, &x, &xm, &dec, &dm, 10, cov_pct as f32 / 100.0, seed,
        );
        for (l, h) in lo.data().iter().zip(hi.data()) {
            prop_assert!(l <= h, "{l} > {h}");
        }
    }
}
