//! # lttf-conformer
//!
//! The paper's primary contribution: **Conformer**, a Transformer-based
//! model for long-term time-series forecasting (LTTF) built from three
//! blocks (paper Fig. 1):
//!
//! 1. **Input representation** ([`InputRepresentation`]) — multivariate correlation
//!    via FFT autocorrelation (Eq. 1–2), multiscale dynamics (Eq. 3–4),
//!    and their fusion with the raw series (Eq. 5–6).
//! 2. **Encoder–decoder with SIRN** ([`SirnLayer`], [`Encoder`], [`Decoder`]) —
//!    sliding-window multi-head attention for local patterns plus the
//!    Stationary and Instant Recurrent Network for global trends
//!    (Eq. 8–11), giving O(L) complexity.
//! 3. **Normalizing flow** ([`NormalizingFlow`]) — latent states of the SIRN RNNs are
//!    absorbed into a chain of conditional affine transforms that generate
//!    the target series directly (Eq. 15–17) and quantify uncertainty.
//!
//! Training uses the combined objective `λ·MSE(Y_dec) + (1−λ)·MSE(Z_flow)`
//! (Eq. 18).
//!
//! Every ablation switch exercised in the paper's Tables V–IX is a field
//! of [`ConformerConfig`]:
//! [`InputReprMode`] (Table V and VIII), the attention mechanism
//! (Table VI), [`FlowMode`] (Table VII), and [`HiddenFeed`] (Table IX).
//!
//! ```
//! use lttf_conformer::{Conformer, ConformerConfig};
//! use lttf_nn::ParamSet;
//! use lttf_tensor::Rng;
//!
//! let cfg = ConformerConfig::tiny(3, 12, 6); // 3 vars, Lx=12, Ly=6
//! let mut ps = ParamSet::new();
//! let model = Conformer::new(&mut ps, &cfg, &mut Rng::seed(0));
//! assert!(ps.num_elements() > 0);
//! ```

#![warn(missing_docs)]

mod config;
mod decoder;
mod encoder;
mod flow;
mod input_repr;
mod model;
mod sirn;

pub use config::{ConformerConfig, FlowMode, HiddenFeed, InputReprMode};
pub use decoder::Decoder;
pub use encoder::Encoder;
pub use flow::NormalizingFlow;
pub use input_repr::InputRepresentation;
pub use model::{Conformer, ConformerOutput};
pub use sirn::SirnLayer;

#[cfg(test)]
mod proptests;
