//! The Conformer decoder: SIRN layers with cross-attention over the
//! encoder output (paper default: 1 layer), followed by the output
//! projection that produces `Y^out`.

use crate::config::ConformerConfig;
use crate::sirn::SirnLayer;
use lttf_autograd::Var;
use lttf_nn::{Fwd, Linear, ParamSet};
use lttf_tensor::Rng;

/// Decoder output: predictions plus each layer's RNN hidden state.
pub struct DecoderOutput<'g> {
    /// Prediction for the horizon, `[b, ly, c_out]` (scaled space).
    pub y: Var<'g>,
    /// First-RNN hidden state per layer, `[b, d_model]`, bottom first —
    /// candidates for the flow's `h_d` (Table IX).
    pub hiddens: Vec<Var<'g>>,
}

/// Cross-attending SIRN stack plus the projection to `c_out` variables.
pub struct Decoder {
    layers: Vec<SirnLayer>,
    proj: Linear,
    ly: usize,
    c_out: usize,
}

impl Decoder {
    /// Allocate `cfg.dec_layers` cross-attending SIRN layers.
    pub fn new(ps: &mut ParamSet, cfg: &ConformerConfig, rng: &mut Rng) -> Self {
        let layers = (0..cfg.dec_layers)
            .map(|i| {
                SirnLayer::new(
                    ps,
                    &format!("decoder.l{i}"),
                    cfg.d_model,
                    cfg.n_heads,
                    cfg.attention,
                    cfg.dec_rnn_layers,
                    cfg.eta,
                    cfg.moving_avg,
                    cfg.dropout,
                    true,
                    rng,
                )
            })
            .collect();
        Decoder {
            layers,
            proj: Linear::new(ps, "decoder.proj", cfg.d_model, cfg.c_out, rng),
            ly: cfg.ly,
            c_out: cfg.c_out,
        }
    }

    /// Decode `x: [b, dec_len, d_model]` against `enc: [b, lx, d_model]`,
    /// returning the last `ly` projected steps (the horizon).
    pub fn forward<'g>(&self, cx: &Fwd<'g, '_>, x: Var<'g>, enc: Var<'g>) -> DecoderOutput<'g> {
        let mut h = x;
        let mut hiddens = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let out = layer.forward(cx, h, Some(enc));
            h = out.out;
            hiddens.push(out.hidden);
        }
        let dec_len = h.shape()[1];
        assert!(
            dec_len >= self.ly,
            "decoder input length {dec_len} shorter than horizon {}",
            self.ly
        );
        let horizon = h.narrow(1, dec_len - self.ly, self.ly);
        let y = self.proj.forward(cx, horizon);
        debug_assert_eq!(y.shape()[2], self.c_out);
        DecoderOutput { y, hiddens }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_autograd::Graph;
    use lttf_tensor::Tensor;

    #[test]
    fn decoder_shapes() {
        let cfg = crate::ConformerConfig::tiny(3, 12, 6);
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let dec = Decoder::new(&mut ps, &cfg, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[2, cfg.dec_len(), cfg.d_model], &mut rng));
        let enc = g.leaf(Tensor::randn(&[2, cfg.lx, cfg.d_model], &mut rng));
        let out = dec.forward(&cx, x, enc);
        assert_eq!(out.y.shape(), vec![2, cfg.ly, cfg.c_out]);
        assert_eq!(out.hiddens.len(), 1);
    }

    #[test]
    fn univariate_projection() {
        let mut cfg = crate::ConformerConfig::tiny(5, 12, 6);
        cfg.c_out = 1;
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(1);
        let dec = Decoder::new(&mut ps, &cfg, &mut rng);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[1, cfg.dec_len(), cfg.d_model], &mut rng));
        let enc = g.leaf(Tensor::randn(&[1, cfg.lx, cfg.d_model], &mut rng));
        assert_eq!(dec.forward(&cx, x, enc).y.shape(), vec![1, 6, 1]);
    }
}
