//! The assembled Conformer model (paper Fig. 1) and its training loss
//! (Eq. 18).

use crate::config::{ConformerConfig, FlowMode, HiddenFeed};
use crate::decoder::Decoder;
use crate::encoder::Encoder;
use crate::flow::NormalizingFlow;
use crate::input_repr::InputRepresentation;
use lttf_autograd::{Graph, Var};
use lttf_nn::{mse_loss_to, Fwd, ParamSet};
use lttf_tensor::{Rng, Tensor};

/// Everything one forward pass produces.
pub struct ConformerOutput<'g> {
    /// Decoder prediction `Y^out`, `[b, ly, c_out]`.
    pub y_dec: Var<'g>,
    /// Flow prediction `Z^out`, `[b, ly, c_out]` (absent when
    /// `FlowMode::None`).
    pub y_flow: Option<Var<'g>>,
    /// The encoder hidden state fed to the flow.
    pub h_e: Var<'g>,
    /// The decoder hidden state fed to the flow.
    pub h_d: Var<'g>,
}

/// The Conformer model: input representation → SIRN encoder/decoder →
/// normalizing flow.
pub struct Conformer {
    cfg: ConformerConfig,
    enc_repr: InputRepresentation,
    dec_repr: InputRepresentation,
    encoder: Encoder,
    decoder: Decoder,
    flow: Option<NormalizingFlow>,
}

impl Conformer {
    /// Allocate the model per `cfg`.
    ///
    /// # Panics
    /// Panics if `cfg.validate()` fails.
    pub fn new(ps: &mut ParamSet, cfg: &ConformerConfig, rng: &mut Rng) -> Self {
        cfg.validate();
        let enc_repr = InputRepresentation::new(
            ps,
            "enc_repr",
            cfg.input_repr,
            cfg.c_in,
            cfg.d_model,
            cfg.lx,
            &cfg.multiscale_strides,
            cfg.mark_dim,
            rng,
        );
        let dec_repr = InputRepresentation::new(
            ps,
            "dec_repr",
            cfg.input_repr,
            cfg.c_in,
            cfg.d_model,
            cfg.dec_len(),
            &cfg.multiscale_strides,
            cfg.mark_dim,
            rng,
        );
        let encoder = Encoder::new(ps, cfg, rng);
        let decoder = Decoder::new(ps, cfg, rng);
        let flow = (cfg.flow_mode != FlowMode::None).then(|| {
            NormalizingFlow::new(
                ps,
                "flow",
                cfg.flow_mode,
                cfg.d_model,
                cfg.ly,
                cfg.c_out,
                cfg.flow_steps,
                rng,
            )
        });
        Conformer {
            cfg: cfg.clone(),
            enc_repr,
            dec_repr,
            encoder,
            decoder,
            flow,
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &ConformerConfig {
        &self.cfg
    }

    /// Pick `(h_e, h_d)` per the Table IX switch.
    fn pick_hiddens<'g>(&self, enc: &[Var<'g>], dec: &[Var<'g>]) -> (Var<'g>, Var<'g>) {
        let (first_e, last_e) = (enc[0], *enc.last().expect("encoder layer"));
        let (first_d, last_d) = (dec[0], *dec.last().expect("decoder layer"));
        match self.cfg.hidden_feed {
            HiddenFeed::LastEncLastDec => (last_e, last_d),
            HiddenFeed::FirstEncLastDec => (first_e, last_d),
            HiddenFeed::FirstEncFirstDec => (first_e, first_d),
            HiddenFeed::LastEncFirstDec => (last_e, first_d),
        }
    }

    /// Full forward pass.
    ///
    /// * `x: [b, lx, c_in]`, `x_mark: [b, lx, mark_dim]`
    /// * `dec: [b, dec_len, c_in]` (zero-padded horizon),
    ///   `dec_mark: [b, dec_len, mark_dim]`
    /// * `sample`: draw flow noise (training) or use the mean path (eval).
    pub fn forward<'g>(
        &self,
        cx: &Fwd<'g, '_>,
        x: Var<'g>,
        x_mark: Option<Var<'g>>,
        dec: Var<'g>,
        dec_mark: Option<Var<'g>>,
        sample: bool,
    ) -> ConformerOutput<'g> {
        let enc_in = self.enc_repr.forward(cx, x, x_mark);
        let enc_out = self.encoder.forward(cx, enc_in);
        let dec_in = self.dec_repr.forward(cx, dec, dec_mark);
        let dec_out = self.decoder.forward(cx, dec_in, enc_out.out);
        let (h_e, h_d) = self.pick_hiddens(&enc_out.hiddens, &dec_out.hiddens);
        let y_flow = self.flow.as_ref().map(|f| f.forward(cx, h_e, h_d, sample));
        ConformerOutput {
            y_dec: dec_out.y,
            y_flow,
            h_e,
            h_d,
        }
    }

    /// The training loss (Eq. 18):
    /// `λ·MSE(Y^out, Y) + (1−λ)·MSE(Z^out, Y)`.
    ///
    /// `target: [b, ly, c_out]` in scaled space.
    #[allow(clippy::too_many_arguments)]
    pub fn loss<'g>(
        &self,
        cx: &Fwd<'g, '_>,
        x: Var<'g>,
        x_mark: Option<Var<'g>>,
        dec: Var<'g>,
        dec_mark: Option<Var<'g>>,
        target: &Tensor,
    ) -> Var<'g> {
        let out = self.forward(cx, x, x_mark, dec, dec_mark, true);
        let dec_loss = mse_loss_to(out.y_dec, target);
        match out.y_flow {
            Some(zf) => {
                let flow_loss = mse_loss_to(zf, target);
                dec_loss
                    .mul_scalar(self.cfg.lambda)
                    .add(flow_loss.mul_scalar(1.0 - self.cfg.lambda))
            }
            None => dec_loss,
        }
    }

    /// Deterministic point prediction (eval mode, flow mean path):
    /// `λ·Y^out + (1−λ)·Z^out` when the flow is enabled.
    pub fn predict(
        &self,
        ps: &ParamSet,
        x: &Tensor,
        x_mark: &Tensor,
        dec: &Tensor,
        dec_mark: &Tensor,
    ) -> Tensor {
        let g = Graph::inference();
        let cx = Fwd::new(&g, ps, false, 0);
        let marks = (self.cfg.mark_dim > 0).then(|| g.leaf(x_mark.clone()));
        let dmarks = (self.cfg.mark_dim > 0).then(|| g.leaf(dec_mark.clone()));
        let out = self.forward(
            &cx,
            g.leaf(x.clone()),
            marks,
            g.leaf(dec.clone()),
            dmarks,
            false,
        );
        match out.y_flow {
            Some(zf) => out
                .y_dec
                .value()
                .mul_scalar(self.cfg.lambda)
                .add(&zf.value().mul_scalar(1.0 - self.cfg.lambda)),
            None => out.y_dec.value(),
        }
    }

    /// Prediction with uncertainty bands from the flow: returns
    /// `(point, lo, hi)` tensors `[b, ly, c_out]` at the given coverage.
    /// The point estimate blends the decoder output and the flow mean by
    /// λ, as in Fig. 6.
    ///
    /// # Panics
    /// Panics when the flow is disabled (`FlowMode::None`).
    #[allow(clippy::too_many_arguments)]
    pub fn predict_with_uncertainty(
        &self,
        ps: &ParamSet,
        x: &Tensor,
        x_mark: &Tensor,
        dec: &Tensor,
        dec_mark: &Tensor,
        n_samples: usize,
        coverage: f32,
        seed: u64,
    ) -> (Tensor, Tensor, Tensor) {
        self.predict_with_uncertainty_blend(
            ps,
            x,
            x_mark,
            dec,
            dec_mark,
            n_samples,
            coverage,
            seed,
            self.cfg.lambda,
        )
    }

    /// Like [`Conformer::predict_with_uncertainty`], but with an explicit
    /// inference-time blend weight λ (the Fig. 6 sweep renders the same
    /// trained model's bands at several λ values: smaller λ weights the
    /// flow more, widening the interval).
    #[allow(clippy::too_many_arguments)]
    pub fn predict_with_uncertainty_blend(
        &self,
        ps: &ParamSet,
        x: &Tensor,
        x_mark: &Tensor,
        dec: &Tensor,
        dec_mark: &Tensor,
        n_samples: usize,
        coverage: f32,
        seed: u64,
        lambda: f32,
    ) -> (Tensor, Tensor, Tensor) {
        let flow = self
            .flow
            .as_ref()
            .expect("uncertainty requires the normalizing flow (FlowMode != None)");
        let g = Graph::inference();
        let cx = Fwd::new(&g, ps, false, 0);
        let marks = (self.cfg.mark_dim > 0).then(|| g.leaf(x_mark.clone()));
        let dmarks = (self.cfg.mark_dim > 0).then(|| g.leaf(dec_mark.clone()));
        let out = self.forward(
            &cx,
            g.leaf(x.clone()),
            marks,
            g.leaf(dec.clone()),
            dmarks,
            false,
        );
        let y_dec = out.y_dec.value();
        let (flow_mean, lo, hi) = flow.quantiles(
            ps,
            &out.h_e.value(),
            &out.h_d.value(),
            n_samples,
            coverage,
            seed,
        );
        let lam = lambda;
        let point = y_dec.mul_scalar(lam).add(&flow_mean.mul_scalar(1.0 - lam));
        let lo = y_dec.mul_scalar(lam).add(&lo.mul_scalar(1.0 - lam));
        let hi = y_dec.mul_scalar(lam).add(&hi.mul_scalar(1.0 - lam));
        (point, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_data::MARK_DIM;

    fn inputs(
        cfg: &ConformerConfig,
        b: usize,
        seed: u64,
    ) -> (Tensor, Tensor, Tensor, Tensor, Tensor) {
        let mut rng = Rng::seed(seed);
        (
            Tensor::randn(&[b, cfg.lx, cfg.c_in], &mut rng),
            Tensor::randn(&[b, cfg.lx, MARK_DIM], &mut rng),
            Tensor::randn(&[b, cfg.dec_len(), cfg.c_in], &mut rng),
            Tensor::randn(&[b, cfg.dec_len(), MARK_DIM], &mut rng),
            Tensor::randn(&[b, cfg.ly, cfg.c_out], &mut rng),
        )
    }

    #[test]
    fn forward_shapes() {
        let cfg = ConformerConfig::tiny(3, 12, 6);
        let mut ps = ParamSet::new();
        let model = Conformer::new(&mut ps, &cfg, &mut Rng::seed(0));
        let (x, xm, d, dm, _) = inputs(&cfg, 2, 1);
        let pred = model.predict(&ps, &x, &xm, &d, &dm);
        assert_eq!(pred.shape(), &[2, 6, 3]);
        assert!(!pred.has_non_finite());
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let cfg = ConformerConfig::tiny(2, 10, 4);
        let mut ps = ParamSet::new();
        let model = Conformer::new(&mut ps, &cfg, &mut Rng::seed(0));
        let (x, xm, d, dm, y) = inputs(&cfg, 2, 2);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, true, 0);
        let loss = model.loss(
            &cx,
            g.leaf(x),
            Some(g.leaf(xm)),
            g.leaf(d),
            Some(g.leaf(dm)),
            &y,
        );
        let v = loss.value().item();
        assert!(v.is_finite() && v > 0.0, "loss {v}");
    }

    #[test]
    fn one_training_step_reduces_loss_on_fixed_batch() {
        use lttf_nn::{Adam, Optimizer};
        let cfg = ConformerConfig::tiny(2, 10, 4);
        let mut ps = ParamSet::new();
        let model = Conformer::new(&mut ps, &cfg, &mut Rng::seed(0));
        let mut opt = Adam::new(5e-3);
        let (x, xm, d, dm, y) = inputs(&cfg, 4, 3);
        let mut losses = Vec::new();
        for step in 0..25 {
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, true, step);
            let loss = model.loss(
                &cx,
                g.leaf(x.clone()),
                Some(g.leaf(xm.clone())),
                g.leaf(d.clone()),
                Some(g.leaf(dm.clone())),
                &y,
            );
            losses.push(loss.value().item());
            let grads = g.backward(loss);
            let collected = cx.collect_grads(&grads);
            ps.zero_grad();
            ps.apply_grads(collected);
            opt.step(&mut ps);
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "no optimization progress: {:?}",
            &losses[..3]
        );
    }

    #[test]
    fn flow_none_skips_generative_head() {
        let mut cfg = ConformerConfig::tiny(2, 10, 4);
        cfg.flow_mode = FlowMode::None;
        let mut ps = ParamSet::new();
        let model = Conformer::new(&mut ps, &cfg, &mut Rng::seed(0));
        let (x, xm, d, dm, _) = inputs(&cfg, 1, 4);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let out = model.forward(
            &cx,
            g.leaf(x),
            Some(g.leaf(xm)),
            g.leaf(d),
            Some(g.leaf(dm)),
            false,
        );
        assert!(out.y_flow.is_none());
    }

    #[test]
    fn uncertainty_bands_contain_point() {
        let cfg = ConformerConfig::tiny(2, 10, 4);
        let mut ps = ParamSet::new();
        let model = Conformer::new(&mut ps, &cfg, &mut Rng::seed(0));
        let (x, xm, d, dm, _) = inputs(&cfg, 1, 5);
        let (point, lo, hi) = model.predict_with_uncertainty(&ps, &x, &xm, &d, &dm, 30, 0.9, 7);
        for e in 0..point.numel() {
            assert!(lo.data()[e] <= hi.data()[e] + 1e-5);
            // the band is centred near the point estimate
            assert!(lo.data()[e] <= point.data()[e] + 0.5);
            assert!(hi.data()[e] >= point.data()[e] - 0.5);
        }
    }

    #[test]
    fn hidden_feed_variants_change_forward() {
        // Build two models with identical weights but different hidden
        // feeds; with a 2-layer encoder the flow sees different latents.
        let mut base = ConformerConfig::tiny(2, 10, 4);
        base.enc_layers = 2;
        let mut ps1 = ParamSet::new();
        let m1 = Conformer::new(&mut ps1, &base, &mut Rng::seed(0));
        let mut other = base.clone();
        other.hidden_feed = HiddenFeed::FirstEncLastDec;
        let mut ps2 = ParamSet::new();
        let m2 = Conformer::new(&mut ps2, &other, &mut Rng::seed(0));
        let (x, xm, d, dm, _) = inputs(&base, 1, 6);
        let a = m1.predict(&ps1, &x, &xm, &d, &dm);
        let b = m2.predict(&ps2, &x, &xm, &d, &dm);
        assert!(a.max_abs_diff(&b) > 1e-7, "hidden feed has no effect");
    }

    #[test]
    fn deterministic_prediction() {
        let cfg = ConformerConfig::tiny(2, 10, 4);
        let mut ps = ParamSet::new();
        let model = Conformer::new(&mut ps, &cfg, &mut Rng::seed(0));
        let (x, xm, d, dm, _) = inputs(&cfg, 2, 8);
        let a = model.predict(&ps, &x, &xm, &d, &dm);
        let b = model.predict(&ps, &x, &xm, &d, &dm);
        a.assert_close(&b, 0.0);
    }
}
