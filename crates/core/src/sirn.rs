//! The Stationary and Instant Recurrent Network layer (paper Section
//! IV-B2, Fig. 3a, Eq. 8–11).
//!
//! One SIRN layer:
//! 1. **Eq. 8** — a GRU (the "first RNN block") summarizes the global
//!    signal; its softmaxed outputs gate the input, added to the
//!    sliding-window attention (local patterns) and the input itself.
//! 2. **Eq. 9–10** — iterated series decomposition distills instant
//!    (seasonal) patterns: each iteration convolves the current seasonal
//!    part, adds the windowed-attention reference, and decomposes again.
//! 3. **Eq. 11** — trends from every decomposition are summed into the
//!    "second RNN block"; its outputs plus the final seasonal part are
//!    projected to the layer output.
//!
//! The hidden state of the first RNN is exported — the normalizing flow
//! absorbs it (Section IV-C).

use lttf_autograd::Var;
use lttf_nn::{
    kaiming_uniform, AttentionKind, Fwd, Gru, LayerNorm, Linear, MultiHeadAttention, ParamId,
    ParamSet, SeriesDecomp,
};
use lttf_tensor::Rng;

/// Output of one SIRN layer.
pub struct SirnOutput<'g> {
    /// Layer output, `[b, len, d_model]`.
    pub out: Var<'g>,
    /// Final hidden state of the first RNN block, `[b, d_model]` — the
    /// latent the normalizing flow consumes.
    pub hidden: Var<'g>,
}

/// One SIRN layer; the encoder stacks two, the decoder one (paper
/// defaults). Decoder layers additionally cross-attend to the encoder
/// output between Eq. 8 and the decomposition cascade.
pub struct SirnLayer {
    global_rnn: Gru,
    self_attn: MultiHeadAttention,
    cross_attn: Option<MultiHeadAttention>,
    season_conv: ParamId,
    trend_rnn: Gru,
    out_proj: Linear,
    norm: LayerNorm,
    decomp: SeriesDecomp,
    eta: usize,
    dropout: f32,
}

impl SirnLayer {
    /// Allocate a SIRN layer.
    ///
    /// `rnn_layers` is the GRU depth of both RNN blocks (paper: 1 in the
    /// encoder, 2 in the decoder for multivariate LTTF). `cross = true`
    /// adds the decoder's cross-attention over the encoder output.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        d_model: usize,
        n_heads: usize,
        attention: AttentionKind,
        rnn_layers: usize,
        eta: usize,
        moving_avg: usize,
        dropout: f32,
        cross: bool,
        rng: &mut Rng,
    ) -> Self {
        SirnLayer {
            global_rnn: Gru::new(
                ps,
                &format!("{name}.global_rnn"),
                d_model,
                d_model,
                rnn_layers,
                0.0,
                rng,
            ),
            self_attn: MultiHeadAttention::new(
                ps,
                &format!("{name}.self_attn"),
                attention,
                d_model,
                n_heads,
                dropout,
                rng,
            ),
            cross_attn: cross.then(|| {
                MultiHeadAttention::new(
                    ps,
                    &format!("{name}.cross_attn"),
                    attention,
                    d_model,
                    n_heads,
                    dropout,
                    rng,
                )
            }),
            season_conv: ps.add(
                format!("{name}.season_conv"),
                kaiming_uniform(&[d_model, d_model, 3], d_model * 3, rng),
            ),
            trend_rnn: Gru::new(
                ps,
                &format!("{name}.trend_rnn"),
                d_model,
                d_model,
                rnn_layers,
                0.0,
                rng,
            ),
            out_proj: Linear::new(ps, &format!("{name}.out"), d_model, d_model, rng),
            norm: LayerNorm::new(ps, &format!("{name}.norm"), d_model),
            decomp: SeriesDecomp::new(moving_avg),
            eta: eta.max(1),
            dropout,
        }
    }

    /// Run the layer. `x: [b, len, d_model]`; `cross` is the encoder
    /// output for decoder layers.
    ///
    /// # Panics
    /// Panics if `cross` is provided to a layer built without
    /// cross-attention (or vice versa, silently ignores nothing).
    pub fn forward<'g>(
        &self,
        cx: &Fwd<'g, '_>,
        x: Var<'g>,
        cross: Option<Var<'g>>,
    ) -> SirnOutput<'g> {
        assert_eq!(
            cross.is_some(),
            self.cross_attn.is_some(),
            "cross input must match the layer's cross-attention configuration"
        );
        // Eq. (8): global gate + local attention + residual.
        let rnn_out = self.global_rnn.forward(cx, x);
        let hidden = *rnn_out
            .last_hidden
            .last()
            .expect("GRU has at least one layer");
        let gate = rnn_out.outputs.softmax(-1);
        let local = self.self_attn.forward_self(cx, x);
        let mut xin = gate.mul(x).add(local).add(x);

        if let (Some(attn), Some(enc)) = (&self.cross_attn, cross) {
            xin = xin.add(attn.forward(cx, xin, enc, enc));
        }
        xin = cx.dropout(xin, self.dropout);

        // Eq. (9): initial decomposition.
        let (mut seasonal, t0) = self.decomp.forward(xin);
        let mut trend_sum = t0;
        // The windowed-attention reference reused by every distillation
        // iteration (Eq. 10's MHA_W(X^in) term).
        let local_ref = self.self_attn.forward_self(cx, xin);
        let w = cx.param(self.season_conv);
        for _ in 0..self.eta {
            let conv_s = seasonal.swap_axes(1, 2).conv1d(w, 1, 1).swap_axes(1, 2);
            let (s, t) = self.decomp.forward(conv_s.add(local_ref));
            seasonal = s;
            trend_sum = trend_sum.add(t);
        }

        // Eq. (11): fuse instant + stationary parts.
        let trend_repr = self.trend_rnn.forward(cx, trend_sum).outputs;
        let fused = self.out_proj.forward(cx, seasonal.add(trend_repr));
        // Residual + layer norm for depth stability (implementation choice,
        // matching standard transformer practice).
        let out = self.norm.forward(cx, fused.add(x));
        SirnOutput { out, hidden }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_autograd::Graph;
    use lttf_tensor::Tensor;

    fn layer(cross: bool) -> (ParamSet, SirnLayer) {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed(0);
        let l = SirnLayer::new(
            &mut ps,
            "sirn",
            8,
            2,
            AttentionKind::SlidingWindow { w: 2 },
            1,
            2,
            5,
            0.0,
            cross,
            &mut rng,
        );
        (ps, l)
    }

    #[test]
    fn self_layer_shapes() {
        let (ps, l) = layer(false);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[2, 12, 8], &mut Rng::seed(1)));
        let out = l.forward(&cx, x, None);
        assert_eq!(out.out.shape(), vec![2, 12, 8]);
        assert_eq!(out.hidden.shape(), vec![2, 8]);
        assert!(!out.out.value().has_non_finite());
    }

    #[test]
    fn cross_layer_attends_to_encoder() {
        let (ps, l) = layer(true);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[1, 10, 8], &mut Rng::seed(2)));
        let enc_a = g.leaf(Tensor::randn(&[1, 6, 8], &mut Rng::seed(3)));
        let enc_b = g.leaf(Tensor::randn(&[1, 6, 8], &mut Rng::seed(4)));
        let ya = l.forward(&cx, x, Some(enc_a)).out.value();
        let yb = l.forward(&cx, x, Some(enc_b)).out.value();
        assert!(
            ya.max_abs_diff(&yb) > 1e-5,
            "decoder ignores the encoder output"
        );
    }

    #[test]
    #[should_panic(expected = "cross input must match")]
    fn cross_mismatch_panics() {
        let (ps, l) = layer(false);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, false, 0);
        let x = g.leaf(Tensor::randn(&[1, 10, 8], &mut Rng::seed(2)));
        l.forward(&cx, x, Some(x));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let (mut ps, l) = layer(false);
        let g = Graph::new();
        let cx = Fwd::new(&g, &ps, true, 0);
        let x = g.leaf(Tensor::randn(&[1, 12, 8], &mut Rng::seed(5)));
        let out = l.forward(&cx, x, None);
        let loss = out
            .out
            .square()
            .sum_all()
            .add(out.hidden.square().sum_all());
        let grads = g.backward(loss);
        let collected = cx.collect_grads(&grads);
        ps.zero_grad();
        ps.apply_grads(collected);
        let silent: Vec<&str> = ps
            .ids()
            .filter(|&id| ps.grad(id).abs().sum() == 0.0)
            .map(|id| ps.name(id))
            .collect();
        assert!(silent.is_empty(), "parameters without gradient: {silent:?}");
    }

    #[test]
    fn attention_kind_is_swappable() {
        // Table VI swaps the attention inside SIRN; every kind must run.
        for kind in [
            AttentionKind::Full,
            AttentionKind::ProbSparse { factor: 1 },
            AttentionKind::Lsh { n_buckets: 2 },
            AttentionKind::LogSparse,
            AttentionKind::AutoCorrelation { factor: 1 },
        ] {
            let mut ps = ParamSet::new();
            let mut rng = Rng::seed(0);
            let l = SirnLayer::new(&mut ps, "s", 8, 2, kind, 1, 1, 5, 0.0, false, &mut rng);
            let g = Graph::new();
            let cx = Fwd::new(&g, &ps, false, 0);
            let x = g.leaf(Tensor::randn(&[1, 12, 8], &mut Rng::seed(6)));
            let out = l.forward(&cx, x, None);
            assert_eq!(out.out.shape(), vec![1, 12, 8], "kind {kind:?}");
        }
    }
}
