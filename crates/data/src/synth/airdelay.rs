//! AirDelay stand-in: flight arrival delays at irregular timestamps.

use crate::series::{Freq, TimeSeries};
use crate::synth::SynthSpec;
use lttf_tensor::{Rng, Tensor};

/// Flight arrivals with exponential inter-arrival gaps (arrivals cluster
/// by time of day), a heavy-tailed arrival-delay target (most flights are
/// roughly on time; a minority are very late), plus departure delay,
/// distance, air time, and taxi-in covariates. Mirrors the BTS "On-Time"
/// extraction the paper describes (Texas airports, January 2022).
pub fn airdelay(spec: SynthSpec) -> TimeSeries {
    let dims = spec.dims.unwrap_or(6).max(2);
    let len = spec.len;
    let mut rng = Rng::seed(spec.seed ^ 0xA17);
    let t0: i64 = 1_640_995_200; // 2022-01-01

    let mut data = vec![0.0f32; len * dims];
    let mut timestamps = Vec::with_capacity(len);
    let mut ts = t0;
    let mut congestion = 0.0f32; // slowly varying airport congestion state
    for t in 0..len {
        // Inter-arrival gaps: exponential, busier during the day.
        let hour = ((ts % 86_400) / 3600) as f32;
        let day_factor = 1.0 + 2.0 * (std::f32::consts::PI * (hour - 2.0) / 24.0).sin().max(0.0);
        let gap = (rng.exponential(day_factor / 90.0) as i64).clamp(1, 3600);
        ts += gap;
        timestamps.push(ts);

        congestion = 0.995 * congestion + 0.15 * rng.normal();
        // Departure delay: mixture of on-time and heavy-tail late.
        let dep_delay = if rng.bernoulli(0.75) {
            rng.normal() * 6.0
        } else {
            rng.exponential(1.0 / 35.0) + 10.0
        };
        let distance = rng.uniform(200.0, 2400.0);
        let air_time = distance / 8.0 + rng.normal() * 8.0;
        let taxi_in = 5.0 + rng.exponential(0.25);
        // Arrival delay: departure delay propagates, congestion adds, some
        // recovery in the air.
        let arr_delay = 0.9 * dep_delay + 4.0 * congestion - 0.002 * distance + rng.normal() * 5.0;

        let row = [arr_delay, dep_delay, distance, air_time, taxi_in, hour];
        for d in 0..dims {
            data[t * dims + d] = row[d.min(row.len() - 1)];
        }
    }
    let mut names = vec![
        "ArrDelay".to_string(),
        "DepDelay".to_string(),
        "Distance".to_string(),
        "AirTime".to_string(),
        "TaxiIn".to_string(),
        "HourOfDay".to_string(),
    ];
    names.truncate(dims);
    while names.len() < dims {
        names.push(format!("aux_{}", names.len()));
    }
    TimeSeries::new(
        Tensor::from_vec(data, &[len, dims]),
        timestamps,
        names,
        0,
        Freq::Irregular,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregular_strictly_increasing_timestamps() {
        let s = airdelay(SynthSpec {
            len: 1000,
            dims: None,
            seed: 1,
        });
        assert!(s.timestamps.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.freq, Freq::Irregular);
    }

    #[test]
    fn arrival_tracks_departure_delay() {
        let s = airdelay(SynthSpec {
            len: 3000,
            dims: None,
            seed: 2,
        });
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        let (ma, mb) = (
            (0..s.len()).map(|t| s.values.at(&[t, 0])).sum::<f32>() / s.len() as f32,
            (0..s.len()).map(|t| s.values.at(&[t, 1])).sum::<f32>() / s.len() as f32,
        );
        for t in 0..s.len() {
            let a = s.values.at(&[t, 0]) - ma;
            let b = s.values.at(&[t, 1]) - mb;
            num += a * b;
            da += a * a;
            db += b * b;
        }
        let corr = num / (da.sqrt() * db.sqrt());
        assert!(corr > 0.6, "ArrDelay decoupled from DepDelay: {corr}");
    }

    #[test]
    fn most_flights_roughly_on_time() {
        let s = airdelay(SynthSpec {
            len: 5000,
            dims: None,
            seed: 3,
        });
        let d = s.target_series();
        let on_time = d.data().iter().filter(|&&v| v.abs() < 15.0).count();
        assert!(
            on_time as f32 / d.numel() as f32 > 0.5,
            "too few on-time flights"
        );
        // but the tail reaches far
        assert!(d.max() > 60.0, "no heavy tail: max {}", d.max());
    }
}
