//! Wind stand-in: 15-minute wind-farm power with a saturating power curve.

use crate::series::{Freq, TimeSeries};
use crate::synth::SynthSpec;
use lttf_tensor::{Rng, Tensor};

/// Wind farm telemetry: a latent wind speed follows a persistent AR(1)
/// process with a weak diurnal component and occasional ramps; power is the
/// standard cubic curve clipped at rated capacity (so the target spends
/// time pinned at 0 and at the cap — the high-entropy, weakly periodic
/// regime the paper runs its ablations on). Extra channels are wind
/// speed/direction/temperature-like covariates.
pub fn wind(spec: SynthSpec) -> TimeSeries {
    let dims = spec.dims.unwrap_or(7).max(2);
    let len = spec.len;
    let mut rng = Rng::seed(spec.seed ^ 0x817D);
    let t0: i64 = 1_577_836_800; // 2020-01-01
    let steps_per_day = 96.0;
    let rated = 100.0f32; // rated capacity (arbitrary units)
    let cut_in = 3.0f32;
    let rated_speed = 12.0f32;

    let mut speed = 7.0f32;
    let mut gust = 0.0f32;
    let mut data = vec![0.0f32; len * dims];
    for t in 0..len {
        let tau = t as f32;
        let diurnal = 0.8 * (2.0 * std::f32::consts::PI * tau / steps_per_day).sin();
        // occasional ramp events
        if rng.bernoulli(0.002) {
            gust += rng.uniform(-4.0, 6.0);
        }
        gust *= 0.98;
        speed = 0.985 * speed + 0.015 * 7.5 + 0.35 * rng.normal();
        let s = (speed + diurnal + gust).max(0.0);
        // cubic power curve with cut-in and rated clipping
        let power = if s < cut_in {
            0.0
        } else if s >= rated_speed {
            rated
        } else {
            rated * ((s - cut_in) / (rated_speed - cut_in)).powi(3)
        };
        data[t * dims] = power; // target: Wind_Power (column 0)
        if dims > 1 {
            data[t * dims + 1] = s; // wind speed
        }
        if dims > 2 {
            data[t * dims + 2] = (tau * 0.01).sin() * 180.0 + 10.0 * rng.normal();
            // direction
        }
        if dims > 3 {
            data[t * dims + 3] = 15.0
                + 8.0 * (2.0 * std::f32::consts::PI * tau / (steps_per_day * 365.0)).sin()
                + 0.5 * rng.normal();
            // ambient temperature
        }
        for d in 4..dims {
            // auxiliary SCADA channels loosely coupled to speed
            data[t * dims + d] = 0.5 * s + 2.0 * rng.normal();
        }
    }
    let timestamps: Vec<i64> = (0..len as i64).map(|i| t0 + i * 900).collect();
    let mut names = vec![
        "Wind_Power".to_string(),
        "Wind_Speed".to_string(),
        "Wind_Direction".to_string(),
        "Temperature".to_string(),
    ];
    for d in 4..dims {
        names.push(format!("aux_{d}"));
    }
    names.truncate(dims);
    TimeSeries::new(
        Tensor::from_vec(data, &[len, dims]),
        timestamps,
        names,
        0,
        Freq::Minutes(15),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_bounded_by_capacity() {
        let s = wind(SynthSpec {
            len: 3000,
            dims: None,
            seed: 1,
        });
        let p = s.target_series();
        assert!(p.min() >= 0.0 && p.max() <= 100.0);
    }

    #[test]
    fn power_correlates_with_speed() {
        let s = wind(SynthSpec {
            len: 2000,
            dims: None,
            seed: 2,
        });
        let mut agree = 0usize;
        let mut total = 0usize;
        for t in 1..s.len() {
            let dp = s.values.at(&[t, 0]) - s.values.at(&[t - 1, 0]);
            let dv = s.values.at(&[t, 1]) - s.values.at(&[t - 1, 1]);
            if dp != 0.0 {
                total += 1;
                if (dp > 0.0) == (dv > 0.0) {
                    agree += 1;
                }
            }
        }
        assert!(
            agree as f32 / total as f32 > 0.8,
            "power decoupled from speed ({agree}/{total})"
        );
    }

    #[test]
    fn fifteen_minute_interval() {
        let s = wind(SynthSpec {
            len: 5,
            dims: None,
            seed: 3,
        });
        assert_eq!(s.timestamps[1] - s.timestamps[0], 900);
        assert_eq!(s.names[0], "Wind_Power");
        assert_eq!(s.target, 0);
    }
}
