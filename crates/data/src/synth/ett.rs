//! ETT stand-in: electricity transformer temperature driven by load
//! covariates, at hourly (ETTh1) and 15-minute (ETTm1) resolution.

use crate::series::{Freq, TimeSeries};
use crate::synth::SynthSpec;
use lttf_tensor::{Rng, Tensor};

/// Shared generator: `dims − 1` load features (HUFL/HULL/MUFL/… analogues)
/// with daily cycles and AR noise; the target "OT" (oil temperature) is a
/// lagged, smoothed linear mix of the loads plus a slow seasonal trend —
/// i.e. the covariate-driven-target structure of the real ETT data.
fn ett(spec: SynthSpec, step_secs: i64, steps_per_day: f32, freq: Freq) -> TimeSeries {
    let dims = spec.dims.unwrap_or(7).max(2);
    let n_loads = dims - 1;
    let len = spec.len;
    let mut rng = Rng::seed(spec.seed ^ 0xE77);
    let t0: i64 = 1_467_331_200; // 2016-07-01

    let mut data = vec![0.0f32; len * dims];
    let amps: Vec<f32> = (0..n_loads).map(|_| rng.uniform(1.0, 4.0)).collect();
    let phases: Vec<f32> = (0..n_loads)
        .map(|_| rng.uniform(0.0, 2.0 * std::f32::consts::PI))
        .collect();
    let mix: Vec<f32> = (0..n_loads).map(|_| rng.uniform(0.05, 0.35)).collect();
    let mut ar = vec![0.0f32; n_loads];
    let mut oil = 30.0f32; // slow thermal state
    for t in 0..len {
        let tau = t as f32;
        let daily = 2.0 * std::f32::consts::PI * tau / steps_per_day;
        let annual = (2.0 * std::f32::consts::PI * tau / (steps_per_day * 365.0)).sin();
        let mut load_sum = 0.0;
        for l in 0..n_loads {
            ar[l] = 0.9 * ar[l] + 0.4 * rng.normal();
            let v = amps[l] * (daily + phases[l]).sin() + ar[l] + 2.0 * annual;
            data[t * dims + l] = v;
            load_sum += mix[l] * v;
        }
        // Oil temperature integrates load with a slow time constant
        // (thermal inertia ⇒ the target lags its drivers).
        let alpha = 4.0 / steps_per_day; // ~6-hour time constant
        oil += alpha * (load_sum + 10.0 * annual + 25.0 - oil) + 0.05 * rng.normal();
        data[t * dims + n_loads] = oil;
    }
    let timestamps: Vec<i64> = (0..len as i64).map(|i| t0 + i * step_secs).collect();
    let base_names = ["HUFL", "HULL", "MUFL", "MULL", "LUFL", "LULL"];
    let mut names: Vec<String> = (0..n_loads)
        .map(|l| {
            base_names
                .get(l)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("LOAD{l}"))
        })
        .collect();
    names.push("OT".to_string());
    TimeSeries::new(
        Tensor::from_vec(data, &[len, dims]),
        timestamps,
        names,
        dims - 1,
        freq,
    )
}

/// ETTh1 stand-in: hourly observations.
pub fn etth1(spec: SynthSpec) -> TimeSeries {
    ett(spec, 3600, 24.0, Freq::Hours(1))
}

/// ETTm1 stand-in: 15-minute observations of the same process.
pub fn ettm1(spec: SynthSpec) -> TimeSeries {
    ett(spec, 900, 96.0, Freq::Minutes(15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_fft::autocorrelation;

    #[test]
    fn target_named_ot() {
        let s = etth1(SynthSpec {
            len: 50,
            dims: None,
            seed: 1,
        });
        assert_eq!(s.names[s.target], "OT");
        assert_eq!(s.dims(), 7);
    }

    #[test]
    fn loads_have_daily_cycle() {
        let s = etth1(SynthSpec {
            len: 24 * 50,
            dims: None,
            seed: 2,
        });
        let load: Vec<f32> = (0..s.len()).map(|t| s.values.at(&[t, 0])).collect();
        let r = autocorrelation(&load);
        assert!(r[24] > 0.3 * r[0], "load lacks daily cycle");
    }

    #[test]
    fn oil_temperature_is_smooth() {
        // Thermal inertia: OT's step-to-step changes are much smaller than
        // its overall range.
        let s = etth1(SynthSpec {
            len: 2000,
            dims: None,
            seed: 3,
        });
        let ot = s.target_series();
        let range = ot.max() - ot.min();
        let max_step = ot
            .data()
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_step < 0.2 * range,
            "OT too jumpy: step {max_step} range {range}"
        );
    }

    #[test]
    fn minute_variant_has_finer_grid() {
        let m = ettm1(SynthSpec {
            len: 10,
            dims: None,
            seed: 4,
        });
        assert_eq!(m.timestamps[1] - m.timestamps[0], 900);
        assert_eq!(m.freq, Freq::Minutes(15));
    }
}
