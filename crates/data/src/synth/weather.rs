//! Weather stand-in: 10-minute meteorological indicators.

use crate::series::{Freq, TimeSeries};
use crate::synth::SynthSpec;
use lttf_tensor::{Rng, Tensor};

/// 10-minute weather indicators built from two shared latent drivers — a
/// daily cycle and an annual cycle — plus smooth AR(1) weather-system
/// noise. Each indicator is an affine mixture of the drivers, so the
/// channels are strongly cross-correlated (like real met data).
/// The first channel plays the role of temperature and is the target.
pub fn weather(spec: SynthSpec) -> TimeSeries {
    let dims = spec.dims.unwrap_or(21);
    let len = spec.len;
    let mut rng = Rng::seed(spec.seed ^ 0x7EA7);
    let t0: i64 = 1_577_836_800; // 2020-01-01
    let steps_per_day = 144.0; // 10-minute sampling
    let steps_per_year = steps_per_day * 365.25;

    // Per-channel mixing weights and noise.
    let mut daily_w = Vec::with_capacity(dims);
    let mut annual_w = Vec::with_capacity(dims);
    let mut offset = Vec::with_capacity(dims);
    let mut noise_w = Vec::with_capacity(dims);
    let mut phase = Vec::with_capacity(dims);
    for _ in 0..dims {
        daily_w.push(rng.uniform(0.3, 1.5));
        annual_w.push(rng.uniform(0.5, 2.0));
        offset.push(rng.uniform(-5.0, 15.0));
        noise_w.push(rng.uniform(0.1, 0.5));
        phase.push(rng.uniform(-0.4, 0.4));
    }

    let mut system = 0.0f32; // shared slow weather-system state
    let mut chan_ar = vec![0.0f32; dims];
    let mut data = vec![0.0f32; len * dims];
    for t in 0..len {
        let tau = t as f32;
        let daily = (2.0 * std::f32::consts::PI * tau / steps_per_day).sin();
        let annual = (2.0 * std::f32::consts::PI * tau / steps_per_year).sin();
        system = 0.999 * system + 0.05 * rng.normal();
        for d in 0..dims {
            chan_ar[d] = 0.95 * chan_ar[d] + noise_w[d] * 0.2 * rng.normal();
            let v = offset[d]
                + daily_w[d] * (daily + phase[d]).sin().mul_add(1.0, 0.0)
                + annual_w[d] * annual
                + system
                + chan_ar[d];
            data[t * dims + d] = v;
        }
    }
    let timestamps: Vec<i64> = (0..len as i64).map(|i| t0 + i * 600).collect();
    let mut names: Vec<String> = (0..dims).map(|d| format!("indicator_{d}")).collect();
    names[0] = "Temperature".to_string();
    TimeSeries::new(
        Tensor::from_vec(data, &[len, dims]),
        timestamps,
        names,
        0,
        Freq::Minutes(10),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_cross_correlated() {
        let s = weather(SynthSpec {
            len: 2000,
            dims: Some(6),
            seed: 1,
        });
        // correlation of channel 0 and channel 3 should be visible because
        // of shared drivers
        let a: Vec<f32> = (0..s.len()).map(|t| s.values.at(&[t, 0])).collect();
        let b: Vec<f32> = (0..s.len()).map(|t| s.values.at(&[t, 3])).collect();
        let (ma, mb) = (
            a.iter().sum::<f32>() / a.len() as f32,
            b.iter().sum::<f32>() / b.len() as f32,
        );
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for i in 0..a.len() {
            num += (a[i] - ma) * (b[i] - mb);
            da += (a[i] - ma).powi(2);
            db += (b[i] - mb).powi(2);
        }
        let corr = num / (da.sqrt() * db.sqrt());
        assert!(corr.abs() > 0.2, "channels decoupled: corr {corr}");
    }

    #[test]
    fn target_is_temperature() {
        let s = weather(SynthSpec {
            len: 50,
            dims: Some(4),
            seed: 2,
        });
        assert_eq!(s.names[s.target], "Temperature");
    }

    #[test]
    fn ten_minute_interval() {
        let s = weather(SynthSpec {
            len: 5,
            dims: Some(2),
            seed: 3,
        });
        assert_eq!(s.timestamps[1] - s.timestamps[0], 600);
    }
}
