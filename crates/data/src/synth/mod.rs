//! Seeded synthetic generators standing in for the paper's seven datasets.
//!
//! The real datasets (UCI ECL, BGC-Jena Weather, Exchange, ETT, the
//! authors' Wind Power collection, BTS AirDelay) are not available in this
//! offline environment, so each generator reproduces the statistical
//! regime the paper's experiments rely on:
//!
//! | dataset | dims | interval | regime |
//! |---------|------|----------|--------|
//! | ECL | 321 | 1 h | strong daily + weekly periodicity, heterogeneous client scales, non-negative |
//! | Weather | 21 | 10 min | smooth, daily + annual cycles, strongly cross-correlated |
//! | Exchange | 8 | 1 day | correlated random walks, **no periodicity** |
//! | ETTh1 | 7 | 1 h | target driven by lagged covariates + daily cycle + slow trend |
//! | ETTm1 | 7 | 15 min | same process at 4× resolution |
//! | Wind | 7 | 15 min | bursty, saturating power curve, weak periodicity, high entropy |
//! | AirDelay | 6 | irregular | exponential inter-arrival gaps, heavy-tailed target |
//!
//! Every generator takes a [`SynthSpec`] so experiments can run at reduced
//! length while Table I can print the paper-matching defaults.

mod airdelay;
mod ecl;
mod ett;
mod exchange;
mod weather;
mod wind;

pub use airdelay::airdelay;
pub use ecl::ecl;
pub use ett::{etth1, ettm1};
pub use exchange::exchange;
pub use weather::weather;
pub use wind::wind;

use crate::series::TimeSeries;

/// Length/dimension overrides for a synthetic dataset.
#[derive(Clone, Copy, Debug)]
pub struct SynthSpec {
    /// Number of time steps to generate.
    pub len: usize,
    /// Number of variables (`None` = dataset default).
    pub dims: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl SynthSpec {
    /// A spec with the given length and the dataset's default width.
    pub fn with_len(len: usize, seed: u64) -> Self {
        SynthSpec {
            len,
            dims: None,
            seed,
        }
    }
}

/// The seven datasets, as an enum the harnesses iterate over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Electricity consumption (321 clients, hourly).
    Ecl,
    /// Meteorological indicators (21 variables, 10-minute).
    Weather,
    /// Daily exchange rates of eight countries.
    Exchange,
    /// Electricity transformer temperature, hourly.
    Etth1,
    /// Electricity transformer temperature, 15-minute.
    Ettm1,
    /// Wind farm power, 15-minute.
    Wind,
    /// Flight arrival delays, irregular intervals.
    AirDelay,
}

impl Dataset {
    /// All seven datasets in the paper's table order.
    pub const ALL: [Dataset; 7] = [
        Dataset::Ecl,
        Dataset::Weather,
        Dataset::Exchange,
        Dataset::Etth1,
        Dataset::Ettm1,
        Dataset::Wind,
        Dataset::AirDelay,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Ecl => "ECL",
            Dataset::Weather => "Weather",
            Dataset::Exchange => "Exchange",
            Dataset::Etth1 => "ETTh1",
            Dataset::Ettm1 => "ETTm1",
            Dataset::Wind => "Wind",
            Dataset::AirDelay => "AirDelay",
        }
    }

    /// Default variable count (paper Table I).
    pub fn default_dims(&self) -> usize {
        match self {
            Dataset::Ecl => 321,
            Dataset::Weather => 21,
            Dataset::Exchange => 8,
            Dataset::Etth1 | Dataset::Ettm1 | Dataset::Wind => 7,
            Dataset::AirDelay => 6,
        }
    }

    /// Default length (paper Table I's "# Points").
    pub fn default_len(&self) -> usize {
        match self {
            Dataset::Ecl => 26_304,
            Dataset::Weather => 36_761,
            Dataset::Exchange => 7_588,
            Dataset::Etth1 => 17_420,
            Dataset::Ettm1 => 69_680,
            Dataset::Wind => 45_550,
            Dataset::AirDelay => 54_451,
        }
    }

    /// Generate the synthetic stand-in.
    pub fn generate(&self, spec: SynthSpec) -> TimeSeries {
        match self {
            Dataset::Ecl => ecl(spec),
            Dataset::Weather => weather(spec),
            Dataset::Exchange => exchange(spec),
            Dataset::Etth1 => etth1(spec),
            Dataset::Ettm1 => ettm1(spec),
            Dataset::Wind => wind(spec),
            Dataset::AirDelay => airdelay(spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_fft::autocorrelation;

    fn spec(len: usize) -> SynthSpec {
        SynthSpec {
            len,
            dims: None,
            seed: 42,
        }
    }

    #[test]
    fn all_generators_produce_valid_series() {
        for ds in Dataset::ALL {
            let s = ds.generate(SynthSpec {
                len: 256,
                dims: Some(4.min(ds.default_dims())),
                seed: 1,
            });
            assert_eq!(s.len(), 256, "{ds:?}");
            assert!(!s.values.has_non_finite(), "{ds:?} has NaN/inf");
            assert!(s.dims() >= 1);
            assert!(s.target < s.dims());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for ds in Dataset::ALL {
            let a = ds.generate(spec(128));
            let b = ds.generate(spec(128));
            assert_eq!(a.values.data(), b.values.data(), "{ds:?} not deterministic");
            assert_eq!(a.timestamps, b.timestamps);
        }
    }

    #[test]
    fn different_seeds_differ() {
        for ds in Dataset::ALL {
            let a = ds.generate(SynthSpec {
                len: 128,
                dims: None,
                seed: 1,
            });
            let b = ds.generate(SynthSpec {
                len: 128,
                dims: None,
                seed: 2,
            });
            assert_ne!(a.values.data(), b.values.data(), "{ds:?} ignores seed");
        }
    }

    #[test]
    fn ecl_has_daily_periodicity() {
        let s = ecl(SynthSpec {
            len: 24 * 40,
            dims: Some(4),
            seed: 3,
        });
        let target: Vec<f32> = s.target_series().into_vec();
        let r = autocorrelation(&target);
        // daily cycle at lag 24 (hourly sampling)
        assert!(
            r[24] > 0.3 * r[0],
            "ECL lacks daily cycle: r24={} r0={}",
            r[24],
            r[0]
        );
    }

    #[test]
    fn weather_has_daily_periodicity() {
        // 10-minute sampling → 144 steps per day
        let s = weather(SynthSpec {
            len: 144 * 12,
            dims: Some(5),
            seed: 4,
        });
        let target: Vec<f32> = s.target_series().into_vec();
        let r = autocorrelation(&target);
        assert!(r[144] > 0.2 * r[0], "Weather lacks daily cycle");
    }

    #[test]
    fn exchange_is_aperiodic_random_walk() {
        let s = exchange(spec(2048));
        let target: Vec<f32> = s.target_series().into_vec();
        // A random walk's first difference is white noise: autocorrelation
        // of diffs at any positive lag should be small.
        let diffs: Vec<f32> = target.windows(2).map(|w| w[1] - w[0]).collect();
        let r = autocorrelation(&diffs);
        for lag in [7usize, 30, 365] {
            assert!(
                r[lag].abs() < 0.15 * r[0],
                "Exchange diffs correlated at lag {lag}: {} vs {}",
                r[lag],
                r[0]
            );
        }
    }

    #[test]
    fn ett_target_correlates_with_loads() {
        let s = etth1(spec(2000));
        let t = s.target_series();
        // correlation between OT and the first load feature should be
        // clearly nonzero (the target is driven by the loads).
        let load: Vec<f32> = (0..s.len()).map(|i| s.values.at(&[i, 0])).collect();
        let tv = t.data();
        let (mt, ml) = (t.mean(), load.iter().sum::<f32>() / load.len() as f32);
        let mut num = 0.0;
        let mut dt = 0.0;
        let mut dl = 0.0;
        for i in 0..s.len() {
            num += (tv[i] - mt) * (load[i] - ml);
            dt += (tv[i] - mt).powi(2);
            dl += (load[i] - ml).powi(2);
        }
        let corr = num / (dt.sqrt() * dl.sqrt());
        assert!(corr.abs() > 0.2, "OT decoupled from loads: corr {corr}");
    }

    #[test]
    fn ettm1_is_finer_than_etth1() {
        let h = etth1(spec(64));
        let m = ettm1(spec(64));
        let dh = h.timestamps[1] - h.timestamps[0];
        let dm = m.timestamps[1] - m.timestamps[0];
        assert_eq!(dh, 3600);
        assert_eq!(dm, 900);
    }

    #[test]
    fn wind_power_is_nonnegative_and_bounded() {
        let s = wind(spec(4000));
        let p = s.target_series();
        assert!(p.min() >= 0.0, "negative wind power");
        // capacity saturation: spends time near the cap
        let cap = p.max();
        let near_cap = p.data().iter().filter(|&&v| v > 0.9 * cap).count();
        assert!(near_cap > 20, "no saturation regime ({near_cap} near cap)");
        // and time near zero (calm periods)
        let near_zero = p.data().iter().filter(|&&v| v < 0.05 * cap).count();
        assert!(near_zero > 20, "no calm regime");
    }

    #[test]
    fn airdelay_has_irregular_gaps_and_heavy_tail() {
        let s = airdelay(spec(4000));
        let gaps: Vec<i64> = s.timestamps.windows(2).map(|w| w[1] - w[0]).collect();
        let distinct: std::collections::HashSet<i64> = gaps.iter().cloned().collect();
        assert!(
            distinct.len() > 50,
            "gaps look regular: {} distinct",
            distinct.len()
        );
        // heavy tail: kurtosis of delays well above Gaussian's 3
        let d = s.target_series();
        let (m, sd) = (d.mean(), d.std());
        let kurt = d.data().iter().map(|v| ((v - m) / sd).powi(4)).sum::<f32>() / d.numel() as f32;
        assert!(kurt > 4.0, "delay kurtosis {kurt} not heavy-tailed");
    }

    #[test]
    fn dims_override_respected() {
        for ds in Dataset::ALL {
            let s = ds.generate(SynthSpec {
                len: 64,
                dims: Some(3),
                seed: 9,
            });
            assert_eq!(s.dims(), 3, "{ds:?}");
        }
    }

    #[test]
    fn table1_defaults_match_paper() {
        assert_eq!(Dataset::Ecl.default_dims(), 321);
        assert_eq!(Dataset::Ettm1.default_len(), 69_680);
        assert_eq!(Dataset::AirDelay.default_dims(), 6);
    }
}
