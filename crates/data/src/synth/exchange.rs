//! Exchange stand-in: daily exchange rates as correlated random walks.

use crate::series::{Freq, TimeSeries};
use crate::synth::SynthSpec;
use lttf_tensor::{Rng, Tensor};

/// Daily exchange rates of `dims` "countries": geometric-like random walks
/// with a shared market factor (so the series are cross-correlated), tiny
/// drift, and **no periodic structure** — the regime where decomposition
/// and periodicity priors must not help. The last country is the target,
/// matching the paper's use of country 8 (Singapore).
pub fn exchange(spec: SynthSpec) -> TimeSeries {
    let dims = spec.dims.unwrap_or(8);
    let len = spec.len;
    let mut rng = Rng::seed(spec.seed ^ 0xE8);
    let t0: i64 = 631_152_000; // 1990-01-01

    let mut levels: Vec<f32> = (0..dims).map(|_| rng.uniform(0.5, 2.0)).collect();
    let betas: Vec<f32> = (0..dims).map(|_| rng.uniform(0.3, 1.0)).collect();
    let vols: Vec<f32> = (0..dims).map(|_| rng.uniform(0.002, 0.008)).collect();
    let drifts: Vec<f32> = (0..dims).map(|_| rng.uniform(-2e-5, 2e-5)).collect();

    let mut data = vec![0.0f32; len * dims];
    for t in 0..len {
        let market = rng.normal() * 0.004;
        for d in 0..dims {
            let shock = betas[d] * market + vols[d] * rng.normal() + drifts[d];
            levels[d] = (levels[d] * (1.0 + shock)).max(1e-3);
            data[t * dims + d] = levels[d];
        }
    }
    let timestamps: Vec<i64> = (0..len as i64).map(|i| t0 + i * 86_400).collect();
    let names: Vec<String> = (0..dims).map(|d| format!("Country{}", d + 1)).collect();
    TimeSeries::new(
        Tensor::from_vec(data, &[len, dims]),
        timestamps,
        names,
        dims - 1,
        Freq::Days(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_stay_positive() {
        let s = exchange(SynthSpec {
            len: 3000,
            dims: None,
            seed: 1,
        });
        assert!(s.values.min() > 0.0);
    }

    #[test]
    fn daily_interval_and_target() {
        let s = exchange(SynthSpec {
            len: 10,
            dims: None,
            seed: 2,
        });
        assert_eq!(s.timestamps[1] - s.timestamps[0], 86_400);
        assert_eq!(s.names[s.target], "Country8");
    }

    #[test]
    fn walk_is_persistent() {
        // A random walk has long memory: values 100 steps apart remain
        // highly correlated relative to white noise.
        let s = exchange(SynthSpec {
            len: 2000,
            dims: None,
            seed: 3,
        });
        let x = s.target_series();
        let n = x.numel();
        let a: Vec<f32> = x.data()[..n - 100].to_vec();
        let b: Vec<f32> = x.data()[100..].to_vec();
        let (ma, mb) = (
            a.iter().sum::<f32>() / a.len() as f32,
            b.iter().sum::<f32>() / b.len() as f32,
        );
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for i in 0..a.len() {
            num += (a[i] - ma) * (b[i] - mb);
            da += (a[i] - ma).powi(2);
            db += (b[i] - mb).powi(2);
        }
        assert!(num / (da.sqrt() * db.sqrt()) > 0.5);
    }
}
