//! ECL stand-in: hourly electricity consumption of many clients.

use crate::series::{Freq, TimeSeries};
use crate::synth::SynthSpec;
use lttf_tensor::{Rng, Tensor};

/// Hourly electricity consumption: each client has a log-normal base load,
/// a daily cycle with a client-specific phase (morning vs evening peaks),
/// a weekly cycle (weekday/weekend), AR(1) noise, and non-negativity.
/// The last client (`MT_321`-like) is the target.
pub fn ecl(spec: SynthSpec) -> TimeSeries {
    let dims = spec.dims.unwrap_or(321);
    let len = spec.len;
    let mut rng = Rng::seed(spec.seed ^ 0xEC1);
    let t0: i64 = 1_325_376_000; // 2012-01-01, matching the paper's span

    let mut data = vec![0.0f32; len * dims];
    for d in 0..dims {
        let base = (rng.normal() * 0.6).exp() * 50.0; // log-normal scale
        let daily_amp = base * rng.uniform(0.2, 0.6);
        let weekly_amp = base * rng.uniform(0.05, 0.25);
        let phase = rng.uniform(0.0, 2.0 * std::f32::consts::PI);
        let noise_scale = base * rng.uniform(0.03, 0.12);
        let rho = rng.uniform(0.6, 0.9);
        let mut ar = 0.0f32;
        for t in 0..len {
            let hour = t as f32;
            let daily = (2.0 * std::f32::consts::PI * hour / 24.0 + phase).sin();
            let weekly = (2.0 * std::f32::consts::PI * hour / 168.0).sin();
            ar = rho * ar + noise_scale * rng.normal();
            let v = base + daily_amp * daily + weekly_amp * weekly + ar;
            data[t * dims + d] = v.max(0.0);
        }
    }
    let timestamps: Vec<i64> = (0..len as i64).map(|i| t0 + i * 3600).collect();
    let names: Vec<String> = (0..dims).map(|d| format!("MT_{:03}", d + 1)).collect();
    TimeSeries::new(
        Tensor::from_vec(data, &[len, dims]),
        timestamps,
        names,
        dims - 1,
        Freq::Hours(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonnegative_values() {
        let s = ecl(SynthSpec {
            len: 500,
            dims: Some(8),
            seed: 1,
        });
        assert!(s.values.min() >= 0.0);
    }

    #[test]
    fn clients_have_heterogeneous_scales() {
        let s = ecl(SynthSpec {
            len: 200,
            dims: Some(16),
            seed: 2,
        });
        let means: Vec<f32> = (0..16).map(|d| s.values.select(1, &[d]).mean()).collect();
        let max = means.iter().cloned().fold(f32::MIN, f32::max);
        let min = means.iter().cloned().fold(f32::MAX, f32::min);
        assert!(
            max / min.max(1e-3) > 1.5,
            "scales too uniform: {min}..{max}"
        );
    }

    #[test]
    fn hourly_timestamps() {
        let s = ecl(SynthSpec {
            len: 10,
            dims: Some(2),
            seed: 3,
        });
        assert_eq!(s.timestamps[1] - s.timestamps[0], 3600);
        assert_eq!(s.freq, Freq::Hours(1));
    }
}
