//! Missing-value handling for imported series. Real exports of the
//! paper's datasets contain gaps (the paper itself drops the first year
//! of ECL because of its zeros); these utilities make such data usable
//! by the window pipeline, which requires dense values.
//!
//! Missing entries are represented as `NaN` in the value tensor.

use crate::series::TimeSeries;
use lttf_tensor::Tensor;

/// How to fill missing (`NaN`) values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImputeStrategy {
    /// Carry the previous observed value forward (leading gaps use the
    /// first observed value).
    ForwardFill,
    /// Linear interpolation between the surrounding observations
    /// (edge gaps fall back to the nearest observation).
    Linear,
    /// Replace with the column's observed mean.
    Mean,
}

/// Count of missing entries per column.
pub fn missing_counts(values: &Tensor) -> Vec<usize> {
    assert_eq!(values.ndim(), 2, "expected [len, dims]");
    let (len, dims) = (values.shape()[0], values.shape()[1]);
    let mut counts = vec![0usize; dims];
    for t in 0..len {
        for (d, count) in counts.iter_mut().enumerate() {
            if values.at(&[t, d]).is_nan() {
                *count += 1;
            }
        }
    }
    counts
}

/// Fill `NaN`s in a `[len, dims]` tensor, column by column.
///
/// # Panics
/// Panics if any column is entirely missing (nothing to fill from).
pub fn impute(values: &Tensor, strategy: ImputeStrategy) -> Tensor {
    assert_eq!(values.ndim(), 2, "expected [len, dims]");
    let (len, dims) = (values.shape()[0], values.shape()[1]);
    let mut out = values.clone();
    for d in 0..dims {
        let col: Vec<f32> = (0..len).map(|t| values.at(&[t, d])).collect();
        let observed: Vec<(usize, f32)> = col
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            .map(|(i, &v)| (i, v))
            .collect();
        assert!(
            !observed.is_empty(),
            "column {d} has no observed values to impute from"
        );
        match strategy {
            ImputeStrategy::ForwardFill => {
                let mut last = observed[0].1;
                for (t, &v) in col.iter().enumerate() {
                    if v.is_nan() {
                        out.set(&[t, d], last);
                    } else {
                        last = v;
                    }
                }
            }
            ImputeStrategy::Mean => {
                let mean = observed.iter().map(|(_, v)| v).sum::<f32>() / observed.len() as f32;
                for (t, v) in col.iter().enumerate() {
                    if v.is_nan() {
                        out.set(&[t, d], mean);
                    }
                }
            }
            ImputeStrategy::Linear => {
                for (t, cv) in col.iter().enumerate() {
                    if !cv.is_nan() {
                        continue;
                    }
                    // nearest observed neighbours on each side
                    let prev = observed.iter().rev().find(|(i, _)| *i < t);
                    let next = observed.iter().find(|(i, _)| *i > t);
                    let v = match (prev, next) {
                        (Some(&(i0, v0)), Some(&(i1, v1))) => {
                            let w = (t - i0) as f32 / (i1 - i0) as f32;
                            v0 + w * (v1 - v0)
                        }
                        (Some(&(_, v0)), None) => v0,
                        (None, Some(&(_, v1))) => v1,
                        (None, None) => unreachable!("observed is non-empty"),
                    };
                    out.set(&[t, d], v);
                }
            }
        }
    }
    out
}

impl TimeSeries {
    /// A copy with missing values filled by `strategy`.
    pub fn imputed(&self, strategy: ImputeStrategy) -> TimeSeries {
        let mut s = self.clone();
        s.values = impute(&self.values, strategy);
        s
    }

    /// True if the series contains any missing (`NaN`) values.
    pub fn has_missing(&self) -> bool {
        self.values.data().iter().any(|v| v.is_nan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_gaps() -> Tensor {
        // column 0: 1, NaN, 3, NaN, NaN, 6
        // column 1: NaN, 2, 2, 2, 2, NaN
        let mut t = Tensor::from_vec(
            vec![
                1.0,
                f32::NAN,
                f32::NAN,
                2.0,
                3.0,
                2.0,
                f32::NAN,
                2.0,
                f32::NAN,
                2.0,
                6.0,
                f32::NAN,
            ],
            &[6, 2],
        );
        let _ = &mut t;
        t
    }

    #[test]
    fn counts_missing() {
        assert_eq!(missing_counts(&with_gaps()), vec![3, 2]);
    }

    #[test]
    fn forward_fill() {
        let f = impute(&with_gaps(), ImputeStrategy::ForwardFill);
        // column 0: 1, 1, 3, 3, 3, 6
        let col0: Vec<f32> = (0..6).map(|t| f.at(&[t, 0])).collect();
        assert_eq!(col0, vec![1.0, 1.0, 3.0, 3.0, 3.0, 6.0]);
        // leading gap in column 1 backfills from first observation
        assert_eq!(f.at(&[0, 1]), 2.0);
        assert!(!f.has_non_finite());
    }

    #[test]
    fn linear_interpolation() {
        let f = impute(&with_gaps(), ImputeStrategy::Linear);
        // column 0 gap at t=1 between 1 (t=0) and 3 (t=2) → 2
        assert_eq!(f.at(&[1, 0]), 2.0);
        // gaps at t=3,4 between 3 (t=2) and 6 (t=5) → 4, 5
        assert_eq!(f.at(&[3, 0]), 4.0);
        assert_eq!(f.at(&[4, 0]), 5.0);
        // trailing gap in column 1 holds the last observation
        assert_eq!(f.at(&[5, 1]), 2.0);
    }

    #[test]
    fn mean_fill() {
        let f = impute(&with_gaps(), ImputeStrategy::Mean);
        // column 0 observed mean = (1+3+6)/3
        let m = (1.0 + 3.0 + 6.0) / 3.0;
        assert!((f.at(&[1, 0]) - m).abs() < 1e-6);
        assert!((f.at(&[3, 0]) - m).abs() < 1e-6);
    }

    #[test]
    fn observed_values_untouched() {
        for strategy in [
            ImputeStrategy::ForwardFill,
            ImputeStrategy::Linear,
            ImputeStrategy::Mean,
        ] {
            let raw = with_gaps();
            let f = impute(&raw, strategy);
            for t in 0..6 {
                for d in 0..2 {
                    let v = raw.at(&[t, d]);
                    if !v.is_nan() {
                        assert_eq!(f.at(&[t, d]), v, "{strategy:?} moved an observation");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no observed values")]
    fn all_missing_column_rejected() {
        let t = Tensor::from_vec(vec![f32::NAN, f32::NAN], &[2, 1]);
        impute(&t, ImputeStrategy::Linear);
    }

    #[test]
    fn series_level_api() {
        use crate::series::Freq;
        let values = Tensor::from_vec(vec![1.0, f32::NAN, 3.0], &[3, 1]);
        let s = TimeSeries::new(
            values,
            vec![0, 3600, 7200],
            vec!["a".into()],
            0,
            Freq::Hours(1),
        );
        assert!(s.has_missing());
        let fixed = s.imputed(ImputeStrategy::Linear);
        assert!(!fixed.has_missing());
        assert_eq!(fixed.values.at(&[1, 0]), 2.0);
    }
}
