//! # lttf-data
//!
//! Time-series data substrate for the Conformer (ICDE 2023) reproduction:
//!
//! * [`TimeSeries`] — a multivariate series with timestamps, variable
//!   names, and a designated target variable,
//! * calendar time features (month/day/weekday/hour/minute, normalized to
//!   `[−0.5, 0.5]` as in Informer),
//! * [`StandardScaler`] — per-variable standardization fitted on the
//!   training split only,
//! * [`WindowDataset`] — the input-`Lx`-predict-`Ly` rolling windows with
//!   stride 1 used by every experiment, plus batching,
//! * [`synth`] — seven seeded generators standing in for the paper's seven
//!   datasets (ECL, Weather, Exchange, ETTh1, ETTm1, Wind, AirDelay); each
//!   reproduces the statistical regime the paper relies on (periodicity,
//!   dimensionality, noise structure, interval regularity). See DESIGN.md
//!   §2 for the substitution rationale.
//!
//! ```
//! use lttf_data::synth::{Dataset, SynthSpec};
//! use lttf_data::{Split, WindowDataset};
//!
//! let series = Dataset::Etth1.generate(SynthSpec { len: 400, dims: Some(7), seed: 1 });
//! let train = WindowDataset::new(&series, Split::Train, (0.7, 0.1), 48, 24, 24);
//! let batch = train.batch(&[0, 1]);
//! assert_eq!(batch.x.shape(), &[2, 48, 7]);   // encoder input
//! assert_eq!(batch.y.shape(), &[2, 24, 7]);   // horizon target
//! ```

#![warn(missing_docs)]

mod csv;
mod impute;
mod scaler;
mod series;
mod window;

pub mod synth;

pub use csv::{read_csv, write_csv};
pub use impute::{impute, missing_counts, ImputeStrategy};
pub use scaler::StandardScaler;
pub use series::{time_features, Freq, TimeSeries, MARK_DIM};
pub use window::{Batch, Split, WindowDataset};

#[cfg(test)]
mod proptests;
