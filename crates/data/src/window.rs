//! Rolling input-`Lx`-predict-`Ly` windows with stride 1, train/val/test
//! splitting, and batching — the evaluation protocol of Section V-A3.

use crate::scaler::StandardScaler;
use crate::series::TimeSeries;
use lttf_tensor::{Rng, Tensor};

/// Which split a dataset view draws windows from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// Training region.
    Train,
    /// Validation region (follows train).
    Val,
    /// Test region (follows validation).
    Test,
}

/// One batch of windows ready for a model.
pub struct Batch {
    /// Encoder input values, `[b, lx, dims]` (scaled).
    pub x: Tensor,
    /// Encoder time features, `[b, lx, MARK_DIM]`.
    pub x_mark: Tensor,
    /// Decoder input: `label_len` known steps then `ly` zeros,
    /// `[b, label_len + ly, dims]` (scaled).
    pub dec: Tensor,
    /// Decoder time features, `[b, label_len + ly, MARK_DIM]`.
    pub dec_mark: Tensor,
    /// Ground-truth future values, `[b, ly, dims]` (scaled).
    pub y: Tensor,
}

/// Rolling-window view over a [`TimeSeries`], scaled with a
/// [`StandardScaler`] fitted on the training region only.
pub struct WindowDataset {
    scaled: Tensor, // [len, dims] scaled values
    marks: Tensor,  // [len, MARK_DIM]
    scaler: StandardScaler,
    lx: usize,
    ly: usize,
    label_len: usize,
    region_start: usize,
    region_end: usize,
    target: usize,
}

impl WindowDataset {
    /// Build the window view for one split.
    ///
    /// `fractions = (train, val)` as fractions of the series (test gets the
    /// remainder). The scaler is fitted on the train region regardless of
    /// which split is requested. `label_len` is the decoder warm-start
    /// length (Informer-style); it is capped at `lx`.
    ///
    /// Windows are drawn so that both the input and the horizon lie inside
    /// the split region, except that a window's input may reach back into
    /// the previous region (standard practice — the boundary rows of
    /// val/test inputs overlap the end of the previous split).
    ///
    /// # Panics
    /// Panics if the region is too short to hold a single window.
    pub fn new(
        series: &TimeSeries,
        split: Split,
        fractions: (f32, f32),
        lx: usize,
        ly: usize,
        label_len: usize,
    ) -> Self {
        let len = series.len();
        let (ftrain, fval) = fractions;
        assert!(
            ftrain > 0.0 && fval >= 0.0 && ftrain + fval < 1.0,
            "bad fractions"
        );
        let n_train = (len as f32 * ftrain) as usize;
        let n_val = (len as f32 * fval) as usize;
        let label_len = label_len.min(lx);
        let (region_start, region_end) = match split {
            Split::Train => (0, n_train),
            Split::Val => (n_train, n_train + n_val),
            Split::Test => (n_train + n_val, len),
        };
        let train_view = series.values.narrow(0, 0, n_train.max(2));
        let scaler = StandardScaler::fit(&train_view);
        let scaled = scaler.transform(&series.values);
        let ds = WindowDataset {
            scaled,
            marks: series.marks(),
            scaler,
            lx,
            ly,
            label_len,
            region_start,
            region_end,
            target: series.target,
        };
        assert!(
            !ds.is_empty(),
            "split {split:?} of a {len}-step series cannot hold an Lx={lx}, Ly={ly} window"
        );
        ds
    }

    /// Number of windows in this split.
    pub fn len(&self) -> usize {
        // A window is identified by its horizon start `h`, which must
        // satisfy `h >= lx` (room for the input), `h >= region_start`, and
        // `h + ly <= region_end`.
        let first = self.region_start.max(self.lx);
        let last_exclusive = (self.region_end + 1).saturating_sub(self.ly);
        last_exclusive.saturating_sub(first)
    }

    /// True if the split holds no windows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scaler fitted on the training region.
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }

    /// Input length.
    pub fn lx(&self) -> usize {
        self.lx
    }

    /// Prediction length.
    pub fn ly(&self) -> usize {
        self.ly
    }

    /// Decoder warm-start length.
    pub fn label_len(&self) -> usize {
        self.label_len
    }

    /// Target column index.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Assemble the batch for window indices `idx`.
    pub fn batch(&self, idx: &[usize]) -> Batch {
        assert!(!idx.is_empty(), "empty batch");
        let b = idx.len();
        let dims = self.scaled.shape()[1];
        let mark_dim = self.marks.shape()[1];
        let dec_len = self.label_len + self.ly;
        let first = self.region_start.max(self.lx);

        let mut x = Vec::with_capacity(b * self.lx * dims);
        let mut xm = Vec::with_capacity(b * self.lx * mark_dim);
        let mut dec = Vec::with_capacity(b * dec_len * dims);
        let mut dm = Vec::with_capacity(b * dec_len * mark_dim);
        let mut y = Vec::with_capacity(b * self.ly * dims);
        for &i in idx {
            let horizon_start = first + i; // first predicted step
            let input_start = horizon_start - self.lx;
            debug_assert!(horizon_start + self.ly <= self.region_end);
            for t in input_start..horizon_start {
                for d in 0..dims {
                    x.push(self.scaled.at(&[t, d]));
                }
                for d in 0..mark_dim {
                    xm.push(self.marks.at(&[t, d]));
                }
            }
            // decoder: label_len known steps, then zeros for the horizon
            for t in horizon_start - self.label_len..horizon_start {
                for d in 0..dims {
                    dec.push(self.scaled.at(&[t, d]));
                }
            }
            dec.extend(std::iter::repeat_n(0.0, self.ly * dims));
            for t in horizon_start - self.label_len..horizon_start + self.ly {
                for d in 0..mark_dim {
                    dm.push(self.marks.at(&[t, d]));
                }
            }
            for t in horizon_start..horizon_start + self.ly {
                for d in 0..dims {
                    y.push(self.scaled.at(&[t, d]));
                }
            }
        }
        Batch {
            x: Tensor::from_vec(x, &[b, self.lx, dims]),
            x_mark: Tensor::from_vec(xm, &[b, self.lx, mark_dim]),
            dec: Tensor::from_vec(dec, &[b, dec_len, dims]),
            dec_mark: Tensor::from_vec(dm, &[b, dec_len, mark_dim]),
            y: Tensor::from_vec(y, &[b, self.ly, dims]),
        }
    }

    /// Iterate over shuffled training batches of size `batch_size`
    /// (the trailing partial batch is dropped, as is conventional).
    pub fn shuffled_batches(&self, batch_size: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        idx.chunks(batch_size)
            .filter(|c| c.len() == batch_size)
            .map(|c| c.to_vec())
            .collect()
    }

    /// Sequential batches covering every window (for evaluation).
    pub fn sequential_batches(&self, batch_size: usize) -> Vec<Vec<usize>> {
        (0..self.len())
            .collect::<Vec<_>>()
            .chunks(batch_size)
            .map(|c| c.to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Freq;

    fn ramp_series(len: usize, dims: usize) -> TimeSeries {
        let values = Tensor::from_vec(
            (0..len * dims).map(|i| (i / dims) as f32).collect(),
            &[len, dims],
        );
        let timestamps: Vec<i64> = (0..len as i64).map(|i| 1_600_000_000 + i * 3600).collect();
        TimeSeries::new(
            values,
            timestamps,
            (0..dims).map(|d| format!("v{d}")).collect(),
            0,
            Freq::Hours(1),
        )
    }

    #[test]
    fn window_counts() {
        let s = ramp_series(100, 2);
        let train = WindowDataset::new(&s, Split::Train, (0.6, 0.2), 10, 5, 5);
        // train region [0, 60): horizons start in [10, 55] → 46 windows
        assert_eq!(train.len(), 46);
        let test = WindowDataset::new(&s, Split::Test, (0.6, 0.2), 10, 5, 5);
        // test region [80, 100): horizons start in [80, 95] → 16 windows
        assert_eq!(test.len(), 16);
    }

    #[test]
    fn batch_shapes() {
        let s = ramp_series(100, 3);
        let ds = WindowDataset::new(&s, Split::Train, (0.7, 0.1), 8, 4, 4);
        let b = ds.batch(&[0, 1, 5]);
        assert_eq!(b.x.shape(), &[3, 8, 3]);
        assert_eq!(b.x_mark.shape(), &[3, 8, crate::MARK_DIM]);
        assert_eq!(b.dec.shape(), &[3, 8, 3]);
        assert_eq!(b.y.shape(), &[3, 4, 3]);
    }

    #[test]
    fn horizon_follows_input_contiguously() {
        // With a ramp and an identity check through the scaler: the first
        // target step must continue exactly where the input stopped.
        let s = ramp_series(200, 1);
        let ds = WindowDataset::new(&s, Split::Train, (0.8, 0.1), 12, 6, 3);
        let b = ds.batch(&[7]);
        let last_in = b.x.at(&[0, 11, 0]);
        let first_out = b.y.at(&[0, 0, 0]);
        // scaled ramp is still a ramp: steps differ by a constant
        let step = b.x.at(&[0, 1, 0]) - b.x.at(&[0, 0, 0]);
        assert!(
            (first_out - last_in - step).abs() < 1e-4,
            "horizon not contiguous: {last_in} → {first_out} (step {step})"
        );
    }

    #[test]
    fn decoder_padding_is_zero() {
        let s = ramp_series(100, 2);
        let ds = WindowDataset::new(&s, Split::Train, (0.7, 0.1), 8, 4, 4);
        let b = ds.batch(&[0]);
        // last `ly` rows of dec are zeros
        let pad = b.dec.narrow(1, 4, 4);
        assert_eq!(pad.abs().max(), 0.0);
        // first `label_len` rows match the tail of x
        let warm = b.dec.narrow(1, 0, 4);
        let tail = b.x.narrow(1, 4, 4);
        warm.assert_close(&tail, 1e-6);
    }

    #[test]
    fn splits_do_not_leak_targets() {
        // The first test window's horizon must start exactly at the test
        // region boundary, never earlier.
        let s = ramp_series(100, 1);
        let test = WindowDataset::new(&s, Split::Test, (0.6, 0.2), 10, 5, 0);
        let b = test.batch(&[0]);
        // horizon starts at row 80 → raw value 80; invert scaling to check
        let raw = test.scaler().inverse_transform(&b.y);
        assert_eq!(raw.at(&[0, 0, 0]).round(), 80.0);
    }

    #[test]
    fn scaler_fitted_on_train_only() {
        let s = ramp_series(100, 1);
        let ds = WindowDataset::new(&s, Split::Test, (0.6, 0.2), 10, 5, 0);
        // train mean is (0..60).mean() = 29.5
        assert!((ds.scaler().mean()[0] - 29.5).abs() < 0.01);
    }

    #[test]
    fn shuffled_batches_cover_unique_windows() {
        let s = ramp_series(100, 1);
        let ds = WindowDataset::new(&s, Split::Train, (0.8, 0.1), 5, 2, 0);
        let mut rng = Rng::seed(1);
        let batches = ds.shuffled_batches(8, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for b in &batches {
            assert_eq!(b.len(), 8);
            for &i in b {
                assert!(seen.insert(i), "duplicate window {i}");
                assert!(i < ds.len());
            }
        }
    }

    #[test]
    fn sequential_batches_cover_all() {
        let s = ramp_series(100, 1);
        let ds = WindowDataset::new(&s, Split::Val, (0.6, 0.2), 5, 2, 0);
        let batches = ds.sequential_batches(7);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn oversized_window_panics() {
        let s = ramp_series(50, 1);
        WindowDataset::new(&s, Split::Val, (0.6, 0.1), 40, 40, 0);
    }
}
