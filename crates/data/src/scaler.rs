//! Per-variable standardization, fitted on the training split only — the
//! preprocessing every baseline in the paper shares.

use lttf_tensor::Tensor;

/// Standardize each column to zero mean and unit variance.
#[derive(Clone, Debug)]
pub struct StandardScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl StandardScaler {
    /// Fit on `x` of shape `[len, dims]`. Columns with zero variance get
    /// `std = 1` so they pass through unchanged (centred).
    pub fn fit(x: &Tensor) -> Self {
        assert_eq!(x.ndim(), 2, "scaler input must be [len, dims]");
        let (len, dims) = (x.shape()[0], x.shape()[1]);
        assert!(len > 0, "cannot fit a scaler on an empty series");
        let mut mean = vec![0.0f32; dims];
        let mut std = vec![0.0f32; dims];
        for d in 0..dims {
            let mut s = 0.0;
            for t in 0..len {
                s += x.at(&[t, d]);
            }
            mean[d] = s / len as f32;
            let mut v = 0.0;
            for t in 0..len {
                let c = x.at(&[t, d]) - mean[d];
                v += c * c;
            }
            let sd = (v / len as f32).sqrt();
            std[d] = if sd > 1e-8 { sd } else { 1.0 };
        }
        StandardScaler { mean, std }
    }

    /// Rebuild a scaler from stored statistics (checkpoint metadata).
    /// `mean` and `std` must be the same non-zero length; every `std`
    /// entry must be positive.
    pub fn from_parts(mean: Vec<f32>, std: Vec<f32>) -> Self {
        assert!(!mean.is_empty(), "scaler needs at least one column");
        assert_eq!(mean.len(), std.len(), "mean/std length mismatch");
        assert!(
            std.iter().all(|&s| s > 0.0 && s.is_finite()),
            "scaler std entries must be positive and finite"
        );
        StandardScaler { mean, std }
    }

    /// Number of columns the scaler was fitted on.
    pub fn dims(&self) -> usize {
        self.mean.len()
    }

    /// Per-column means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Per-column standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }

    /// `(x − μ) / σ` column-wise. Accepts `[len, dims]` or `[b, len, dims]`.
    pub fn transform(&self, x: &Tensor) -> Tensor {
        self.apply(x, |v, m, s| (v - m) / s)
    }

    /// `x·σ + μ` column-wise — undoes [`StandardScaler::transform`].
    pub fn inverse_transform(&self, x: &Tensor) -> Tensor {
        self.apply(x, |v, m, s| v * s + m)
    }

    /// Inverse-transform a single column `d` given a tensor whose last axis
    /// is that single variable (used for univariate outputs).
    pub fn inverse_transform_column(&self, x: &Tensor, d: usize) -> Tensor {
        let (m, s) = (self.mean[d], self.std[d]);
        x.map(|v| v * s + m)
    }

    fn apply(&self, x: &Tensor, f: impl Fn(f32, f32, f32) -> f32) -> Tensor {
        let dims = *x.shape().last().expect("scaler input needs an axis");
        assert_eq!(
            dims,
            self.mean.len(),
            "scaler fitted on {} dims, input has {dims}",
            self.mean.len()
        );
        let mut out = x.clone();
        let data = out.data_mut();
        for (i, v) in data.iter_mut().enumerate() {
            let d = i % dims;
            *v = f(*v, self.mean[d], self.std[d]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lttf_tensor::Rng;

    #[test]
    fn transform_standardizes() {
        let mut rng = Rng::seed(1);
        let x = Tensor::randn(&[500, 3], &mut rng)
            .mul_scalar(4.0)
            .add_scalar(10.0);
        let sc = StandardScaler::fit(&x);
        let y = sc.transform(&x);
        for d in 0..3 {
            let col = y.select(1, &[d]);
            assert!(col.mean().abs() < 1e-4, "mean {}", col.mean());
            assert!((col.std() - 1.0).abs() < 1e-3, "std {}", col.std());
        }
    }

    #[test]
    fn inverse_round_trip() {
        let mut rng = Rng::seed(2);
        let x = Tensor::randn(&[100, 4], &mut rng)
            .mul_scalar(7.0)
            .add_scalar(-3.0);
        let sc = StandardScaler::fit(&x);
        sc.inverse_transform(&sc.transform(&x))
            .assert_close(&x, 1e-3);
    }

    #[test]
    fn constant_column_passthrough() {
        let x = Tensor::from_vec(vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0], &[3, 2]);
        let sc = StandardScaler::fit(&x);
        let y = sc.transform(&x);
        // constant column becomes zeros (centred, std clamped to 1)
        assert_eq!(y.select(1, &[0]).data(), &[0.0, 0.0, 0.0]);
        sc.inverse_transform(&y).assert_close(&x, 1e-5);
    }

    #[test]
    fn transform_3d_batches() {
        let x = Tensor::from_vec(vec![1.0, 10.0, 3.0, 30.0], &[2, 2]);
        let sc = StandardScaler::fit(&x);
        let b = Tensor::from_vec(vec![1.0, 10.0, 3.0, 30.0, 1.0, 10.0, 3.0, 30.0], &[2, 2, 2]);
        let y = sc.transform(&b);
        assert_eq!(y.shape(), &[2, 2, 2]);
        // both batch rows transformed identically
        y.narrow(0, 0, 1).assert_close(&y.narrow(0, 1, 1), 0.0);
    }

    #[test]
    fn from_parts_matches_fit() {
        let x = Tensor::from_vec(vec![1.0, 10.0, 3.0, 30.0], &[2, 2]);
        let fitted = StandardScaler::fit(&x);
        let rebuilt =
            StandardScaler::from_parts(fitted.mean().to_vec(), fitted.std().to_vec());
        rebuilt.transform(&x).assert_close(&fitted.transform(&x), 0.0);
    }

    #[test]
    fn column_inverse() {
        let x = Tensor::from_vec(vec![0.0, 100.0, 10.0, 200.0], &[2, 2]);
        let sc = StandardScaler::fit(&x);
        let scaled_target = sc.transform(&x).select(1, &[1]);
        let restored = sc.inverse_transform_column(&scaled_target, 1);
        assert!((restored.data()[0] - 100.0).abs() < 1e-3);
        assert!((restored.data()[1] - 200.0).abs() < 1e-3);
    }
}
