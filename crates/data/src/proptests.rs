//! Property-based tests for the data substrate.

use crate::synth::{Dataset, SynthSpec};
use crate::{Split, StandardScaler, WindowDataset};
use lttf_tensor::{Rng, Tensor};
use lttf_testkit::{prop_assert, prop_assert_eq, properties};

properties! {
    cases = 32;

    // The scaler inverse is an exact inverse on arbitrary data.
    fn scaler_round_trip(seed in 0u64..1000, len in 10usize..100, dims in 1usize..6) {
        let x = Tensor::randn(&[len, dims], &mut Rng::seed(seed))
            .mul_scalar(13.0)
            .add_scalar(-4.0);
        let sc = StandardScaler::fit(&x);
        sc.inverse_transform(&sc.transform(&x)).assert_close(&x, 1e-2);
    }

    // Window counts: every split can produce its windows without panicking
    // and batches have consistent shapes.
    fn windows_are_well_formed(seed in 0u64..100, lx in 4usize..16, ly in 2usize..8) {
        let series = Dataset::Etth1.generate(SynthSpec { len: 400, dims: Some(3), seed });
        for split in [Split::Train, Split::Val, Split::Test] {
            let ds = WindowDataset::new(&series, split, (0.6, 0.2), lx, ly, ly.min(lx));
            prop_assert!(!ds.is_empty());
            let b = ds.batch(&[0, ds.len() - 1]);
            prop_assert_eq!(b.x.shape(), &[2, lx, 3]);
            prop_assert_eq!(b.y.shape(), &[2, ly, 3]);
            prop_assert_eq!(b.dec.shape(), &[2, ds.label_len() + ly, 3]);
            prop_assert!(!b.x.has_non_finite());
        }
    }

    // The last label_len rows of the encoder input equal the decoder warm
    // start (they are the same time steps).
    fn decoder_warm_start_matches_input_tail(seed in 0u64..50) {
        let series = Dataset::Wind.generate(SynthSpec { len: 300, dims: Some(2), seed });
        let ds = WindowDataset::new(&series, Split::Train, (0.7, 0.1), 12, 6, 6);
        let b = ds.batch(&[3]);
        let tail = b.x.narrow(1, 6, 6);
        let warm = b.dec.narrow(1, 0, 6);
        tail.assert_close(&warm, 1e-6);
    }

    // All generators stay finite at any length.
    fn generators_finite(seed in 0u64..30, len in 32usize..256) {
        for ds in Dataset::ALL {
            let s = ds.generate(SynthSpec { len, dims: Some(3), seed });
            prop_assert!(!s.values.has_non_finite(), "{:?}", ds);
            prop_assert_eq!(s.len(), len);
        }
    }
}
