//! The [`TimeSeries`] container and calendar time features.

use lttf_tensor::Tensor;

/// Number of calendar time features produced by [`time_features`]:
/// month, day-of-month, weekday, hour, minute — the Informer convention.
pub const MARK_DIM: usize = 5;

/// Nominal sampling interval of a series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Freq {
    /// Fixed interval in minutes.
    Minutes(u32),
    /// Fixed interval in hours.
    Hours(u32),
    /// Fixed interval in days.
    Days(u32),
    /// Varying interval (e.g. the AirDelay dataset).
    Irregular,
}

impl Freq {
    /// The nominal interval in seconds (the mean gap for irregular series
    /// is dataset-specific; this returns `None`).
    pub fn seconds(&self) -> Option<u64> {
        match self {
            Freq::Minutes(m) => Some(*m as u64 * 60),
            Freq::Hours(h) => Some(*h as u64 * 3600),
            Freq::Days(d) => Some(*d as u64 * 86_400),
            Freq::Irregular => None,
        }
    }

    /// How many steps make up one day, for time-determined horizons
    /// (Table III). Irregular series have no well-defined answer and
    /// return `None`.
    pub fn steps_per_day(&self) -> Option<usize> {
        self.seconds().map(|s| (86_400 / s.max(1)) as usize)
    }
}

/// A multivariate time series: `[len, dims]` values, per-step UNIX
/// timestamps, variable names, and a designated target variable.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    /// Values, `[len, dims]`.
    pub values: Tensor,
    /// UNIX timestamps (seconds), strictly increasing, one per row.
    pub timestamps: Vec<i64>,
    /// One name per variable.
    pub names: Vec<String>,
    /// Index of the target variable in `names` / value columns.
    pub target: usize,
    /// Nominal sampling interval.
    pub freq: Freq,
}

impl TimeSeries {
    /// Construct, validating the invariants.
    ///
    /// # Panics
    /// Panics if shapes disagree, timestamps are not strictly increasing,
    /// or the target index is out of range.
    pub fn new(
        values: Tensor,
        timestamps: Vec<i64>,
        names: Vec<String>,
        target: usize,
        freq: Freq,
    ) -> Self {
        assert_eq!(values.ndim(), 2, "values must be [len, dims]");
        assert_eq!(
            values.shape()[0],
            timestamps.len(),
            "got {} rows but {} timestamps",
            values.shape()[0],
            timestamps.len()
        );
        assert_eq!(
            values.shape()[1],
            names.len(),
            "got {} columns but {} names",
            values.shape()[1],
            names.len()
        );
        assert!(target < names.len(), "target index {target} out of range");
        assert!(
            timestamps.windows(2).all(|w| w[0] < w[1]),
            "timestamps must be strictly increasing"
        );
        TimeSeries {
            values,
            timestamps,
            names,
            target,
            freq,
        }
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True if the series has no rows.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Number of variables.
    pub fn dims(&self) -> usize {
        self.names.len()
    }

    /// The target variable as a 1-D tensor of length `len`.
    pub fn target_series(&self) -> Tensor {
        self.values.select(1, &[self.target]).reshape(&[self.len()])
    }

    /// A copy containing only the target variable (for univariate LTTF).
    pub fn to_univariate(&self) -> TimeSeries {
        TimeSeries {
            values: self.values.select(1, &[self.target]),
            timestamps: self.timestamps.clone(),
            names: vec![self.names[self.target].clone()],
            target: 0,
            freq: self.freq,
        }
    }

    /// Calendar time-feature matrix, `[len, MARK_DIM]`.
    pub fn marks(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.len() * MARK_DIM);
        for &ts in &self.timestamps {
            data.extend_from_slice(&time_features(ts));
        }
        Tensor::from_vec(data, &[self.len(), MARK_DIM])
    }

    /// Rows `[start, end)` as a new series.
    pub fn slice(&self, start: usize, end: usize) -> TimeSeries {
        assert!(
            start <= end && end <= self.len(),
            "bad slice {start}..{end}"
        );
        TimeSeries {
            values: self.values.narrow(0, start, end - start),
            timestamps: self.timestamps[start..end].to_vec(),
            names: self.names.clone(),
            target: self.target,
            freq: self.freq,
        }
    }
}

/// Civil-date decomposition of a UNIX timestamp (UTC), without a calendar
/// dependency: days-to-date via Howard Hinnant's algorithm.
fn civil_from_unix(ts: i64) -> (i32, u32, u32, u32, u32, u32) {
    let secs_of_day = ts.rem_euclid(86_400) as u32;
    let days = (ts - secs_of_day as i64) / 86_400;
    let (hour, min, sec) = (
        secs_of_day / 3600,
        (secs_of_day / 60) % 60,
        secs_of_day % 60,
    );
    // days since 1970-01-01 → y/m/d
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = (if m <= 2 { y + 1 } else { y }) as i32;
    (year, m, d, hour, min, sec)
}

/// Day of week, 0 = Monday … 6 = Sunday.
fn weekday_from_unix(ts: i64) -> u32 {
    let days = ts.div_euclid(86_400);
    // 1970-01-01 was a Thursday (weekday 3 with Monday = 0).
    (days + 3).rem_euclid(7) as u32
}

/// The Informer-style normalized calendar features for one timestamp:
/// `[month, day, weekday, hour, minute]`, each mapped into `[−0.5, 0.5]`.
pub fn time_features(ts: i64) -> [f32; MARK_DIM] {
    let (_, month, day, hour, minute, _) = civil_from_unix(ts);
    let weekday = weekday_from_unix(ts);
    [
        (month as f32 - 1.0) / 11.0 - 0.5,
        (day as f32 - 1.0) / 30.0 - 0.5,
        weekday as f32 / 6.0 - 0.5,
        hour as f32 / 23.0 - 0.5,
        minute as f32 / 59.0 - 0.5,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(len: usize, dims: usize) -> TimeSeries {
        let values = Tensor::from_vec((0..len * dims).map(|i| i as f32).collect(), &[len, dims]);
        let timestamps: Vec<i64> = (0..len as i64).map(|i| 1_600_000_000 + i * 3600).collect();
        let names = (0..dims).map(|d| format!("v{d}")).collect();
        TimeSeries::new(values, timestamps, names, dims - 1, Freq::Hours(1))
    }

    #[test]
    fn construction_and_accessors() {
        let s = series(10, 3);
        assert_eq!(s.len(), 10);
        assert_eq!(s.dims(), 3);
        assert_eq!(s.target, 2);
        assert_eq!(s.target_series().shape(), &[10]);
        assert_eq!(s.target_series().data()[0], 2.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_timestamps() {
        let values = Tensor::zeros(&[2, 1]);
        TimeSeries::new(values, vec![100, 100], vec!["a".into()], 0, Freq::Hours(1));
    }

    #[test]
    fn univariate_projection() {
        let s = series(5, 3);
        let u = s.to_univariate();
        assert_eq!(u.dims(), 1);
        assert_eq!(u.target, 0);
        assert_eq!(u.values.data()[0], 2.0); // column 2 of row 0
        assert_eq!(u.names[0], "v2");
    }

    #[test]
    fn slice_window() {
        let s = series(10, 2);
        let w = s.slice(3, 7);
        assert_eq!(w.len(), 4);
        assert_eq!(w.timestamps[0], s.timestamps[3]);
        assert_eq!(w.values.at(&[0, 0]), s.values.at(&[3, 0]));
    }

    #[test]
    fn civil_date_known_values() {
        // 2020-06-15 12:30:45 UTC = 1592224245
        let (y, m, d, h, mi, s) = civil_from_unix(1_592_224_245);
        assert_eq!((y, m, d, h, mi, s), (2020, 6, 15, 12, 30, 45));
        // epoch
        let (y, m, d, h, mi, s) = civil_from_unix(0);
        assert_eq!((y, m, d, h, mi, s), (1970, 1, 1, 0, 0, 0));
    }

    #[test]
    fn weekday_known_values() {
        assert_eq!(weekday_from_unix(0), 3); // 1970-01-01 Thursday
        assert_eq!(weekday_from_unix(1_592_224_245), 0); // 2020-06-15 Monday
        assert_eq!(weekday_from_unix(86_400 * 3), 6); // 1970-01-04 Sunday
    }

    #[test]
    fn time_features_in_range() {
        for ts in [0i64, 1_000_000_000, 1_592_224_245, 1_700_000_000] {
            for f in time_features(ts) {
                assert!((-0.5..=0.5).contains(&f), "feature {f} out of range");
            }
        }
    }

    #[test]
    fn time_features_distinguish_hours() {
        let a = time_features(1_592_224_245);
        let b = time_features(1_592_224_245 + 3600);
        assert_ne!(a[3], b[3]);
    }

    #[test]
    fn marks_shape() {
        let s = series(6, 2);
        let m = s.marks();
        assert_eq!(m.shape(), &[6, MARK_DIM]);
    }

    #[test]
    fn freq_steps_per_day() {
        assert_eq!(Freq::Hours(1).steps_per_day(), Some(24));
        assert_eq!(Freq::Minutes(15).steps_per_day(), Some(96));
        assert_eq!(Freq::Days(1).steps_per_day(), Some(1));
        assert_eq!(Freq::Irregular.steps_per_day(), None);
    }
}
