//! Minimal CSV import/export for [`TimeSeries`] — lets users bring the
//! real datasets when they have them (the generators are stand-ins).
//!
//! Format: header `timestamp,<name>,<name>,…`; one row per step; the
//! target column is identified by name at read time.

use crate::series::{Freq, TimeSeries};
use lttf_tensor::Tensor;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Write a series as CSV.
pub fn write_csv(series: &TimeSeries, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    write!(w, "timestamp")?;
    for n in &series.names {
        write!(w, ",{n}")?;
    }
    writeln!(w)?;
    for (t, &ts) in series.timestamps.iter().enumerate() {
        write!(w, "{ts}")?;
        for d in 0..series.dims() {
            write!(w, ",{}", series.values.at(&[t, d]))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a series from CSV. `target` names the target column; `freq` is the
/// nominal interval (use [`Freq::Irregular`] if unsure).
pub fn read_csv(path: impl AsRef<Path>, target: &str, freq: Freq) -> io::Result<TimeSeries> {
    let f = std::fs::File::open(path)?;
    let mut lines = io::BufReader::new(f).lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty file"))??;
    let mut cols = header.split(',');
    let first = cols.next().unwrap_or_default();
    if first != "timestamp" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("first column must be 'timestamp', got '{first}'"),
        ));
    }
    let names: Vec<String> = cols.map(str::to_string).collect();
    if names.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "no value columns",
        ));
    }
    let target_idx = names.iter().position(|n| n == target).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("target column '{target}' not found in {names:?}"),
        )
    })?;
    let mut timestamps = Vec::new();
    let mut data = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let ts: i64 = fields
            .next()
            .unwrap_or_default()
            .trim()
            .parse()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad timestamp: {e}", lineno + 2),
                )
            })?;
        timestamps.push(ts);
        let mut count = 0;
        for field in fields {
            let v: f32 = field.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad value: {e}", lineno + 2),
                )
            })?;
            data.push(v);
            count += 1;
        }
        if count != names.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected {} values, got {count}",
                    lineno + 2,
                    names.len()
                ),
            ));
        }
    }
    let len = timestamps.len();
    let dims = names.len();
    Ok(TimeSeries::new(
        Tensor::from_vec(data, &[len, dims]),
        timestamps,
        names,
        target_idx,
        freq,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{etth1, SynthSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lttf_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let s = etth1(SynthSpec {
            len: 50,
            dims: None,
            seed: 1,
        });
        let p = tmp("rt.csv");
        write_csv(&s, &p).unwrap();
        let r = read_csv(&p, "OT", Freq::Hours(1)).unwrap();
        assert_eq!(r.len(), s.len());
        assert_eq!(r.dims(), s.dims());
        assert_eq!(r.target, s.target);
        assert_eq!(r.timestamps, s.timestamps);
        r.values.assert_close(&s.values, 1e-4);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn missing_target_errors() {
        let s = etth1(SynthSpec {
            len: 10,
            dims: None,
            seed: 2,
        });
        let p = tmp("mt.csv");
        write_csv(&s, &p).unwrap();
        let err = read_csv(&p, "NOPE", Freq::Hours(1)).unwrap_err();
        assert!(err.to_string().contains("not found"));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn malformed_rows_error() {
        let p = tmp("bad.csv");
        std::fs::write(&p, "timestamp,a\n100,1.0\n200,notanumber\n").unwrap();
        let err = read_csv(&p, "a", Freq::Hours(1)).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn wrong_column_count_errors() {
        let p = tmp("cols.csv");
        std::fs::write(&p, "timestamp,a,b\n100,1.0\n").unwrap();
        let err = read_csv(&p, "a", Freq::Hours(1)).unwrap_err();
        assert!(err.to_string().contains("expected 2"), "{err}");
        let _ = std::fs::remove_file(p);
    }
}
