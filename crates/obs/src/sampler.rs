//! Continuous sampling profiler: weighted stack samples from every
//! thread's live span stack, exported as flamegraph-compatible
//! collapsed-stack text.
//!
//! Each thread publishes a fixed-depth **shadow stack** of its currently
//! open spans through a seqlock (the same writer protocol as the
//! [`crate::trace`] rings): the writer bumps a sequence counter to odd,
//! stores the frames, and bumps it back to even, so a reader that sees
//! the same even value before and after copying observed a consistent
//! stack. Frames hold pointers to the leaked [`crate::SpanStats`]
//! registry entries, so a cross-thread deref is always sound.
//!
//! Publication is gated on a single relaxed [`AtomicBool`] that is only
//! set while a sampler runs (`LTTF_PROFILE_HZ` / `lttf flame`), so the
//! default-off cost added to every span enter/exit is one relaxed load —
//! the <3% telemetry-overhead budget (DESIGN.md §12) is unaffected.
//!
//! The sampler itself is one background thread: sleep `1/hz`, snapshot
//! every registered shadow stack, and count identical stacks. [`stop`]
//! renders the counts as collapsed-stack text (`thread;span;... count`
//! lines), the format `flamegraph.pl` and speedscope ingest directly.
//! [`validate_collapsed`] is the strict in-repo parser CI runs on every
//! export. Everything here compiles out with the `telemetry` feature:
//! [`start`] then fails and span enter/exit carries no hook at all.

use std::collections::BTreeMap;

/// Deepest span nesting a shadow stack records; deeper frames are
/// dropped (the sample still counts, truncated at this depth).
pub const MAX_DEPTH: usize = 32;

#[cfg(feature = "telemetry")]
mod imp {
    use super::MAX_DEPTH;
    use crate::registry::SpanStats;
    use std::collections::BTreeMap;
    use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// One thread's published span stack, leaked on first use so the
    /// sampler thread can read it for the rest of the process lifetime
    /// (mirrors the trace ring registration).
    pub struct ShadowStack {
        /// Seqlock: odd while the owner is writing.
        seq: AtomicU64,
        /// Current nesting depth (frames beyond [`MAX_DEPTH`] are not
        /// stored but still counted here).
        depth: AtomicU64,
        /// Span pointers, innermost last; valid entries are `0..depth`.
        frames: [AtomicU64; MAX_DEPTH],
        /// Owner's thread name, fixed at registration.
        name: String,
    }

    pub static PUBLISH: AtomicBool = AtomicBool::new(false);

    fn stacks() -> &'static Mutex<Vec<&'static ShadowStack>> {
        static STACKS: OnceLock<Mutex<Vec<&'static ShadowStack>>> = OnceLock::new();
        STACKS.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static MY_STACK: &'static ShadowStack = register_stack();
    }

    fn register_stack() -> &'static ShadowStack {
        let seq = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_default();
        let mut all = stacks().lock().unwrap_or_else(|e| e.into_inner());
        let name = if seq.is_empty() {
            format!("thread-{}", all.len())
        } else {
            seq
        };
        let stack: &'static ShadowStack = Box::leak(Box::new(ShadowStack {
            seq: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            frames: [const { AtomicU64::new(0) }; MAX_DEPTH],
            name,
        }));
        all.push(stack);
        stack
    }

    /// Publish `site` as the new innermost frame of this thread's stack.
    #[inline]
    pub fn push_frame(site: &'static SpanStats) {
        MY_STACK.with(|st| {
            let seq = st.seq.load(Ordering::Relaxed);
            st.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
            fence(Ordering::Release);
            let d = st.depth.load(Ordering::Relaxed);
            if (d as usize) < MAX_DEPTH {
                st.frames[d as usize]
                    .store(site as *const SpanStats as usize as u64, Ordering::Relaxed);
            }
            st.depth.store(d + 1, Ordering::Relaxed);
            st.seq.store(seq.wrapping_add(2), Ordering::Release);
        });
    }

    /// Retract this thread's innermost frame.
    #[inline]
    pub fn pop_frame() {
        MY_STACK.with(|st| {
            let seq = st.seq.load(Ordering::Relaxed);
            st.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
            fence(Ordering::Release);
            let d = st.depth.load(Ordering::Relaxed);
            st.depth.store(d.saturating_sub(1), Ordering::Relaxed);
            st.seq.store(seq.wrapping_add(2), Ordering::Release);
        });
    }

    /// One consistent copy of a shadow stack, or `None` when the owner
    /// was mid-write (the sample is simply skipped — at sampling rates
    /// of ~100 Hz a retry is not worth the complexity).
    fn read_stack(st: &ShadowStack) -> Option<(String, Vec<*const SpanStats>)> {
        let seq0 = st.seq.load(Ordering::Acquire);
        if seq0 % 2 == 1 {
            return None;
        }
        let depth = st.depth.load(Ordering::Relaxed) as usize;
        if depth == 0 {
            return None;
        }
        let frames: Vec<*const SpanStats> = st.frames[..depth.min(MAX_DEPTH)]
            .iter()
            .map(|f| f.load(Ordering::Relaxed) as usize as *const SpanStats)
            .collect();
        fence(Ordering::Acquire);
        if st.seq.load(Ordering::Relaxed) != seq0 {
            return None;
        }
        Some((st.name.clone(), frames))
    }

    struct Running {
        stop: std::sync::mpsc::Sender<()>,
        join: std::thread::JoinHandle<()>,
        counts: std::sync::Arc<Mutex<BTreeMap<String, u64>>>,
    }

    fn state() -> &'static Mutex<Option<Running>> {
        static STATE: OnceLock<Mutex<Option<Running>>> = OnceLock::new();
        STATE.get_or_init(|| Mutex::new(None))
    }

    pub fn start(hz: u64) -> Result<(), String> {
        if hz == 0 {
            return Err("sampling rate must be positive".to_string());
        }
        let mut slot = state().lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_some() {
            return Err("sampler already running".to_string());
        }
        let counts = std::sync::Arc::new(Mutex::new(BTreeMap::new()));
        let shared = counts.clone();
        let (stop, stopped) = std::sync::mpsc::channel::<()>();
        let period = std::time::Duration::from_nanos(1_000_000_000 / hz.min(10_000));
        PUBLISH.store(true, Ordering::Relaxed);
        let join = std::thread::Builder::new()
            .name("lttf-sampler".to_string())
            .spawn(move || loop {
                match stopped.recv_timeout(period) {
                    Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                }
                let all = stacks().lock().unwrap_or_else(|e| e.into_inner());
                let mut tick: Vec<(String, Vec<*const SpanStats>)> = Vec::new();
                for st in all.iter() {
                    if let Some(s) = read_stack(st) {
                        tick.push(s);
                    }
                }
                drop(all);
                if tick.is_empty() {
                    continue;
                }
                let mut counts = shared.lock().unwrap_or_else(|e| e.into_inner());
                for (name, frames) in tick {
                    let mut key = name;
                    for f in frames {
                        // SAFETY: frames hold pointers to leaked 'static
                        // registry entries; they are valid forever.
                        let site = unsafe { &*f };
                        key.push(';');
                        key.push_str(&site.display_name());
                    }
                    *counts.entry(key).or_insert(0) += 1;
                }
            })
            .map_err(|e| format!("cannot spawn sampler thread: {e}"))?;
        *slot = Some(Running { stop, join, counts });
        Ok(())
    }

    pub fn stop() -> BTreeMap<String, u64> {
        let running = {
            let mut slot = state().lock().unwrap_or_else(|e| e.into_inner());
            slot.take()
        };
        PUBLISH.store(false, Ordering::Relaxed);
        let Some(r) = running else {
            return BTreeMap::new();
        };
        let _ = r.stop.send(());
        let _ = r.join.join();
        let counts = r.counts.lock().unwrap_or_else(|e| e.into_inner());
        counts.clone()
    }
}

/// Whether span enter/exit should publish shadow-stack frames right now.
/// A single relaxed load; false whenever no sampler is running or the
/// `telemetry` feature is compiled out.
#[inline]
pub fn publishing() -> bool {
    #[cfg(feature = "telemetry")]
    {
        imp::PUBLISH.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        false
    }
}

#[cfg(feature = "telemetry")]
pub(crate) use imp::{pop_frame, push_frame};

/// Start the background sampler at `hz` samples per second (clamped to
/// 10 kHz). Errors when a sampler is already running, `hz` is zero, or
/// the `telemetry` feature is compiled out.
pub fn start(hz: u64) -> Result<(), String> {
    #[cfg(feature = "telemetry")]
    {
        imp::start(hz)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = hz;
        Err("sampler compiled out (built without the 'telemetry' feature)".to_string())
    }
}

/// What one sampler run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplerReport {
    /// Collapsed-stack text: one `thread;span;... count` line per
    /// distinct stack, lexicographically sorted, trailing newline.
    pub collapsed: String,
    /// Total weighted samples across all stacks.
    pub samples: u64,
    /// Distinct stacks observed.
    pub stacks: usize,
}

/// Stop the sampler (if running) and render everything it saw as
/// collapsed-stack text. Safe to call when no sampler runs: the report
/// is then empty.
pub fn stop() -> SamplerReport {
    #[cfg(feature = "telemetry")]
    {
        let counts = imp::stop();
        let mut collapsed = String::new();
        let mut samples = 0u64;
        for (stack, n) in &counts {
            collapsed.push_str(stack);
            collapsed.push(' ');
            collapsed.push_str(&n.to_string());
            collapsed.push('\n');
            samples += n;
        }
        SamplerReport {
            collapsed,
            samples,
            stacks: counts.len(),
        }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        SamplerReport {
            collapsed: String::new(),
            samples: 0,
            stacks: 0,
        }
    }
}

/// Summary returned by [`validate_collapsed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollapsedSummary {
    /// Distinct stack lines.
    pub stacks: usize,
    /// Total weighted samples.
    pub samples: u64,
    /// Distinct root frames (usually one per sampled thread).
    pub roots: usize,
}

/// Strictly validate collapsed-stack text: every line must be
/// `frame[;frame]* count` with non-empty frames and a positive integer
/// count, no duplicate stacks, and the text must end in a newline
/// (empty text — a run that caught no samples — is valid and empty).
pub fn validate_collapsed(text: &str) -> Result<CollapsedSummary, String> {
    if text.is_empty() {
        return Ok(CollapsedSummary { stacks: 0, samples: 0, roots: 0 });
    }
    if !text.ends_with('\n') {
        return Err("missing trailing newline".to_string());
    }
    let mut seen: BTreeMap<&str, ()> = BTreeMap::new();
    let mut roots: BTreeMap<&str, ()> = BTreeMap::new();
    let mut samples = 0u64;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no space-separated count"))?;
        let count: u64 = count
            .parse()
            .map_err(|_| format!("line {n}: count {count:?} is not an integer"))?;
        if count == 0 {
            return Err(format!("line {n}: zero-weight sample"));
        }
        if stack.is_empty() {
            return Err(format!("line {n}: empty stack"));
        }
        for frame in stack.split(';') {
            if frame.is_empty() {
                return Err(format!("line {n}: empty frame in {stack:?}"));
            }
            if frame.contains(' ') {
                return Err(format!("line {n}: frame {frame:?} contains a space"));
            }
        }
        if seen.insert(stack, ()).is_some() {
            return Err(format!("line {n}: duplicate stack {stack:?}"));
        }
        roots.insert(stack.split(';').next().unwrap_or(stack), ());
        samples += count;
    }
    Ok(CollapsedSummary {
        stacks: seen.len(),
        samples,
        roots: roots.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_well_formed_collapsed_text() {
        let text = "main;matmul 40\nmain;matmul;reduce_dot 2\nworker;conv1d 9\n";
        let s = validate_collapsed(text).unwrap();
        assert_eq!(s.stacks, 3);
        assert_eq!(s.samples, 51);
        assert_eq!(s.roots, 2);
        assert_eq!(
            validate_collapsed(""),
            Ok(CollapsedSummary { stacks: 0, samples: 0, roots: 0 })
        );
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for (text, why) in [
            ("main;matmul 40", "newline"),
            ("main;matmul zero\n", "integer"),
            ("main;matmul 0\n", "zero-weight"),
            (" 4\n", "empty stack"),
            ("main;;matmul 4\n", "empty frame"),
            ("main;mat mul;x 4\n", "space"),
            ("main;matmul 4\nmain;matmul 5\n", "duplicate"),
        ] {
            let err = validate_collapsed(text).unwrap_err();
            assert!(err.contains(why) || !err.is_empty(), "{text:?}: {err}");
        }
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn sampler_catches_a_long_running_span() {
        let _guard = crate::exclusive();
        start(2_000).expect("start sampler");
        assert!(publishing());
        assert!(start(100).is_err(), "double start must fail");
        {
            let _span = crate::span!("sampler_test_outer");
            let _inner = crate::span!("sampler_test_inner");
            std::thread::sleep(std::time::Duration::from_millis(60));
        }
        let report = stop();
        assert!(!publishing());
        let summary = validate_collapsed(&report.collapsed).expect("collapsed validates");
        assert_eq!(summary.samples, report.samples);
        assert!(
            report.collapsed.contains("sampler_test_outer;sampler_test_inner"),
            "expected the nested test stack in:\n{}",
            report.collapsed
        );
    }

    #[test]
    #[cfg(not(feature = "telemetry"))]
    fn compiled_out_sampler_refuses_to_start() {
        assert!(start(99).is_err());
        assert_eq!(stop().samples, 0);
    }
}
