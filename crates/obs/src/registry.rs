//! Global span/counter registry.
//!
//! A [`SpanStats`] is a leaked, never-freed bundle of atomics keyed by a
//! `(group, name)` pair of `&'static str`s. Call sites cache the pointer in
//! a per-site `OnceLock`, so the steady-state cost of an active span is two
//! `Instant::now()` reads plus a handful of relaxed atomic adds. The
//! registry mutex is only touched on first use of each site and when
//! snapshotting.
//!
//! Self-time is tracked with a thread-local span stack: when a guard drops,
//! it subtracts the time attributed to spans it directly nested and credits
//! its own elapsed time to its parent's child-accumulator. Spans opened on
//! pool worker threads have no parent on that thread's stack, so their time
//! is *not* subtracted from the dispatching span — utilization numbers come
//! from the pool gauges instead.

use std::cell::RefCell;
#[cfg(feature = "telemetry")]
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::trace;

/// What a registry entry measures; controls how reports render it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A timed RAII scope: calls, total/self/min/max ns, bytes.
    Span,
    /// A monotonically increasing event count; only `calls` is meaningful.
    Counter,
    /// An accumulated nanosecond quantity (e.g. pool busy time); only
    /// `total_ns` is meaningful.
    GaugeNs,
    /// A sampled unitless value distribution (e.g. queue depth, batch
    /// size): `calls` counts samples, `total_ns` holds their sum, and
    /// `min_ns`/`max_ns` hold the observed extremes, so reports can show
    /// count / mean / min / max.
    Gauge,
}

impl Kind {
    /// Stable lowercase label used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Span => "span",
            Kind::Counter => "counter",
            Kind::GaugeNs => "gauge_ns",
            Kind::Gauge => "gauge",
        }
    }
}

/// Live statistics for one named scope. All fields are relaxed atomics;
/// cross-field consistency is only guaranteed while no spans are running.
pub struct SpanStats {
    group: &'static str,
    name: &'static str,
    kind: Kind,
    calls: AtomicU64,
    total_ns: AtomicU64,
    self_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    bytes: AtomicU64,
    /// Heap bytes allocated while this span was the innermost open one
    /// on the allocating thread (charged by [`crate::alloc`]).
    alloc_bytes: AtomicU64,
    /// Heap allocations charged alongside `alloc_bytes`.
    allocs: AtomicU64,
    /// Cached [`trace`] name index for this site's display name, interned
    /// lazily the first time the site fires while tracing is enabled.
    /// `u32::MAX` = not yet interned.
    trace_idx: AtomicU32,
}

impl SpanStats {
    fn new(group: &'static str, name: &'static str, kind: Kind) -> Self {
        SpanStats {
            group,
            name,
            kind,
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            self_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            trace_idx: AtomicU32::new(u32::MAX),
        }
    }

    /// `group.name` display form (just `name` when the group is empty),
    /// as rendered by snapshots and the sampling profiler.
    pub(crate) fn display_name(&self) -> String {
        if self.group.is_empty() {
            self.name.to_string()
        } else {
            format!("{}.{}", self.group, self.name)
        }
    }

    /// Interned timeline-trace name for this site (`group.name` display
    /// form), computed once and cached. Only called while tracing is on.
    fn trace_idx(&self) -> u32 {
        let cached = self.trace_idx.load(Ordering::Relaxed);
        if cached != u32::MAX {
            return cached;
        }
        let idx = if self.group.is_empty() {
            trace::intern(self.name)
        } else {
            trace::intern(&format!("{}.{}", self.group, self.name))
        };
        self.trace_idx.store(idx, Ordering::Relaxed);
        idx
    }

    fn clear(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.self_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.alloc_bytes.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
    }

    /// Add `delta` to the event count (used by counters).
    pub fn add_calls(&self, delta: u64) {
        self.calls.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add `ns` to the accumulated time (used by gauges).
    pub fn add_ns(&self, ns: u64) {
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one sample of a unitless value (used by [`Kind::Gauge`]
    /// entries): bumps the sample count, accumulates the sum, and tracks
    /// the min/max observed.
    pub fn record_value(&self, v: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(v, Ordering::Relaxed);
        self.min_ns.fetch_min(v, Ordering::Relaxed);
        self.max_ns.fetch_max(v, Ordering::Relaxed);
    }
}

type RegistryMap = HashMap<(&'static str, &'static str), &'static SpanStats>;

fn registry() -> &'static Mutex<RegistryMap> {
    static REGISTRY: OnceLock<Mutex<RegistryMap>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Look up or create the stats slot for `(group, name)`. The returned
/// reference is `'static` (the slot is leaked) and safe to cache.
pub fn register(group: &'static str, name: &'static str, kind: Kind) -> &'static SpanStats {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.entry((group, name))
        .or_insert_with(|| &*Box::leak(Box::new(SpanStats::new(group, name, kind))))
}

thread_local! {
    /// Stack of (span, ns attributed to direct children so far).
    static SPAN_STACK: RefCell<Vec<(*const SpanStats, u64)>> = const { RefCell::new(Vec::new()) };
}

#[cfg(feature = "telemetry")]
thread_local! {
    /// The innermost open span, read by the allocation hook. A dedicated
    /// `Cell` (not [`SPAN_STACK`]): the hook must never touch the
    /// `RefCell` — pushing onto its `Vec` can itself allocate, and the
    /// hook would then re-enter a borrowed cell. Reading a const-init
    /// `Cell` allocates nothing, so the hook cannot recurse.
    static CURRENT_SPAN: Cell<*const SpanStats> =
        const { Cell::new(std::ptr::null()) };
}

/// Charge one allocation of `size` bytes to the calling thread's
/// innermost open span, if any. Called from the global-allocator hook:
/// must not allocate, lock, or panic (`try_with` covers TLS teardown).
#[cfg(feature = "telemetry")]
#[inline]
pub(crate) fn charge_alloc(size: usize) {
    let _ = CURRENT_SPAN.try_with(|c| {
        let p = c.get();
        if !p.is_null() {
            // SAFETY: the cell only ever holds pointers to leaked
            // 'static registry entries (or null).
            let site = unsafe { &*p };
            site.alloc_bytes.fetch_add(size as u64, Ordering::Relaxed);
            site.allocs.fetch_add(1, Ordering::Relaxed);
        }
    });
}

struct ActiveSpan {
    site: &'static SpanStats,
    start: Instant,
    /// The span this one nested inside, restored on drop.
    #[cfg(feature = "telemetry")]
    prev: *const SpanStats,
    /// Whether this span published a sampler shadow-stack frame (the
    /// sampler may start or stop mid-span; push/pop must stay balanced).
    #[cfg(feature = "telemetry")]
    published: bool,
}

/// RAII timer for one span activation. Obtain via [`crate::span!`] or
/// [`scoped`]; an [`SpanGuard::inactive`] guard costs nothing to drop.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Start timing `site` on the current thread.
    pub fn enter(site: &'static SpanStats) -> SpanGuard {
        SPAN_STACK.with(|s| s.borrow_mut().push((site as *const SpanStats, 0)));
        if trace::enabled() {
            trace::begin(site.trace_idx());
        }
        #[cfg(feature = "telemetry")]
        let prev = CURRENT_SPAN.with(|c| c.replace(site as *const SpanStats));
        #[cfg(feature = "telemetry")]
        let published = crate::sampler::publishing();
        #[cfg(feature = "telemetry")]
        if published {
            crate::sampler::push_frame(site);
        }
        SpanGuard(Some(ActiveSpan {
            site,
            start: Instant::now(),
            #[cfg(feature = "telemetry")]
            prev,
            #[cfg(feature = "telemetry")]
            published,
        }))
    }

    /// A guard that records nothing; used when telemetry is compiled out
    /// or a size threshold was not met.
    pub const fn inactive() -> SpanGuard {
        SpanGuard(None)
    }

    /// Attribute `n` processed bytes to this span (no-op when inactive).
    pub fn bytes(&self, n: usize) {
        if let Some(a) = &self.0 {
            a.site.bytes.fetch_add(n as u64, Ordering::Relaxed);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let elapsed = a.start.elapsed().as_nanos() as u64;
        if trace::enabled() {
            trace::end(a.site.trace_idx());
        }
        #[cfg(feature = "telemetry")]
        {
            if a.published {
                crate::sampler::pop_frame();
            }
            let _ = CURRENT_SPAN.try_with(|c| c.set(a.prev));
        }
        let child_ns = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards are strictly scoped per thread, so the top entry is ours.
            let child = stack.pop().map(|(_, c)| c).unwrap_or(0);
            if let Some(top) = stack.last_mut() {
                top.1 = top.1.saturating_add(elapsed);
            }
            child
        });
        let self_ns = elapsed.saturating_sub(child_ns);
        a.site.calls.fetch_add(1, Ordering::Relaxed);
        a.site.total_ns.fetch_add(elapsed, Ordering::Relaxed);
        a.site.self_ns.fetch_add(self_ns, Ordering::Relaxed);
        a.site.min_ns.fetch_min(elapsed, Ordering::Relaxed);
        a.site.max_ns.fetch_max(elapsed, Ordering::Relaxed);
    }
}

/// Start a span whose name is only known at runtime (still `&'static str`,
/// e.g. an autograd op name). Pays one registry-mutex lookup per call, so
/// reserve it for chunky scopes like per-op backward closures. An empty
/// `name` returns an inactive guard.
pub fn scoped(group: &'static str, name: &'static str) -> SpanGuard {
    if name.is_empty() {
        return SpanGuard::inactive();
    }
    SpanGuard::enter(register(group, name, Kind::Span))
}

/// Point-in-time copy of one registry entry.
#[derive(Debug, Clone)]
pub struct SpanSnapshot {
    /// Display name: `group.name`, or just `name` when the group is empty.
    pub name: String,
    /// Entry kind (span / counter / gauge).
    pub kind: Kind,
    /// Completed activations (spans) or accumulated count (counters).
    pub calls: u64,
    /// Total wall nanoseconds across activations (spans) or accumulated
    /// nanoseconds (gauges).
    pub total_ns: u64,
    /// Total minus time attributed to directly nested spans.
    pub self_ns: u64,
    /// Fastest single activation, ns (0 when never called).
    pub min_ns: u64,
    /// Slowest single activation, ns.
    pub max_ns: u64,
    /// Bytes attributed via [`SpanGuard::bytes`].
    pub bytes: u64,
    /// Heap bytes allocated while this span was innermost (0 unless the
    /// instrumented allocator is compiled in; see [`crate::alloc`]).
    pub alloc_bytes: u64,
    /// Heap allocations charged alongside `alloc_bytes`.
    pub allocs: u64,
}

/// Copy every registry entry, sorted by display name. Entries with zero
/// calls and zero time are skipped.
pub fn snapshot() -> Vec<SpanSnapshot> {
    let map = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<SpanSnapshot> = map
        .values()
        .map(|s| {
            let calls = s.calls.load(Ordering::Relaxed);
            let min = s.min_ns.load(Ordering::Relaxed);
            SpanSnapshot {
                name: s.display_name(),
                kind: s.kind,
                calls,
                total_ns: s.total_ns.load(Ordering::Relaxed),
                self_ns: s.self_ns.load(Ordering::Relaxed),
                min_ns: if min == u64::MAX { 0 } else { min },
                max_ns: s.max_ns.load(Ordering::Relaxed),
                bytes: s.bytes.load(Ordering::Relaxed),
                alloc_bytes: s.alloc_bytes.load(Ordering::Relaxed),
                allocs: s.allocs.load(Ordering::Relaxed),
            }
        })
        .filter(|s| s.calls > 0 || s.total_ns > 0)
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Zero every registered entry (entries stay registered, so cached call
/// sites remain valid). Meaningful only while no spans are in flight.
pub fn reset() {
    let map = registry().lock().unwrap_or_else(|e| e.into_inner());
    for s in map.values() {
        s.clear();
    }
}

/// Fetch the current `calls` value of a counter/span by display key,
/// or 0 when it was never registered. Handy for tests.
pub fn calls(group: &'static str, name: &'static str) -> u64 {
    let map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.get(&(group, name))
        .map(|s| s.calls.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// Open a named span if `cond` holds; compiled out entirely when the
/// *calling* crate's `telemetry` feature is off (the `cfg!` below is
/// evaluated in the caller's feature context because this is a macro).
///
/// ```
/// let work = 128 * 128 * 128;
/// let _span = lttf_obs::span!("matmul", work >= 4096);
/// _span.bytes(3 * 128 * 128 * 4);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span!($name, true)
    };
    ($name:expr, $cond:expr) => {{
        if cfg!(feature = "telemetry") && $cond {
            static SITE: ::std::sync::OnceLock<&'static $crate::SpanStats> =
                ::std::sync::OnceLock::new();
            $crate::SpanGuard::enter(
                SITE.get_or_init(|| $crate::register("", $name, $crate::Kind::Span)),
            )
        } else {
            $crate::SpanGuard::inactive()
        }
    }};
}

/// Bump a named counter by `delta`; compiled out with the caller's
/// `telemetry` feature like [`span!`].
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {{
        if cfg!(feature = "telemetry") {
            static SITE: ::std::sync::OnceLock<&'static $crate::SpanStats> =
                ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::register("", $name, $crate::Kind::Counter))
                .add_calls($delta as u64);
        }
    }};
}

/// Accumulate `ns` nanoseconds into a named gauge; compiled out with the
/// caller's `telemetry` feature like [`span!`].
#[macro_export]
macro_rules! gauge_ns {
    ($name:expr, $ns:expr) => {{
        if cfg!(feature = "telemetry") {
            static SITE: ::std::sync::OnceLock<&'static $crate::SpanStats> =
                ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::register("", $name, $crate::Kind::GaugeNs))
                .add_ns($ns as u64);
        }
    }};
}

/// Record one sample of a unitless gauge (queue depth, batch size, …);
/// compiled out with the caller's `telemetry` feature like [`span!`].
/// Reports show the sample count, mean, and min/max.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {{
        if cfg!(feature = "telemetry") {
            static SITE: ::std::sync::OnceLock<&'static $crate::SpanStats> =
                ::std::sync::OnceLock::new();
            SITE.get_or_init(|| $crate::register("", $name, $crate::Kind::Gauge))
                .record_value($value as u64);
        }
    }};
}
