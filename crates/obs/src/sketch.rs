//! Streaming per-feature distribution sketches for drift detection.
//!
//! The serving tier needs "does the live input distribution still look
//! like training?" without storing samples: a [`FeatureSketch`] keeps a
//! Welford mean/variance accumulator plus three P² quantile estimators
//! (q10/q50/q90) — O(1) memory and O(1) per sample. A
//! [`ReferenceProfile`] is the frozen training-time counterpart, fitted
//! once at train time and round-tripped through the checkpoint v2
//! sidecar's free-form meta section (`drift.*` keys), so drift scoring
//! needs no extra files and profile-less checkpoints degrade gracefully
//! (`from_meta` → `Ok(None)`).

/// Numerically stable streaming mean/variance (Welford's algorithm).
#[derive(Clone, Copy, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Fold in one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 with fewer than 2 samples).
    pub fn std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }
}

/// P² streaming quantile estimator (Jain & Chlamtac 1985): five markers
/// tracking min, two intermediate quantiles, the target quantile, and
/// max, adjusted with piecewise-parabolic interpolation. O(1) memory,
/// no sample retention.
#[derive(Clone, Copy)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimated quantile values).
    q: [f64; 5],
    /// Actual marker positions (1-based sample ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Estimator for quantile `p` in `(0, 1)`.
    pub fn new(p: f64) -> P2Quantile {
        assert!(p > 0.0 && p < 1.0, "p out of range");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            count: 0,
        }
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold in one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            let k = self.count as usize - 1;
            self.q[k] = x;
            // Keep the first five sorted.
            let mut i = k;
            while i > 0 && self.q[i - 1] > self.q[i] {
                self.q.swap(i - 1, i);
                i -= 1;
            }
            return;
        }
        // Find the cell containing x and bump marker positions above it.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && x >= self.q[k + 1] {
                k += 1;
            }
            k
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        let dnp = [0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0];
        for i in 0..5 {
            self.np[i] += dnp[i];
        }
        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let s = d.signum();
                let parabolic = self.q[i]
                    + s / (self.n[i + 1] - self.n[i - 1])
                        * ((self.n[i] - self.n[i - 1] + s) * (self.q[i + 1] - self.q[i])
                            / (self.n[i + 1] - self.n[i])
                            + (self.n[i + 1] - self.n[i] - s) * (self.q[i] - self.q[i - 1])
                                / (self.n[i] - self.n[i - 1]));
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    // Linear fallback keeps markers ordered.
                    let j = (i as f64 + s) as usize;
                    self.q[i] + s * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
                };
                self.n[i] += s;
            }
        }
    }

    /// Current quantile estimate. With fewer than 5 samples, the exact
    /// nearest-rank quantile of what was seen (0 when empty).
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count <= 5 {
            let n = self.count as usize;
            let rank = ((self.p * n as f64).ceil() as usize).clamp(1, n);
            return self.q[rank - 1];
        }
        self.q[2]
    }
}

/// Streaming sketch of one feature column: mean/var plus q10/q50/q90.
#[derive(Clone, Copy)]
pub struct FeatureSketch {
    /// Mean/variance accumulator.
    pub moments: Welford,
    q10: P2Quantile,
    q50: P2Quantile,
    q90: P2Quantile,
}

impl Default for FeatureSketch {
    fn default() -> Self {
        FeatureSketch::new()
    }
}

impl FeatureSketch {
    /// An empty sketch.
    pub fn new() -> FeatureSketch {
        FeatureSketch {
            moments: Welford::new(),
            q10: P2Quantile::new(0.1),
            q50: P2Quantile::new(0.5),
            q90: P2Quantile::new(0.9),
        }
    }

    /// Fold in one observation.
    pub fn record(&mut self, x: f64) {
        self.moments.record(x);
        self.q10.record(x);
        self.q50.record(x);
        self.q90.record(x);
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Freeze the current state into reference statistics.
    pub fn stats(&self) -> FeatureStats {
        FeatureStats {
            mean: self.moments.mean(),
            std: self.moments.std(),
            q10: self.q10.value(),
            q50: self.q50.value(),
            q90: self.q90.value(),
        }
    }
}

/// Frozen per-feature reference statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeatureStats {
    /// Mean of the feature over the reference data.
    pub mean: f64,
    /// Standard deviation over the reference data.
    pub std: f64,
    /// 10th percentile.
    pub q10: f64,
    /// Median.
    pub q50: f64,
    /// 90th percentile.
    pub q90: f64,
}

/// Training-time distribution profile: one [`FeatureStats`] per input
/// column, plus how many time steps it was fitted on. Serialized into
/// checkpoint meta under `drift.*` keys.
#[derive(Clone, Debug, PartialEq)]
pub struct ReferenceProfile {
    /// Per-feature reference statistics, one per input column.
    pub features: Vec<FeatureStats>,
    /// Time steps the profile was fitted on.
    pub count: u64,
}

/// Shortest round-trip float formatting (matches the scaler-meta idiom).
fn fmt_f64(v: f64) -> String {
    let mut s = format!("{v}");
    if s.parse::<f64>() != Ok(v) {
        s = format!("{v:?}");
    }
    s
}

fn join(vals: impl Iterator<Item = f64>) -> String {
    vals.map(fmt_f64).collect::<Vec<_>>().join(",")
}

fn parse_list(s: &str, key: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .map(|t| t.trim().parse::<f64>().map_err(|e| format!("{key}: bad float {t:?}: {e}")))
        .collect()
}

impl ReferenceProfile {
    /// Serialize to checkpoint meta key/value pairs (`drift.*`).
    pub fn to_meta(&self) -> Vec<(String, String)> {
        vec![
            ("drift.mean".into(), join(self.features.iter().map(|f| f.mean))),
            ("drift.std".into(), join(self.features.iter().map(|f| f.std))),
            ("drift.q10".into(), join(self.features.iter().map(|f| f.q10))),
            ("drift.q50".into(), join(self.features.iter().map(|f| f.q50))),
            ("drift.q90".into(), join(self.features.iter().map(|f| f.q90))),
            ("drift.count".into(), format!("{}", self.count)),
        ]
    }

    /// Parse from checkpoint meta. Absent `drift.*` keys → `Ok(None)`
    /// (old checkpoints serve with drift unavailable); present but
    /// malformed → `Err`.
    pub fn from_meta(meta: &[(String, String)]) -> Result<Option<ReferenceProfile>, String> {
        let get = |key: &str| meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str());
        let Some(mean) = get("drift.mean") else {
            return Ok(None);
        };
        let need = |key: &str| get(key).ok_or_else(|| format!("missing meta key {key}"));
        let mean = parse_list(mean, "drift.mean")?;
        let std = parse_list(need("drift.std")?, "drift.std")?;
        let q10 = parse_list(need("drift.q10")?, "drift.q10")?;
        let q50 = parse_list(need("drift.q50")?, "drift.q50")?;
        let q90 = parse_list(need("drift.q90")?, "drift.q90")?;
        let count: u64 = need("drift.count")?
            .trim()
            .parse()
            .map_err(|e| format!("drift.count: {e}"))?;
        let n = mean.len();
        if std.len() != n || q10.len() != n || q50.len() != n || q90.len() != n {
            return Err(format!(
                "drift meta length mismatch: mean {n}, std {}, q10 {}, q50 {}, q90 {}",
                std.len(),
                q10.len(),
                q50.len(),
                q90.len()
            ));
        }
        if n == 0 {
            return Err("drift meta has zero features".into());
        }
        let features = (0..n)
            .map(|i| FeatureStats {
                mean: mean[i],
                std: std[i],
                q10: q10[i],
                q50: q50[i],
                q90: q90[i],
            })
            .collect();
        Ok(Some(ReferenceProfile { features, count }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.std() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn p2_tracks_uniform_quantiles() {
        // Deterministic LCG over [0, 1).
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for p in [0.1, 0.5, 0.9] {
            let mut est = P2Quantile::new(p);
            for _ in 0..20_000 {
                est.record(next());
            }
            assert!(
                (est.value() - p).abs() < 0.02,
                "p={p}: estimate {}",
                est.value()
            );
        }
    }

    #[test]
    fn p2_small_sample_is_exact_nearest_rank() {
        let mut est = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            est.record(x);
        }
        assert_eq!(est.value(), 3.0);
        let mut lo = P2Quantile::new(0.1);
        lo.record(7.0);
        assert_eq!(lo.value(), 7.0);
        assert_eq!(P2Quantile::new(0.5).value(), 0.0);
    }

    #[test]
    fn profile_meta_round_trips() {
        let profile = ReferenceProfile {
            features: vec![
                FeatureStats { mean: 1.5, std: 0.25, q10: -1.0, q50: 1.25, q90: 3.75 },
                FeatureStats { mean: -2.0, std: 4.5, q10: -8.5, q50: -2.125, q90: 4.0 },
            ],
            count: 4096,
        };
        let meta = profile.to_meta();
        let back = ReferenceProfile::from_meta(&meta).unwrap().unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn profile_meta_absent_and_malformed() {
        let empty: Vec<(String, String)> = vec![("scaler.mean".into(), "1,2".into())];
        assert_eq!(ReferenceProfile::from_meta(&empty).unwrap(), None);
        // Present but incomplete is an error, not silently None.
        let partial = vec![("drift.mean".into(), "1,2".into())];
        assert!(ReferenceProfile::from_meta(&partial).is_err());
        let mismatched = vec![
            ("drift.mean".into(), "1,2".into()),
            ("drift.std".into(), "1".into()),
            ("drift.q10".into(), "0,0".into()),
            ("drift.q50".into(), "0,0".into()),
            ("drift.q90".into(), "0,0".into()),
            ("drift.count".into(), "10".into()),
        ];
        assert!(ReferenceProfile::from_meta(&mismatched).is_err());
    }

    #[test]
    fn feature_sketch_stats() {
        let mut s = FeatureSketch::new();
        for i in 0..5000 {
            s.record((i % 100) as f64);
        }
        let st = s.stats();
        assert!((st.mean - 49.5).abs() < 1e-9);
        assert!((st.q50 - 49.5).abs() < 2.0);
        assert!((st.q10 - 9.9).abs() < 2.5);
        assert!((st.q90 - 89.1).abs() < 2.5);
        assert_eq!(s.count(), 5000);
    }
}
