//! Training health: per-tensor statistics, a divergence watchdog, and a
//! process-global health flag the serve metrics endpoint can report.
//!
//! The trainer scans parameter gradients (and optionally activations on
//! the autograd tape) at a configurable cadence, summarising each tensor
//! with [`TensorHealth::from_slice`] — one pass, no allocation. The
//! [`Watchdog`] turns those summaries into a verdict: NaN/Inf anywhere,
//! or a gradient norm exploding past a threshold, yields a
//! [`Divergence`] naming the offending layer. Policy (halt vs. warn) is
//! the caller's call; the watchdog only detects.
//!
//! [`set_global`] / [`global`] publish the most recent divergence so a
//! serving process doing online (test-time) training can expose
//! watchdog state on its metrics endpoint without plumbing a handle
//! through every layer.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// One-pass summary statistics of a tensor's values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorHealth {
    /// Number of elements scanned.
    pub count: usize,
    /// Elements that were NaN.
    pub nan: usize,
    /// Elements that were +/- infinity.
    pub inf: usize,
    /// L2 norm of the finite elements.
    pub norm: f64,
    /// Mean of the finite elements (0 when none).
    pub mean: f64,
    /// Population standard deviation of the finite elements.
    pub std: f64,
}

impl TensorHealth {
    /// Scan `data` once, accumulating in f64 so large tensors don't lose
    /// the tail of the sums. Non-finite elements are counted but excluded
    /// from the moments, so a single NaN doesn't poison the norm.
    pub fn from_slice(data: &[f32]) -> TensorHealth {
        let mut nan = 0usize;
        let mut inf = 0usize;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut finite = 0usize;
        for &v in data {
            if v.is_nan() {
                nan += 1;
            } else if v.is_infinite() {
                inf += 1;
            } else {
                let v = v as f64;
                sum += v;
                sum_sq += v * v;
                finite += 1;
            }
        }
        let mean = if finite > 0 { sum / finite as f64 } else { 0.0 };
        let var = if finite > 0 {
            (sum_sq / finite as f64 - mean * mean).max(0.0)
        } else {
            0.0
        };
        TensorHealth {
            count: data.len(),
            nan,
            inf,
            norm: sum_sq.sqrt(),
            mean,
            std: var.sqrt(),
        }
    }

    /// True when any element was NaN or infinite.
    pub fn non_finite(&self) -> bool {
        self.nan > 0 || self.inf > 0
    }

    /// Combine two summaries as if their tensors were concatenated. Used
    /// to aggregate per-node tape statistics by op name.
    pub fn merge(&self, other: &TensorHealth) -> TensorHealth {
        let f1 = (self.count - self.nan - self.inf) as f64;
        let f2 = (other.count - other.nan - other.inf) as f64;
        let finite = f1 + f2;
        let sum = self.mean * f1 + other.mean * f2;
        let sum_sq = self.norm * self.norm + other.norm * other.norm;
        let mean = if finite > 0.0 { sum / finite } else { 0.0 };
        let var = if finite > 0.0 {
            (sum_sq / finite - mean * mean).max(0.0)
        } else {
            0.0
        };
        TensorHealth {
            count: self.count + other.count,
            nan: self.nan + other.nan,
            inf: self.inf + other.inf,
            norm: sum_sq.sqrt(),
            mean,
            std: var.sqrt(),
        }
    }
}

/// Why a training run was flagged, with the layer that tripped it.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Parameter or op name that tripped the watchdog (e.g. `enc.l0.w`).
    pub layer: String,
    /// Human-readable reason (`"grad has 3 NaN"`, `"grad norm 1.2e6
    /// exceeds 1e4"`, …).
    pub reason: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "divergence in {}: {}", self.layer, self.reason)
    }
}

/// Divergence detector. Stateless between checks except for the
/// configured explosion threshold.
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    /// A single tensor's gradient norm above this is "exploding".
    /// `f64::INFINITY` disables the norm check (NaN/Inf still trip).
    pub max_grad_norm: f64,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog { max_grad_norm: 1e4 }
    }
}

impl Watchdog {
    /// Check one named tensor's gradient (or activation) summary.
    /// Returns the first problem found, or `None` when healthy.
    pub fn check(&self, layer: &str, h: &TensorHealth) -> Option<Divergence> {
        if h.nan > 0 {
            return Some(Divergence {
                layer: layer.to_string(),
                reason: format!("{} NaN of {} values", h.nan, h.count),
            });
        }
        if h.inf > 0 {
            return Some(Divergence {
                layer: layer.to_string(),
                reason: format!("{} Inf of {} values", h.inf, h.count),
            });
        }
        if h.norm > self.max_grad_norm {
            return Some(Divergence {
                layer: layer.to_string(),
                reason: format!("norm {:.3e} exceeds {:.3e}", h.norm, self.max_grad_norm),
            });
        }
        None
    }

    /// Check a non-finite scalar (e.g. the batch loss itself).
    pub fn check_scalar(&self, what: &str, v: f64) -> Option<Divergence> {
        if v.is_finite() {
            None
        } else {
            Some(Divergence {
                layer: what.to_string(),
                reason: format!("value is {v}"),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Process-global watchdog state (read by the serve metrics endpoint)
// ---------------------------------------------------------------------------

static DIVERGED: AtomicBool = AtomicBool::new(false);

fn detail() -> &'static Mutex<Option<Divergence>> {
    static DETAIL: OnceLock<Mutex<Option<Divergence>>> = OnceLock::new();
    DETAIL.get_or_init(|| Mutex::new(None))
}

/// Publish (or clear, with `None`) the process-wide divergence state.
/// The trainer calls this when its watchdog trips.
pub fn set_global(d: Option<Divergence>) {
    DIVERGED.store(d.is_some(), Ordering::Relaxed);
    *detail().lock().unwrap_or_else(|e| e.into_inner()) = d;
}

/// Cheap flag: has any watchdog in this process flagged a divergence?
pub fn is_diverged() -> bool {
    DIVERGED.load(Ordering::Relaxed)
}

/// The most recently published divergence, if any.
pub fn global() -> Option<Divergence> {
    detail().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_hand_computation() {
        let h = TensorHealth::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(h.count, 4);
        assert_eq!((h.nan, h.inf), (0, 0));
        assert!((h.mean - 2.5).abs() < 1e-12);
        assert!((h.norm - 30.0f64.sqrt()).abs() < 1e-12);
        assert!((h.std - 1.25f64.sqrt()).abs() < 1e-12);
        assert!(!h.non_finite());
    }

    #[test]
    fn merge_equals_concatenated_scan() {
        let a = [1.0f32, 2.0, f32::NAN];
        let b = [3.0f32, 4.0, f32::INFINITY];
        let all: Vec<f32> = a.iter().chain(&b).copied().collect();
        let merged = TensorHealth::from_slice(&a).merge(&TensorHealth::from_slice(&b));
        let direct = TensorHealth::from_slice(&all);
        assert_eq!((merged.count, merged.nan, merged.inf), (6, 1, 1));
        assert!((merged.norm - direct.norm).abs() < 1e-9);
        assert!((merged.mean - direct.mean).abs() < 1e-12);
        assert!((merged.std - direct.std).abs() < 1e-9);
    }

    #[test]
    fn non_finite_counted_not_poisoning() {
        let h = TensorHealth::from_slice(&[1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY]);
        assert_eq!((h.nan, h.inf), (1, 2));
        assert!(h.norm.is_finite() && h.mean.is_finite());
        assert!(h.non_finite());
        let empty = TensorHealth::from_slice(&[]);
        assert_eq!((empty.count, empty.mean, empty.norm), (0, 0.0, 0.0));
    }

    #[test]
    fn watchdog_names_the_layer() {
        let dog = Watchdog { max_grad_norm: 10.0 };
        let bad = TensorHealth::from_slice(&[f32::NAN]);
        let d = dog.check("enc.l1.w", &bad).expect("trips on NaN");
        assert_eq!(d.layer, "enc.l1.w");
        assert!(d.to_string().contains("enc.l1.w"), "{d}");
        let exploding = TensorHealth::from_slice(&[100.0]);
        let d = dog.check("dec.l0.b", &exploding).expect("trips on norm");
        assert!(d.reason.contains("exceeds"), "{}", d.reason);
        let fine = TensorHealth::from_slice(&[0.5; 16]);
        assert!(dog.check("ok", &fine).is_none());
        assert!(dog.check_scalar("loss", 1.0).is_none());
        assert!(dog.check_scalar("loss", f64::NAN).is_some());
    }

    #[test]
    fn global_state_round_trips() {
        set_global(Some(Divergence {
            layer: "l".into(),
            reason: "r".into(),
        }));
        assert!(is_diverged());
        assert_eq!(global().unwrap().layer, "l");
        set_global(None);
        assert!(!is_diverged());
        assert!(global().is_none());
    }
}
