//! CPU-time clocks, std-only.
//!
//! Rust's standard library offers wall clocks but no CPU clocks, and the
//! workspace takes no external crates — so this module declares the two
//! `clock_gettime` clocks it needs directly against the C library that
//! std already links. On non-Linux targets both functions return 0 and
//! every consumer treats the readings as "unavailable" (deltas of zero).

#[cfg(target_os = "linux")]
mod imp {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    const CLOCK_PROCESS_CPUTIME_ID: i32 = 2;
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }

    fn read(clk: i32) -> u64 {
        let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
        // SAFETY: ts is a valid, writable Timespec; clock_gettime only
        // writes through the pointer on success.
        if unsafe { clock_gettime(clk, &mut ts) } != 0 {
            return 0;
        }
        (ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64
    }

    pub fn process_cpu_ns() -> u64 {
        read(CLOCK_PROCESS_CPUTIME_ID)
    }

    pub fn thread_cpu_ns() -> u64 {
        read(CLOCK_THREAD_CPUTIME_ID)
    }
}

/// Nanoseconds of CPU time consumed by the whole process (all threads),
/// or 0 when the platform offers no such clock.
pub fn process_cpu_ns() -> u64 {
    #[cfg(target_os = "linux")]
    {
        imp::process_cpu_ns()
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Nanoseconds of CPU time consumed by the calling thread, or 0 when the
/// platform offers no such clock.
pub fn thread_cpu_ns() -> u64 {
    #[cfg(target_os = "linux")]
    {
        imp::thread_cpu_ns()
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn clocks_advance_under_load() {
        let p0 = process_cpu_ns();
        let t0 = thread_cpu_ns();
        // Burn a visible amount of CPU; black_box keeps it un-elided.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        assert!(process_cpu_ns() > p0, "process CPU clock must advance");
        assert!(thread_cpu_ns() > t0, "thread CPU clock must advance");
    }
}
