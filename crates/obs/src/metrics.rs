//! Prometheus-style text exposition, std-only.
//!
//! Renders `name{label="value"} 123` lines — the subset of the
//! [Prometheus text format] that scrapers and humans both read — from a
//! registry snapshot plus any caller-supplied series. The serve front end
//! answers its `"metrics"` request type with this output; nothing here
//! does IO or knows about HTTP.
//!
//! Conventions: every series is prefixed `lttf_`, dots in registry names
//! become underscores, counters get a `_total` suffix, and nanosecond
//! quantities are exposed in seconds (the Prometheus base unit).
//!
//! [Prometheus text format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::registry::{Kind, SpanSnapshot};

/// Rewrite an arbitrary registry name into a legal metric-name chunk:
/// `[a-zA-Z0-9_]`, with `.` and every other byte mapped to `_`.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Accumulates exposition lines; render with [`MetricsText::finish`].
#[derive(Default)]
pub struct MetricsText {
    buf: String,
}

impl MetricsText {
    /// Start an empty document.
    pub fn new() -> MetricsText {
        MetricsText::default()
    }

    /// Append one series sample. `name` is used verbatim (caller
    /// sanitizes); labels render as `{k="v",...}`; non-finite values are
    /// skipped (the format has no NaN).
    pub fn line(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        if !value.is_finite() {
            return self;
        }
        self.buf.push_str(name);
        if !labels.is_empty() {
            self.buf.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                self.buf.push_str(k);
                self.buf.push_str("=\"");
                // Label values escape backslash, quote, and newline.
                for c in v.chars() {
                    match c {
                        '\\' => self.buf.push_str("\\\\"),
                        '"' => self.buf.push_str("\\\""),
                        '\n' => self.buf.push_str("\\n"),
                        c => self.buf.push(c),
                    }
                }
                self.buf.push('"');
            }
            self.buf.push('}');
        }
        self.buf.push(' ');
        if value == value.trunc() && value.abs() < 9e15 {
            self.buf.push_str(&format!("{}", value as i64));
        } else {
            self.buf.push_str(&format!("{value}"));
        }
        self.buf.push('\n');
        self
    }

    /// Append every entry of a registry snapshot under the `lttf_`
    /// prefix: spans as `lttf_span_calls_total` / `lttf_span_seconds_total`
    /// (labelled by span name), counters as `lttf_<name>_total`,
    /// nanosecond gauges as `lttf_<name>_seconds_total`, and value gauges
    /// as `_count` / `_sum` / `_min` / `_max`.
    pub fn registry(&mut self, snap: &[SpanSnapshot]) -> &mut Self {
        for s in snap {
            let name = sanitize(&s.name);
            match s.kind {
                Kind::Span => {
                    self.line(
                        "lttf_span_calls_total",
                        &[("span", &s.name)],
                        s.calls as f64,
                    );
                    self.line(
                        "lttf_span_seconds_total",
                        &[("span", &s.name)],
                        s.total_ns as f64 / 1e9,
                    );
                }
                Kind::Counter => {
                    self.line(&format!("lttf_{name}_total"), &[], s.calls as f64);
                }
                Kind::GaugeNs => {
                    self.line(
                        &format!("lttf_{name}_seconds_total"),
                        &[],
                        s.total_ns as f64 / 1e9,
                    );
                }
                Kind::Gauge => {
                    self.line(&format!("lttf_{name}_count"), &[], s.calls as f64);
                    self.line(&format!("lttf_{name}_sum"), &[], s.total_ns as f64);
                    if s.calls > 0 {
                        self.line(&format!("lttf_{name}_min"), &[], s.min_ns as f64);
                        self.line(&format!("lttf_{name}_max"), &[], s.max_ns as f64);
                    }
                }
            }
        }
        self
    }

    /// Append a full Prometheus histogram (`_bucket`/`_sum`/`_count`)
    /// from a nanosecond-valued [`Histogram`](crate::hist::Histogram).
    ///
    /// `bounds_ns` are the cumulative `le` upper bounds in nanoseconds
    /// (exposed in seconds, the base unit); pass
    /// [`LATENCY_LE_NS`](crate::hist::LATENCY_LE_NS) for latencies.
    /// Power-of-two bounds align exactly with the log-linear bucket
    /// boundaries, so the cumulative counts are exact. The `+Inf`
    /// bucket, `_sum`, and `_count` are always emitted — an empty
    /// histogram still renders a complete (all-zero) family.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        hist: &crate::hist::Histogram,
        bounds_ns: &[u64],
    ) -> &mut Self {
        let bucket = format!("{name}_bucket");
        let les: Vec<String> = bounds_ns
            .iter()
            .map(|&b| format!("{}", b as f64 / 1e9))
            .collect();
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", ""));
        for (&bound, le) in bounds_ns.iter().zip(&les) {
            *with_le.last_mut().unwrap() = ("le", le);
            self.line(&bucket, &with_le, hist.count_le(bound) as f64);
        }
        *with_le.last_mut().unwrap() = ("le", "+Inf");
        self.line(&bucket, &with_le, hist.count() as f64);
        self.line(&format!("{name}_sum"), labels, hist.sum() as f64 / 1e9);
        self.line(&format!("{name}_count"), labels, hist.count() as f64);
        self
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Strict exposition validation (the `metrics_check` binary's engine)
// ---------------------------------------------------------------------------

/// What [`validate`] accepted: series/line counts for the `ok` summary.
pub struct ExpositionSummary {
    /// Sample lines (comments excluded).
    pub samples: usize,
    /// Distinct metric names.
    pub names: usize,
    /// Histogram families checked for `le` monotonicity.
    pub histograms: usize,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse one sample line into `(name, sorted labels, value)`.
fn parse_sample(line: &str) -> Result<(String, Vec<(String, String)>, f64), String> {
    let name_end = line
        .find(|c| c == '{' || c == ' ')
        .ok_or("missing value (no space)")?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels: Vec<(String, String)> = Vec::new();
    let bytes = line.as_bytes();
    let mut i = name_end;
    if bytes[i] == b'{' {
        i += 1;
        if bytes.get(i) == Some(&b'}') {
            return Err("empty label set {}".into());
        }
        loop {
            // Label name up to '='.
            let eq = line[i..]
                .find('=')
                .map(|o| i + o)
                .ok_or("label without '='")?;
            let lname = &line[i..eq];
            if !valid_label_name(lname) {
                return Err(format!("invalid label name {lname:?}"));
            }
            if bytes.get(eq + 1) != Some(&b'"') {
                return Err(format!("label {lname:?}: value not quoted"));
            }
            // Quoted value with \\, \", \n escapes.
            let mut value = String::new();
            let mut chars = line[eq + 2..].char_indices();
            let close;
            loop {
                match chars.next() {
                    Some((_, '\\')) => match chars.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        Some((_, c)) => return Err(format!("bad escape \\{c}")),
                        None => return Err("unterminated label value".into()),
                    },
                    Some((j, '"')) => {
                        close = eq + 2 + j;
                        break;
                    }
                    Some((_, c)) => value.push(c),
                    None => return Err("unterminated label value".into()),
                }
            }
            if labels.iter().any(|(k, _)| k == lname) {
                return Err(format!("duplicate label {lname:?}"));
            }
            labels.push((lname.to_string(), value));
            match bytes.get(close + 1) {
                Some(b',') => i = close + 2,
                Some(b'}') => {
                    i = close + 2;
                    break;
                }
                _ => return Err("expected ',' or '}' after label value".into()),
            }
        }
        labels.sort();
    }
    if bytes.get(i) != Some(&b' ') {
        return Err("expected space before value".into());
    }
    Ok((name.to_string(), labels, parse_value(&line[i + 1..])?))
}

fn parse_value(tok: &str) -> Result<f64, String> {
    if tok.is_empty() || tok.contains(' ') {
        return Err(format!("malformed value {tok:?}"));
    }
    match tok {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => tok
            .parse::<f64>()
            .map_err(|e| format!("bad value {tok:?}: {e}")),
    }
}

/// Strictly validate a Prometheus text-exposition document.
///
/// Checks, line by line: trailing newline present, legal metric/label
/// names, quoting and escapes, parseable values, no duplicate series
/// (same name + label set). Then structurally: every `*_bucket` family
/// (grouped by its non-`le` labels) must have strictly ascending `le`
/// bounds ending in `+Inf`, non-decreasing cumulative counts, a
/// matching `_count` series equal to the `+Inf` bucket, and a matching
/// `_sum` series; `_total`-suffixed samples must be non-negative.
/// `#`-prefixed comment lines are skipped; empty lines are rejected.
pub fn validate(text: &str) -> Result<ExpositionSummary, String> {
    if text.is_empty() {
        return Err("empty document".into());
    }
    if !text.ends_with('\n') {
        return Err("missing trailing newline".into());
    }
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut names: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    // base name + canonical non-le labels -> [(le, cumulative count)]
    let mut hist_buckets: std::collections::BTreeMap<String, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    let mut plain: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let ctx = |e: String| format!("line {}: {e}", lineno + 1);
        if line.starts_with('#') {
            continue;
        }
        if line.is_empty() {
            return Err(ctx("empty line".into()));
        }
        let (name, labels, value) = parse_sample(line).map_err(ctx)?;
        let key = format!(
            "{name}{{{}}}",
            labels
                .iter()
                .map(|(k, v)| format!("{k}={v:?}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        if !seen.insert(key.clone()) {
            return Err(ctx(format!("duplicate series {key}")));
        }
        if name.ends_with("_total") && value < 0.0 {
            return Err(ctx(format!("counter {name} is negative ({value})")));
        }
        names.insert(name.clone());
        if let Some(base) = name.strip_suffix("_bucket") {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| ctx(format!("{name} sample without le label")))?;
            let bound = parse_value(&le.1).map_err(|e| ctx(format!("le label: {e}")))?;
            let others: Vec<_> = labels.iter().filter(|(k, _)| k != "le").collect();
            let group = format!(
                "{base}{{{}}}",
                others
                    .iter()
                    .map(|(k, v)| format!("{k}={v:?}"))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            hist_buckets.entry(group).or_default().push((bound, value));
        } else {
            plain.insert(key_for(&name, &labels), value);
        }
    }
    let histograms = hist_buckets.len();
    for (group, buckets) in &hist_buckets {
        let mut last_le = f64::NEG_INFINITY;
        let mut last_count = -1.0;
        for &(le, count) in buckets {
            if le.is_nan() || le <= last_le {
                return Err(format!("{group}: le bounds not strictly ascending"));
            }
            if count < last_count {
                return Err(format!("{group}: cumulative bucket counts decrease"));
            }
            (last_le, last_count) = (le, count);
        }
        if last_le != f64::INFINITY {
            return Err(format!("{group}: last bucket is not le=\"+Inf\""));
        }
        // `group` is `base{k="v",...}`; derive the _count/_sum keys.
        let (base, label_part) = group.split_once('{').unwrap();
        let labels = label_part.trim_end_matches('}');
        let count_key = format!("{base}_count{{{labels}}}");
        let sum_key = format!("{base}_sum{{{labels}}}");
        match plain.get(&count_key) {
            None => return Err(format!("{group}: missing {base}_count series")),
            Some(&c) if c != last_count => {
                return Err(format!(
                    "{group}: +Inf bucket ({last_count}) != _count ({c})"
                ))
            }
            Some(_) => {}
        }
        if !plain.contains_key(&sum_key) {
            return Err(format!("{group}: missing {base}_sum series"));
        }
    }
    Ok(ExpositionSummary {
        samples: seen.len(),
        names: names.len(),
        histograms,
    })
}

/// Canonical series key used to cross-reference `_count`/`_sum`.
fn key_for(name: &str, labels: &[(String, String)]) -> String {
    format!(
        "{name}{{{}}}",
        labels
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect::<Vec<_>>()
            .join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_to_legal_names() {
        assert_eq!(sanitize("pool.busy_ns"), "pool_busy_ns");
        assert_eq!(sanitize("serve.queue depth"), "serve_queue_depth");
        assert_eq!(sanitize("9lives"), "_9lives");
    }

    #[test]
    fn lines_render_prometheus_shape() {
        let mut m = MetricsText::new();
        m.line("lttf_up", &[], 1.0)
            .line("lttf_latency_seconds", &[("p", "99"), ("model", "a\"b")], 0.25)
            .line("lttf_skip", &[], f64::NAN);
        let text = m.finish();
        assert!(text.contains("lttf_up 1\n"), "{text}");
        assert!(
            text.contains("lttf_latency_seconds{p=\"99\",model=\"a\\\"b\"} 0.25\n"),
            "{text}"
        );
        assert!(!text.contains("lttf_skip"), "NaN dropped: {text}");
    }

    #[test]
    fn registry_snapshot_renders_all_kinds() {
        let snap = vec![
            SpanSnapshot {
                name: "serve.batch".into(),
                kind: Kind::Span,
                calls: 3,
                total_ns: 2_000_000_000,
                self_ns: 2_000_000_000,
                min_ns: 1,
                max_ns: 2,
                bytes: 0,
                alloc_bytes: 0,
                allocs: 0,
            },
            SpanSnapshot {
                name: "pool.tasks".into(),
                kind: Kind::Counter,
                calls: 42,
                total_ns: 0,
                self_ns: 0,
                min_ns: 0,
                max_ns: 0,
                bytes: 0,
                alloc_bytes: 0,
                allocs: 0,
            },
            SpanSnapshot {
                name: "pool.busy_ns".into(),
                kind: Kind::GaugeNs,
                calls: 0,
                total_ns: 1_500_000_000,
                self_ns: 0,
                min_ns: 0,
                max_ns: 0,
                bytes: 0,
                alloc_bytes: 0,
                allocs: 0,
            },
            SpanSnapshot {
                name: "serve.batch_size".into(),
                kind: Kind::Gauge,
                calls: 2,
                total_ns: 10,
                self_ns: 0,
                min_ns: 4,
                max_ns: 6,
                bytes: 0,
                alloc_bytes: 0,
                allocs: 0,
            },
        ];
        let mut m = MetricsText::new();
        m.registry(&snap);
        let text = m.finish();
        assert!(text.contains("lttf_span_calls_total{span=\"serve.batch\"} 3\n"), "{text}");
        assert!(text.contains("lttf_span_seconds_total{span=\"serve.batch\"} 2\n"), "{text}");
        assert!(text.contains("lttf_pool_tasks_total 42\n"), "{text}");
        assert!(text.contains("lttf_pool_busy_ns_seconds_total 1.5\n"), "{text}");
        assert!(text.contains("lttf_serve_batch_size_count 2\n"), "{text}");
        assert!(text.contains("lttf_serve_batch_size_max 6\n"), "{text}");
    }

    #[test]
    fn histogram_family_renders_and_validates() {
        let mut h = crate::hist::Histogram::new();
        for v in [5_000u64, 80_000, 80_000, 2_000_000, 40_000_000_000] {
            h.record(v);
        }
        let mut m = MetricsText::new();
        m.histogram(
            "lttf_serve_latency_hist_seconds",
            &[("model", "m")],
            &h,
            &crate::hist::LATENCY_LE_NS,
        );
        let text = m.finish();
        assert!(
            text.contains("lttf_serve_latency_hist_seconds_bucket{model=\"m\",le=\"+Inf\"} 5\n"),
            "{text}"
        );
        assert!(text.contains("lttf_serve_latency_hist_seconds_count{model=\"m\"} 5\n"), "{text}");
        // 5_000 ns <= 2^14 ns (16.384 µs) — the second bound.
        assert!(
            text.contains("lttf_serve_latency_hist_seconds_bucket{model=\"m\",le=\"0.000016384\"} 1\n"),
            "{text}"
        );
        let summary = validate(&text).unwrap();
        assert_eq!(summary.histograms, 1);

        // Empty histograms still emit a complete family.
        let mut m = MetricsText::new();
        m.histogram("lttf_empty_seconds", &[], &crate::hist::Histogram::new(), &[4096]);
        let text = m.finish();
        assert!(text.contains("lttf_empty_seconds_count 0\n"), "{text}");
        validate(&text).unwrap();
    }

    #[test]
    fn validator_accepts_wellformed_documents() {
        let doc = "# comment\nlttf_up 1\nlttf_x{a=\"1\",b=\"q\\\"uo\\\\te\\n\"} 2.5\nlttf_neg -3.5\n";
        let s = validate(doc).unwrap();
        assert_eq!((s.samples, s.names, s.histograms), (3, 3, 0));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for (doc, why) in [
            ("lttf_up 1", "missing trailing newline"),
            ("", "empty document"),
            ("lttf_up 1\n\n", "empty line"),
            ("9bad 1\n", "bad metric name"),
            ("lttf_up{9l=\"x\"} 1\n", "bad label name"),
            ("lttf_up{a=x} 1\n", "unquoted label value"),
            ("lttf_up{a=\"x} 1\n", "unterminated label value"),
            ("lttf_up{a=\"x\"\"} 1\n", "junk after label value"),
            ("lttf_up{} 1\n", "empty label set"),
            ("lttf_up{a=\"1\",a=\"2\"} 1\n", "duplicate label"),
            ("lttf_up one\n", "bad value"),
            ("lttf_up 1 2\n", "two values"),
            ("lttf_up\n", "no value"),
            ("lttf_up 1\nlttf_up 1\n", "duplicate series"),
            ("lttf_events_total -1\n", "negative counter"),
        ] {
            assert!(validate(doc).is_err(), "accepted: {why}: {doc:?}");
        }
    }

    #[test]
    fn validator_enforces_histogram_structure() {
        let ok = "lttf_h_bucket{le=\"0.1\"} 1\nlttf_h_bucket{le=\"+Inf\"} 3\nlttf_h_sum 0.4\nlttf_h_count 3\n";
        assert_eq!(validate(ok).unwrap().histograms, 1);
        for (doc, why) in [
            (
                "lttf_h_bucket{le=\"0.1\"} 1\nlttf_h_sum 0.4\nlttf_h_count 1\n",
                "no +Inf bucket",
            ),
            (
                "lttf_h_bucket{le=\"0.2\"} 1\nlttf_h_bucket{le=\"0.1\"} 2\nlttf_h_bucket{le=\"+Inf\"} 3\nlttf_h_sum 1\nlttf_h_count 3\n",
                "le not ascending",
            ),
            (
                "lttf_h_bucket{le=\"0.1\"} 5\nlttf_h_bucket{le=\"+Inf\"} 3\nlttf_h_sum 1\nlttf_h_count 3\n",
                "counts decrease",
            ),
            (
                "lttf_h_bucket{le=\"+Inf\"} 3\nlttf_h_sum 1\nlttf_h_count 2\n",
                "+Inf != _count",
            ),
            ("lttf_h_bucket{le=\"+Inf\"} 3\nlttf_h_sum 1\n", "missing _count"),
            ("lttf_h_bucket{le=\"+Inf\"} 3\nlttf_h_count 3\n", "missing _sum"),
            ("lttf_h_bucket{a=\"1\"} 3\n", "bucket without le"),
        ] {
            assert!(validate(doc).is_err(), "accepted: {why}: {doc:?}");
        }
        // Labeled family: grouping keys include the non-le labels.
        let labeled = "lttf_h_bucket{model=\"a\",le=\"+Inf\"} 2\nlttf_h_sum{model=\"a\"} 1\nlttf_h_count{model=\"a\"} 2\n";
        assert_eq!(validate(labeled).unwrap().histograms, 1);
    }
}
