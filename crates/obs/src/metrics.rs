//! Prometheus-style text exposition, std-only.
//!
//! Renders `name{label="value"} 123` lines — the subset of the
//! [Prometheus text format] that scrapers and humans both read — from a
//! registry snapshot plus any caller-supplied series. The serve front end
//! answers its `"metrics"` request type with this output; nothing here
//! does IO or knows about HTTP.
//!
//! Conventions: every series is prefixed `lttf_`, dots in registry names
//! become underscores, counters get a `_total` suffix, and nanosecond
//! quantities are exposed in seconds (the Prometheus base unit).
//!
//! [Prometheus text format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::registry::{Kind, SpanSnapshot};

/// Rewrite an arbitrary registry name into a legal metric-name chunk:
/// `[a-zA-Z0-9_]`, with `.` and every other byte mapped to `_`.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Accumulates exposition lines; render with [`MetricsText::finish`].
#[derive(Default)]
pub struct MetricsText {
    buf: String,
}

impl MetricsText {
    /// Start an empty document.
    pub fn new() -> MetricsText {
        MetricsText::default()
    }

    /// Append one series sample. `name` is used verbatim (caller
    /// sanitizes); labels render as `{k="v",...}`; non-finite values are
    /// skipped (the format has no NaN).
    pub fn line(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        if !value.is_finite() {
            return self;
        }
        self.buf.push_str(name);
        if !labels.is_empty() {
            self.buf.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                self.buf.push_str(k);
                self.buf.push_str("=\"");
                // Label values escape backslash, quote, and newline.
                for c in v.chars() {
                    match c {
                        '\\' => self.buf.push_str("\\\\"),
                        '"' => self.buf.push_str("\\\""),
                        '\n' => self.buf.push_str("\\n"),
                        c => self.buf.push(c),
                    }
                }
                self.buf.push('"');
            }
            self.buf.push('}');
        }
        self.buf.push(' ');
        if value == value.trunc() && value.abs() < 9e15 {
            self.buf.push_str(&format!("{}", value as i64));
        } else {
            self.buf.push_str(&format!("{value}"));
        }
        self.buf.push('\n');
        self
    }

    /// Append every entry of a registry snapshot under the `lttf_`
    /// prefix: spans as `lttf_span_calls_total` / `lttf_span_seconds_total`
    /// (labelled by span name), counters as `lttf_<name>_total`,
    /// nanosecond gauges as `lttf_<name>_seconds_total`, and value gauges
    /// as `_count` / `_sum` / `_min` / `_max`.
    pub fn registry(&mut self, snap: &[SpanSnapshot]) -> &mut Self {
        for s in snap {
            let name = sanitize(&s.name);
            match s.kind {
                Kind::Span => {
                    self.line(
                        "lttf_span_calls_total",
                        &[("span", &s.name)],
                        s.calls as f64,
                    );
                    self.line(
                        "lttf_span_seconds_total",
                        &[("span", &s.name)],
                        s.total_ns as f64 / 1e9,
                    );
                }
                Kind::Counter => {
                    self.line(&format!("lttf_{name}_total"), &[], s.calls as f64);
                }
                Kind::GaugeNs => {
                    self.line(
                        &format!("lttf_{name}_seconds_total"),
                        &[],
                        s.total_ns as f64 / 1e9,
                    );
                }
                Kind::Gauge => {
                    self.line(&format!("lttf_{name}_count"), &[], s.calls as f64);
                    self.line(&format!("lttf_{name}_sum"), &[], s.total_ns as f64);
                    if s.calls > 0 {
                        self.line(&format!("lttf_{name}_min"), &[], s.min_ns as f64);
                        self.line(&format!("lttf_{name}_max"), &[], s.max_ns as f64);
                    }
                }
            }
        }
        self
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_to_legal_names() {
        assert_eq!(sanitize("pool.busy_ns"), "pool_busy_ns");
        assert_eq!(sanitize("serve.queue depth"), "serve_queue_depth");
        assert_eq!(sanitize("9lives"), "_9lives");
    }

    #[test]
    fn lines_render_prometheus_shape() {
        let mut m = MetricsText::new();
        m.line("lttf_up", &[], 1.0)
            .line("lttf_latency_seconds", &[("p", "99"), ("model", "a\"b")], 0.25)
            .line("lttf_skip", &[], f64::NAN);
        let text = m.finish();
        assert!(text.contains("lttf_up 1\n"), "{text}");
        assert!(
            text.contains("lttf_latency_seconds{p=\"99\",model=\"a\\\"b\"} 0.25\n"),
            "{text}"
        );
        assert!(!text.contains("lttf_skip"), "NaN dropped: {text}");
    }

    #[test]
    fn registry_snapshot_renders_all_kinds() {
        let snap = vec![
            SpanSnapshot {
                name: "serve.batch".into(),
                kind: Kind::Span,
                calls: 3,
                total_ns: 2_000_000_000,
                self_ns: 2_000_000_000,
                min_ns: 1,
                max_ns: 2,
                bytes: 0,
            },
            SpanSnapshot {
                name: "pool.tasks".into(),
                kind: Kind::Counter,
                calls: 42,
                total_ns: 0,
                self_ns: 0,
                min_ns: 0,
                max_ns: 0,
                bytes: 0,
            },
            SpanSnapshot {
                name: "pool.busy_ns".into(),
                kind: Kind::GaugeNs,
                calls: 0,
                total_ns: 1_500_000_000,
                self_ns: 0,
                min_ns: 0,
                max_ns: 0,
                bytes: 0,
            },
            SpanSnapshot {
                name: "serve.batch_size".into(),
                kind: Kind::Gauge,
                calls: 2,
                total_ns: 10,
                self_ns: 0,
                min_ns: 4,
                max_ns: 6,
                bytes: 0,
            },
        ];
        let mut m = MetricsText::new();
        m.registry(&snap);
        let text = m.finish();
        assert!(text.contains("lttf_span_calls_total{span=\"serve.batch\"} 3\n"), "{text}");
        assert!(text.contains("lttf_span_seconds_total{span=\"serve.batch\"} 2\n"), "{text}");
        assert!(text.contains("lttf_pool_tasks_total 42\n"), "{text}");
        assert!(text.contains("lttf_pool_busy_ns_seconds_total 1.5\n"), "{text}");
        assert!(text.contains("lttf_serve_batch_size_count 2\n"), "{text}");
        assert!(text.contains("lttf_serve_batch_size_max 6\n"), "{text}");
    }
}
