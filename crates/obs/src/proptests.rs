//! Property-based tests for the histogram and sketch layer.

use crate::hist::{Histogram, WindowedHistogram};
use lttf_testkit::{prop_assert, prop_assert_eq, properties, Xoshiro256PlusPlus as Rng};

/// Deterministic sample stream: log-uniform over ~9 decades so every
/// octave of the histogram gets exercised.
fn samples(rng: &mut Rng, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let mag = rng.below(30) as u32; // 2^0 .. 2^29
            1 + rng.below(1u64 << mag)
        })
        .collect()
}

properties! {
    cases = 32;

    // Any quantile of the sketch is within the 1/32 relative-error bound
    // of the exact nearest-rank answer on the same samples.
    fn quantile_relative_error_bounded(seed in 0u64..10_000, n in 1usize..2000) {
        let mut rng = Rng::seed_from_u64(seed);
        let xs = samples(&mut rng, n);
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = sorted[rank - 1];
            let approx = h.quantile(q);
            let err = (approx as f64 - exact as f64).abs();
            prop_assert!(
                err <= exact as f64 / 32.0 + 0.5,
                "q={} exact={} approx={}",
                q,
                exact,
                approx
            );
        }
        prop_assert_eq!(h.count(), n as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), sorted[n - 1]);
        prop_assert_eq!(h.sum(), xs.iter().map(|&x| x as u128).sum::<u128>());
    }

    // Merging is associative and order-independent: any grouping of the
    // same sample stream yields an identical histogram.
    fn merge_is_associative(seed in 0u64..10_000, n in 3usize..600) {
        let mut rng = Rng::seed_from_u64(seed);
        let xs = samples(&mut rng, n);
        let cut1 = 1 + rng.below(n as u64 - 2) as usize;
        let cut2 = cut1 + 1 + rng.below((n - cut1 - 1) as u64) as usize;
        let part = |range: &[u64]| {
            let mut h = Histogram::new();
            for &x in range {
                h.record(x);
            }
            h
        };
        let (a, b, c) = (part(&xs[..cut1]), part(&xs[cut1..cut2]), part(&xs[cut2..]));
        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // one pass
        let whole = part(&xs);
        for h in [&left, &right] {
            prop_assert_eq!(h.count(), whole.count());
            prop_assert_eq!(h.sum(), whole.sum());
            prop_assert_eq!(h.min(), whole.min());
            prop_assert_eq!(h.max(), whole.max());
            for q in [0.1, 0.5, 0.95] {
                prop_assert_eq!(h.quantile(q), whole.quantile(q));
            }
        }
    }

    // Rotation only ever forgets whole buckets: as time advances with no
    // new samples, the windowed count is non-increasing, and a snapshot
    // never contains samples recorded outside the window.
    fn rotation_is_monotone(seed in 0u64..10_000, buckets in 2usize..8, width in 10u64..200) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut w = WindowedHistogram::new(buckets, width);
        let span = buckets as u64 * width;
        let mut t = 0u64;
        let mut recorded = 0u64;
        for _ in 0..100 {
            t += rng.below(width);
            w.record(t, 1 + rng.below(1000));
            recorded += 1;
        }
        let mut last = w.snapshot(t).count();
        prop_assert!(last <= recorded);
        // Advance beyond the window with no recording: counts only drop.
        for _ in 0..(2 * buckets + 2) {
            t += width;
            let now = w.snapshot(t).count();
            prop_assert!(now <= last, "count grew {} -> {} with no records", last, now);
            last = now;
        }
        prop_assert_eq!(w.snapshot(t + span).count(), 0);
    }
}
