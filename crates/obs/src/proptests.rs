//! Property-based tests for the histogram, sketch, and allocation layers.

use crate::alloc::AllocCounters;
use crate::hist::{Histogram, WindowedHistogram};
use lttf_testkit::{prop_assert, prop_assert_eq, properties, Xoshiro256PlusPlus as Rng};

/// Deterministic sample stream: log-uniform over ~9 decades so every
/// octave of the histogram gets exercised.
fn samples(rng: &mut Rng, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let mag = rng.below(30) as u32; // 2^0 .. 2^29
            1 + rng.below(1u64 << mag)
        })
        .collect()
}

properties! {
    cases = 32;

    // Any quantile of the sketch is within the 1/32 relative-error bound
    // of the exact nearest-rank answer on the same samples.
    fn quantile_relative_error_bounded(seed in 0u64..10_000, n in 1usize..2000) {
        let mut rng = Rng::seed_from_u64(seed);
        let xs = samples(&mut rng, n);
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = sorted[rank - 1];
            let approx = h.quantile(q);
            let err = (approx as f64 - exact as f64).abs();
            prop_assert!(
                err <= exact as f64 / 32.0 + 0.5,
                "q={} exact={} approx={}",
                q,
                exact,
                approx
            );
        }
        prop_assert_eq!(h.count(), n as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), sorted[n - 1]);
        prop_assert_eq!(h.sum(), xs.iter().map(|&x| x as u128).sum::<u128>());
    }

    // Merging is associative and order-independent: any grouping of the
    // same sample stream yields an identical histogram.
    fn merge_is_associative(seed in 0u64..10_000, n in 3usize..600) {
        let mut rng = Rng::seed_from_u64(seed);
        let xs = samples(&mut rng, n);
        let cut1 = 1 + rng.below(n as u64 - 2) as usize;
        let cut2 = cut1 + 1 + rng.below((n - cut1 - 1) as u64) as usize;
        let part = |range: &[u64]| {
            let mut h = Histogram::new();
            for &x in range {
                h.record(x);
            }
            h
        };
        let (a, b, c) = (part(&xs[..cut1]), part(&xs[cut1..cut2]), part(&xs[cut2..]));
        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // one pass
        let whole = part(&xs);
        for h in [&left, &right] {
            prop_assert_eq!(h.count(), whole.count());
            prop_assert_eq!(h.sum(), whole.sum());
            prop_assert_eq!(h.min(), whole.min());
            prop_assert_eq!(h.max(), whole.max());
            for q in [0.1, 0.5, 0.95] {
                prop_assert_eq!(h.quantile(q), whole.quantile(q));
            }
        }
    }

    // Rotation only ever forgets whole buckets: as time advances with no
    // new samples, the windowed count is non-increasing, and a snapshot
    // never contains samples recorded outside the window.
    fn rotation_is_monotone(seed in 0u64..10_000, buckets in 2usize..8, width in 10u64..200) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut w = WindowedHistogram::new(buckets, width);
        let span = buckets as u64 * width;
        let mut t = 0u64;
        let mut recorded = 0u64;
        for _ in 0..100 {
            t += rng.below(width);
            w.record(t, 1 + rng.below(1000));
            recorded += 1;
        }
        let mut last = w.snapshot(t).count();
        prop_assert!(last <= recorded);
        // Advance beyond the window with no recording: counts only drop.
        for _ in 0..(2 * buckets + 2) {
            t += width;
            let now = w.snapshot(t).count();
            prop_assert!(now <= last, "count grew {} -> {} with no records", last, now);
            last = now;
        }
        prop_assert_eq!(w.snapshot(t + span).count(), 0);
    }

    // Allocator bookkeeping invariants on a random alloc/free trace:
    // live always equals allocated-minus-freed bytes, and the peak is the
    // exact running maximum of live (monotone within a run, never beaten
    // by the final live count).
    fn alloc_counters_track_live_and_peak(seed in 0u64..10_000, n in 1usize..500) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut c = AllocCounters::new();
        // Sizes of blocks currently "live"; frees always pick one of them
        // so the model mirrors a real allocator trace.
        let mut blocks: Vec<u64> = Vec::new();
        let mut expected_peak = 0u64;
        let mut last_peak = 0u64;
        for _ in 0..n {
            if blocks.is_empty() || rng.below(3) > 0 {
                let size = 1 + rng.below(1 << 20);
                blocks.push(size);
                c.record_alloc(size);
            } else {
                let i = rng.below(blocks.len() as u64) as usize;
                let size = blocks.swap_remove(i);
                c.record_free(size);
            }
            let live: u64 = blocks.iter().sum();
            prop_assert_eq!(c.live_bytes(), live);
            expected_peak = expected_peak.max(live);
            prop_assert_eq!(c.peak_bytes, expected_peak);
            prop_assert!(c.peak_bytes >= last_peak, "peak must be monotone");
            last_peak = c.peak_bytes;
        }
        prop_assert_eq!(c.allocs - c.frees, blocks.len() as u64);
        prop_assert!(c.peak_bytes >= c.live_bytes());
    }

    // Splitting one alloc/free trace across per-thread counter sets and
    // merging them back reproduces the global counts and byte totals
    // exactly, and the merged peak (sum of per-part peaks) bounds the
    // true interleaved peak from above.
    fn alloc_counters_merge_bounds_global(seed in 0u64..10_000, n in 1usize..400, parts in 2usize..5) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut global = AllocCounters::new();
        let mut per_thread = vec![AllocCounters::new(); parts];
        // Live blocks tagged with the part that allocated them, so each
        // part sees a well-formed trace of its own.
        let mut blocks: Vec<(usize, u64)> = Vec::new();
        for _ in 0..n {
            if blocks.is_empty() || rng.below(3) > 0 {
                let p = rng.below(parts as u64) as usize;
                let size = 1 + rng.below(1 << 16);
                blocks.push((p, size));
                global.record_alloc(size);
                per_thread[p].record_alloc(size);
            } else {
                let i = rng.below(blocks.len() as u64) as usize;
                let (p, size) = blocks.swap_remove(i);
                global.record_free(size);
                per_thread[p].record_free(size);
            }
        }
        let mut merged = AllocCounters::new();
        for part in &per_thread {
            merged.merge(part);
        }
        prop_assert_eq!(merged.allocs, global.allocs);
        prop_assert_eq!(merged.frees, global.frees);
        prop_assert_eq!(merged.alloc_bytes, global.alloc_bytes);
        prop_assert_eq!(merged.freed_bytes, global.freed_bytes);
        prop_assert_eq!(merged.live_bytes(), global.live_bytes());
        prop_assert!(
            merged.peak_bytes >= global.peak_bytes,
            "sum of per-part peaks ({}) must bound the interleaved peak ({})",
            merged.peak_bytes,
            global.peak_bytes
        );
    }
}
